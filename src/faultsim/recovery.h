// Post-heal recovery probe: how long until the tree delivers again?
//
// After a fault clears (partition healed, root rejoined), the forest repairs itself
// through parent-heartbeat timeouts and re-JOINs. MeasureRecovery quantifies that: it
// repeatedly publishes probe broadcasts from the topic's current root and returns the
// virtual time until the first probe that reaches every live subscriber — the paper's
// "first-publish-reaches-all-subscribers" recovery metric. The result is also exported
// as the `faultsim.recovery.post_heal_ms` gauge.
//
// Harness-only: it overwrites every scribe's OnBroadcast callback, so do not call it
// while a TotoroEngine drives the same forest.
#ifndef SRC_FAULTSIM_RECOVERY_H_
#define SRC_FAULTSIM_RECOVERY_H_

#include "src/pubsub/forest.h"

namespace totoro {

struct RecoveryProbeConfig {
  double probe_interval_ms = 100.0;  // One probe round per interval.
  double timeout_ms = 20000.0;       // Give up after this much virtual time.
  // Probe rounds start here, far above application rounds so closed-round bookkeeping
  // in the tree never confuses a probe for a stale FL round.
  uint64_t round_base = 1000000000ull;
};

// Returns virtual ms until full delivery, or a negative value on timeout.
double MeasureRecovery(Forest* forest, const NodeId& topic,
                       const RecoveryProbeConfig& config = {});

}  // namespace totoro

#endif  // SRC_FAULTSIM_RECOVERY_H_
