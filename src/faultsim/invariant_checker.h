// Protocol-invariant checking attachable to any run.
//
// Two classes of invariants:
//
//  Safety (checked every interval, fault or no fault):
//   - No node is its own tree parent (self-loop).
//   - No aggregation round double-counts: the root total's contribution count never
//     exceeds the topic's subscriber high-water mark (event-driven via the Scribe
//     aggregate-audit hook, so every root aggregate is checked, not just sampled).
//
//  Eventual / convergence (checked only when the run has been quiet — no fault for
//  `convergence_grace_ms` and no active partition — because mid-repair trees and
//  mid-partition rings legitimately violate them transiently):
//   - Every live node's leaf set contains its true ring successor and predecessor
//     (requires keep-alives; skipped otherwise).
//   - Every watched Scribe tree is acyclic, has exactly one live root, that root is the
//     topic's rendezvous node, and every live subscriber reaches it (connectivity).
//
// Violations are recorded with their virtual time and exported through the obs
// registry (`faultsim.invariant.checks` / `faultsim.invariant.violations`), so a test
// asserts `checker.violations().empty()` and a bench exports the counters.
#ifndef SRC_FAULTSIM_INVARIANT_CHECKER_H_
#define SRC_FAULTSIM_INVARIANT_CHECKER_H_

#include <string>
#include <vector>

#include "src/faultsim/fault_injector.h"
#include "src/pubsub/forest.h"

namespace totoro {

struct InvariantCheckerConfig {
  double interval_ms = 500.0;           // Periodic check cadence (Start()).
  double convergence_grace_ms = 2000.0; // Quiet time before eventual checks apply.
  bool check_leaf_sets = true;          // Effective only with keep-alives enabled.
  bool check_trees = true;
};

struct InvariantViolation {
  SimTime at = 0.0;
  std::string invariant;  // e.g. "tree.acyclic", "leafset.ring_neighbor".
  std::string detail;
};

class InvariantChecker {
 public:
  InvariantChecker(PastryNetwork* pastry, Forest* forest,
                   InvariantCheckerConfig config = {});
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Registers a topic whose tree/aggregation invariants are checked. Installs the
  // aggregate-audit hook on every scribe the first time a topic is watched.
  void WatchTopic(const NodeId& topic);

  // Ground truth source for "is the run quiet" gating; optional (without it eventual
  // checks apply whenever the checker runs).
  void SetFaultInjector(const FaultInjector* injector) { injector_ = injector; }

  // Periodic checking through the event queue; Stop() cancels the pending tick.
  void Start();
  void Stop();

  // Runs the safety checks immediately.
  void CheckNow();
  // Runs the eventual checks immediately (caller asserts the run has converged).
  void CheckConverged();

  const std::vector<InvariantViolation>& violations() const { return violations_; }
  uint64_t checks_run() const { return checks_run_; }

 private:
  void Tick();
  void Violate(const char* invariant, std::string detail);
  void CheckSafetyTree(const NodeId& topic);
  void CheckConvergedTree(const NodeId& topic);
  void CheckLeafSets();
  void OnRootAggregate(const NodeId& topic, uint64_t round, uint64_t count);
  // Refreshes the per-topic subscriber high-water marks used by the aggregate audit.
  void UpdateSubscriberHighWater();

  PastryNetwork* pastry_;
  Forest* forest_;
  InvariantCheckerConfig config_;
  const FaultInjector* injector_ = nullptr;
  std::vector<NodeId> topics_;
  std::vector<uint64_t> max_subscribers_;  // Parallel to topics_.
  std::vector<InvariantViolation> violations_;
  uint64_t checks_run_ = 0;
  bool running_ = false;
  bool audit_installed_ = false;
  EventHandle pending_;
};

}  // namespace totoro

#endif  // SRC_FAULTSIM_INVARIANT_CHECKER_H_
