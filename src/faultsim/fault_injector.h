// Executes FaultScripts against a live overlay, deterministically.
//
// The injector installs itself as the Network's fault hook (partitions and link
// perturbations act on messages in flight) and schedules each scripted event through
// the event queue (crashes, leaves, rejoins act on host state). All probabilistic
// decisions come from Rngs derived from the script seed — per (host, round) for
// attacks, per (src, dst, send-sequence) for link perturbations — so a scripted run
// replays bit-identically at any shard count: no draw ever depends on the global
// interleaving of messages, only on each sender's own canonical stream.
//
// The injector also exposes the ground truth the InvariantChecker needs: whether a
// partition is active (eventual invariants are only meaningful once reachability is
// restored) and when the last fault fired (convergence grace).
#ifndef SRC_FAULTSIM_FAULT_INJECTOR_H_
#define SRC_FAULTSIM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/faultsim/fault_script.h"
#include "src/pubsub/forest.h"

namespace totoro {

class FaultInjector {
 public:
  struct Stats {
    uint64_t partitions = 0;
    uint64_t heals = 0;
    uint64_t crashes = 0;
    uint64_t graceful_leaves = 0;
    uint64_t rejoins = 0;
    uint64_t partition_drops = 0;  // Messages cut by an active partition.
    uint64_t perturb_drops = 0;    // Messages dropped by a probabilistic rule.
    uint64_t duplicates = 0;       // Extra copies injected.
    uint64_t delay_spikes = 0;     // Messages given a delay spike.
    uint64_t attacks_begun = 0;    // Attack windows activated.
    uint64_t sybil_joins = 0;      // Forged memberships injected.
    uint64_t poisoned_updates = 0; // Honest updates rewritten by an attacker rule.
    uint64_t forged_updates = 0;   // Sybil updates fabricated from the reference.
  };

  // `forest` may be null when only DHT-level scenarios run (graceful leaves then skip
  // the Scribe detach and degrade to crashes). The injector owns the network fault
  // hook for its lifetime.
  FaultInjector(PastryNetwork* pastry, Forest* forest, uint64_t seed);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of `script` relative to the current virtual time. May be
  // called more than once (scripts compose on the same timeline).
  void Schedule(const FaultScript& script);

  // Applies one event immediately (tests drive single faults without a timeline).
  void ApplyNow(const FaultEvent& event);

  // Byzantine attacker roles. These are plugged into the engine's generic adversary
  // hooks by the test harness (TotoroEngine::SetUpdateInterceptor / SetSybilProvider);
  // the engine never depends on faultsim.
  //
  // Rewrites (`weights`, `sample_weight`) in place per every attack rule active for
  // `host` right now. `reference` is the round's broadcast weights. Returns true when
  // any rule applied. Noise draws come from an Rng derived from (seed, host, round),
  // so poisoning is independent of submission order and thread count.
  bool PoisonUpdate(uint64_t round, HostId host, std::span<const float> reference,
                    std::vector<float>& weights, double& sample_weight);
  // Fabricates a forged update for a sybil membership of `topic`: starts from the
  // reference and applies the sybil's AttackParams. Returns false when `host` is not a
  // registered sybil for `topic` (the caller then submits an empty piece).
  bool ForgeSybilUpdate(const NodeId& topic, uint64_t round, HostId host,
                        std::span<const float> reference, std::vector<float>& weights,
                        double& sample_weight);

  // True when no active partition separates hosts a and b.
  bool Reachable(HostId a, HostId b) const;
  bool PartitionActive() const { return !partitions_.empty(); }
  // Virtual time of the most recently applied fault event (0 before the first).
  SimTime last_fault_ms() const { return last_fault_ms_; }
  // By-value snapshot: the message-path counters live in atomics (the network fault
  // hook runs on the sending shard's worker thread under the sharded engine), so the
  // snapshot folds them into the plain struct at read time. Read it with all shards
  // parked (i.e. outside Run) for exact totals.
  Stats stats() const {
    Stats out = stats_;
    out.partition_drops = partition_drops_.load(std::memory_order_relaxed);
    out.perturb_drops = perturb_drops_.load(std::memory_order_relaxed);
    out.duplicates = duplicates_.load(std::memory_order_relaxed);
    out.delay_spikes = delay_spikes_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  struct ActivePartition {
    std::vector<uint8_t> in_a;  // Indexed by HostId.
    std::vector<uint8_t> in_b;
  };
  struct ActivePerturb {
    uint64_t id = 0;
    LinkPerturbation rule;
    std::vector<uint8_t> in_a;  // Prebuilt membership; empty => wildcard side.
    std::vector<uint8_t> in_b;
  };
  struct ActiveAttack {
    uint64_t id = 0;
    AttackParams params;
    std::vector<uint8_t> member;  // Indexed by HostId.
  };
  struct ActiveSybil {
    NodeId topic;
    HostId host = kInvalidHost;
    AttackParams params;
  };

  // Applies `params` to (weights, sample_weight) with noise from `rng`.
  void ApplyAttack(const AttackParams& params, std::span<const float> reference,
                   std::vector<float>& weights, double& sample_weight, Rng& rng);
  // Derived generator for one (host, round) poisoning decision.
  Rng AttackRng(HostId host, uint64_t round) const;
  // Derived generator for one message's perturbation draws, keyed by
  // (src, dst, src's send sequence). Bumps the sequence; call at most once per
  // message, from the sender's execution context.
  Rng PerturbRng(HostId src, HostId dst);

  bool OnMessage(const Message& msg, FaultAction* action);
  bool PerturbMatches(const ActivePerturb& p, const Message& msg) const;
  // Deterministic bootstrap choice for a rejoining host: lowest live host id != host.
  HostId BootstrapFor(HostId host) const;
  ScribeNode* ScribeForHost(HostId host) const;

  PastryNetwork* pastry_;
  Forest* forest_;  // Nullable.
  // Independent stream keys mixed from the script seed at construction; every
  // probabilistic decision derives a fresh Rng from one of these plus its own
  // identity, so no decision consumes another's draws.
  uint64_t attack_seed_ = 0;
  uint64_t perturb_seed_ = 0;
  // Per-sender message sequence for PerturbRng. A host's send stream is canonical
  // (the same at any shard count), so the counter is K-independent; the fault hook
  // runs in the SENDER's execution context, so each element is only ever touched by
  // the thread owning that host's shard. Sized by ApplyNow with workers parked.
  std::vector<uint64_t> send_seq_;
  std::vector<ActivePartition> partitions_;
  std::vector<ActivePerturb> perturbs_;
  std::vector<ActiveAttack> attacks_;
  std::vector<ActiveSybil> sybils_;
  // Control-path fields of Stats (partitions, crashes, ...) mutate only from scripted
  // events, which execute with every shard parked; the four message-path counters
  // mutate from OnMessage on worker threads and live in these relaxed atomics instead
  // (their Stats fields are ignored until stats() folds the atomics in).
  Stats stats_;
  std::atomic<uint64_t> partition_drops_{0};
  std::atomic<uint64_t> perturb_drops_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> delay_spikes_{0};
  SimTime last_fault_ms_ = 0.0;
};

}  // namespace totoro

#endif  // SRC_FAULTSIM_FAULT_INJECTOR_H_
