// Scenario-scripted fault timelines (the fault DSL).
//
// A FaultScript is a declarative timeline of typed faults built in code:
//
//   FaultScript script;
//   script.PartitionAt(1000.0, {0, 1, 2}, {3, 4, 5})
//         .HealAt(3000.0)
//         .CrashAt(4000.0, /*host=*/7)
//         .RejoinAt(6000.0, /*host=*/7)
//         .FlapLinkAt(2000.0, /*a=*/1, /*b=*/4, /*burst_ms=*/50, /*gap_ms=*/150, 5);
//
// The script itself is pure data; a FaultInjector executes it through the event queue,
// so a scripted run is bit-identical per seed like every other simulation in the repo.
// Times are relative to the moment the script is handed to FaultInjector::Schedule().
//
// Fault taxonomy (see DESIGN.md "Fault model & invariants"):
//  - Partition/Heal: group-based reachability cuts — every message crossing the cut is
//    dropped until healed. Models a backhaul or inter-site failure.
//  - Crash vs. graceful leave vs. rejoin-with-same-id: crash silences a host abruptly
//    (peers must detect it via keep-alives); graceful leave first detaches the host's
//    Scribe state (LEAVE messages) before taking it down; rejoin brings the same
//    NodeId back through the live join protocol.
//  - Link perturbations: probabilistic drop / duplicate / delay-spike per matched
//    message, scoped by endpoint sets and traffic class. Delay spikes are the
//    reordering lever — a spiked message arrives after later unspiked sends.
//  - Correlated flaps: FlapLinkAt expands to repeated short full-loss windows on one
//    link, the bursty pattern that breaks timeout tuning in practice.
#ifndef SRC_FAULTSIM_FAULT_SCRIPT_H_
#define SRC_FAULTSIM_FAULT_SCRIPT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/dht/node_id.h"
#include "src/sim/message.h"
#include "src/sim/simulator.h"

namespace totoro {

enum class FaultKind {
  kPartition,      // Cut reachability between group_a and group_b.
  kHeal,           // Remove all active partitions.
  kCrash,          // Abrupt host death (no goodbye).
  kGracefulLeave,  // Scribe-level detach, then host down.
  kRejoin,         // Same-id host comes back and re-joins via the protocol.
  kPerturbBegin,   // Activate a probabilistic link perturbation rule.
  kPerturbEnd,     // Deactivate it (matched by perturb_id).
  kAttackBegin,    // Activate a Byzantine update-poisoning rule on attacker hosts.
  kAttackEnd,      // Deactivate it (matched by perturb_id).
  kSybilJoin,      // Forged memberships: hosts subscribe to a topic they never train.
};

const char* FaultKindName(FaultKind kind);

// How an active attacker rewrites its freshly trained update. `ref` is the round's
// broadcast global weights, `w` the honest local result.
enum class AttackKind {
  kSignFlip,       // w := ref - scale * (w - ref): invert (and amplify) the delta.
  kGaussianNoise,  // w := w + N(0, stddev) per coordinate.
  kGradientScale,  // w := ref + scale * (w - ref): amplify the delta.
};

const char* AttackKindName(AttackKind kind);

// A Byzantine attacker rule. While active, every update submitted by a host in
// `attackers` is rewritten via `kind`; sybil joins forge an update from the reference
// alone (their "honest" w is the reference itself, so kGaussianNoise is the natural
// sybil payload). Noise draws derive from (injector seed, host, round), never from
// arrival order, so attacked runs stay bit-identical per seed at any thread count.
struct AttackParams {
  AttackKind kind = AttackKind::kSignFlip;
  std::vector<HostId> attackers;
  double scale = 1.0;          // kSignFlip / kGradientScale amplification.
  double noise_stddev = 0.0;   // kGaussianNoise sigma.
  // > 0: the attacker also lies about its sample weight (weight-inflation component);
  // 0 keeps the honest weight. Robust rules ignore claimed weights for this reason.
  double claimed_weight = 0.0;
};

// A probabilistic per-message rule applied while active. A message matches when its
// traffic class is selected by `class_mask` (0 = all classes) and its endpoints match:
// both endpoint sets non-empty => the message must cross between them (either
// direction); only `endpoints_a` non-empty => either endpoint is in the set; both empty
// => every message matches.
struct LinkPerturbation {
  uint32_t class_mask = 0;  // Bit i selects TrafficClass(i); 0 selects everything.
  std::vector<HostId> endpoints_a;
  std::vector<HostId> endpoints_b;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_spike_prob = 0.0;
  double delay_spike_ms = 0.0;
};

// One entry on the timeline. Which fields are meaningful depends on `kind`.
struct FaultEvent {
  SimTime at = 0.0;  // Relative to FaultInjector::Schedule().
  FaultKind kind = FaultKind::kPartition;
  std::vector<HostId> group_a;  // kPartition.
  std::vector<HostId> group_b;  // kPartition.
  HostId host = kInvalidHost;   // kCrash / kGracefulLeave / kRejoin.
  LinkPerturbation perturb;     // kPerturbBegin.
  // Matches kPerturbBegin with its kPerturbEnd and kAttackBegin with its kAttackEnd
  // (one id space for both rule families).
  uint64_t perturb_id = 0;
  AttackParams attack;          // kAttackBegin / kSybilJoin.
  NodeId topic;                 // kSybilJoin: the application tree being infiltrated.
};

class FaultScript {
 public:
  FaultScript& PartitionAt(SimTime at, std::vector<HostId> group_a,
                           std::vector<HostId> group_b);
  // Heals every partition active at `at` (partitions in this repo's fault model heal
  // together, modelling the shared backhaul coming back).
  FaultScript& HealAt(SimTime at);
  FaultScript& CrashAt(SimTime at, HostId host);
  FaultScript& GracefulLeaveAt(SimTime at, HostId host);
  FaultScript& RejoinAt(SimTime at, HostId host);
  // Activates `rule` at `at` for `duration_ms` virtual ms.
  FaultScript& PerturbLinksAt(SimTime at, double duration_ms, LinkPerturbation rule);
  // Correlated link flapping between hosts a and b: `bursts` windows of full loss, each
  // `burst_ms` long, separated by `gap_ms` of clean link.
  FaultScript& FlapLinkAt(SimTime at, HostId a, HostId b, double burst_ms, double gap_ms,
                          int bursts);

  // Byzantine attacker windows (each active for `duration_ms` virtual ms).
  // Sign-flip model poisoning: attackers submit ref - scale * (w - ref).
  FaultScript& SignFlipAt(SimTime at, double duration_ms, std::vector<HostId> attackers,
                          double scale = 1.0);
  // Additive gaussian-noise poisoning: attackers submit w + N(0, stddev).
  FaultScript& GaussianNoiseAt(SimTime at, double duration_ms,
                               std::vector<HostId> attackers, double stddev);
  // Gradient-scaling attack: attackers submit ref + scale * (w - ref).
  FaultScript& GradientScaleAt(SimTime at, double duration_ms,
                               std::vector<HostId> attackers, double scale);
  // Generic attacker window (full AttackParams control).
  FaultScript& AttackAt(SimTime at, double duration_ms, AttackParams params);
  // Sybil burst: `sybils` subscribe to `topic` without ever holding training data and,
  // from `at` on, submit forged updates built from the broadcast reference per `params`
  // (a sybil's "honest" update is the reference itself, so kGaussianNoise + optional
  // claimed_weight is the natural payload). Membership persists for the rest of the run.
  FaultScript& SybilJoinAt(SimTime at, const NodeId& topic, std::vector<HostId> sybils,
                           AttackParams params);

  // Events in insertion order. The injector schedules them through the event queue,
  // which fires equal-time events FIFO, so insertion order is execution order for ties.
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  // Timestamp of the last event (0 for an empty script).
  SimTime EndTime() const;

 private:
  std::vector<FaultEvent> events_;
  uint64_t next_perturb_id_ = 1;
};

// Knobs for random script generation (property tests). All generated faults recover:
// every crash/leave is rejoined and every partition healed before `duration_ms * 0.6`,
// leaving the tail of the run for convergence so invariant checks are meaningful.
struct RandomScriptOptions {
  int max_crashes = 2;          // Crash-or-leave events (each paired with a rejoin).
  int max_partitions = 1;       // Sequential partition/heal episodes.
  int max_perturbations = 2;    // Probabilistic link windows.
  double max_concurrent_down_fraction = 0.2;  // Cap on simultaneously dead hosts.
  double max_drop_prob = 0.25;
  double max_duplicate_prob = 0.2;
  double max_delay_spike_prob = 0.2;
  double max_delay_spike_ms = 400.0;
  // Hosts that must never be faulted (e.g. a bootstrap node a test relies on).
  std::vector<HostId> protected_hosts;
};

// Generates a bounded random fault script over hosts [0, num_hosts). Deterministic in
// `rng`; two generators seeded identically produce identical scripts.
FaultScript GenerateRandomFaultScript(Rng& rng, size_t num_hosts, double duration_ms,
                                      const RandomScriptOptions& opts = {});

// Trace-driven diurnal churn over the EUA topology: hosts are grouped into `regions`
// contiguous blocks (matching how the EUA dataset clusters edge servers by metro
// region) and each region's crash intensity follows a sinusoidal day/night curve with
// a region-specific phase offset — churn waves sweep across regions the way timezones
// sweep across a fleet. Discretized into `slot_ms` slots; within a slot the generator
// walks regions then hosts in index order, so RNG consumption (and thus the script) is
// a pure function of the seed.
struct DiurnalChurnOptions {
  double period_ms = 20000.0;    // One simulated "day".
  double slot_ms = 500.0;        // Intensity discretization step.
  size_t regions = 4;            // Contiguous host blocks with phase-shifted curves.
  double base_churn_prob = 0.002;  // Per-host per-slot crash probability at the trough.
  double peak_churn_prob = 0.05;   // ... and at the peak of the region's curve.
  double min_down_ms = 800.0;    // Outage duration range (uniform).
  double max_down_ms = 3000.0;
  double max_concurrent_down_fraction = 0.25;  // Cap on simultaneously dead hosts.
  std::vector<HostId> protected_hosts;
};

// Every crash is paired with a rejoin and all events land in [5%, 90%] of the run, so
// invariant checks (post-heal convergence) stay meaningful. Deterministic in `rng`.
FaultScript GenerateDiurnalChurnScript(Rng& rng, size_t num_hosts, double duration_ms,
                                       const DiurnalChurnOptions& opts = {});

}  // namespace totoro

#endif  // SRC_FAULTSIM_FAULT_SCRIPT_H_
