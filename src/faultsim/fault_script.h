// Scenario-scripted fault timelines (the fault DSL).
//
// A FaultScript is a declarative timeline of typed faults built in code:
//
//   FaultScript script;
//   script.PartitionAt(1000.0, {0, 1, 2}, {3, 4, 5})
//         .HealAt(3000.0)
//         .CrashAt(4000.0, /*host=*/7)
//         .RejoinAt(6000.0, /*host=*/7)
//         .FlapLinkAt(2000.0, /*a=*/1, /*b=*/4, /*burst_ms=*/50, /*gap_ms=*/150, 5);
//
// The script itself is pure data; a FaultInjector executes it through the event queue,
// so a scripted run is bit-identical per seed like every other simulation in the repo.
// Times are relative to the moment the script is handed to FaultInjector::Schedule().
//
// Fault taxonomy (see DESIGN.md "Fault model & invariants"):
//  - Partition/Heal: group-based reachability cuts — every message crossing the cut is
//    dropped until healed. Models a backhaul or inter-site failure.
//  - Crash vs. graceful leave vs. rejoin-with-same-id: crash silences a host abruptly
//    (peers must detect it via keep-alives); graceful leave first detaches the host's
//    Scribe state (LEAVE messages) before taking it down; rejoin brings the same
//    NodeId back through the live join protocol.
//  - Link perturbations: probabilistic drop / duplicate / delay-spike per matched
//    message, scoped by endpoint sets and traffic class. Delay spikes are the
//    reordering lever — a spiked message arrives after later unspiked sends.
//  - Correlated flaps: FlapLinkAt expands to repeated short full-loss windows on one
//    link, the bursty pattern that breaks timeout tuning in practice.
#ifndef SRC_FAULTSIM_FAULT_SCRIPT_H_
#define SRC_FAULTSIM_FAULT_SCRIPT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/message.h"
#include "src/sim/simulator.h"

namespace totoro {

enum class FaultKind {
  kPartition,      // Cut reachability between group_a and group_b.
  kHeal,           // Remove all active partitions.
  kCrash,          // Abrupt host death (no goodbye).
  kGracefulLeave,  // Scribe-level detach, then host down.
  kRejoin,         // Same-id host comes back and re-joins via the protocol.
  kPerturbBegin,   // Activate a probabilistic link perturbation rule.
  kPerturbEnd,     // Deactivate it (matched by perturb_id).
};

const char* FaultKindName(FaultKind kind);

// A probabilistic per-message rule applied while active. A message matches when its
// traffic class is selected by `class_mask` (0 = all classes) and its endpoints match:
// both endpoint sets non-empty => the message must cross between them (either
// direction); only `endpoints_a` non-empty => either endpoint is in the set; both empty
// => every message matches.
struct LinkPerturbation {
  uint32_t class_mask = 0;  // Bit i selects TrafficClass(i); 0 selects everything.
  std::vector<HostId> endpoints_a;
  std::vector<HostId> endpoints_b;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_spike_prob = 0.0;
  double delay_spike_ms = 0.0;
};

// One entry on the timeline. Which fields are meaningful depends on `kind`.
struct FaultEvent {
  SimTime at = 0.0;  // Relative to FaultInjector::Schedule().
  FaultKind kind = FaultKind::kPartition;
  std::vector<HostId> group_a;  // kPartition.
  std::vector<HostId> group_b;  // kPartition.
  HostId host = kInvalidHost;   // kCrash / kGracefulLeave / kRejoin.
  LinkPerturbation perturb;     // kPerturbBegin.
  uint64_t perturb_id = 0;      // Matches kPerturbBegin with its kPerturbEnd.
};

class FaultScript {
 public:
  FaultScript& PartitionAt(SimTime at, std::vector<HostId> group_a,
                           std::vector<HostId> group_b);
  // Heals every partition active at `at` (partitions in this repo's fault model heal
  // together, modelling the shared backhaul coming back).
  FaultScript& HealAt(SimTime at);
  FaultScript& CrashAt(SimTime at, HostId host);
  FaultScript& GracefulLeaveAt(SimTime at, HostId host);
  FaultScript& RejoinAt(SimTime at, HostId host);
  // Activates `rule` at `at` for `duration_ms` virtual ms.
  FaultScript& PerturbLinksAt(SimTime at, double duration_ms, LinkPerturbation rule);
  // Correlated link flapping between hosts a and b: `bursts` windows of full loss, each
  // `burst_ms` long, separated by `gap_ms` of clean link.
  FaultScript& FlapLinkAt(SimTime at, HostId a, HostId b, double burst_ms, double gap_ms,
                          int bursts);

  // Events in insertion order. The injector schedules them through the event queue,
  // which fires equal-time events FIFO, so insertion order is execution order for ties.
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  // Timestamp of the last event (0 for an empty script).
  SimTime EndTime() const;

 private:
  std::vector<FaultEvent> events_;
  uint64_t next_perturb_id_ = 1;
};

// Knobs for random script generation (property tests). All generated faults recover:
// every crash/leave is rejoined and every partition healed before `duration_ms * 0.6`,
// leaving the tail of the run for convergence so invariant checks are meaningful.
struct RandomScriptOptions {
  int max_crashes = 2;          // Crash-or-leave events (each paired with a rejoin).
  int max_partitions = 1;       // Sequential partition/heal episodes.
  int max_perturbations = 2;    // Probabilistic link windows.
  double max_concurrent_down_fraction = 0.2;  // Cap on simultaneously dead hosts.
  double max_drop_prob = 0.25;
  double max_duplicate_prob = 0.2;
  double max_delay_spike_prob = 0.2;
  double max_delay_spike_ms = 400.0;
  // Hosts that must never be faulted (e.g. a bootstrap node a test relies on).
  std::vector<HostId> protected_hosts;
};

// Generates a bounded random fault script over hosts [0, num_hosts). Deterministic in
// `rng`; two generators seeded identically produce identical scripts.
FaultScript GenerateRandomFaultScript(Rng& rng, size_t num_hosts, double duration_ms,
                                      const RandomScriptOptions& opts = {});

}  // namespace totoro

#endif  // SRC_FAULTSIM_FAULT_SCRIPT_H_
