#include "src/faultsim/invariant_checker.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

Counter& ChecksCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("faultsim.invariant.checks");
  return *c;
}

Counter& ViolationsCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("faultsim.invariant.violations");
  return *c;
}

}  // namespace

InvariantChecker::InvariantChecker(PastryNetwork* pastry, Forest* forest,
                                   InvariantCheckerConfig config)
    : pastry_(pastry), forest_(forest), config_(config) {
  CHECK(pastry_ != nullptr);
  CHECK(forest_ != nullptr);
}

InvariantChecker::~InvariantChecker() { Stop(); }

void InvariantChecker::WatchTopic(const NodeId& topic) {
  topics_.push_back(topic);
  max_subscribers_.push_back(0);
  if (!audit_installed_) {
    audit_installed_ = true;
    for (size_t i = 0; i < forest_->size(); ++i) {
      forest_->scribe(i).SetAggregateAudit(
          [this](const NodeId& t, uint64_t round, const AggregationPiece& total) {
            OnRootAggregate(t, round, total.count);
          });
    }
  }
}

void InvariantChecker::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = pastry_->network()->sim()->Schedule(config_.interval_ms, [this]() { Tick(); });
}

void InvariantChecker::Stop() {
  running_ = false;
  pending_.Cancel();
}

void InvariantChecker::Tick() {
  if (!running_) {
    return;
  }
  CheckNow();
  // Eventual invariants only apply once the run has been quiet long enough for repair
  // to finish: no active partition, and the last fault at least a grace period ago.
  const SimTime now = pastry_->network()->sim()->Now();
  const bool quiet = injector_ == nullptr ||
                     (!injector_->PartitionActive() &&
                      now - injector_->last_fault_ms() >= config_.convergence_grace_ms);
  if (quiet) {
    CheckConverged();
  }
  pending_ = pastry_->network()->sim()->Schedule(config_.interval_ms, [this]() { Tick(); });
}

void InvariantChecker::Violate(const char* invariant, std::string detail) {
  InvariantViolation v;
  v.at = pastry_->network()->sim()->Now();
  v.invariant = invariant;
  v.detail = std::move(detail);
  TLOG_WARN("invariant violation [%s] at t=%.1fms: %s", invariant, v.at, v.detail.c_str());
  ViolationsCounter().Increment();
  violations_.push_back(std::move(v));
}

void InvariantChecker::UpdateSubscriberHighWater() {
  for (size_t t = 0; t < topics_.size(); ++t) {
    uint64_t subs = 0;
    for (size_t i = 0; i < forest_->size(); ++i) {
      if (forest_->scribe(i).IsSubscriber(topics_[t])) {
        ++subs;
      }
    }
    max_subscribers_[t] = std::max(max_subscribers_[t], subs);
  }
}

void InvariantChecker::OnRootAggregate(const NodeId& topic, uint64_t round, uint64_t count) {
  for (size_t t = 0; t < topics_.size(); ++t) {
    if (topics_[t] != topic) {
      continue;
    }
    UpdateSubscriberHighWater();
    if (count > max_subscribers_[t]) {
      Violate("aggregation.no_double_count",
              "round " + std::to_string(round) + " counted " + std::to_string(count) +
                  " contributions but the topic peaked at " +
                  std::to_string(max_subscribers_[t]) + " subscribers");
    }
    return;
  }
}

void InvariantChecker::CheckNow() {
  ++checks_run_;
  ChecksCounter().Increment();
  UpdateSubscriberHighWater();
  if (config_.check_trees) {
    for (const NodeId& topic : topics_) {
      CheckSafetyTree(topic);
    }
  }
}

void InvariantChecker::CheckSafetyTree(const NodeId& topic) {
  // Self-loops are unconditionally illegal; longer transient cycles can form mid-repair
  // (a detached parent re-grafting through its own subtree) and are checked only at
  // convergence.
  for (size_t i = 0; i < forest_->size(); ++i) {
    const ScribeNode& scribe = forest_->scribe(i);
    if (scribe.ParentOf(topic) == scribe.host()) {
      Violate("tree.no_self_parent",
              "host " + std::to_string(scribe.host()) + " is its own parent");
    }
  }
}

void InvariantChecker::CheckConverged() {
  if (config_.check_trees) {
    for (const NodeId& topic : topics_) {
      CheckConvergedTree(topic);
    }
  }
  if (config_.check_leaf_sets && pastry_->config().enable_keepalive) {
    CheckLeafSets();
  }
}

void InvariantChecker::CheckConvergedTree(const NodeId& topic) {
  // Host -> scribe lookup for parent-pointer walks.
  std::vector<const ScribeNode*> by_host(pastry_->network()->num_hosts(), nullptr);
  for (size_t i = 0; i < forest_->size(); ++i) {
    const ScribeNode& s = forest_->scribe(i);
    if (s.host() < by_host.size()) {
      by_host[s.host()] = &s;
    }
  }

  // Acyclicity: every live in-tree node's parent chain must terminate within N hops.
  const size_t limit = forest_->size() + 1;
  for (size_t i = 0; i < forest_->size(); ++i) {
    const ScribeNode& start = forest_->scribe(i);
    if (!start.pastry().alive() || !start.InTree(topic)) {
      continue;
    }
    const ScribeNode* cur = &start;
    size_t steps = 0;
    while (cur != nullptr && !cur->IsRoot(topic) && steps <= limit) {
      const HostId parent = cur->ParentOf(topic);
      if (parent == kInvalidHost) {
        break;  // Detached (allowed to be mid-rejoin even at convergence gates).
      }
      cur = parent < by_host.size() ? by_host[parent] : nullptr;
      ++steps;
    }
    if (steps > limit) {
      Violate("tree.acyclic", "parent chain from host " + std::to_string(start.host()) +
                                  " does not terminate (cycle)");
      return;  // One report per check; the walk would re-trip for every cycle member.
    }
  }

  // Exactly one live root, and it is the key's rendezvous node.
  std::vector<HostId> roots;
  for (size_t i = 0; i < forest_->size(); ++i) {
    const ScribeNode& s = forest_->scribe(i);
    if (s.pastry().alive() && s.IsRoot(topic)) {
      roots.push_back(s.host());
    }
  }
  if (roots.size() != 1) {
    Violate("tree.single_root",
            std::to_string(roots.size()) + " live roots for the topic (want exactly 1)");
  }
  PastryNode* rendezvous = pastry_->ClosestLiveNode(topic);
  if (rendezvous != nullptr && roots.size() == 1 && roots[0] != rendezvous->host()) {
    Violate("tree.root_is_rendezvous",
            "root host " + std::to_string(roots[0]) + " but rendezvous host " +
                std::to_string(rendezvous->host()));
  }

  if (!forest_->IsFullyConnected(topic)) {
    Violate("tree.connected", "a live subscriber cannot reach a live root");
  }
}

void InvariantChecker::CheckLeafSets() {
  // Ground-truth ring: live nodes in id order.
  std::vector<const PastryNode*> live;
  for (size_t i = 0; i < pastry_->size(); ++i) {
    const PastryNode& n = pastry_->node(i);
    if (n.alive()) {
      live.push_back(&n);
    }
  }
  if (live.size() < 3) {
    return;  // No meaningful ring neighbors.
  }
  std::sort(live.begin(), live.end(),
            [](const PastryNode* a, const PastryNode* b) { return a->id() < b->id(); });
  for (size_t i = 0; i < live.size(); ++i) {
    const PastryNode& node = *live[i];
    const PastryNode& succ = *live[(i + 1) % live.size()];
    const PastryNode& pred = *live[(i + live.size() - 1) % live.size()];
    if (!node.leaf_set().Contains(succ.id())) {
      Violate("leafset.ring_neighbor",
              "host " + std::to_string(node.host()) + " misses ring successor host " +
                  std::to_string(succ.host()));
    }
    if (!node.leaf_set().Contains(pred.id())) {
      Violate("leafset.ring_neighbor",
              "host " + std::to_string(node.host()) + " misses ring predecessor host " +
                  std::to_string(pred.host()));
    }
  }
}

}  // namespace totoro
