#include "src/faultsim/fault_script.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kGracefulLeave:
      return "graceful_leave";
    case FaultKind::kRejoin:
      return "rejoin";
    case FaultKind::kPerturbBegin:
      return "perturb_begin";
    case FaultKind::kPerturbEnd:
      return "perturb_end";
    case FaultKind::kAttackBegin:
      return "attack_begin";
    case FaultKind::kAttackEnd:
      return "attack_end";
    case FaultKind::kSybilJoin:
      return "sybil_join";
  }
  return "unknown";
}

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kSignFlip:
      return "sign_flip";
    case AttackKind::kGaussianNoise:
      return "gaussian_noise";
    case AttackKind::kGradientScale:
      return "gradient_scale";
  }
  return "unknown";
}

FaultScript& FaultScript::PartitionAt(SimTime at, std::vector<HostId> group_a,
                                      std::vector<HostId> group_b) {
  CHECK(!group_a.empty());
  CHECK(!group_b.empty());
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kPartition;
  ev.group_a = std::move(group_a);
  ev.group_b = std::move(group_b);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::HealAt(SimTime at) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kHeal;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::CrashAt(SimTime at, HostId host) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCrash;
  ev.host = host;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::GracefulLeaveAt(SimTime at, HostId host) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kGracefulLeave;
  ev.host = host;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::RejoinAt(SimTime at, HostId host) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kRejoin;
  ev.host = host;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::PerturbLinksAt(SimTime at, double duration_ms,
                                         LinkPerturbation rule) {
  CHECK_GT(duration_ms, 0.0);
  const uint64_t id = next_perturb_id_++;
  FaultEvent begin;
  begin.at = at;
  begin.kind = FaultKind::kPerturbBegin;
  begin.perturb = std::move(rule);
  begin.perturb_id = id;
  events_.push_back(std::move(begin));
  FaultEvent end;
  end.at = at + duration_ms;
  end.kind = FaultKind::kPerturbEnd;
  end.perturb_id = id;
  events_.push_back(std::move(end));
  return *this;
}

FaultScript& FaultScript::FlapLinkAt(SimTime at, HostId a, HostId b, double burst_ms,
                                     double gap_ms, int bursts) {
  CHECK_GT(burst_ms, 0.0);
  CHECK_GE(gap_ms, 0.0);
  LinkPerturbation rule;
  rule.endpoints_a = {a};
  rule.endpoints_b = {b};
  rule.drop_prob = 1.0;
  SimTime t = at;
  for (int i = 0; i < bursts; ++i) {
    PerturbLinksAt(t, burst_ms, rule);
    t += burst_ms + gap_ms;
  }
  return *this;
}

FaultScript& FaultScript::AttackAt(SimTime at, double duration_ms, AttackParams params) {
  CHECK_GT(duration_ms, 0.0);
  CHECK(!params.attackers.empty());
  const uint64_t id = next_perturb_id_++;
  FaultEvent begin;
  begin.at = at;
  begin.kind = FaultKind::kAttackBegin;
  begin.attack = std::move(params);
  begin.perturb_id = id;
  events_.push_back(std::move(begin));
  FaultEvent end;
  end.at = at + duration_ms;
  end.kind = FaultKind::kAttackEnd;
  end.perturb_id = id;
  events_.push_back(std::move(end));
  return *this;
}

FaultScript& FaultScript::SignFlipAt(SimTime at, double duration_ms,
                                     std::vector<HostId> attackers, double scale) {
  AttackParams params;
  params.kind = AttackKind::kSignFlip;
  params.attackers = std::move(attackers);
  params.scale = scale;
  return AttackAt(at, duration_ms, std::move(params));
}

FaultScript& FaultScript::GaussianNoiseAt(SimTime at, double duration_ms,
                                          std::vector<HostId> attackers, double stddev) {
  CHECK_GT(stddev, 0.0);
  AttackParams params;
  params.kind = AttackKind::kGaussianNoise;
  params.attackers = std::move(attackers);
  params.noise_stddev = stddev;
  return AttackAt(at, duration_ms, std::move(params));
}

FaultScript& FaultScript::GradientScaleAt(SimTime at, double duration_ms,
                                          std::vector<HostId> attackers, double scale) {
  AttackParams params;
  params.kind = AttackKind::kGradientScale;
  params.attackers = std::move(attackers);
  params.scale = scale;
  return AttackAt(at, duration_ms, std::move(params));
}

FaultScript& FaultScript::SybilJoinAt(SimTime at, const NodeId& topic,
                                      std::vector<HostId> sybils, AttackParams params) {
  CHECK(!sybils.empty());
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kSybilJoin;
  ev.topic = topic;
  ev.attack = std::move(params);
  ev.attack.attackers = std::move(sybils);
  events_.push_back(std::move(ev));
  return *this;
}

SimTime FaultScript::EndTime() const {
  SimTime end = 0.0;
  for (const auto& ev : events_) {
    end = std::max(end, ev.at);
  }
  return end;
}

FaultScript GenerateRandomFaultScript(Rng& rng, size_t num_hosts, double duration_ms,
                                      const RandomScriptOptions& opts) {
  CHECK_GT(num_hosts, 2u);
  CHECK_GT(duration_ms, 0.0);
  FaultScript script;
  // All injected faults live in [5%, 60%] of the run; the rest is convergence tail.
  const double fault_lo = duration_ms * 0.05;
  const double fault_hi = duration_ms * 0.6;

  auto is_protected = [&](HostId h) {
    return std::find(opts.protected_hosts.begin(), opts.protected_hosts.end(), h) !=
           opts.protected_hosts.end();
  };

  // Crash / graceful-leave episodes, each paired with a rejoin. Victims are distinct so
  // the concurrent-down cap is simply the victim count.
  const size_t down_cap = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_hosts) *
                             opts.max_concurrent_down_fraction));
  const int num_crashes = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(
          std::min<size_t>(static_cast<size_t>(opts.max_crashes), down_cap)) +
          1));
  std::vector<HostId> victims;
  for (int i = 0; i < num_crashes; ++i) {
    HostId victim = kInvalidHost;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const HostId candidate = static_cast<HostId>(rng.NextBelow(num_hosts));
      if (is_protected(candidate) ||
          std::find(victims.begin(), victims.end(), candidate) != victims.end()) {
        continue;
      }
      victim = candidate;
      break;
    }
    if (victim == kInvalidHost) {
      break;
    }
    victims.push_back(victim);
    const double down_at = rng.Uniform(fault_lo, fault_hi * 0.7);
    const double up_at = down_at + rng.Uniform(duration_ms * 0.05, duration_ms * 0.2);
    if (rng.Bernoulli(0.5)) {
      script.CrashAt(down_at, victim);
    } else {
      script.GracefulLeaveAt(down_at, victim);
    }
    script.RejoinAt(std::min(up_at, fault_hi), victim);
  }

  // Sequential partition/heal episodes over a random split of the ring.
  const int num_partitions =
      static_cast<int>(rng.NextBelow(static_cast<uint64_t>(opts.max_partitions) + 1));
  double cursor = fault_lo;
  for (int i = 0; i < num_partitions && cursor < fault_hi * 0.8; ++i) {
    std::vector<HostId> a;
    std::vector<HostId> b;
    for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
      (rng.Bernoulli(0.3) ? a : b).push_back(h);
    }
    if (a.empty() || b.empty()) {
      continue;  // Degenerate split; skip the episode.
    }
    const double start = rng.Uniform(cursor, fault_hi * 0.8);
    const double length = rng.Uniform(duration_ms * 0.05, duration_ms * 0.15);
    script.PartitionAt(start, std::move(a), std::move(b));
    script.HealAt(std::min(start + length, fault_hi));
    cursor = start + length + duration_ms * 0.02;
  }

  // Probabilistic perturbation windows: lossy/duplicating/spiking links.
  const int num_perturbs =
      static_cast<int>(rng.NextBelow(static_cast<uint64_t>(opts.max_perturbations) + 1));
  for (int i = 0; i < num_perturbs; ++i) {
    LinkPerturbation rule;
    // Half the windows target a random host subset, half hit the whole network.
    if (rng.Bernoulli(0.5)) {
      const size_t subset = 1 + rng.NextBelow(std::max<uint64_t>(1, num_hosts / 4));
      for (size_t k = 0; k < subset; ++k) {
        rule.endpoints_a.push_back(static_cast<HostId>(rng.NextBelow(num_hosts)));
      }
    }
    rule.drop_prob = rng.Uniform(0.0, opts.max_drop_prob);
    rule.duplicate_prob = rng.Uniform(0.0, opts.max_duplicate_prob);
    rule.delay_spike_prob = rng.Uniform(0.0, opts.max_delay_spike_prob);
    rule.delay_spike_ms = rng.Uniform(10.0, opts.max_delay_spike_ms);
    const double start = rng.Uniform(fault_lo, fault_hi * 0.8);
    const double length = rng.Uniform(duration_ms * 0.03, duration_ms * 0.15);
    script.PerturbLinksAt(start, std::min(length, fault_hi - start + 1.0),
                          std::move(rule));
  }
  return script;
}

FaultScript GenerateDiurnalChurnScript(Rng& rng, size_t num_hosts, double duration_ms,
                                       const DiurnalChurnOptions& opts) {
  CHECK_GT(num_hosts, 2u);
  CHECK_GT(duration_ms, 0.0);
  CHECK_GT(opts.slot_ms, 0.0);
  CHECK_GT(opts.period_ms, 0.0);
  CHECK_GE(opts.regions, 1u);
  CHECK_GE(opts.peak_churn_prob, opts.base_churn_prob);
  CHECK_GE(opts.max_down_ms, opts.min_down_ms);
  FaultScript script;
  const double churn_lo = duration_ms * 0.05;
  const double churn_hi = duration_ms * 0.9;
  const size_t regions = std::min(opts.regions, num_hosts);
  const size_t down_cap = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_hosts) *
                             opts.max_concurrent_down_fraction));

  auto is_protected = [&](HostId h) {
    return std::find(opts.protected_hosts.begin(), opts.protected_hosts.end(), h) !=
           opts.protected_hosts.end();
  };
  // EUA-style metro regions are contiguous id blocks (the topology assigns ids per
  // region); region r covers hosts [r * num_hosts / regions, (r+1) * num_hosts / regions).
  auto region_of = [&](HostId h) {
    return static_cast<size_t>(h) * regions / num_hosts;
  };

  // Virtual time (ms) each host stays down until; 0 = up. Slot-major, host-minor walk
  // keeps RNG consumption a pure function of the seed.
  std::vector<double> down_until(num_hosts, 0.0);
  size_t down_now = 0;
  constexpr double kTwoPi = 6.283185307179586;
  for (double t = churn_lo; t < churn_hi; t += opts.slot_ms) {
    for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
      if (down_until[h] > 0.0 && down_until[h] <= t) {
        down_until[h] = 0.0;
        down_now -= 1;
      }
      if (down_until[h] > 0.0 || is_protected(h) || down_now >= down_cap) {
        continue;
      }
      // Sinusoidal intensity with a per-region phase offset: region r peaks
      // (r / regions) of a period after region 0.
      const double phase =
          kTwoPi * (t / opts.period_ms -
                    static_cast<double>(region_of(h)) / static_cast<double>(regions));
      const double wave = 0.5 * (1.0 + std::sin(phase));
      const double p =
          opts.base_churn_prob + (opts.peak_churn_prob - opts.base_churn_prob) * wave;
      if (!rng.Bernoulli(p)) {
        continue;
      }
      const double down_for = rng.Uniform(opts.min_down_ms, opts.max_down_ms);
      const double up_at = std::min(t + down_for, churn_hi);
      script.CrashAt(t, h);
      script.RejoinAt(up_at, h);
      down_until[h] = up_at;
      down_now += 1;
    }
  }
  return script;
}

}  // namespace totoro
