#include "src/faultsim/fault_injector.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

Counter& FaultsAppliedCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("faultsim.faults.applied");
  return *c;
}

Counter& PartitionDropCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("faultsim.msgs.partition_dropped");
  return *c;
}

Counter& PoisonedUpdateCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("faultsim.attack.updates_poisoned");
  return *c;
}

Counter& ForgedUpdateCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("faultsim.attack.updates_forged");
  return *c;
}

Counter& SybilJoinCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("faultsim.attack.sybils_joined");
  return *c;
}

// SplitMix64 finalizer; mixes (seed, host, round) into one independent stream key.
uint64_t MixSeed(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Builds an indexed membership vector from a host list.
std::vector<uint8_t> BuildMembership(const std::vector<HostId>& hosts, size_t num_hosts) {
  std::vector<uint8_t> member(num_hosts, 0);
  for (HostId h : hosts) {
    if (h < num_hosts) {
      member[h] = 1;
    }
  }
  return member;
}

}  // namespace

FaultInjector::FaultInjector(PastryNetwork* pastry, Forest* forest, uint64_t seed)
    : pastry_(pastry),
      forest_(forest),
      attack_seed_(MixSeed(seed)),
      perturb_seed_(MixSeed(seed ^ 0xA5A5A5A5A5A5A5A5ull)) {
  CHECK(pastry_ != nullptr);
  send_seq_.resize(pastry_->network()->num_hosts(), 0);
  pastry_->network()->SetFaultFn(
      [this](const Message& msg, FaultAction* action) { return OnMessage(msg, action); });
}

FaultInjector::~FaultInjector() { pastry_->network()->SetFaultFn({}); }

void FaultInjector::Schedule(const FaultScript& script) {
  Simulator* sim = pastry_->network()->sim();
  const SimTime base = sim->Now();
  for (const FaultEvent& ev : script.events()) {
    sim->ScheduleAt(base + ev.at, [this, ev]() { ApplyNow(ev); });
  }
}

ScribeNode* FaultInjector::ScribeForHost(HostId host) const {
  if (forest_ == nullptr) {
    return nullptr;
  }
  for (size_t i = 0; i < forest_->size(); ++i) {
    if (forest_->scribe(i).host() == host) {
      return &forest_->scribe(i);
    }
  }
  return nullptr;
}

HostId FaultInjector::BootstrapFor(HostId host) const {
  const Network& net = *pastry_->network();
  for (HostId h = 0; h < static_cast<HostId>(net.num_hosts()); ++h) {
    if (h != host && net.IsUp(h)) {
      return h;
    }
  }
  return kInvalidHost;
}

void FaultInjector::ApplyNow(const FaultEvent& ev) {
  Network* net = pastry_->network();
  // Scripted events run with every shard parked, so growing the per-sender sequence
  // table here (hosts added since construction) cannot race the message path.
  if (send_seq_.size() < net->num_hosts()) {
    send_seq_.resize(net->num_hosts(), 0);
  }
  last_fault_ms_ = net->sim()->Now();
  FaultsAppliedCounter().Increment();
  TLOG_DEBUG("faultsim: applying %s at t=%.1fms", FaultKindName(ev.kind), last_fault_ms_);
  switch (ev.kind) {
    case FaultKind::kPartition: {
      ActivePartition p;
      p.in_a = BuildMembership(ev.group_a, net->num_hosts());
      p.in_b = BuildMembership(ev.group_b, net->num_hosts());
      partitions_.push_back(std::move(p));
      stats_.partitions += 1;
      return;
    }
    case FaultKind::kHeal: {
      partitions_.clear();
      stats_.heals += 1;
      return;
    }
    case FaultKind::kCrash: {
      if (ev.host < net->num_hosts()) {
        net->SetHostUp(ev.host, false);
        stats_.crashes += 1;
      }
      return;
    }
    case FaultKind::kGracefulLeave: {
      if (ev.host >= net->num_hosts()) {
        return;
      }
      // Detach the host's Scribe state first (sends LEAVEs for cleanly detachable
      // topics); state where the host is still a forwarder stays and its children
      // recover through parent-heartbeat timeout, same as a crash.
      if (ScribeNode* scribe = ScribeForHost(ev.host); scribe != nullptr) {
        for (const NodeId& topic : scribe->Topics()) {
          scribe->Unsubscribe(topic);
        }
      }
      net->SetHostUp(ev.host, false);
      stats_.graceful_leaves += 1;
      return;
    }
    case FaultKind::kRejoin: {
      if (ev.host >= net->num_hosts() || net->IsUp(ev.host)) {
        return;
      }
      net->SetHostUp(ev.host, true);
      PastryNode* node = pastry_->FindByHost(ev.host);
      CHECK(node != nullptr);
      const HostId bootstrap = BootstrapFor(ev.host);
      if (bootstrap != kInvalidHost) {
        node->Join(bootstrap);
      }
      // Periodic drivers noticed the death and stopped; restart them (no-ops when the
      // corresponding feature is disabled in config).
      node->StartKeepAlive();
      if (ScribeNode* scribe = ScribeForHost(ev.host); scribe != nullptr) {
        scribe->StartMaintenance();
      }
      stats_.rejoins += 1;
      return;
    }
    case FaultKind::kPerturbBegin: {
      ActivePerturb p;
      p.id = ev.perturb_id;
      p.rule = ev.perturb;
      p.in_a = BuildMembership(ev.perturb.endpoints_a, net->num_hosts());
      p.in_b = BuildMembership(ev.perturb.endpoints_b, net->num_hosts());
      perturbs_.push_back(std::move(p));
      return;
    }
    case FaultKind::kPerturbEnd: {
      perturbs_.erase(std::remove_if(perturbs_.begin(), perturbs_.end(),
                                     [&](const ActivePerturb& p) { return p.id == ev.perturb_id; }),
                      perturbs_.end());
      return;
    }
    case FaultKind::kAttackBegin: {
      ActiveAttack a;
      a.id = ev.perturb_id;
      a.params = ev.attack;
      a.member = BuildMembership(ev.attack.attackers, net->num_hosts());
      attacks_.push_back(std::move(a));
      stats_.attacks_begun += 1;
      return;
    }
    case FaultKind::kAttackEnd: {
      attacks_.erase(std::remove_if(attacks_.begin(), attacks_.end(),
                                    [&](const ActiveAttack& a) { return a.id == ev.perturb_id; }),
                     attacks_.end());
      return;
    }
    case FaultKind::kSybilJoin: {
      for (HostId h : ev.attack.attackers) {
        if (h >= net->num_hosts() || !net->IsUp(h)) {
          continue;
        }
        ScribeNode* scribe = ScribeForHost(h);
        if (scribe == nullptr || scribe->IsSubscriber(ev.topic)) {
          continue;
        }
        // The forged membership goes through the real JOIN protocol — the tree grafts
        // the sybil exactly like an honest worker would be.
        scribe->Subscribe(ev.topic);
        ActiveSybil s;
        s.topic = ev.topic;
        s.host = h;
        s.params = ev.attack;
        sybils_.push_back(std::move(s));
        stats_.sybil_joins += 1;
        SybilJoinCounter().Increment();
      }
      return;
    }
  }
}

Rng FaultInjector::AttackRng(HostId host, uint64_t round) const {
  return Rng(attack_seed_ ^ MixSeed(static_cast<uint64_t>(host) * 0x632BE59BD9B4E019ull ^
                                    round * 0xFF51AFD7ED558CCDull));
}

Rng FaultInjector::PerturbRng(HostId src, HostId dst) {
  // The sequence makes repeated sends over the same link draw independently; it is a
  // pure function of src's canonical send stream, so the derived stream — unlike a
  // shared Rng consumed in global message order — is identical at any shard count.
  const uint64_t seq = src < send_seq_.size() ? send_seq_[src]++ : 0;
  return Rng(perturb_seed_ ^
             MixSeed(static_cast<uint64_t>(src) * 0x632BE59BD9B4E019ull ^
                     static_cast<uint64_t>(dst) * 0x9E3779B97F4A7C15ull ^
                     seq * 0xFF51AFD7ED558CCDull));
}

void FaultInjector::ApplyAttack(const AttackParams& params,
                                std::span<const float> reference,
                                std::vector<float>& weights, double& sample_weight,
                                Rng& rng) {
  CHECK_EQ(weights.size(), reference.size());
  switch (params.kind) {
    case AttackKind::kSignFlip:
      for (size_t i = 0; i < weights.size(); ++i) {
        const double delta =
            static_cast<double>(weights[i]) - static_cast<double>(reference[i]);
        weights[i] =
            static_cast<float>(static_cast<double>(reference[i]) - params.scale * delta);
      }
      break;
    case AttackKind::kGaussianNoise:
      for (size_t i = 0; i < weights.size(); ++i) {
        weights[i] = static_cast<float>(static_cast<double>(weights[i]) +
                                        rng.Gaussian(0.0, params.noise_stddev));
      }
      break;
    case AttackKind::kGradientScale:
      for (size_t i = 0; i < weights.size(); ++i) {
        const double delta =
            static_cast<double>(weights[i]) - static_cast<double>(reference[i]);
        weights[i] =
            static_cast<float>(static_cast<double>(reference[i]) + params.scale * delta);
      }
      break;
  }
  if (params.claimed_weight > 0.0) {
    sample_weight = params.claimed_weight;
  }
}

bool FaultInjector::PoisonUpdate(uint64_t round, HostId host,
                                 std::span<const float> reference,
                                 std::vector<float>& weights, double& sample_weight) {
  bool poisoned = false;
  for (const ActiveAttack& a : attacks_) {
    if (host >= a.member.size() || !a.member[host]) {
      continue;
    }
    Rng derived = AttackRng(host, round);
    ApplyAttack(a.params, reference, weights, sample_weight, derived);
    poisoned = true;
  }
  if (poisoned) {
    stats_.poisoned_updates += 1;
    PoisonedUpdateCounter().Increment();
  }
  return poisoned;
}

bool FaultInjector::ForgeSybilUpdate(const NodeId& topic, uint64_t round, HostId host,
                                     std::span<const float> reference,
                                     std::vector<float>& weights,
                                     double& sample_weight) {
  for (const ActiveSybil& s : sybils_) {
    if (s.host != host || !(s.topic == topic)) {
      continue;
    }
    // A sybil's "honest" update is the reference itself; the attack params shape the
    // forged payload from there.
    weights.assign(reference.begin(), reference.end());
    sample_weight = 1.0;
    Rng derived = AttackRng(host, round);
    ApplyAttack(s.params, reference, weights, sample_weight, derived);
    stats_.forged_updates += 1;
    ForgedUpdateCounter().Increment();
    return true;
  }
  return false;
}

bool FaultInjector::Reachable(HostId a, HostId b) const {
  for (const ActivePartition& p : partitions_) {
    const bool cross = (a < p.in_a.size() && b < p.in_b.size() && p.in_a[a] && p.in_b[b]) ||
                       (b < p.in_a.size() && a < p.in_b.size() && p.in_a[b] && p.in_b[a]);
    if (cross) {
      return false;
    }
  }
  return true;
}

bool FaultInjector::PerturbMatches(const ActivePerturb& p, const Message& msg) const {
  if (p.rule.class_mask != 0 &&
      (p.rule.class_mask & (1u << static_cast<uint32_t>(msg.traffic))) == 0) {
    return false;
  }
  const bool has_a = !p.rule.endpoints_a.empty();
  const bool has_b = !p.rule.endpoints_b.empty();
  if (has_a && has_b) {
    // Directional pair rule: the message must cross between the two sets.
    return (msg.src < p.in_a.size() && msg.dst < p.in_b.size() && p.in_a[msg.src] &&
            p.in_b[msg.dst]) ||
           (msg.dst < p.in_a.size() && msg.src < p.in_b.size() && p.in_a[msg.dst] &&
            p.in_b[msg.src]);
  }
  if (has_a) {
    return (msg.src < p.in_a.size() && p.in_a[msg.src]) ||
           (msg.dst < p.in_a.size() && p.in_a[msg.dst]);
  }
  return true;  // Wildcard rule.
}

bool FaultInjector::OnMessage(const Message& msg, FaultAction* action) {
  if (!Reachable(msg.src, msg.dst)) {
    action->drop = true;
    partition_drops_.fetch_add(1, std::memory_order_relaxed);
    PartitionDropCounter().Increment();
    return true;
  }
  bool affected = false;
  // One derived Rng per perturbable message, created on first rule match. Rules draw
  // from it in perturbs_ order (mutated only by parked scripted events), so the whole
  // decision sequence is a function of (seed, src, dst, seq) — never of how messages
  // from different senders happened to interleave.
  Rng msg_rng(0);
  bool have_rng = false;
  for (const ActivePerturb& p : perturbs_) {
    if (!PerturbMatches(p, msg)) {
      continue;
    }
    if (!have_rng) {
      have_rng = true;
      msg_rng = PerturbRng(msg.src, msg.dst);
    }
    if (p.rule.drop_prob > 0.0 && msg_rng.Bernoulli(p.rule.drop_prob)) {
      action->drop = true;
      perturb_drops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (p.rule.duplicate_prob > 0.0 && msg_rng.Bernoulli(p.rule.duplicate_prob)) {
      action->extra_copies += 1;
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      affected = true;
    }
    if (p.rule.delay_spike_prob > 0.0 && msg_rng.Bernoulli(p.rule.delay_spike_prob)) {
      action->extra_delay_ms += p.rule.delay_spike_ms;
      delay_spikes_.fetch_add(1, std::memory_order_relaxed);
      affected = true;
    }
  }
  return affected;
}

}  // namespace totoro
