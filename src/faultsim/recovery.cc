#include "src/faultsim/recovery.h"

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/obs/metrics_registry.h"

namespace totoro {

double MeasureRecovery(Forest* forest, const NodeId& topic,
                       const RecoveryProbeConfig& config) {
  CHECK(forest != nullptr);
  Simulator* sim = forest->pastry().network()->sim();
  const SimTime start = sim->Now();

  // Deliveries are tracked per probe round, and a probe succeeds as soon as its full
  // expected set has received it — even if that happens several intervals after the
  // publish. Requiring same-interval delivery would permanently fail deep trees whose
  // root-to-leaf forwarding latency exceeds one probe interval.
  struct ProbeState {
    std::map<uint64_t, std::unordered_set<HostId>> got;
  };
  auto state = std::make_shared<ProbeState>();
  for (size_t i = 0; i < forest->size(); ++i) {
    ScribeNode& scribe = forest->scribe(i);
    const HostId host = scribe.host();
    scribe.SetOnBroadcast([state, host](const NodeId&, uint64_t round,
                                        const ScribeBroadcast&) {
      state->got[round].insert(host);
    });
  }

  // The recipients each probe must reach: subscribers live at its publish time.
  std::map<uint64_t, std::vector<HostId>> expected;
  double result = -1.0;
  for (uint64_t attempt = 0; sim->Now() - start <= config.timeout_ms; ++attempt) {
    const size_t root = forest->RootOf(topic);
    if (root != SIZE_MAX) {
      const uint64_t round = config.round_base + attempt;
      auto& recipients = expected[round];
      for (size_t i = 0; i < forest->size(); ++i) {
        const ScribeNode& s = forest->scribe(i);
        if (s.pastry().alive() && s.IsSubscriber(topic)) {
          recipients.push_back(s.host());
        }
      }
      forest->scribe(root).Broadcast(topic, round, nullptr, /*size_bytes=*/64);
    }
    sim->RunFor(config.probe_interval_ms);
    for (const auto& [round, recipients] : expected) {
      if (recipients.empty()) {
        continue;
      }
      const auto got_it = state->got.find(round);
      if (got_it == state->got.end()) {
        continue;
      }
      bool all = true;
      for (HostId h : recipients) {
        if (got_it->second.find(h) == got_it->second.end()) {
          all = false;
          break;
        }
      }
      if (all) {
        result = sim->Now() - start;
        break;
      }
    }
    if (result >= 0.0) {
      break;
    }
  }
  GlobalMetrics().GetGauge("faultsim.recovery.post_heal_ms").Set(result);
  return result;
}

}  // namespace totoro
