// FL application descriptor and per-application results.
#ifndef SRC_CORE_APP_H_
#define SRC_CORE_APP_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dht/node_id.h"
#include "src/fl/client.h"
#include "src/fl/robust.h"
#include "src/ml/model.h"

namespace totoro {

using ModelFactory = std::function<std::unique_ptr<Model>(uint64_t seed)>;

// Everything an application owner specifies when launching an FL application: the model,
// training hyper-parameters, stopping rule, and per-application FL policies (privacy,
// compression) — Totoro's application-specific customization (§4.4).
// Asynchronous communication protocol (the "asynchronous" option of §2.2.1): workers
// route updates straight to the master, which folds each one in with
// w <- (1 - alpha) * w + alpha * w_update and re-broadcasts a fresh model after every
// `rebroadcast_every` updates (FedAsync-style with buffered re-broadcast).
struct AsyncConfig {
  float mix_alpha = 0.3f;
  size_t rebroadcast_every = 4;
  // Staleness-aware semi-async merging (FedBuff / Totoro+ style): an update trained
  // against a model `s` re-broadcasts old mixes with
  //   alpha_eff = mix_alpha / (1 + s)^staleness_exponent
  // 0 (default) disables the discount and reproduces plain FedAsync mixing.
  double staleness_exponent = 0.0;
};

enum class SelectionPolicy { kAll, kRandom, kOortLike };

struct FlAppConfig {
  std::string name;
  std::string creator_key = "creator-pk";
  std::string salt = "salt-0";
  ModelFactory model_factory;
  TrainConfig train;
  double target_accuracy = 2.0;  // > 1 disables early stop (run max_rounds).
  size_t max_rounds = 20;
  std::optional<DpConfig> dp;
  std::optional<CompressionConfig> compression;
  // Participant selection (§4.3: "Application owner can specify her client selection
  // function"): how many subscribers train per round, and how they are picked. 0 = all.
  size_t participants_per_round = 0;
  SelectionPolicy selection = SelectionPolicy::kAll;
  // When set, the application runs the asynchronous protocol instead of synchronous
  // tree-aggregated rounds. max_rounds then caps the number of model re-broadcasts.
  std::optional<AsyncConfig> async;
  // Secure aggregation (pairwise additive masking, src/fl/secure_agg.h): interior tree
  // nodes only ever see masked sums; the root unmasks and finalizes, applying dropout
  // correction when a straggler deadline cut part of the cohort. Synchronous protocol
  // only; requires >= 2 workers (and participants_per_round != 1 when selecting).
  bool secure_aggregation = false;
  // Byzantine-robust aggregation (src/fl/robust.h). When rule != kNone the tree
  // *collects* individual updates (MakeCollectCombiner) and the root applies the robust
  // reduction once over the full list; non-finite updates are dropped before reduction.
  // Synchronous protocol only; mutually exclusive with secure_aggregation (a masked
  // update has no meaningful per-contributor norm or coordinate order statistics).
  RobustConfig robust;
};

struct AccuracyPoint {
  double time_ms = 0.0;
  uint64_t round = 0;
  double accuracy = 0.0;
};

struct AppResult {
  std::string name;
  NodeId topic;
  bool reached_target = false;
  double time_to_target_ms = 0.0;  // Virtual ms from launch to hitting target accuracy.
  double total_time_ms = 0.0;      // Virtual ms from launch to completion.
  uint64_t rounds_completed = 0;
  double final_accuracy = 0.0;
  std::vector<AccuracyPoint> curve;
};

// Heterogeneity mapping of §7.5: a physical node with 2^k cores hosts k logical P2P
// nodes (2 cores -> 1, 4 -> 2, 8 -> 3), so resource-rich devices absorb more overlay
// load.
int VirtualNodeCount(int cpu_cores);

}  // namespace totoro

#endif  // SRC_CORE_APP_H_
