#include "src/core/totoro_api.h"

#include "src/common/check.h"

namespace totoro {

Totoro::Totoro(Options options) : options_(options), rng_(options.seed) {
  sim_ = std::make_unique<Simulator>();
  network_ = std::make_unique<Network>(
      sim_.get(),
      std::make_unique<PairwiseUniformLatency>(options_.latency_lo_ms, options_.latency_hi_ms,
                                               options_.seed ^ 0x1A7E),
      options_.network);
  MultiRingConfig ring_config;
  ring_config.pastry = options_.pastry;
  rings_ = std::make_unique<MultiRing>(network_.get(), ring_config);
}

Totoro::~Totoro() = default;

Totoro::NodeHandle Totoro::Join(ZoneId site) {
  CHECK(!overlay_built_);
  return rings_->AddNodeInZone(site, rng_);
}

void Totoro::BuildOverlay() {
  CHECK(!overlay_built_);
  rings_->Build(rng_);
  forest_ = std::make_unique<Forest>(&rings_->pastry(), options_.scribe);
  overlay_built_ = true;
  for (size_t i = 0; i < forest_->size(); ++i) {
    ScribeNode& scribe = forest_->scribe(i);
    scribe.SetOnBroadcast([this, i](const NodeId& app_id, uint64_t round,
                                    const ScribeBroadcast& bc) {
      if (on_broadcast_) {
        on_broadcast_(i, app_id, round, bc.data);
      }
    });
    scribe.SetOnRootAggregate(
        [this](const NodeId& app_id, uint64_t round, const AggregationPiece& total) {
          if (on_aggregate_) {
            on_aggregate_(app_id, round, total.data, total.weight);
          }
        });
  }
}

NodeId Totoro::CreateTree(const std::string& app_name) {
  CHECK(overlay_built_);
  return forest_->CreateTopic(app_name);
}

void Totoro::Subscribe(NodeHandle node, const NodeId& app_id) {
  CHECK(overlay_built_);
  CHECK_LT(node, forest_->size());
  forest_->scribe(node).Subscribe(app_id);
}

void Totoro::Broadcast(const NodeId& app_id, uint64_t round, ObjectPtr object,
                       uint64_t bytes) {
  CHECK(overlay_built_);
  const size_t root = forest_->RootOf(app_id);
  CHECK_NE(root, SIZE_MAX);
  forest_->scribe(root).Broadcast(app_id, round, std::move(object), bytes);
}

void Totoro::Aggregate(NodeHandle node, const NodeId& app_id, uint64_t round,
                       ObjectPtr object, double weight, uint64_t bytes) {
  CHECK(overlay_built_);
  CHECK_LT(node, forest_->size());
  AggregationPiece piece;
  piece.data = std::move(object);
  piece.weight = weight;
  piece.count = 1;
  forest_->scribe(node).SubmitUpdate(app_id, round, std::move(piece), bytes);
}

void Totoro::SetCombiner(CombineFn combiner) {
  CHECK(overlay_built_);
  for (size_t i = 0; i < forest_->size(); ++i) {
    forest_->scribe(i).SetCombineFn(combiner);
  }
}

void Totoro::SetOnBroadcast(OnBroadcastFn fn) { on_broadcast_ = std::move(fn); }

void Totoro::SetOnAggregate(OnAggregateFn fn) { on_aggregate_ = std::move(fn); }

void Totoro::SetOnTimer(const NodeId& app_id, double period_ms, OnTimerFn fn) {
  CHECK_GT(period_ms, 0.0);
  // Periodic progress callback; reschedules itself for the lifetime of the run.
  auto tick = std::make_shared<std::function<void()>>();
  auto fn_shared = std::make_shared<OnTimerFn>(std::move(fn));
  *tick = [this, app_id, period_ms, tick, fn_shared]() {
    (*fn_shared)(app_id);
    sim_->Schedule(period_ms, *tick);
  };
  sim_->Schedule(period_ms, *tick);
}

size_t Totoro::NumNodes() const { return rings_->pastry().size(); }

Totoro::NodeHandle Totoro::MasterOf(const NodeId& app_id) const {
  CHECK(overlay_built_);
  return forest_->RootOf(app_id);
}

Simulator& Totoro::sim() { return *sim_; }
Network& Totoro::network() { return *network_; }
Forest& Totoro::forest() {
  CHECK(overlay_built_);
  return *forest_;
}
MultiRing& Totoro::rings() { return *rings_; }

}  // namespace totoro
