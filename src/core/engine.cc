#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/ml/kernels.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace totoro {
namespace {

// Opcode for asynchronous-protocol updates routed straight to the master (range 200+).
constexpr int kFlAsyncUpdate = 200;
// Checkpoint replication from the master to its leaf-set neighbors.
constexpr int kFlCheckpoint = 201;

// Per-round secure-aggregation group seeds derive from one app seed.
constexpr uint64_t kSecureRoundSeedMix = 0x9E3779B97F4A7C15ull;

// Payload of an async update: the worker's freshly trained weights plus the round of
// the broadcast it trained against (the master derives staleness from it).
struct AsyncUpdatePayload {
  NodeId topic;
  uint64_t round = 0;
  std::vector<float> weights;
  double sample_weight = 1.0;
};

}  // namespace

int VirtualNodeCount(int cpu_cores) {
  CHECK_GE(cpu_cores, 1);
  int count = 0;
  while (cpu_cores > 1) {
    cpu_cores >>= 1;
    ++count;
  }
  return count < 1 ? 1 : count;
}

TotoroEngine::TotoroEngine(Forest* forest, ComputeModel compute, uint64_t seed)
    : forest_(forest), compute_(compute), rng_(seed),
      pool_(std::make_unique<ComputePool>(ComputePool::ThreadsFromEnv())) {
  MetricsRegistry& metrics = GlobalMetrics();
  series_.deadline_expired = &metrics.GetCounter("engine.round.deadline_expired");
  series_.train_tasks = &metrics.GetCounter("engine.compute.train_tasks");
  series_.defense_collected = &metrics.GetCounter("engine.defense.updates_collected");
  series_.defense_rejected = &metrics.GetCounter("engine.defense.updates_rejected");
  series_.defense_clipped = &metrics.GetCounter("engine.defense.updates_clipped");
  series_.defense_rounds = &metrics.GetCounter("engine.defense.rounds_defended");
  series_.secure_corrections = &metrics.GetCounter("engine.secure.dropout_corrections");
  series_.secure_dropped = &metrics.GetCounter("engine.secure.dropped_clients");
  series_.async_staleness =
      &metrics.GetHistogram("engine.async.staleness_rounds", Histogram::HopCountBounds());
  series_.round_duration =
      &metrics.GetHistogram("engine.round.duration_ms", Histogram::DefaultLatencyBoundsMs());
  speed_factors_.assign(forest_->size(), 1.0);
  bandwidth_factors_.assign(forest_->size(), 1.0);
  // One set of callbacks per scribe node; dispatch on topic inside the engine.
  for (size_t i = 0; i < forest_->size(); ++i) {
    ScribeNode& scribe = forest_->scribe(i);
    scribe.SetCombineFn(MakeFedAvgCombiner());
    scribe.SetOnBroadcast([this, i](const NodeId& topic, uint64_t round,
                                    const ScribeBroadcast& bc) {
      OnBroadcast(i, topic, round, bc);
    });
    scribe.SetOnRootAggregate(
        [this](const NodeId& topic, uint64_t round, const AggregationPiece& total) {
          OnRootAggregate(topic, round, total);
        });
    scribe.pastry().SetDeliverHandler(
        kFlAsyncUpdate,
        [this](const NodeId& key, const Message& msg, int) { OnAsyncUpdate(key, msg); });
    // Replicas only need to hold the checkpoint bytes; the engine harness models the
    // stored state, so receipt is a no-op beyond the traffic/state cost.
    scribe.pastry().SetDeliverHandler(kFlCheckpoint,
                                      [](const NodeId&, const Message&, int) {});
  }
}

void TotoroEngine::SetSpeedFactors(std::vector<double> factors) {
  CHECK_EQ(factors.size(), forest_->size());
  speed_factors_ = std::move(factors);
}

void TotoroEngine::SetBandwidthFactors(std::vector<double> factors) {
  CHECK_EQ(factors.size(), forest_->size());
  bandwidth_factors_ = std::move(factors);
}

void TotoroEngine::SetComputeThreads(size_t threads) {
  // Joining outstanding tickets first keeps every trainer's happens-before chain
  // intact across the swap; the old pool's destructor then has nothing in flight.
  for (auto& [topic, app] : apps_) {
    (void)topic;
    for (auto& [node, slot] : app->trainers) {
      (void)node;
      if (slot.pending.valid()) {
        slot.pending.Wait();
      }
    }
  }
  pool_ = std::make_unique<ComputePool>(threads);
}

void TotoroEngine::EnableFailover(FailoverConfig config) {
  CHECK_GT(config.watchdog_interval_ms, 0.0);
  CHECK_GT(config.stall_timeout_ms, config.watchdog_interval_ms);
  failover_config_ = config;
  if (!failover_enabled_) {
    failover_enabled_ = true;
    forest_->pastry().network()->sim()->Schedule(failover_config_.watchdog_interval_ms,
                                                 [this]() { WatchdogTick(); });
  }
}

void TotoroEngine::ReplicateCheckpoint(AppRuntime& app) {
  // The master pushes (weights, round) to its nearest leaf-set neighbors so any of them
  // can seed a successor master.
  PastryNode& master = forest_->scribe(app.master_index).pastry();
  const auto replicas = master.leaf_set().All();
  const uint64_t bytes = app.global_weights.size() * sizeof(float) + 64;
  int sent = 0;
  for (const auto& replica : replicas) {
    if (sent >= failover_config_.checkpoint_replicas) {
      break;
    }
    Message m;
    m.type = kFlCheckpoint;
    m.size_bytes = bytes;
    m.traffic = TrafficClass::kModel;
    m.transport = Transport::kTcp;
    master.SendDirect(replica.host, std::move(m));
    ++sent;
  }
}

void TotoroEngine::WatchdogTick() {
  const double now = forest_->pastry().network()->sim()->Now();
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started || app->done) {
      continue;
    }
    if (now - app->last_progress_ms < failover_config_.stall_timeout_ms) {
      continue;
    }
    // Stalled. Either the master died (tree re-elects a new rendezvous root) or a whole
    // round's traffic was lost; both are cured by resuming from the checkpoint at the
    // current root.
    const size_t root = forest_->RootOf(app->topic);
    if (root == SIZE_MAX) {
      continue;  // Tree still re-electing; try again next tick.
    }
    if (root != app->master_index) {
      TLOG_INFO("failover: app %s master moves %zu -> %zu at t=%.0fms",
                app->config.name.c_str(), app->master_index, root, now);
      app->master_index = root;
      app->failovers += 1;
    }
    app->last_progress_ms = now;
    StartRound(*app);
  }
  forest_->pastry().network()->sim()->Schedule(failover_config_.watchdog_interval_ms,
                                               [this]() { WatchdogTick(); });
}

NodeId TotoroEngine::LaunchApp(const FlAppConfig& config, const std::vector<size_t>& workers,
                               std::vector<Dataset> shards, Dataset test_set) {
  CHECK(config.model_factory != nullptr);
  CHECK_EQ(workers.size(), shards.size());
  CHECK(!workers.empty());
  const NodeId topic = MakeAppId(config.name, config.creator_key, config.salt);
  CHECK(apps_.find(topic) == apps_.end());

  forest_->SubscribeAll(topic, workers, subscribe_settle_ms_);
  const size_t master = forest_->RootOf(topic);
  CHECK_NE(master, SIZE_MAX);

  auto app = std::make_unique<AppRuntime>();
  app->config = config;
  app->topic = topic;
  app->master_index = master;
  app->global_model = config.model_factory(rng_.Next());
  app->global_weights = app->global_model->GetWeights();
  app->test_set = std::move(test_set);
  app->result.name = config.name;
  app->result.topic = topic;
  for (size_t w = 0; w < workers.size(); ++w) {
    const size_t node = workers[w];
    CHECK(shards[w].size() > 0);
    app->trainers[node].trainer = std::make_unique<LocalTrainer>(
        config.model_factory(rng_.Next()), std::move(shards[w]), speed_factors_[node],
        rng_.Next());
  }
  if (config.secure_aggregation) {
    // Pairwise masking needs a cohort of at least two, and interior nodes must SUM
    // masked vectors instead of averaging them — install the per-topic combiner on
    // every node that could end up inside this application's tree.
    CHECK(!config.async.has_value());
    CHECK_GE(workers.size(), 2u);
    CHECK_NE(config.participants_per_round, 1u);
    app->secure_seed = rng_.Next();
    for (size_t i = 0; i < forest_->size(); ++i) {
      forest_->scribe(i).SetCombineFnForTopic(topic, MakeSecureSumCombiner());
    }
  }
  if (config.robust.rule != RobustAggregation::kNone) {
    // Robust rules are not associative, so the tree cannot fold hop by hop: every node
    // that could end up inside this application's tree collects individual updates
    // instead (id-sorted, so the root's list is arrival-order independent) and the root
    // applies the reduction once in OnRootAggregate.
    CHECK(!config.async.has_value());
    CHECK(!config.secure_aggregation);
    for (size_t i = 0; i < forest_->size(); ++i) {
      forest_->scribe(i).SetCombineFnForTopic(topic, MakeCollectCombiner());
    }
  }
  switch (config.selection) {
    case SelectionPolicy::kAll:
      break;
    case SelectionPolicy::kRandom:
      app->selector = std::make_unique<RandomSelector>();
      break;
    case SelectionPolicy::kOortLike:
      app->selector = std::make_unique<OortLikeSelector>();
      break;
  }
  apps_[topic] = std::move(app);
  return topic;
}

void TotoroEngine::StartAll() {
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started) {
      app->started = true;
      app->launch_time_ms = forest_->pastry().network()->sim()->Now();
      StartRound(*app);
    }
  }
}

void TotoroEngine::StartRound(AppRuntime& app) {
  app.round += 1;
  app.last_progress_ms = forest_->pastry().network()->sim()->Now();
  // The round span stays open across many virtual ms; allocate its context now so the
  // broadcast (and everything downstream of it) parents to the round, and emit the
  // record when the round closes.
  app.round_start_ms = app.last_progress_ms;
  app.round_trace = GlobalTracer().AllocateContext();
  ScopedTraceContext round_scope(app.round_trace);
  auto payload = std::make_shared<RoundPayload>();
  payload->weights = app.global_weights;
  {
    ProfileScope profile_plan("plan");
    // Participant selection: the application's selection function picks this round's
    // cohort from the subscribed workers.
    if (app.selector != nullptr && app.config.participants_per_round > 0 &&
        app.config.participants_per_round < app.trainers.size()) {
      std::vector<ClientInfo> clients;
      clients.reserve(app.trainers.size());
      for (auto& [node, slot] : app.trainers) {
        // Selection reads post-train state (last_loss); join any still-offloaded task
        // first so the read matches the sequential schedule, where a straggler's Train
        // had already run synchronously at broadcast delivery.
        if (slot.pending.valid()) {
          slot.pending.Wait();
        }
        ClientInfo info;
        info.index = node;
        // Optimistic initialization: untrained clients look maximally useful.
        info.last_loss = slot.trainer->last_loss() > 0.0f ? slot.trainer->last_loss() : 1e6;
        info.speed_factor = slot.trainer->speed_factor();
        info.bandwidth_factor = bandwidth_factors_[node];
        clients.push_back(info);
      }
      auto selected = std::make_shared<std::vector<size_t>>(
          app.selector->Select(clients, app.config.participants_per_round, rng_));
      std::sort(selected->begin(), selected->end());
      payload->selected = std::move(selected);
    }
    if (app.config.secure_aggregation) {
      // This round's mask group covers exactly the broadcast cohort; every cut-off
      // straggler later shows up as a missing contributor and is repaired by
      // DropoutCorrection at the root.
      std::vector<uint64_t> cohort;
      if (payload->selected != nullptr) {
        cohort.assign(payload->selected->begin(), payload->selected->end());
      } else {
        cohort.reserve(app.trainers.size());
        for (const auto& [node, slot] : app.trainers) {
          (void)slot;
          cohort.push_back(node);
        }
        std::sort(cohort.begin(), cohort.end());
      }
      app.secure_groups[app.round] = std::make_shared<const SecureAggregationGroup>(
          std::move(cohort), app.secure_seed ^ (app.round * kSecureRoundSeedMix));
      // Bound memory: groups older than a few rounds are only reachable through the
      // shared_ptrs that in-flight training tasks captured.
      while (!app.secure_groups.empty() &&
             app.secure_groups.begin()->first + 8 < app.round) {
        app.secure_groups.erase(app.secure_groups.begin());
      }
    }
  }
  const uint64_t bytes = app.global_weights.size() * sizeof(float);
  {
    ProfileScope profile_disseminate("disseminate");
    forest_->scribe(app.master_index)
        .Broadcast(app.topic, app.round, std::move(payload), bytes);
  }

  if (round_deadline_ms_ > 0.0) {
    app.round_deadline.Cancel();
    const NodeId topic = app.topic;
    const uint64_t round = app.round;
    app.round_deadline = forest_->pastry().network()->sim()->Schedule(
        round_deadline_ms_, [this, topic, round]() {
          auto it = apps_.find(topic);
          if (it == apps_.end() || it->second->done || it->second->round != round) {
            return;  // The round closed normally (or the app finished).
          }
          series_.deadline_expired->Increment();
          TLOG_INFO("app %s round %llu hit the straggler deadline; closing partial",
                    it->second->config.name.c_str(), static_cast<unsigned long long>(round));
          // Partial-aggregation fallback: whatever aggregate reached the master already
          // updated global_weights via OnRootAggregate-less paths (none if the tree
          // stalled); close the round with the current weights and move on.
          EvaluateAndAdvance(*it->second, round);
        });
  }
}

void TotoroEngine::OnBroadcast(size_t node_index, const NodeId& topic, uint64_t round,
                               const ScribeBroadcast& bc) {
  auto it = apps_.find(topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  CHECK(bc.data != nullptr);
  const auto* payload = static_cast<const RoundPayload*>(bc.data.get());
  Network* net = forest_->pastry().network();
  auto trainer_it = app.trainers.find(node_index);
  if (trainer_it == app.trainers.end()) {
    // A subscriber with no trainer is a forged membership — a sybil join injected by
    // the fault layer (legitimate workers always have a trainer slot). For synchronous
    // apps its slot in the tree barrier must close either way: submit the forged
    // update if the sybil provider supplies one, an empty piece otherwise.
    if (app.config.async.has_value()) {
      return;
    }
    AggregationPiece piece;
    piece.data = nullptr;
    piece.weight = 0.0;
    piece.count = 0;
    uint64_t piece_bytes = 16;
    if (!app.config.secure_aggregation && sybil_provider_ != nullptr) {
      std::vector<float> forged;
      double forged_weight = 1.0;
      if (sybil_provider_(topic, round, node_index, payload->weights, forged,
                          forged_weight)) {
        CHECK_EQ(forged.size(), payload->weights.size());
        piece_bytes = forged.size() * sizeof(float);
        if (app.config.robust.rule != RobustAggregation::kNone) {
          auto list = std::make_shared<UpdateListPayload>();
          list->ids = {static_cast<uint64_t>(node_index)};
          list->updates = {WeightedUpdate{std::move(forged), forged_weight}};
          piece.data = std::move(list);
        } else {
          auto forged_payload = std::make_shared<WeightsPayload>();
          forged_payload->weights = std::move(forged);
          piece.data = std::move(forged_payload);
        }
        piece.weight = forged_weight;
        piece.count = 1;
      }
    }
    forest_->scribe(node_index).SubmitUpdate(topic, round, std::move(piece), piece_bytes);
    return;
  }

  const bool selected =
      payload->selected == nullptr ||
      std::binary_search(payload->selected->begin(), payload->selected->end(), node_index);
  if (!selected) {
    if (!app.config.async.has_value()) {
      // Synchronous rounds still need this subscriber's slot in the tree aggregation to
      // close; contribute an empty (zero-weight) piece immediately.
      AggregationPiece empty;
      empty.data = nullptr;
      empty.weight = 0.0;
      empty.count = 0;
      forest_->scribe(node_index).SubmitUpdate(topic, round, std::move(empty), 16);
    }
    return;
  }

  // Covers the training dispatch (selection already passed): joining the previous
  // offload, work accounting, and submitting the compute task.
  ProfileScope profile_train("train");
  TrainerSlot& slot = trainer_it->second;
  // The sequential schedule ran the previous Train to completion before this broadcast
  // was delivered; join any still-offloaded task before reusing the trainer (its model
  // and RNG state must advance in the same order for any thread count).
  if (slot.pending.valid()) {
    slot.pending.Wait();
  }
  LocalTrainer* trainer = slot.trainer.get();

  // Everything the event schedule depends on — the completion stamp, work accounting,
  // the training span — is computed here from inputs available BEFORE training runs,
  // so offloading Train cannot perturb event order, traces or metrics.
  const size_t params = trainer->model().NumParams();
  const size_t examples = app.config.train.batch_size * app.config.train.local_steps;
  const double compute_ms =
      compute_.TrainTimeMs(params, examples, trainer->speed_factor());
  net->metrics().ChargeWork(forest_->scribe(node_index).host(), WorkKind::kFlTask,
                            static_cast<double>(params) * static_cast<double>(examples));

  // Local training covers [now, now + compute_ms] of virtual time on this worker; the
  // context is re-entered in the completion callback so the submitted update (and its
  // up-tree hops) parents to the training span.
  Tracer& tracer = GlobalTracer();
  TraceContext train_ctx;
  if (tracer.enabled()) {
    const double train_start = net->sim()->Now();
    train_ctx = tracer.RecordComplete(
        "engine.local_train", "engine", forest_->scribe(node_index).host(), train_start,
        train_start + compute_ms, tracer.current(),
        {{"round", std::to_string(round)}, {"compute_ms", std::to_string(compute_ms)}});
  }

  // Offload the actual CPU work. The task touches only this trainer's private state
  // (model, shard, RNG) plus immutable inputs — never the thread-local tracer/metrics
  // registries — and secure masking rides along so the per-client O(cohort * dim) PRG
  // work also leaves the simulator thread.
  series_.train_tasks->Increment();
  std::shared_ptr<const SecureAggregationGroup> group;
  if (app.config.secure_aggregation) {
    auto group_it = app.secure_groups.find(round);
    CHECK(group_it != app.secure_groups.end());
    group = group_it->second;
  }
  const FlAppConfig* config = &app.config;
  const ComputeModel compute = compute_;
  std::shared_ptr<const void> broadcast_data = bc.data;  // Keeps RoundPayload alive.
  ComputePool::Ticket ticket =
      pool_->Submit([trainer, config, compute, group, node_index, broadcast_data]() {
        const auto* round_payload = static_cast<const RoundPayload*>(broadcast_data.get());
        LocalUpdate update = trainer->Train(round_payload->weights, config->train, compute,
                                            config->dp, config->compression);
        if (group != nullptr) {
          update.weights = group->MaskUpdate(static_cast<uint64_t>(node_index),
                                             update.weights, update.sample_weight);
        }
        return update;
      });
  slot.pending = ticket;

  if (app.config.async.has_value()) {
    // Asynchronous protocol: route the update straight to the master; no tree barrier.
    net->sim()->ScheduleRejoin(
        compute_ms,
        [this, node_index, topic, round, train_ctx, ticket, broadcast_data]() mutable {
          LocalUpdate update = ticket.Take();
          ScopedTraceContext scope(train_ctx);
          if (update_interceptor_ != nullptr) {
            const auto* round_payload =
                static_cast<const RoundPayload*>(broadcast_data.get());
            update_interceptor_(topic, round, node_index, round_payload->weights,
                                update.weights, update.sample_weight);
          }
          AsyncUpdatePayload async_payload;
          async_payload.topic = topic;
          async_payload.round = round;
          async_payload.weights = std::move(update.weights);
          async_payload.sample_weight = update.sample_weight;
          Message m;
          m.type = kFlAsyncUpdate;
          m.size_bytes = update.wire_bytes;
          m.traffic = TrafficClass::kGradient;
          m.transport = Transport::kTcp;
          m.SetPayload(std::move(async_payload));
          forest_->scribe(node_index).pastry().Route(topic, std::move(m));
        });
    return;
  }

  const bool secure = group != nullptr;
  const bool robust = app.config.robust.rule != RobustAggregation::kNone;
  net->sim()->ScheduleRejoin(
      compute_ms, [this, node_index, topic, round, train_ctx, ticket, secure, robust,
                   broadcast_data]() mutable {
        LocalUpdate update = ticket.Take();
        ScopedTraceContext scope(train_ctx);
        if (!secure && update_interceptor_ != nullptr) {
          // Poisoning happens here — on the simulator thread, after the honest train
          // and before the payload is built — so attacks perturb neither the compute
          // schedule nor (for secure apps, where this is skipped) mask cancellation.
          const auto* round_payload =
              static_cast<const RoundPayload*>(broadcast_data.get());
          update_interceptor_(topic, round, node_index, round_payload->weights,
                              update.weights, update.sample_weight);
        }
        AggregationPiece piece;
        if (robust) {
          auto list = std::make_shared<UpdateListPayload>();
          list->ids = {static_cast<uint64_t>(node_index)};
          list->updates =
              {WeightedUpdate{std::move(update.weights), update.sample_weight}};
          piece.data = std::move(list);
        } else {
          auto piece_payload = std::make_shared<WeightsPayload>();
          piece_payload->weights = std::move(update.weights);
          if (secure) {
            piece_payload->contributors = {static_cast<uint64_t>(node_index)};
          }
          piece.data = std::move(piece_payload);
        }
        piece.weight = update.sample_weight;
        piece.count = 1;
        forest_->scribe(node_index).SubmitUpdate(topic, round, std::move(piece),
                                                 update.wire_bytes);
      });
}

void TotoroEngine::OnRootAggregate(const NodeId& topic, uint64_t round,
                                   const AggregationPiece& total) {
  auto it = apps_.find(topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  if (round != app.round || app.config.async.has_value()) {
    return;  // Stale aggregate from a straggler cut-off of an earlier round.
  }
  ProfileScope profile_aggregate("aggregate");
  if (total.data != nullptr && app.config.robust.rule != RobustAggregation::kNone) {
    // Robust path: the tree delivered the concatenated per-contributor updates
    // (id-sorted, arrival-order independent); apply the defense once, here.
    const auto* list = static_cast<const UpdateListPayload*>(total.data.get());
    CHECK_EQ(list->ids.size(), list->updates.size());
    std::vector<WeightedUpdate> clean;
    clean.reserve(list->updates.size());
    uint64_t rejected = 0;
    for (const WeightedUpdate& u : list->updates) {
      if (AllFinite(u.weights) && std::isfinite(u.sample_weight) &&
          u.sample_weight > 0.0) {
        clean.push_back(u);
      } else {
        ++rejected;
      }
    }
    series_.defense_collected->Increment(list->updates.size());
    series_.defense_rejected->Increment(rejected);
    series_.defense_rounds->Increment();
    if (!clean.empty()) {
      switch (app.config.robust.rule) {
        case RobustAggregation::kNone:
          break;  // Unreachable; the branch condition excludes it.
        case RobustAggregation::kCoordinateMedian:
          app.global_weights = CoordinateMedian(clean);
          break;
        case RobustAggregation::kTrimmedMean:
          app.global_weights = TrimmedMean(clean, app.config.robust.trim_fraction);
          break;
        case RobustAggregation::kNormClip: {
          size_t clipped = 0;
          app.global_weights = NormClippedMean(clean, app.global_weights,
                                               app.config.robust.clip_norm, &clipped);
          series_.defense_clipped->Increment(clipped);
          break;
        }
      }
    }
    EvaluateAndAdvance(app, round);
    return;
  }
  if (total.data != nullptr) {
    const auto* merged = static_cast<const WeightsPayload*>(total.data.get());
    if (app.config.secure_aggregation) {
      auto group_it = app.secure_groups.find(round);
      CHECK(group_it != app.secure_groups.end());
      const SecureAggregationGroup& group = *group_it->second;
      std::vector<float> sum = merged->weights;
      const std::vector<uint64_t>& survivors = merged->contributors;
      if (survivors.size() < group.size()) {
        // A straggler deadline or aggregation timeout cut part of the cohort, so the
        // survivors' masks toward the dropped participants did not cancel. Run the
        // mask-recovery round: subtract their net contribution before unmasking.
        const std::vector<double> correction = group.DropoutCorrection(survivors, sum.size());
        for (size_t i = 0; i < sum.size(); ++i) {
          sum[i] = static_cast<float>(static_cast<double>(sum[i]) - correction[i]);
        }
        series_.secure_corrections->Increment();
        series_.secure_dropped->Increment(group.size() - survivors.size());
      }
      app.global_weights = FinalizeSecureAverage(sum, total.weight);
    } else {
      app.global_weights = merged->weights;
    }
  }
  // A null total (every contribution timed out or no worker was selected) keeps the
  // previous global weights; the round still closes.
  EvaluateAndAdvance(app, round);
}

void TotoroEngine::OnAsyncUpdate(const NodeId& key, const Message& msg) {
  const auto& payload = msg.As<AsyncUpdatePayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done || !it->second->config.async.has_value()) {
    return;
  }
  (void)key;
  AppRuntime& app = *it->second;
  const AsyncConfig& async = *app.config.async;
  CHECK_EQ(payload.weights.size(), app.global_weights.size());
  // Staleness = re-broadcasts since the model this update trained against. An update
  // from the current round is fresh (0); older ones get the FedBuff/Totoro+-style
  // discount 1/(1+s)^exponent on the mixing rate.
  const uint64_t staleness = payload.round <= app.round ? app.round - payload.round : 0;
  series_.async_staleness->Observe(static_cast<double>(staleness));
  double mix = async.mix_alpha;
  if (async.staleness_exponent > 0.0 && staleness > 0) {
    mix /= std::pow(1.0 + static_cast<double>(staleness), async.staleness_exponent);
  }
  // FedAsync mixing: w <- (1 - alpha) w + alpha w_update.
  const float alpha = static_cast<float>(mix);
  KLerp(app.global_weights.data(), payload.weights.data(), alpha,
        app.global_weights.size());
  app.async_updates_received += 1;
  forest_->pastry().network()->metrics().ChargeWork(
      forest_->scribe(app.master_index).host(), WorkKind::kFlTask,
      static_cast<double>(app.global_weights.size()));
  if (app.async_updates_received % async.rebroadcast_every == 0) {
    EvaluateAndAdvance(app, app.round);
  }
}

void TotoroEngine::EvaluateAndAdvance(AppRuntime& app, uint64_t round) {
  app.round_deadline.Cancel();
  {
    // Scope closes before the next round's plan/disseminate phases open.
    ProfileScope profile_evaluate("evaluate");
    app.global_model->SetWeights(app.global_weights);
    Network* net = forest_->pastry().network();
    // Evaluation is FL-side master work.
    net->metrics().ChargeWork(forest_->scribe(app.master_index).host(), WorkKind::kFlTask,
                              static_cast<double>(app.global_model->NumParams()) *
                                  static_cast<double>(app.test_set.size()));
    const double accuracy = app.global_model->Accuracy(app.test_set);
    const double now = net->sim()->Now();
    app.last_progress_ms = now;
    if (app.round_trace.valid()) {
      GlobalTracer().EmitSpan(app.round_trace, /*parent_span_id=*/0, "engine.round", "engine",
                              forest_->scribe(app.master_index).host(), app.round_start_ms,
                              now,
                              {{"app", app.config.name},
                               {"round", std::to_string(round)},
                               {"accuracy", std::to_string(accuracy)}});
      app.round_trace = TraceContext{};
    }
    series_.round_duration->Observe(now - app.round_start_ms);
    if (failover_enabled_) {
      ReplicateCheckpoint(app);
    }
    app.result.curve.push_back(AccuracyPoint{now - app.launch_time_ms, round, accuracy});
    app.result.rounds_completed = round;
    app.result.final_accuracy = accuracy;
    TLOG_INFO("app %s round %llu accuracy %.4f at t=%.1fms", app.config.name.c_str(),
              static_cast<unsigned long long>(round), accuracy, now);

    if (!app.result.reached_target && accuracy >= app.config.target_accuracy) {
      app.result.reached_target = true;
      app.result.time_to_target_ms = now - app.launch_time_ms;
    }
  }
  if (app.result.reached_target || round >= app.config.max_rounds) {
    FinishApp(app);
    return;
  }
  StartRound(app);
}

void TotoroEngine::FinishApp(AppRuntime& app) {
  app.done = true;
  app.result.total_time_ms =
      forest_->pastry().network()->sim()->Now() - app.launch_time_ms;
}

bool TotoroEngine::AllDone() const {
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->done) {
      return false;
    }
  }
  return true;
}

bool TotoroEngine::RunToCompletion(double max_virtual_ms) {
  ProfileScope profile_run("engine_run");
  Simulator* sim = forest_->pastry().network()->sim();
  const double deadline = sim->Now() + max_virtual_ms;
  while (!AllDone() && !sim->Idle() && sim->Now() < deadline) {
    sim->Run(20000);
  }
  return AllDone();
}

const AppResult& TotoroEngine::result(const NodeId& topic) const {
  auto it = apps_.find(topic);
  CHECK(it != apps_.end());
  return it->second->result;
}

std::vector<AppResult> TotoroEngine::AllResults() const {
  std::vector<AppResult> out;
  out.reserve(apps_.size());
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    out.push_back(app->result);
  }
  return out;
}

}  // namespace totoro
