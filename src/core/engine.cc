#include "src/core/engine.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace totoro {
namespace {

// Opcode for asynchronous-protocol updates routed straight to the master (range 200+).
constexpr int kFlAsyncUpdate = 200;
// Checkpoint replication from the master to its leaf-set neighbors.
constexpr int kFlCheckpoint = 201;

// Payload of an async update: the worker's freshly trained weights.
struct AsyncUpdatePayload {
  NodeId topic;
  std::vector<float> weights;
  double sample_weight = 1.0;
};

}  // namespace

int VirtualNodeCount(int cpu_cores) {
  CHECK_GE(cpu_cores, 1);
  int count = 0;
  while (cpu_cores > 1) {
    cpu_cores >>= 1;
    ++count;
  }
  return count < 1 ? 1 : count;
}

TotoroEngine::TotoroEngine(Forest* forest, ComputeModel compute, uint64_t seed)
    : forest_(forest), compute_(compute), rng_(seed) {
  speed_factors_.assign(forest_->size(), 1.0);
  // One set of callbacks per scribe node; dispatch on topic inside the engine.
  for (size_t i = 0; i < forest_->size(); ++i) {
    ScribeNode& scribe = forest_->scribe(i);
    scribe.SetCombineFn(MakeFedAvgCombiner());
    scribe.SetOnBroadcast([this, i](const NodeId& topic, uint64_t round,
                                    const ScribeBroadcast& bc) {
      OnBroadcast(i, topic, round, bc);
    });
    scribe.SetOnRootAggregate(
        [this](const NodeId& topic, uint64_t round, const AggregationPiece& total) {
          OnRootAggregate(topic, round, total);
        });
    scribe.pastry().SetDeliverHandler(
        kFlAsyncUpdate,
        [this](const NodeId& key, const Message& msg, int) { OnAsyncUpdate(key, msg); });
    // Replicas only need to hold the checkpoint bytes; the engine harness models the
    // stored state, so receipt is a no-op beyond the traffic/state cost.
    scribe.pastry().SetDeliverHandler(kFlCheckpoint,
                                      [](const NodeId&, const Message&, int) {});
  }
}

void TotoroEngine::SetSpeedFactors(std::vector<double> factors) {
  CHECK_EQ(factors.size(), forest_->size());
  speed_factors_ = std::move(factors);
}

void TotoroEngine::EnableFailover(FailoverConfig config) {
  CHECK_GT(config.watchdog_interval_ms, 0.0);
  CHECK_GT(config.stall_timeout_ms, config.watchdog_interval_ms);
  failover_config_ = config;
  if (!failover_enabled_) {
    failover_enabled_ = true;
    forest_->pastry().network()->sim()->Schedule(failover_config_.watchdog_interval_ms,
                                                 [this]() { WatchdogTick(); });
  }
}

void TotoroEngine::ReplicateCheckpoint(AppRuntime& app) {
  // The master pushes (weights, round) to its nearest leaf-set neighbors so any of them
  // can seed a successor master.
  PastryNode& master = forest_->scribe(app.master_index).pastry();
  const auto replicas = master.leaf_set().All();
  const uint64_t bytes = app.global_weights.size() * sizeof(float) + 64;
  int sent = 0;
  for (const auto& replica : replicas) {
    if (sent >= failover_config_.checkpoint_replicas) {
      break;
    }
    Message m;
    m.type = kFlCheckpoint;
    m.size_bytes = bytes;
    m.traffic = TrafficClass::kModel;
    m.transport = Transport::kTcp;
    master.SendDirect(replica.host, std::move(m));
    ++sent;
  }
}

void TotoroEngine::WatchdogTick() {
  const double now = forest_->pastry().network()->sim()->Now();
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started || app->done) {
      continue;
    }
    if (now - app->last_progress_ms < failover_config_.stall_timeout_ms) {
      continue;
    }
    // Stalled. Either the master died (tree re-elects a new rendezvous root) or a whole
    // round's traffic was lost; both are cured by resuming from the checkpoint at the
    // current root.
    const size_t root = forest_->RootOf(app->topic);
    if (root == SIZE_MAX) {
      continue;  // Tree still re-electing; try again next tick.
    }
    if (root != app->master_index) {
      TLOG_INFO("failover: app %s master moves %zu -> %zu at t=%.0fms",
                app->config.name.c_str(), app->master_index, root, now);
      app->master_index = root;
      app->failovers += 1;
    }
    app->last_progress_ms = now;
    StartRound(*app);
  }
  forest_->pastry().network()->sim()->Schedule(failover_config_.watchdog_interval_ms,
                                               [this]() { WatchdogTick(); });
}

NodeId TotoroEngine::LaunchApp(const FlAppConfig& config, const std::vector<size_t>& workers,
                               std::vector<Dataset> shards, Dataset test_set) {
  CHECK(config.model_factory != nullptr);
  CHECK_EQ(workers.size(), shards.size());
  CHECK(!workers.empty());
  const NodeId topic = MakeAppId(config.name, config.creator_key, config.salt);
  CHECK(apps_.find(topic) == apps_.end());

  forest_->SubscribeAll(topic, workers, subscribe_settle_ms_);
  const size_t master = forest_->RootOf(topic);
  CHECK_NE(master, SIZE_MAX);

  auto app = std::make_unique<AppRuntime>();
  app->config = config;
  app->topic = topic;
  app->master_index = master;
  app->global_model = config.model_factory(rng_.Next());
  app->global_weights = app->global_model->GetWeights();
  app->test_set = std::move(test_set);
  app->result.name = config.name;
  app->result.topic = topic;
  for (size_t w = 0; w < workers.size(); ++w) {
    const size_t node = workers[w];
    CHECK(shards[w].size() > 0);
    app->trainers[node] = std::make_unique<LocalTrainer>(
        config.model_factory(rng_.Next()), std::move(shards[w]), speed_factors_[node],
        rng_.Next());
  }
  switch (config.selection) {
    case SelectionPolicy::kAll:
      break;
    case SelectionPolicy::kRandom:
      app->selector = std::make_unique<RandomSelector>();
      break;
    case SelectionPolicy::kOortLike:
      app->selector = std::make_unique<OortLikeSelector>();
      break;
  }
  apps_[topic] = std::move(app);
  return topic;
}

void TotoroEngine::StartAll() {
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started) {
      app->started = true;
      app->launch_time_ms = forest_->pastry().network()->sim()->Now();
      StartRound(*app);
    }
  }
}

void TotoroEngine::StartRound(AppRuntime& app) {
  app.round += 1;
  app.last_progress_ms = forest_->pastry().network()->sim()->Now();
  // The round span stays open across many virtual ms; allocate its context now so the
  // broadcast (and everything downstream of it) parents to the round, and emit the
  // record when the round closes.
  app.round_start_ms = app.last_progress_ms;
  app.round_trace = GlobalTracer().AllocateContext();
  ScopedTraceContext round_scope(app.round_trace);
  auto payload = std::make_shared<RoundPayload>();
  payload->weights = app.global_weights;
  // Participant selection: the application's selection function picks this round's
  // cohort from the subscribed workers.
  if (app.selector != nullptr && app.config.participants_per_round > 0 &&
      app.config.participants_per_round < app.trainers.size()) {
    std::vector<ClientInfo> clients;
    clients.reserve(app.trainers.size());
    for (const auto& [node, trainer] : app.trainers) {
      ClientInfo info;
      info.index = node;
      // Optimistic initialization: untrained clients look maximally useful.
      info.last_loss = trainer->last_loss() > 0.0f ? trainer->last_loss() : 1e6;
      info.speed_factor = trainer->speed_factor();
      clients.push_back(info);
    }
    auto selected = std::make_shared<std::vector<size_t>>(
        app.selector->Select(clients, app.config.participants_per_round, rng_));
    std::sort(selected->begin(), selected->end());
    payload->selected = std::move(selected);
  }
  const uint64_t bytes = app.global_weights.size() * sizeof(float);
  forest_->scribe(app.master_index)
      .Broadcast(app.topic, app.round, std::move(payload), bytes);

  if (round_deadline_ms_ > 0.0) {
    app.round_deadline.Cancel();
    const NodeId topic = app.topic;
    const uint64_t round = app.round;
    app.round_deadline = forest_->pastry().network()->sim()->Schedule(
        round_deadline_ms_, [this, topic, round]() {
          auto it = apps_.find(topic);
          if (it == apps_.end() || it->second->done || it->second->round != round) {
            return;  // The round closed normally (or the app finished).
          }
          static thread_local Counter* expired =
              &GlobalMetrics().GetCounter("engine.round.deadline_expired");
          expired->Increment();
          TLOG_INFO("app %s round %llu hit the straggler deadline; closing partial",
                    it->second->config.name.c_str(), static_cast<unsigned long long>(round));
          // Partial-aggregation fallback: whatever aggregate reached the master already
          // updated global_weights via OnRootAggregate-less paths (none if the tree
          // stalled); close the round with the current weights and move on.
          EvaluateAndAdvance(*it->second, round);
        });
  }
}

void TotoroEngine::OnBroadcast(size_t node_index, const NodeId& topic, uint64_t round,
                               const ScribeBroadcast& bc) {
  auto it = apps_.find(topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  auto trainer_it = app.trainers.find(node_index);
  if (trainer_it == app.trainers.end()) {
    return;  // This node forwards but does not train for this app.
  }
  CHECK(bc.data != nullptr);
  const auto* payload = static_cast<const RoundPayload*>(bc.data.get());
  Network* net = forest_->pastry().network();

  const bool selected =
      payload->selected == nullptr ||
      std::binary_search(payload->selected->begin(), payload->selected->end(), node_index);
  if (!selected) {
    if (!app.config.async.has_value()) {
      // Synchronous rounds still need this subscriber's slot in the tree aggregation to
      // close; contribute an empty (zero-weight) piece immediately.
      AggregationPiece empty;
      empty.data = nullptr;
      empty.weight = 0.0;
      empty.count = 0;
      forest_->scribe(node_index).SubmitUpdate(topic, round, std::move(empty), 16);
    }
    return;
  }

  LocalTrainer& trainer = *trainer_it->second;
  LocalUpdate update = trainer.Train(payload->weights, app.config.train, compute_,
                                     app.config.dp, app.config.compression);
  net->metrics().ChargeWork(
      forest_->scribe(node_index).host(), WorkKind::kFlTask,
      static_cast<double>(trainer.model().NumParams()) *
          static_cast<double>(app.config.train.batch_size * app.config.train.local_steps));

  const uint64_t wire_bytes = update.wire_bytes;
  const double compute_ms = update.compute_time_ms;
  // Local training covers [now, now + compute_ms] of virtual time on this worker; the
  // context is re-entered in the completion callback so the submitted update (and its
  // up-tree hops) parents to the training span.
  Tracer& tracer = GlobalTracer();
  TraceContext train_ctx;
  if (tracer.enabled()) {
    const double train_start = net->sim()->Now();
    train_ctx = tracer.RecordComplete(
        "engine.local_train", "engine", forest_->scribe(node_index).host(), train_start,
        train_start + compute_ms, tracer.current(),
        {{"round", std::to_string(round)}, {"compute_ms", std::to_string(compute_ms)}});
  }
  if (app.config.async.has_value()) {
    // Asynchronous protocol: route the update straight to the master; no tree barrier.
    AsyncUpdatePayload async_payload;
    async_payload.topic = topic;
    async_payload.weights = std::move(update.weights);
    async_payload.sample_weight = update.sample_weight;
    net->sim()->Schedule(compute_ms, [this, node_index, topic, wire_bytes, train_ctx,
                                      async_payload = std::move(async_payload)]() mutable {
      ScopedTraceContext scope(train_ctx);
      Message m;
      m.type = kFlAsyncUpdate;
      m.size_bytes = wire_bytes;
      m.traffic = TrafficClass::kGradient;
      m.transport = Transport::kTcp;
      m.SetPayload(std::move(async_payload));
      forest_->scribe(node_index).pastry().Route(topic, std::move(m));
    });
    return;
  }

  auto piece_payload = std::make_shared<WeightsPayload>();
  piece_payload->weights = std::move(update.weights);
  AggregationPiece piece;
  piece.data = std::move(piece_payload);
  piece.weight = update.sample_weight;
  piece.count = 1;
  net->sim()->Schedule(compute_ms, [this, node_index, topic, round, piece = std::move(piece),
                                    wire_bytes, train_ctx]() mutable {
    ScopedTraceContext scope(train_ctx);
    forest_->scribe(node_index).SubmitUpdate(topic, round, std::move(piece), wire_bytes);
  });
}

void TotoroEngine::OnRootAggregate(const NodeId& topic, uint64_t round,
                                   const AggregationPiece& total) {
  auto it = apps_.find(topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  if (round != app.round || app.config.async.has_value()) {
    return;  // Stale aggregate from a straggler cut-off of an earlier round.
  }
  if (total.data != nullptr) {
    const auto* merged = static_cast<const WeightsPayload*>(total.data.get());
    app.global_weights = merged->weights;
  }
  // A null total (every contribution timed out or no worker was selected) keeps the
  // previous global weights; the round still closes.
  EvaluateAndAdvance(app, round);
}

void TotoroEngine::OnAsyncUpdate(const NodeId& key, const Message& msg) {
  const auto& payload = msg.As<AsyncUpdatePayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done || !it->second->config.async.has_value()) {
    return;
  }
  (void)key;
  AppRuntime& app = *it->second;
  const AsyncConfig& async = *app.config.async;
  // FedAsync mixing: w <- (1 - alpha) w + alpha w_update.
  CHECK_EQ(payload.weights.size(), app.global_weights.size());
  const float alpha = async.mix_alpha;
  for (size_t i = 0; i < app.global_weights.size(); ++i) {
    app.global_weights[i] =
        (1.0f - alpha) * app.global_weights[i] + alpha * payload.weights[i];
  }
  app.async_updates_received += 1;
  forest_->pastry().network()->metrics().ChargeWork(
      forest_->scribe(app.master_index).host(), WorkKind::kFlTask,
      static_cast<double>(app.global_weights.size()));
  if (app.async_updates_received % async.rebroadcast_every == 0) {
    EvaluateAndAdvance(app, app.round);
  }
}

void TotoroEngine::EvaluateAndAdvance(AppRuntime& app, uint64_t round) {
  app.round_deadline.Cancel();
  app.global_model->SetWeights(app.global_weights);
  Network* net = forest_->pastry().network();
  // Evaluation is FL-side master work.
  net->metrics().ChargeWork(forest_->scribe(app.master_index).host(), WorkKind::kFlTask,
                            static_cast<double>(app.global_model->NumParams()) *
                                static_cast<double>(app.test_set.size()));
  const double accuracy = app.global_model->Accuracy(app.test_set);
  const double now = net->sim()->Now();
  app.last_progress_ms = now;
  if (app.round_trace.valid()) {
    GlobalTracer().EmitSpan(app.round_trace, /*parent_span_id=*/0, "engine.round", "engine",
                            forest_->scribe(app.master_index).host(), app.round_start_ms,
                            now,
                            {{"app", app.config.name},
                             {"round", std::to_string(round)},
                             {"accuracy", std::to_string(accuracy)}});
    app.round_trace = TraceContext{};
  }
  static thread_local Histogram* round_hist = &GlobalMetrics().GetHistogram(
      "engine.round.duration_ms", Histogram::DefaultLatencyBoundsMs());
  round_hist->Observe(now - app.round_start_ms);
  if (failover_enabled_) {
    ReplicateCheckpoint(app);
  }
  app.result.curve.push_back(AccuracyPoint{now - app.launch_time_ms, round, accuracy});
  app.result.rounds_completed = round;
  app.result.final_accuracy = accuracy;
  TLOG_INFO("app %s round %llu accuracy %.4f at t=%.1fms", app.config.name.c_str(),
            static_cast<unsigned long long>(round), accuracy, now);

  if (!app.result.reached_target && accuracy >= app.config.target_accuracy) {
    app.result.reached_target = true;
    app.result.time_to_target_ms = now - app.launch_time_ms;
  }
  if (app.result.reached_target || round >= app.config.max_rounds) {
    FinishApp(app);
    return;
  }
  StartRound(app);
}

void TotoroEngine::FinishApp(AppRuntime& app) {
  app.done = true;
  app.result.total_time_ms =
      forest_->pastry().network()->sim()->Now() - app.launch_time_ms;
}

bool TotoroEngine::AllDone() const {
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->done) {
      return false;
    }
  }
  return true;
}

bool TotoroEngine::RunToCompletion(double max_virtual_ms) {
  Simulator* sim = forest_->pastry().network()->sim();
  const double deadline = sim->Now() + max_virtual_ms;
  while (!AllDone() && !sim->Idle() && sim->Now() < deadline) {
    sim->Run(20000);
  }
  return AllDone();
}

const AppResult& TotoroEngine::result(const NodeId& topic) const {
  auto it = apps_.find(topic);
  CHECK(it != apps_.end());
  return it->second->result;
}

std::vector<AppResult> TotoroEngine::AllResults() const {
  std::vector<AppResult> out;
  out.reserve(apps_.size());
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    out.push_back(app->result);
  }
  return out;
}

}  // namespace totoro
