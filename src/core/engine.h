// The Totoro engine: drives federated rounds for many concurrent applications over the
// pub/sub forest.
//
// Per application: the rendezvous root acts as the master (holding the global model and
// running evaluation), internal tree nodes aggregate partial updates in-network, and
// subscribers run local training with virtual compute delays. Applications are fully
// independent — separate trees, separate masters — which is the paper's "many masters /
// many workers" architecture; the engine merely multiplexes callbacks per topic.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/core/app.h"
#include "src/fl/aggregation.h"
#include "src/fl/compute_pool.h"
#include "src/fl/secure_agg.h"
#include "src/fl/selection.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {

class TotoroEngine {
 public:
  TotoroEngine(Forest* forest, ComputeModel compute, uint64_t seed);

  // Per-node relative compute speeds (heterogeneous devices). Defaults to 1.0 for all.
  void SetSpeedFactors(std::vector<double> factors);

  // Per-node relative link bandwidth (heterogeneous fleet classes). Defaults to 1.0;
  // surfaced to selectors through ClientInfo::bandwidth_factor so bandwidth-aware
  // selection (OortLikeSelector::bandwidth_beta) can prefer well-connected devices.
  void SetBandwidthFactors(std::vector<double> factors);

  // Adversarial hooks, wired from outside the engine (the faultsim layer in tests) so
  // core never depends on faultsim. Both run on the simulator thread.
  //
  // UpdateInterceptor may rewrite a freshly trained update in place just before it is
  // submitted up the tree: `reference` is the round's broadcast weights, `weights` and
  // `sample_weight` the trained update. Return value is informational (true = modified).
  // Skipped for secure-aggregation apps — their updates are already pairwise-masked on
  // the compute pool, so a post-hoc rewrite would corrupt mask cancellation rather than
  // model a poisoning client.
  using UpdateInterceptor = std::function<bool(
      const NodeId& topic, uint64_t round, size_t node_index,
      std::span<const float> reference, std::vector<float>& weights,
      double& sample_weight)>;
  void SetUpdateInterceptor(UpdateInterceptor fn) { update_interceptor_ = std::move(fn); }

  // SybilProvider is consulted when a broadcast reaches a subscriber that has no
  // trainer for the app — i.e. a forged membership (sybil join). Filling `weights` and
  // returning true submits the forged update; returning false submits an empty piece
  // (the tree barrier must close either way). Same signature as UpdateInterceptor;
  // `weights` arrives empty.
  void SetSybilProvider(UpdateInterceptor fn) { sybil_provider_ = std::move(fn); }

  // Master failover: every round the master replicates its checkpoint (global weights +
  // round counter) to `checkpoint_replicas` leaf-set neighbors; a periodic watchdog
  // detects a dead or stalled master, re-resolves the application's root (the overlay
  // elects the next rendezvous node once tree repair runs) and resumes training there
  // from the replicated checkpoint. This is the operational consequence of "any edge
  // node can act as any application's coordinator".
  struct FailoverConfig {
    double watchdog_interval_ms = 500.0;
    double stall_timeout_ms = 4000.0;  // No progress for this long => intervene.
    int checkpoint_replicas = 2;
  };
  void EnableFailover(FailoverConfig config);

  // Round straggler deadline: if a round has not closed `ms` virtual ms after its
  // broadcast, the master force-closes it with whatever aggregate arrived (possibly
  // none — the previous global weights then carry over) and starts the next round.
  // This is the round-level analogue of the tree's aggregation_timeout_ms: it bounds
  // progress even when an entire subtree is unreachable. 0 (default) disables it.
  void SetRoundDeadline(double ms) { round_deadline_ms_ = ms; }

  // How long LaunchApp lets the simulator settle after subscribing workers. 0 (default)
  // runs the event queue dry — correct only when no periodic timers (keep-alives,
  // maintenance) are active; with periodic timers, set a bounded settle instead.
  void SetSubscribeSettleMs(double settle_ms) { subscribe_settle_ms_ = settle_ms; }

  // Replaces the local-training compute pool (see src/fl/compute_pool.h). The engine
  // starts with TOTORO_COMPUTE_THREADS (default 1 = inline); results are bit-identical
  // for any thread count. Joins all outstanding training tasks before switching.
  void SetComputeThreads(size_t threads);
  size_t compute_threads() const { return pool_->threads(); }

  // Builds the application's tree over `workers` and installs its runtime. `shards`
  // is parallel to `workers`; `test_set` is the master's evaluation set. Returns the
  // application topic. Training starts at StartAll().
  NodeId LaunchApp(const FlAppConfig& config, const std::vector<size_t>& workers,
                   std::vector<Dataset> shards, Dataset test_set);

  // Schedules round 1 of every launched-but-unstarted application at the current
  // virtual time.
  void StartAll();

  // Runs the simulator until every application finishes (or the event queue drains, or
  // `max_virtual_ms` passes). Returns true if all applications completed.
  bool RunToCompletion(double max_virtual_ms = 1e12);

  bool AllDone() const;
  const AppResult& result(const NodeId& topic) const;
  std::vector<AppResult> AllResults() const;

  Forest& forest() { return *forest_; }

 private:
  // One worker's trainer plus its in-flight offloaded training task, if any. The
  // ticket is joined before the trainer is reused or its post-train state (last_loss)
  // is read, so offloaded runs keep the sequential happens-before order per trainer.
  struct TrainerSlot {
    std::unique_ptr<LocalTrainer> trainer;
    ComputePool::Ticket pending;
  };

  struct AppRuntime {
    FlAppConfig config;
    NodeId topic;
    size_t master_index = SIZE_MAX;
    std::unique_ptr<Model> global_model;
    std::vector<float> global_weights;
    Dataset test_set{1, 2};
    // worker node index -> trainer slot. Ordered map: StartRound walks this to build
    // the selection candidate list (RNG consumption order) and SetComputeThreads joins
    // pending tickets in walk order, so iteration order must be stable across runs.
    std::map<size_t, TrainerSlot> trainers;
    uint64_t round = 0;
    double launch_time_ms = 0.0;
    bool started = false;
    bool done = false;
    // Tracing: the round span's context is allocated at StartRound so every child
    // (broadcast, training, aggregation) can parent to it; the span record itself is
    // emitted when the round closes in EvaluateAndAdvance.
    double round_start_ms = 0.0;
    TraceContext round_trace;
    // Participant selection state.
    std::unique_ptr<ClientSelector> selector;
    // Async-protocol state.
    uint64_t async_updates_received = 0;
    // Secure-aggregation state: per-round pairwise mask group, keyed by round. Old
    // groups are pruned to a small window; in-flight training tasks keep theirs alive
    // through the shared_ptr they captured.
    uint64_t secure_seed = 0;
    std::map<uint64_t, std::shared_ptr<const SecureAggregationGroup>> secure_groups;
    // Failover bookkeeping.
    double last_progress_ms = 0.0;
    uint64_t failovers = 0;
    // Pending straggler-deadline event for the current round (cancelled when the round
    // closes normally).
    EventHandle round_deadline;
    AppResult result;
  };

  // The model-broadcast payload: weights plus (optionally) the round's selected cohort.
  struct RoundPayload {
    std::vector<float> weights;
    // Null when every subscriber trains; otherwise the selected worker node indices.
    std::shared_ptr<const std::vector<size_t>> selected;
  };

  void OnBroadcast(size_t node_index, const NodeId& topic, uint64_t round,
                   const ScribeBroadcast& bc);
  void OnRootAggregate(const NodeId& topic, uint64_t round, const AggregationPiece& total);
  void OnAsyncUpdate(const NodeId& key, const Message& msg);
  void EvaluateAndAdvance(AppRuntime& app, uint64_t round);
  void StartRound(AppRuntime& app);
  void FinishApp(AppRuntime& app);
  void ReplicateCheckpoint(AppRuntime& app);
  void WatchdogTick();

  // Metric series resolved once, in the constructor, from the constructing thread's
  // registry. These used to be function-scope `static thread_local` caches at the
  // increment sites, which bind each series to whichever thread first executes the site
  // for the remainder of that thread's life — so an engine created after a registry
  // swap, or sharing a reused worker thread with an earlier engine, would increment a
  // stale or foreign series. Per-engine members make the attribution explicit and stay
  // valid across MetricsRegistry::ResetValues() (which keeps registrations).
  struct MetricSeries {
    Counter* deadline_expired = nullptr;
    Counter* train_tasks = nullptr;
    Counter* defense_collected = nullptr;
    Counter* defense_rejected = nullptr;
    Counter* defense_clipped = nullptr;
    Counter* defense_rounds = nullptr;
    Counter* secure_corrections = nullptr;
    Counter* secure_dropped = nullptr;
    Histogram* async_staleness = nullptr;
    Histogram* round_duration = nullptr;
  };

  Forest* forest_;
  ComputeModel compute_;
  MetricSeries series_;
  Rng rng_;
  std::vector<double> speed_factors_;
  std::vector<double> bandwidth_factors_;
  UpdateInterceptor update_interceptor_;
  UpdateInterceptor sybil_provider_;
  // Ordered map: StartAll and WatchdogTick iterate this to schedule rounds, so the walk
  // order feeds event scheduling and must not depend on a hash function.
  std::map<U128, std::unique_ptr<AppRuntime>> apps_;
  bool failover_enabled_ = false;
  FailoverConfig failover_config_;
  double subscribe_settle_ms_ = 0.0;
  double round_deadline_ms_ = 0.0;
  // Declared last so it is destroyed first: outstanding pool tasks reference trainers
  // owned by apps_ above.
  std::unique_ptr<ComputePool> pool_;
};

}  // namespace totoro

#endif  // SRC_CORE_ENGINE_H_
