// Synthetic EUA-like edge topology (Fig. 5a substrate).
//
// The paper divides 95,271 cellular base stations from the Australian EUA dataset into
// zones across 12 states/regions. The dataset itself is not shipped here, so this
// generator reproduces its published structure: the exact per-region node counts
// (ACT: 931, ANT: 15, EXT: 8, ISL: 36, NSW: 24574, NT: 3137, QLD: 21576, SA: 7682,
// TAS: 3213, VIC: 18163, WA: 15933, WLD: 3) and the strong density skew, by sampling
// points around each region's geographic anchor. A scale factor shrinks every region
// proportionally (minimum one node) for simulation-sized experiments.
#ifndef SRC_CORE_EUA_TOPOLOGY_H_
#define SRC_CORE_EUA_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/geo.h"
#include "src/common/rng.h"

namespace totoro {

struct EuaRegion {
  std::string name;
  size_t full_count = 0;  // Node count in the real EUA dataset.
  GeoPoint anchor;        // Approximate population centroid.
  double spread_deg = 1.0;  // Gaussian spread of stations around the anchor.
};

struct EuaNode {
  GeoPoint location;
  int region = 0;  // Index into Regions().
};

// The 12 EUA regions with the paper's counts.
const std::vector<EuaRegion>& EuaRegions();

// Samples a topology with roughly `target_total` nodes, preserving region proportions
// (each region keeps at least one node). target_total == 95271 reproduces full scale.
std::vector<EuaNode> GenerateEuaTopology(size_t target_total, Rng& rng);

// Per-region counts of a generated topology (parallel to EuaRegions()).
std::vector<size_t> RegionCounts(const std::vector<EuaNode>& nodes);

}  // namespace totoro

#endif  // SRC_CORE_EUA_TOPOLOGY_H_
