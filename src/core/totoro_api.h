// Totoro's high-level API (paper Table 2).
//
// This facade assembles the full stack — simulator, network, Pastry overlay, pub/sub
// forest — behind the eight calls the paper exposes to application owners:
//
//   Join(...)                     edge node joins the overlay
//   CreateTree(app_id)            create an application's dataflow tree (topic)
//   Subscribe(app_id)             node subscribes to the tree (worker)
//   Broadcast(app_id, object)     master disseminates the model down the tree
//   onBroadcast(app_id, object)   callback at workers
//   Aggregate(app_id, object)     worker submits an update up the tree
//   onAggregate(app_id, object)   callback at the master when a round's aggregate lands
//   onTimer(app_id)               periodic progress callback
//
// Examples and quickstarts use this class; benches that need finer control use the
// layers directly.
#ifndef SRC_CORE_TOTORO_API_H_
#define SRC_CORE_TOTORO_API_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/app.h"
#include "src/pubsub/forest.h"
#include "src/rings/multi_ring.h"

namespace totoro {

class Totoro {
 public:
  struct Options {
    uint64_t seed = 1;
    PastryConfig pastry;
    ScribeConfig scribe;
    NetworkConfig network;
    // Pairwise latency range of the emulated edge WAN.
    double latency_lo_ms = 2.0;
    double latency_hi_ms = 40.0;
  };

  using NodeHandle = size_t;
  using ObjectPtr = std::shared_ptr<const void>;
  using OnBroadcastFn =
      std::function<void(NodeHandle node, const NodeId& app_id, uint64_t round,
                         const ObjectPtr& object)>;
  using OnAggregateFn = std::function<void(const NodeId& app_id, uint64_t round,
                                           const ObjectPtr& object, double weight)>;
  using OnTimerFn = std::function<void(const NodeId& app_id)>;

  explicit Totoro(Options options);
  ~Totoro();

  // --- Table 2 calls ---

  // Edge node joins the DHT-based P2P overlay. `site` selects the edge zone; ids are
  // zone-prefixed so intra-site traffic stays local.
  NodeHandle Join(ZoneId site = 0);

  // Installs converged overlay state for all joined nodes (call once after Join()s).
  void BuildOverlay();

  // Application owner creates a dataflow tree; returns the AppId topic.
  NodeId CreateTree(const std::string& app_name);

  // Node subscribes to the application's tree.
  void Subscribe(NodeHandle node, const NodeId& app_id);

  // Master disseminates `object` (size `bytes` on the wire) to subscribers.
  void Broadcast(const NodeId& app_id, uint64_t round, ObjectPtr object, uint64_t bytes);

  // Worker submits an update; intermediate nodes aggregate with the tree's combiner.
  void Aggregate(NodeHandle node, const NodeId& app_id, uint64_t round, ObjectPtr object,
                 double weight, uint64_t bytes);

  // Application owners customize the aggregation function (e.g. FedAvg vs FedProx).
  void SetCombiner(CombineFn combiner);
  void SetOnBroadcast(OnBroadcastFn fn);
  void SetOnAggregate(OnAggregateFn fn);
  // Periodic progress callback every `period_ms` of virtual time.
  void SetOnTimer(const NodeId& app_id, double period_ms, OnTimerFn fn);

  // --- Harness access ---
  size_t NumNodes() const;
  NodeHandle MasterOf(const NodeId& app_id) const;
  Simulator& sim();
  Network& network();
  Forest& forest();
  MultiRing& rings();
  void Run() { sim().Run(); }

 private:
  Options options_;
  Rng rng_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<MultiRing> rings_;
  std::unique_ptr<Forest> forest_;
  bool overlay_built_ = false;
  OnBroadcastFn on_broadcast_;
  OnAggregateFn on_aggregate_;
};

}  // namespace totoro

#endif  // SRC_CORE_TOTORO_API_H_
