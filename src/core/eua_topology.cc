#include "src/core/eua_topology.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

const std::vector<EuaRegion>& EuaRegions() {
  static const std::vector<EuaRegion> kRegions = {
      {"ACT", 931, {-35.28, 149.13}, 0.25},   // Canberra.
      {"ANT", 15, {-66.28, 110.53}, 1.00},    // Antarctic stations.
      {"EXT", 8, {-10.42, 105.68}, 1.50},     // External territories (Christmas Is.).
      {"ISL", 36, {-29.03, 167.95}, 1.00},    // Norfolk & other islands.
      {"NSW", 24574, {-33.87, 151.21}, 2.20},  // Sydney-centred.
      {"NT", 3137, {-12.46, 130.84}, 3.00},    // Darwin.
      {"QLD", 21576, {-27.47, 153.03}, 3.20},  // Brisbane.
      {"SA", 7682, {-34.93, 138.60}, 2.50},    // Adelaide.
      {"TAS", 3213, {-42.88, 147.33}, 1.20},   // Hobart.
      {"VIC", 18163, {-37.81, 144.96}, 1.80},  // Melbourne.
      {"WA", 15933, {-31.95, 115.86}, 3.50},   // Perth.
      {"WLD", 3, {1.35, 103.82}, 2.00},        // Out-of-country points.
  };
  return kRegions;
}

std::vector<EuaNode> GenerateEuaTopology(size_t target_total, Rng& rng) {
  CHECK_GT(target_total, 0u);
  const auto& regions = EuaRegions();
  size_t full_total = 0;
  for (const auto& r : regions) {
    full_total += r.full_count;
  }
  std::vector<EuaNode> nodes;
  nodes.reserve(target_total + regions.size());
  for (size_t ri = 0; ri < regions.size(); ++ri) {
    const auto& r = regions[ri];
    const double share = static_cast<double>(r.full_count) / static_cast<double>(full_total);
    const size_t count = std::max<size_t>(
        1, static_cast<size_t>(std::llround(share * static_cast<double>(target_total))));
    for (size_t i = 0; i < count; ++i) {
      EuaNode node;
      node.region = static_cast<int>(ri);
      node.location.lat_deg = r.anchor.lat_deg + rng.Gaussian(0.0, r.spread_deg);
      node.location.lon_deg = r.anchor.lon_deg + rng.Gaussian(0.0, r.spread_deg);
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<size_t> RegionCounts(const std::vector<EuaNode>& nodes) {
  std::vector<size_t> counts(EuaRegions().size(), 0);
  for (const auto& n : nodes) {
    CHECK_LT(static_cast<size_t>(n.region), counts.size());
    ++counts[static_cast<size_t>(n.region)];
  }
  return counts;
}

}  // namespace totoro
