// Causal tracing over virtual time.
//
// One broadcast/aggregation flows through many layers (DHT routing, forest fan-out,
// engine callbacks) and many hosts; this module reconstructs that flow as a tree of
// spans. A span is one operation on one host over a virtual-time interval; spans carry a
// trace id (the causal chain they belong to) and a parent span id, so a whole federated
// round exports as one connected tree loadable in chrome://tracing / Perfetto (see
// export.h).
//
// Propagation model (single-threaded simulator):
//  - `TraceSpan` (RAII) opens a span and pushes its context onto the tracer's scope
//    stack; anything started inside the scope — nested spans, messages sent through
//    `Network::Send` — parents to it automatically.
//  - `Message::trace` carries the context across hosts: Network::Send records the
//    transmission as a span (parented to the sender's current scope) and stamps the
//    message with it; the receiving layer opens its handler span with
//    `BeginWithParent(..., msg.trace)`.
//  - Work that crosses virtual time without a live scope (a scheduled compute delay, a
//    multi-round engine span) uses `AllocateContext` + `EmitSpan` and re-enters the
//    context in the callback with `ScopedTraceContext`.
//
// Tracing is off by default and must be zero-cost when disabled: every Begin*/Instant
// entry point is an inline `enabled_` check that bypasses the out-of-line slow path, so
// determinism tests and benches pay one predictable branch per emit site.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace totoro {

// Identifies one causal chain (trace) and one operation within it (span).
// trace_id == 0 means "no context" everywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

// One finished span. `host` is the HostId the operation ran on (UINT32_MAX for
// harness-level operations that belong to no single host).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;      // layer.object.unit, e.g. "dht.route.hop".
  std::string category;  // Layer: "net", "dht", "pubsub", "engine", "bandit".
  uint32_t host = UINT32_MAX;
  double start_ms = 0.0;
  double end_ms = 0.0;
  bool instant = false;  // Point event (start_ms == end_ms by construction).
  TraceArgs args;
};

class Tracer;

// RAII span over virtual time: records [construction, destruction) against the tracer's
// clock and scopes the implicit parent for everything started in between. Inert (no-op)
// when default-constructed or when tracing was disabled at Begin time.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  ~TraceSpan() { End(); }

  bool active() const { return tracer_ != nullptr; }
  TraceContext context() const {
    return active() ? TraceContext{record_.trace_id, record_.span_id} : TraceContext{};
  }
  void AddArg(std::string key, std::string value);
  // Closes the span early (idempotent).
  void End();

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, SpanRecord record) : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

// Re-enters a previously allocated context as the implicit parent (for scheduled
// callbacks that outlive the scope that caused them). Inert when `ctx` is invalid or
// tracing is disabled.
class ScopedTraceContext {
 public:
  ScopedTraceContext() = default;
  explicit ScopedTraceContext(TraceContext ctx);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  bool pushed_ = false;
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  // Enabling/disabling never discards already-recorded spans.
  void SetEnabled(bool on) { enabled_ = on; }

  // Registers the active virtual clock (the simulator's `now`, in virtual ms). The
  // Simulator constructor registers itself; NowMs() reads 0 when none is registered.
  void SetClockSource(const double* now_ms) { clock_ = now_ms; }
  const double* clock_source() const { return clock_; }
  double NowMs() const { return clock_ != nullptr ? *clock_ : 0.0; }

  // The innermost open scope, or an invalid context.
  TraceContext current() const { return scope_.empty() ? TraceContext{} : scope_.back(); }

  // Opens a span parented to the current scope / an explicit parent. An invalid parent
  // starts a fresh trace. Inline disabled-check: an inert TraceSpan costs one branch.
  TraceSpan Begin(const char* name, const char* category, uint32_t host) {
    if (!enabled_) {
      return TraceSpan();
    }
    return BeginImpl(name, category, host, current());
  }
  TraceSpan BeginWithParent(const char* name, const char* category, uint32_t host,
                            TraceContext parent) {
    if (!enabled_) {
      return TraceSpan();
    }
    return BeginImpl(name, category, host, parent);
  }

  // Records a span with explicit timestamps (message transmissions, compute delays).
  // Returns the recorded span's context for propagation. No-op returning {} when
  // disabled.
  TraceContext RecordComplete(const char* name, const char* category, uint32_t host,
                              double start_ms, double end_ms, TraceContext parent,
                              TraceArgs args = {}) {
    if (!enabled_) {
      return TraceContext{};
    }
    return RecordCompleteImpl(name, category, host, start_ms, end_ms, parent,
                              std::move(args));
  }

  // Point event at the current clock / an explicit virtual timestamp.
  void Instant(const char* name, const char* category, uint32_t host, TraceContext parent,
               TraceArgs args = {}) {
    if (enabled_) {
      InstantAtImpl(name, category, host, NowMs(), parent, std::move(args));
    }
  }
  void InstantAt(const char* name, const char* category, uint32_t host, double at_ms,
                 TraceContext parent, TraceArgs args = {}) {
    if (enabled_) {
      InstantAtImpl(name, category, host, at_ms, parent, std::move(args));
    }
  }

  // Pre-allocates a context for a span whose record is emitted later via EmitSpan
  // (e.g. an engine round that closes many virtual ms after it starts). Children can
  // parent to the context immediately.
  TraceContext AllocateContext() {
    if (!enabled_) {
      return TraceContext{};
    }
    return TraceContext{NextTraceId(), NextSpanId()};
  }

  // --- Canonical id source (sharded execution) ---
  // While set, every new trace/span id is `base + (*counter)++` instead of the tracer's
  // own sequential counters. The sharded run loop installs the executing host's
  // (base, per-host op counter) before each event, which makes every allocated id a
  // pure function of that host's execution stream — independent of shard count and of
  // which worker thread runs the event. Ids from distinct hosts can't collide because
  // each host owns a disjoint `base` range, and none collide with the sequential ids
  // (those stay below the smallest base).
  void SetIdSource(uint64_t base, uint64_t* counter) {
    id_base_ = base;
    id_counter_ = counter;
  }
  void ClearIdSource() { id_counter_ = nullptr; }

  // Moves all recorded spans out (sink left empty; id counters untouched). The sharded
  // coordinator drains worker tracers with this and folds the result into the main
  // tracer via AppendSpans in canonical (span_id) order.
  std::vector<SpanRecord> TakeSpans() {
    std::vector<SpanRecord> out = std::move(spans_);
    spans_.clear();
    return out;
  }
  void AppendSpans(std::vector<SpanRecord> spans) {
    for (SpanRecord& s : spans) {
      spans_.push_back(std::move(s));
    }
  }
  void EmitSpan(TraceContext ctx, uint64_t parent_span_id, const char* name,
                const char* category, uint32_t host, double start_ms, double end_ms,
                TraceArgs args = {});

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t num_spans() const { return spans_.size(); }

  // Drops all recorded spans and restarts id assignment (so runs are comparable).
  // Open scopes are unaffected; call between runs, not inside one.
  void Clear();

 private:
  friend class TraceSpan;
  friend class ScopedTraceContext;

  uint64_t NextTraceId() {
    return id_counter_ != nullptr ? id_base_ + (*id_counter_)++ : next_trace_id_++;
  }
  uint64_t NextSpanId() {
    return id_counter_ != nullptr ? id_base_ + (*id_counter_)++ : next_span_id_++;
  }

  TraceSpan BeginImpl(const char* name, const char* category, uint32_t host,
                      TraceContext parent);
  TraceContext RecordCompleteImpl(const char* name, const char* category, uint32_t host,
                                  double start_ms, double end_ms, TraceContext parent,
                                  TraceArgs args);
  void InstantAtImpl(const char* name, const char* category, uint32_t host, double at_ms,
                     TraceContext parent, TraceArgs args);
  void EndSpan(SpanRecord record);
  void PushScope(TraceContext ctx) { scope_.push_back(ctx); }
  void PopScope() { scope_.pop_back(); }

  bool enabled_ = false;
  const double* clock_ = nullptr;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  uint64_t id_base_ = 0;
  uint64_t* id_counter_ = nullptr;  // Non-null => canonical id source active.
  std::vector<TraceContext> scope_;
  std::vector<SpanRecord> spans_;
};

// The thread-wide tracer. The simulation is single-threaded by design; one tracer per
// thread serves whichever of that thread's simulators is registered as the clock
// source, and parallel bench trials on worker threads each get an isolated span sink.
Tracer& GlobalTracer();

}  // namespace totoro

#endif  // SRC_OBS_TRACE_H_
