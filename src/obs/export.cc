#include "src/obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "src/common/logging.h"
#include "src/obs/profiler.h"

namespace totoro {
namespace {

void AppendF(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buffer, static_cast<size_t>(std::min(n, static_cast<int>(sizeof(buffer) - 1))));
  }
}

// Numbers must stay valid JSON: NaN/inf have no literal, so clamp them.
void AppendJsonNumber(std::string* out, double value) {
  if (std::isnan(value)) {
    out->append("0");
  } else if (std::isinf(value)) {
    out->append(value > 0 ? "1e308" : "-1e308");
  } else {
    AppendF(out, "%.6g", value);
  }
}

void AppendArgs(std::string* out, const SpanRecord& span) {
  AppendF(out, "\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
               ",\"parent_span_id\":%" PRIu64,
          span.trace_id, span.span_id, span.parent_span_id);
  for (const auto& [key, value] : span.args) {
    out->append(",\"");
    out->append(JsonEscape(key));
    out->append("\":\"");
    out->append(JsonEscape(value));
    out->append("\"");
  }
  out->append("}");
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string TraceToChromeJson(const Tracer& tracer) {
  std::string out;
  out.reserve(tracer.spans().size() * 160 + 64);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const SpanRecord& span : tracer.spans()) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("{\"name\":\"");
    out.append(JsonEscape(span.name));
    out.append("\",\"cat\":\"");
    out.append(JsonEscape(span.category));
    // Virtual ms -> trace-event microseconds.
    const double ts_us = span.start_ms * 1000.0;
    if (span.instant) {
      AppendF(&out, "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f", ts_us);
    } else {
      const double dur_us = (span.end_ms - span.start_ms) * 1000.0;
      AppendF(&out, "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f", ts_us, dur_us);
    }
    AppendF(&out, ",\"pid\":0,\"tid\":%" PRIu64 ",",
            static_cast<uint64_t>(span.host));
    AppendArgs(&out, span);
    out.append("}");
  }
  out.append("]}");
  return out;
}

namespace {

// Lays out one accumulated phase as an "X" slice starting at `start_us`, then its
// children (name order) packed sequentially inside it. Returns the slice duration.
double AppendProfilerSlice(const std::vector<Profiler::PhaseNode>& nodes, size_t index,
                           double start_us, bool* first, std::string* out) {
  const Profiler::PhaseNode& node = nodes[index];
  const double dur_us = node.stats.wall_seconds * 1e6;
  if (!*first) {
    out->append(",");
  }
  *first = false;
  out->append("{\"name\":\"");
  out->append(JsonEscape(node.name));
  AppendF(out, "\",\"cat\":\"profile\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
               "\"pid\":0,\"tid\":0,\"args\":{\"calls\":%" PRIu64
               ",\"virtual_ms\":%.3f,\"events\":%" PRIu64 "}}",
          start_us, dur_us, node.stats.calls, node.stats.virtual_ms, node.stats.events);
  double child_start = start_us;
  for (const auto& [name, child] : node.children) {
    (void)name;
    child_start += AppendProfilerSlice(nodes, child, child_start, first, out);
  }
  return dur_us;
}

}  // namespace

std::string ProfilerToChromeJson(const Profiler& profiler) {
  std::string out("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  double start_us = 0.0;
  for (const auto& [name, child] : profiler.nodes()[0].children) {
    (void)name;
    start_us += AppendProfilerSlice(profiler.nodes(), child, start_us, &first, &out);
  }
  out.append("]}");
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string out;
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) {
      out.append(",");
    }
    first = false;
    AppendF(&out, "\"%s\":%" PRIu64, JsonEscape(name).c_str(), counter->value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(name));
    out.append("\":");
    AppendJsonNumber(&out, gauge->value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(name));
    out.append("\":{");
    AppendF(&out, "\"count\":%" PRIu64 ",", histogram->count());
    out.append("\"sum\":");
    AppendJsonNumber(&out, histogram->sum());
    out.append(",\"min\":");
    AppendJsonNumber(&out, histogram->min());
    out.append(",\"max\":");
    AppendJsonNumber(&out, histogram->max());
    out.append(",\"buckets\":[");
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      if (i > 0) {
        out.append(",");
      }
      const double bound = histogram->bucket_upper_bound(i);
      out.append("{\"le\":");
      if (std::isinf(bound)) {
        out.append("\"+Inf\"");
      } else {
        AppendJsonNumber(&out, bound);
      }
      AppendF(&out, ",\"count\":%" PRIu64 "}", histogram->bucket_count(i));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string MetricsToCsv(const MetricsRegistry& registry) {
  std::string out("kind,name,field,value\n");
  for (const auto& [name, counter] : registry.counters()) {
    AppendF(&out, "counter,%s,value,%" PRIu64 "\n", name.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    AppendF(&out, "gauge,%s,value,%.9g\n", name.c_str(), gauge->value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    AppendF(&out, "histogram,%s,count,%" PRIu64 "\n", name.c_str(), histogram->count());
    AppendF(&out, "histogram,%s,sum,%.9g\n", name.c_str(), histogram->sum());
    AppendF(&out, "histogram,%s,min,%.9g\n", name.c_str(), histogram->min());
    AppendF(&out, "histogram,%s,max,%.9g\n", name.c_str(), histogram->max());
    AppendF(&out, "histogram,%s,mean,%.9g\n", name.c_str(), histogram->mean());
    AppendF(&out, "histogram,%s,p50,%.9g\n", name.c_str(), histogram->ApproxQuantile(0.5));
    AppendF(&out, "histogram,%s,p99,%.9g\n", name.c_str(), histogram->ApproxQuantile(0.99));
  }
  return out;
}

uint64_t FingerprintBytes(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ull;  // FNV-1a 64-bit offset basis.
  for (const char c : bytes) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t MetricsFingerprint(const MetricsRegistry& registry) {
  return FingerprintBytes(MetricsToJson(registry));
}

uint64_t TraceFingerprint(const Tracer& tracer) {
  return FingerprintBytes(TraceToChromeJson(tracer));
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    TLOG_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    TLOG_ERROR("short write to %s (%zu of %zu bytes)", path.c_str(), written,
               content.size());
    return false;
  }
  return true;
}

}  // namespace totoro
