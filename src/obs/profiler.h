// Scoped hierarchical phase profiler.
//
// A phase is a named region of harness or protocol code ("engine_run", "sim_run",
// "aggregate"); entering the same name under the same parent accumulates into one node,
// so a whole bench run reduces to a small tree of phases with per-phase deltas:
//
//   wall_seconds  real CPU time inside the phase (nondeterministic; never exported to
//                 the metrics registry, only to ReportText/ToJson/Chrome trace)
//   virtual_ms    simulated-time advance inside the phase (deterministic)
//   events        simulator events fired inside the phase (deterministic)
//   calls         times the phase was entered (deterministic)
//
// The virtual clock and event counter are registered by the Simulator constructor,
// exactly like the tracer's clock source; phases that never wrap a Simulator::Run
// simply read zero deltas for both.
//
// Usage:
//   ProfileScope scope("aggregate");   // accumulates into <current>/aggregate
//
// Profiling is off by default and zero-cost when disabled: ProfileScope's constructor
// is one inline enabled-check, identical to the tracer's contract. The TOTORO_PROFILE
// environment variable (any value >= 1) turns it on for the whole process.
//
// Sampling hooks: callers register named samplers (event-queue depth, per-host work,
// ...) with AddSampler; the simulator's periodic sampler (see
// Simulator::EnablePeriodicSampling) drives Sample() every N fired events, so sampled
// series are indexed by a deterministic trigger even though their values may not be.
//
// Export paths:
//   PublishToMetrics  folds calls / virtual_ms / events per phase into the metrics
//                     registry as `profile.<path>.*` series (deterministic only, so
//                     fingerprinted exports stay bit-identical)
//   ReportText        human-readable tree with wall-clock
//   ToJson            machine-readable everything (bench reports embed this)
//   ProfilerToChromeJson (export.h)  flame-graph-style Chrome trace
//
// Like the tracer and metrics registry, the profiler is thread-local so parallel bench
// trials never contend or interleave.
#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace totoro {

class MetricsRegistry;

struct PhaseStats {
  uint64_t calls = 0;
  double wall_seconds = 0.0;
  double virtual_ms = 0.0;
  uint64_t events = 0;
};

// Running summary of one sampled series (all recorded values, not a reservoir).
struct SampleSeries {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;

  void Record(double value);
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

class Profiler {
 public:
  // One accumulated phase. Children are name-ordered so every walk is deterministic.
  struct PhaseNode {
    std::string name;       // Single path segment, [a-z][a-z0-9_]*.
    size_t parent = 0;      // Index into nodes(); the root is its own parent.
    int depth = 0;          // Root = 0; top-level phases = 1.
    PhaseStats stats;
    std::map<std::string, size_t> children;
  };

  Profiler();

  bool enabled() const { return enabled_; }
  // Enabling mid-run is allowed; already-open scopes entered while disabled stay inert.
  void SetEnabled(bool on) { enabled_ = on; }

  // Registers the virtual clock (the simulator's `now`, virtual ms) and the fired-event
  // counter. The Simulator constructor registers both; deltas read 0 when unset.
  void SetClockSource(const double* now_ms) { clock_ = now_ms; }
  const double* clock_source() const { return clock_; }
  void SetEventCountSource(const uint64_t* events_fired) { events_ = events_fired; }
  const uint64_t* event_count_source() const { return events_; }

  // --- Sampling hooks ---
  // Registers a named gauge-style hook invoked by Sample(). Name-ordered invocation.
  void AddSampler(const std::string& name, std::function<double()> fn);
  void RemoveSampler(const std::string& name);
  // Invokes every registered sampler and records its value. No-op when disabled.
  void Sample();
  // Records one observation into a named series directly (for callers that already
  // hold the value, e.g. the simulator's queue-depth sample). No-op when disabled.
  void RecordSample(const std::string& name, double value);

  // --- Phase tree access ---
  // nodes()[0] is the synthetic root; its stats stay zero.
  const std::vector<PhaseNode>& nodes() const { return nodes_; }
  const std::map<std::string, SampleSeries>& samples() const { return samples_; }
  // Finds a phase by dotted path ("engine_run.sim_run"); nullptr when absent.
  const PhaseNode* Find(const std::string& path) const;
  // Dotted path of a node index ("" for the root).
  std::string PathOf(size_t index) const;
  size_t open_scopes() const { return stack_.size(); }

  // --- Export ---
  // Folds the deterministic fields of every phase into `registry`:
  //   profile.<path>.calls (counter), profile.<path>.virtual_ms (gauge),
  //   profile.<path>.events (gauge)
  // Wall-clock never reaches the registry, so fingerprinted metric exports stay
  // bit-identical across machines and thread counts.
  void PublishToMetrics(MetricsRegistry* registry) const;
  // Indented tree, one line per phase, wall/virtual/events/calls columns.
  std::string ReportText() const;
  // Machine-readable snapshot: phases (all four fields) + sampled series.
  std::string ToJson() const;

  // Drops all phases and samples (open scopes must be closed first); keeps enabled
  // state, sources, and registered samplers.
  void Reset();

  // Folds `other`'s phase tree and sample series into this profiler, matching phases
  // by path (stats add field-wise). `other` must have no open scopes. Callers merge in
  // a fixed order (worker index, shard index) so double sums stay deterministic for a
  // given thread count. This is how worker-thread phases — recorded into the workers'
  // thread-local profilers — reach the exported tree instead of dying with the thread.
  void MergeFrom(const Profiler& other);

 private:
  friend class ProfileScope;

  // Find-or-create the child `name` under `parent` (shared by Enter and MergeFrom).
  size_t ChildNode(size_t parent, const std::string& name);
  void MergeSubtree(const Profiler& other, size_t src, size_t dst);

  struct Frame {
    size_t node = 0;
    double wall_start = 0.0;
    double virtual_start = 0.0;
    uint64_t events_start = 0;
  };

  // Slow paths behind ProfileScope's inline enabled-check.
  void Enter(const char* name);
  void Exit();
  double WallSeconds() const;

  bool enabled_ = false;
  const double* clock_ = nullptr;
  const uint64_t* events_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<PhaseNode> nodes_;
  std::vector<Frame> stack_;
  std::map<std::string, SampleSeries> samples_;
  std::map<std::string, std::function<double()>> samplers_;
};

// The thread-wide profiler. Enabled at thread startup when TOTORO_PROFILE is set to a
// positive integer; SetEnabled overrides at any time.
Profiler& GlobalProfiler();

// RAII phase scope: accumulates [construction, destruction) into the profiler's
// current-phase child `name`. Inert (one predictable branch) when profiling is off.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    Profiler& profiler = GlobalProfiler();
    if (profiler.enabled()) {
      profiler_ = &profiler;
      profiler.Enter(name);
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->Exit();
    }
  }

 private:
  Profiler* profiler_ = nullptr;
};

}  // namespace totoro

#endif  // SRC_OBS_PROFILER_H_
