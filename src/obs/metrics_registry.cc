#include "src/obs/metrics_registry.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace totoro {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  CHECK(!bounds_.empty());
  CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  bucket_counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

double Histogram::bucket_upper_bound(size_t i) const {
  CHECK_LT(i, bucket_counts_.size());
  return i < bounds_.size() ? bounds_[i] : std::numeric_limits<double>::infinity();
}

double Histogram::ApproxQuantile(double q) const {
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  if (count_ == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    if (bucket_counts_[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += bucket_counts_[i];
    if (static_cast<double>(cumulative) < target) {
      continue;
    }
    // Interpolate within [lower, upper] of this bucket; the exact min/max clamp the
    // open-ended first and overflow buckets.
    const double lower = i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
    const double upper = i < bounds_.size() ? std::min(max_, bounds_[i]) : max_;
    const double fraction =
        (target - before) / static_cast<double>(bucket_counts_[i]);
    return std::clamp(lower + fraction * (upper - lower), min_, max_);
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(bucket_counts_.begin(), bucket_counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void Histogram::MergeFrom(const Histogram& other) {
  CHECK(bounds_ == other.bounds_);
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    bucket_counts_[i] += other.bucket_counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.5; b <= 65536.0; b *= 2.0) {
    bounds.push_back(b);
  }
  return bounds;
}

std::vector<double> Histogram::HopCountBounds() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32};
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetValues() {
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Increment(counter->value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Set(gauge->value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(name, histogram->bounds()).MergeFrom(*histogram);
  }
}

MetricsRegistry& GlobalMetrics() {
  // One registry per THREAD (see GlobalTracer): parallel bench trials record into
  // their worker thread's registry, keeping hot-path recording lock-free. Hot-path
  // caches of series pointers must therefore be thread_local too.
  // LINT: thread-confined this IS the per-thread sink; folds run with workers parked.
  static thread_local MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace totoro
