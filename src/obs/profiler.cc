#include "src/obs/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"

namespace totoro {

namespace {

// Phase names become metric-name segments (`profile.<path>.calls`), so they must obey
// the same grammar totoro_lint's R4 enforces for literal names.
bool ValidPhaseName(const char* name) {
  if (name == nullptr || name[0] < 'a' || name[0] > 'z') {
    return false;
  }
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

void AppendF(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buffer,
                static_cast<size_t>(std::min(n, static_cast<int>(sizeof(buffer) - 1))));
  }
}

}  // namespace

void SampleSeries::Record(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  last = value;
}

Profiler::Profiler() : epoch_(std::chrono::steady_clock::now()) {
  enabled_ = EnvInt64("TOTORO_PROFILE", 0, 0) > 0;
  nodes_.push_back(PhaseNode{});  // Synthetic root: parent 0 (itself), depth 0.
}

double Profiler::WallSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

size_t Profiler::ChildNode(size_t parent, const std::string& name) {
  auto it = nodes_[parent].children.find(name);
  if (it != nodes_[parent].children.end()) {
    return it->second;
  }
  const size_t node = nodes_.size();
  PhaseNode fresh;
  fresh.name = name;
  fresh.parent = parent;
  fresh.depth = nodes_[parent].depth + 1;
  nodes_[parent].children.emplace(fresh.name, node);
  nodes_.push_back(std::move(fresh));
  return node;
}

void Profiler::Enter(const char* name) {
  CHECK(ValidPhaseName(name));
  const size_t parent = stack_.empty() ? 0 : stack_.back().node;
  const size_t node = ChildNode(parent, name);
  Frame frame;
  frame.node = node;
  frame.wall_start = WallSeconds();
  frame.virtual_start = clock_ != nullptr ? *clock_ : 0.0;
  frame.events_start = events_ != nullptr ? *events_ : 0;
  stack_.push_back(frame);
}

void Profiler::Exit() {
  CHECK(!stack_.empty());
  const Frame frame = stack_.back();
  stack_.pop_back();
  PhaseStats& stats = nodes_[frame.node].stats;
  stats.calls += 1;
  stats.wall_seconds += WallSeconds() - frame.wall_start;
  if (clock_ != nullptr) {
    stats.virtual_ms += *clock_ - frame.virtual_start;
  }
  if (events_ != nullptr) {
    stats.events += *events_ - frame.events_start;
  }
}

void Profiler::AddSampler(const std::string& name, std::function<double()> fn) {
  CHECK(ValidPhaseName(name.c_str()));
  samplers_[name] = std::move(fn);
}

void Profiler::RemoveSampler(const std::string& name) { samplers_.erase(name); }

void Profiler::Sample() {
  if (!enabled_) {
    return;
  }
  for (const auto& [name, fn] : samplers_) {
    samples_[name].Record(fn());
  }
}

void Profiler::RecordSample(const std::string& name, double value) {
  if (!enabled_) {
    return;
  }
  samples_[name].Record(value);
}

const Profiler::PhaseNode* Profiler::Find(const std::string& path) const {
  size_t node = 0;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t dot = path.find('.', start);
    const std::string segment =
        path.substr(start, dot == std::string::npos ? std::string::npos : dot - start);
    auto it = nodes_[node].children.find(segment);
    if (it == nodes_[node].children.end()) {
      return nullptr;
    }
    node = it->second;
    if (dot == std::string::npos) {
      break;
    }
    start = dot + 1;
  }
  return &nodes_[node];
}

std::string Profiler::PathOf(size_t index) const {
  CHECK_LT(index, nodes_.size());
  std::string path;
  while (index != 0) {
    path = path.empty() ? nodes_[index].name : nodes_[index].name + "." + path;
    index = nodes_[index].parent;
  }
  return path;
}

// Pre-order walk in child-name order so every export is deterministic.
namespace {
void WalkPreOrder(const std::vector<Profiler::PhaseNode>& nodes, size_t index,
                  const std::function<void(size_t)>& visit) {
  if (index != 0) {
    visit(index);
  }
  for (const auto& [name, child] : nodes[index].children) {
    (void)name;
    WalkPreOrder(nodes, child, visit);
  }
}
}  // namespace

void Profiler::PublishToMetrics(MetricsRegistry* registry) const {
  WalkPreOrder(nodes_, 0, [this, registry](size_t index) {
    const PhaseNode& node = nodes_[index];
    const std::string prefix = "profile." + PathOf(index);
    registry->GetCounter(prefix + ".calls").Increment(node.stats.calls);
    registry->GetGauge(prefix + ".virtual_ms").Set(node.stats.virtual_ms);
    registry->GetGauge(prefix + ".events").Set(static_cast<double>(node.stats.events));
  });
}

std::string Profiler::ReportText() const {
  std::string out;
  out.append("phase                                   calls      wall_s   virtual_ms      events\n");
  WalkPreOrder(nodes_, 0, [this, &out](size_t index) {
    const PhaseNode& node = nodes_[index];
    std::string label(static_cast<size_t>(node.depth - 1) * 2, ' ');
    label += node.name;
    AppendF(&out, "%-36s %10" PRIu64 " %11.4f %12.3f %11" PRIu64 "\n", label.c_str(),
            node.stats.calls, node.stats.wall_seconds, node.stats.virtual_ms,
            node.stats.events);
  });
  for (const auto& [name, series] : samples_) {
    AppendF(&out, "sample %-24s n=%" PRIu64 " min=%.3f mean=%.3f max=%.3f last=%.3f\n",
            name.c_str(), series.count, series.min, series.mean(), series.max,
            series.last);
  }
  return out;
}

std::string Profiler::ToJson() const {
  std::string out("{\"phases\":{");
  bool first = true;
  WalkPreOrder(nodes_, 0, [this, &out, &first](size_t index) {
    const PhaseNode& node = nodes_[index];
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(PathOf(index)));
    AppendF(&out,
            "\":{\"calls\":%" PRIu64 ",\"wall_seconds\":%.6f,\"virtual_ms\":%.6f,"
            "\"events\":%" PRIu64 "}",
            node.stats.calls, node.stats.wall_seconds, node.stats.virtual_ms,
            node.stats.events);
  });
  out.append("},\"samples\":{");
  first = true;
  for (const auto& [name, series] : samples_) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(name));
    AppendF(&out,
            "\":{\"count\":%" PRIu64 ",\"min\":%.6f,\"mean\":%.6f,\"max\":%.6f,"
            "\"last\":%.6f}",
            series.count, series.min, series.mean(), series.max, series.last);
  }
  out.append("}}");
  return out;
}

void Profiler::Reset() {
  CHECK(stack_.empty());
  nodes_.clear();
  nodes_.push_back(PhaseNode{});
  samples_.clear();
}

void Profiler::MergeSubtree(const Profiler& other, size_t src, size_t dst) {
  for (const auto& [name, src_child] : other.nodes_[src].children) {
    const size_t dst_child = ChildNode(dst, name);
    const PhaseStats& in = other.nodes_[src_child].stats;
    PhaseStats& out = nodes_[dst_child].stats;
    out.calls += in.calls;
    out.wall_seconds += in.wall_seconds;
    out.virtual_ms += in.virtual_ms;
    out.events += in.events;
    MergeSubtree(other, src_child, dst_child);
  }
}

void Profiler::MergeFrom(const Profiler& other) {
  CHECK(other.stack_.empty());  // A phase still open on another thread can't fold.
  MergeSubtree(other, 0, 0);
  for (const auto& [name, series] : other.samples_) {
    SampleSeries& out = samples_[name];
    if (series.count == 0) {
      continue;
    }
    if (out.count == 0) {
      out = series;
      continue;
    }
    out.min = std::min(out.min, series.min);
    out.max = std::max(out.max, series.max);
    out.count += series.count;
    out.sum += series.sum;
    out.last = series.last;  // Merge order is fixed, so this stays deterministic.
  }
}

Profiler& GlobalProfiler() {
  // LINT: thread-confined this IS the per-thread sink; folds run with workers parked.
  static thread_local Profiler profiler;
  return profiler;
}

}  // namespace totoro
