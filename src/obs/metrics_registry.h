// Named metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Protocol layers register series here instead of growing bespoke structs. Naming
// convention is `layer.object.unit` — e.g. `dht.route.hops`,
// `pubsub.broadcast.latency_ms`, `engine.round.duration_ms`, `bandit.path.regret`.
//
// Registration returns a stable reference that is never invalidated (the registry only
// ever resets values, never deletes series), so hot paths cache the pointer once:
//
//   static thread_local Histogram* hops =
//       &GlobalMetrics().GetHistogram("dht.route.hops", Histogram::HopCountBounds());
//   hops->Observe(env.hops);
//
// (thread_local because the registry itself is per-thread — see GlobalMetrics().)
//
// Everything is deterministic: iteration order is the series name order (std::map), and
// recording has no effect on simulation behaviour, so metrics stay on even in
// determinism tests. Exporters (JSON snapshot, CSV) live in export.h.
#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace totoro {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram. Bucket i counts observations v with v <= upper_bounds[i]
// (and > upper_bounds[i-1]); one implicit overflow bucket catches the rest. min/max/sum
// are tracked exactly, so Max()/Mean() are bucket-independent.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Buckets 0..num_buckets()-1; the last is the overflow bucket.
  size_t num_buckets() const { return bucket_counts_.size(); }
  uint64_t bucket_count(size_t i) const { return bucket_counts_.at(i); }
  // Upper bound of bucket i; infinity for the overflow bucket.
  double bucket_upper_bound(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }

  // Quantile estimate by linear interpolation inside the containing bucket, clamped to
  // the exact [min, max]. q in [0, 1].
  double ApproxQuantile(double q) const;

  void Reset();

  // Folds another histogram's observations into this one. Bounds must match (CHECKed).
  // Summation order is caller-controlled, so deterministic folds (fixed shard order)
  // give bit-identical sums.
  void MergeFrom(const Histogram& other);

  // Exponential virtual-ms bounds 0.5 .. 65536 (covers one NIC hop to a long round).
  static std::vector<double> DefaultLatencyBoundsMs();
  // Small-integer bounds 0..32 for hop/fan-out style counts.
  static std::vector<double> HopCountBounds();

 private:
  std::vector<double> bounds_;          // Ascending upper bounds.
  std::vector<uint64_t> bucket_counts_; // bounds_.size() + 1 (overflow last).
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Get-or-create by name. For histograms the bounds apply only on first registration.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = Histogram::DefaultLatencyBoundsMs());

  // Lookup without creating; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Name-ordered views for exporters.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const { return counters_; }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  // Zeroes every series but keeps registrations, so cached pointers stay valid.
  void ResetValues();

  // Folds `other` into this registry: counters add, histograms merge (bounds adopted on
  // first sight), gauges overwrite (last writer wins — callers merge shards in fixed
  // order). Series absent here are registered. `other` is untouched; the sharded
  // coordinator resets worker registries separately after each fold.
  void MergeFrom(const MetricsRegistry& other);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The thread-wide registry (series live for the thread's lifetime). Each thread gets
// its own instance so the parallel bench runner's per-thread trials never contend or
// interleave; single-threaded programs see exactly the old process-wide behaviour.
MetricsRegistry& GlobalMetrics();

}  // namespace totoro

#endif  // SRC_OBS_METRICS_REGISTRY_H_
