// Exporters for traces and metric snapshots.
//
// Three formats:
//  - Chrome trace-event JSON (TraceToChromeJson): load the file in chrome://tracing or
//    https://ui.perfetto.dev. Virtual time is the clock — `ts` is virtual microseconds,
//    `pid` is 0 (one simulated world), `tid` is the HostId, and every event carries
//    trace_id / span_id / parent_span_id args so causal chains survive the export.
//  - JSON metrics snapshot (MetricsToJson): counters, gauges, and full histogram bucket
//    vectors, machine-readable.
//  - CSV metrics dump (MetricsToCsv): `kind,name,field,value` rows consumable by the
//    bench/ harnesses and spreadsheets.
//
// Output is deterministic: spans export in record order, metrics in name order.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace totoro {

class Profiler;

std::string TraceToChromeJson(const Tracer& tracer);
// Flame-graph-style view of the profiler's accumulated phase tree: one "X" event per
// phase, children laid out sequentially inside their parent, durations in wall-clock
// microseconds. Loadable in chrome://tracing / Perfetto like TraceToChromeJson output.
std::string ProfilerToChromeJson(const Profiler& profiler);
std::string MetricsToJson(const MetricsRegistry& registry);
std::string MetricsToCsv(const MetricsRegistry& registry);

// FNV-1a over a byte string: the cheap determinism probe. Two runs (or the same run
// at different TOTORO_COMPUTE_THREADS) are byte-identical iff the fingerprints of
// their exports match; benches print the fingerprint instead of megabytes of JSON.
uint64_t FingerprintBytes(std::string_view bytes);
// Fingerprints of the full JSON metric snapshot / Chrome trace export.
uint64_t MetricsFingerprint(const MetricsRegistry& registry);
uint64_t TraceFingerprint(const Tracer& tracer);

// Writes `content` to `path`; returns false (and logs) on failure.
bool WriteStringToFile(const std::string& path, const std::string& content);

// Escapes a string for embedding in a JSON string literal (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace totoro

#endif  // SRC_OBS_EXPORT_H_
