// Uniform machine-readable bench output.
//
// Every binary in bench/ builds one BenchReport next to its ASCII tables and calls
// Write(), producing `BENCH_<name>.json` in TOTORO_BENCH_REPORT_DIR (default: the
// current directory; the literal value "off" suppresses the file entirely). The file
// is the machine-readable record CI diffs against a committed baseline with
// tools/benchdiff — see DESIGN.md "Perf telemetry & regression gating".
//
// Schema (version 1):
//   {
//     "schema": 1,
//     "name": "<bench name>",
//     "meta": { "<key>": "<string value>", ... },          // seed, threads, workload…
//     "metrics": {
//       "<metric>": { "value": <num>, "unit": "<unit>", "tolerance": <num> }, ...
//     },
//     "fingerprints": { "<probe>": "<16 hex chars>", ... }  // FingerprintBytes values
//   }
//
// `tolerance` is the per-metric relative noise budget benchdiff honours: 0 means the
// value is deterministic and must compare exactly (virtual-time results, counts);
// a positive value marks a wall-clock metric where only regressions beyond the budget
// matter. Fingerprints always compare exactly.
//
// Output is deterministic: maps are name-ordered, values print with %.17g so doubles
// round-trip, and no timestamps are embedded — two identical runs produce byte-equal
// files.
#ifndef SRC_OBS_BENCH_REPORT_H_
#define SRC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>

namespace totoro {

class BenchReport {
 public:
  struct Metric {
    double value = 0.0;
    std::string unit;
    double tolerance = 0.0;  // Relative; 0 = exact compare.
  };

  // `name` must be [a-z0-9_]+ — it becomes the BENCH_<name>.json filename.
  explicit BenchReport(const std::string& name);

  const std::string& name() const { return name_; }

  void SetMeta(const std::string& key, const std::string& value);
  void SetMetric(const std::string& name, double value, const std::string& unit,
                 double tolerance);
  void SetFingerprint(const std::string& name, uint64_t fingerprint);

  const std::map<std::string, std::string>& meta() const { return meta_; }
  const std::map<std::string, Metric>& metrics() const { return metrics_; }
  const std::map<std::string, uint64_t>& fingerprints() const { return fingerprints_; }

  std::string ToJson() const;

  // Writes BENCH_<name>.json into `dir` (no env involved). Returns false on IO error.
  bool WriteTo(const std::string& dir) const;
  // Resolves TOTORO_BENCH_REPORT_DIR (default "."), honours the "off" sentinel, writes
  // the file, and prints a stable `bench-report: <path>` line to stdout on success.
  // Returns false only on IO error (a disabled write returns true).
  bool Write() const;

 private:
  std::string name_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, Metric> metrics_;
  std::map<std::string, uint64_t> fingerprints_;
};

}  // namespace totoro

#endif  // SRC_OBS_BENCH_REPORT_H_
