#include "src/obs/trace.h"

#include "src/common/check.h"

namespace totoro {

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), record_(std::move(other.record_)) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::AddArg(std::string key, std::string value) {
  if (active()) {
    record_.args.emplace_back(std::move(key), std::move(value));
  }
}

void TraceSpan::End() {
  if (!active()) {
    return;
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.end_ms = tracer->NowMs();
  tracer->EndSpan(std::move(record_));
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) {
  if (GlobalTracer().enabled() && ctx.valid()) {
    GlobalTracer().PushScope(ctx);
    pushed_ = true;
  }
}

ScopedTraceContext::~ScopedTraceContext() {
  if (pushed_) {
    GlobalTracer().PopScope();
  }
}

TraceSpan Tracer::BeginImpl(const char* name, const char* category, uint32_t host,
                            TraceContext parent) {
  SpanRecord record;
  record.trace_id = parent.valid() ? parent.trace_id : NextTraceId();
  record.span_id = NextSpanId();
  record.parent_span_id = parent.span_id;
  record.name = name;
  record.category = category;
  record.host = host;
  record.start_ms = NowMs();
  PushScope(TraceContext{record.trace_id, record.span_id});
  return TraceSpan(this, std::move(record));
}

void Tracer::EndSpan(SpanRecord record) {
  // Spans close LIFO (RAII scopes in a single-threaded simulator).
  CHECK(!scope_.empty());
  CHECK_EQ(scope_.back().span_id, record.span_id);
  PopScope();
  spans_.push_back(std::move(record));
}

TraceContext Tracer::RecordCompleteImpl(const char* name, const char* category,
                                        uint32_t host, double start_ms, double end_ms,
                                        TraceContext parent, TraceArgs args) {
  const TraceContext ctx{parent.valid() ? parent.trace_id : NextTraceId(),
                         NextSpanId()};
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.parent_span_id = parent.span_id;
  record.name = name;
  record.category = category;
  record.host = host;
  record.start_ms = start_ms;
  record.end_ms = end_ms;
  record.args = std::move(args);
  spans_.push_back(std::move(record));
  return ctx;
}

void Tracer::InstantAtImpl(const char* name, const char* category, uint32_t host,
                           double at_ms, TraceContext parent, TraceArgs args) {
  SpanRecord record;
  record.trace_id = parent.valid() ? parent.trace_id : NextTraceId();
  record.span_id = NextSpanId();
  record.parent_span_id = parent.span_id;
  record.name = name;
  record.category = category;
  record.host = host;
  record.start_ms = at_ms;
  record.end_ms = at_ms;
  record.instant = true;
  record.args = std::move(args);
  spans_.push_back(std::move(record));
}

void Tracer::EmitSpan(TraceContext ctx, uint64_t parent_span_id, const char* name,
                      const char* category, uint32_t host, double start_ms, double end_ms,
                      TraceArgs args) {
  if (!ctx.valid()) {
    return;
  }
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.parent_span_id = parent_span_id;
  record.name = name;
  record.category = category;
  record.host = host;
  record.start_ms = start_ms;
  record.end_ms = end_ms;
  record.args = std::move(args);
  spans_.push_back(std::move(record));
}

void Tracer::Clear() {
  spans_.clear();
  next_trace_id_ = 1;
  next_span_id_ = 1;
}

Tracer& GlobalTracer() {
  // One tracer per THREAD: the simulation itself is single-threaded, but the parallel
  // bench runner fans independent Simulators across worker threads, and each must see
  // its own isolated span sink for trials to stay bit-identical to sequential runs.
  // Intentionally leaked so destruction order never races thread teardown.
  // LINT: thread-confined this IS the per-thread sink; folds run with workers parked.
  static thread_local Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace totoro
