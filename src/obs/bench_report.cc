#include "src/obs/bench_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"

namespace totoro {

namespace {

bool ValidReportName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

void AppendF(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buffer,
                static_cast<size_t>(std::min(n, static_cast<int>(sizeof(buffer) - 1))));
  }
}

}  // namespace

BenchReport::BenchReport(const std::string& name) : name_(name) {
  CHECK(ValidReportName(name));
}

void BenchReport::SetMeta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void BenchReport::SetMetric(const std::string& name, double value,
                            const std::string& unit, double tolerance) {
  Metric m;
  m.value = value;
  m.unit = unit;
  m.tolerance = tolerance;
  metrics_[name] = std::move(m);
}

void BenchReport::SetFingerprint(const std::string& name, uint64_t fingerprint) {
  fingerprints_[name] = fingerprint;
}

std::string BenchReport::ToJson() const {
  std::string out("{\"schema\":1,\"name\":\"");
  out.append(JsonEscape(name_));
  out.append("\",\"meta\":{");
  bool first = true;
  for (const auto& [key, value] : meta_) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(key));
    out.append("\":\"");
    out.append(JsonEscape(value));
    out.append("\"");
  }
  out.append("},\"metrics\":{");
  first = true;
  for (const auto& [name, metric] : metrics_) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(name));
    AppendF(&out, "\":{\"value\":%.17g,\"unit\":\"", metric.value);
    out.append(JsonEscape(metric.unit));
    AppendF(&out, "\",\"tolerance\":%.17g}", metric.tolerance);
  }
  out.append("},\"fingerprints\":{");
  first = true;
  for (const auto& [name, fingerprint] : fingerprints_) {
    if (!first) {
      out.append(",");
    }
    first = false;
    out.append("\"");
    out.append(JsonEscape(name));
    AppendF(&out, "\":\"%016" PRIx64 "\"", fingerprint);
  }
  out.append("}}\n");
  return out;
}

bool BenchReport::WriteTo(const std::string& dir) const {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') {
    path.push_back('/');
  }
  path += "BENCH_" + name_ + ".json";
  if (!WriteStringToFile(path, ToJson())) {
    return false;
  }
  std::printf("bench-report: %s\n", path.c_str());
  return true;
}

bool BenchReport::Write() const {
  const char* dir = EnvString("TOTORO_BENCH_REPORT_DIR");
  const std::string resolved = dir == nullptr ? "." : dir;
  // Surface the phase profile when TOTORO_PROFILE is on: fold the deterministic
  // fields into this thread's metrics registry, print the tree (wall-clock included)
  // to stderr so stdout stays byte-stable, and drop a Chrome trace next to the report.
  Profiler& profiler = GlobalProfiler();
  if (profiler.enabled()) {
    profiler.PublishToMetrics(&GlobalMetrics());
    std::fprintf(stderr, "%s", profiler.ReportText().c_str());
    if (resolved != "off") {
      std::string trace_path = resolved;
      if (!trace_path.empty() && trace_path.back() != '/') {
        trace_path.push_back('/');
      }
      trace_path += "PROFILE_" + name_ + ".json";
      if (WriteStringToFile(trace_path, ProfilerToChromeJson(profiler))) {
        std::fprintf(stderr, "profile-trace: %s\n", trace_path.c_str());
      }
    }
  }
  if (resolved == "off") {
    return true;
  }
  return WriteTo(resolved);
}

}  // namespace totoro
