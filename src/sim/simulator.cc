#include "src/sim/simulator.h"

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace totoro {

Simulator::Simulator() {
  GlobalTracer().SetClockSource(&now_);
  SetLogTimeSource(&now_);
}

Simulator::~Simulator() {
  if (GlobalTracer().clock_source() == &now_) {
    GlobalTracer().SetClockSource(nullptr);
  }
  if (GetLogTimeSource() == &now_) {
    SetLogTimeSource(nullptr);
  }
}

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  CHECK_GE(delay, 0.0);
  return queue_.Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  CHECK_GE(at, now_);
  return queue_.Push(at, std::move(fn));
}

size_t Simulator::Run(size_t max_events) {
  size_t fired = 0;
  while (fired < max_events && !queue_.Empty()) {
    SimTime at = now_;
    std::function<void()> fn;
    if (!queue_.PopNext(&at, &fn)) {
      break;
    }
    CHECK_GE(at, now_);
    now_ = at;  // Advance the clock before the event observes it.
    fn();
    ++fired;
  }
  return fired;
}

size_t Simulator::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  size_t fired = 0;
  while (!queue_.Empty() && queue_.NextTime() <= t) {
    SimTime at = now_;
    std::function<void()> fn;
    if (!queue_.PopNext(&at, &fn)) {
      break;
    }
    now_ = at;
    fn();
    ++fired;
  }
  now_ = t;
  return fired;
}

}  // namespace totoro
