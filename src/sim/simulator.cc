#include "src/sim/simulator.h"

#include <chrono>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace totoro {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

double Simulator::WallClockSeconds() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return SecondsSince(epoch);
}

Simulator::Simulator() {
  GlobalTracer().SetClockSource(&now_);
  SetLogTimeSource(&now_);
  GlobalProfiler().SetClockSource(&now_);
  GlobalProfiler().SetEventCountSource(&events_fired_);
  fired_counter_ = &GlobalMetrics().GetCounter("sim.events_fired");
  cancelled_counter_ = &GlobalMetrics().GetCounter("sim.events_cancelled");
}

Simulator::~Simulator() {
  SyncCancelledCounter();
  if (GlobalTracer().clock_source() == &now_) {
    GlobalTracer().SetClockSource(nullptr);
  }
  if (GetLogTimeSource() == &now_) {
    SetLogTimeSource(nullptr);
  }
  if (GlobalProfiler().clock_source() == &now_) {
    GlobalProfiler().SetClockSource(nullptr);
  }
  if (GlobalProfiler().event_count_source() == &events_fired_) {
    GlobalProfiler().SetEventCountSource(nullptr);
  }
}

EventHandle Simulator::Schedule(SimTime delay, EventFn fn) {
  CHECK_GE(delay, 0.0);
  return queue_.Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime at, EventFn fn) {
  CHECK_GE(at, now_);
  return queue_.Push(at, std::move(fn));
}

EventHandle Simulator::ScheduleRejoin(SimTime delay, EventFn fn) {
  ++rejoins_scheduled_;
  return Schedule(delay, std::move(fn));
}

template <typename StopCondition>
size_t Simulator::RunLoop(size_t max_events, StopCondition keep_going) {
  if (queue_.Empty()) {
    return 0;
  }
  // Closes after events_fired_ is folded below, so the scope's event delta is exact.
  ProfileScope profile_scope("sim_run");
  const auto start = std::chrono::steady_clock::now();
  size_t fired = 0;
  SimTime at = now_;
  EventFn fn;
  while (fired < max_events && !queue_.Empty() && keep_going()) {
    if (!queue_.PopNext(&at, &fn)) {
      break;
    }
    CHECK_GE(at, now_);
    now_ = at;  // Advance the clock before the event observes it.
    fn();
    ++fired;
    if (sample_every_ != 0 && ++events_since_sample_ >= sample_every_) {
      events_since_sample_ = 0;
      SamplePeriodic(events_fired_ + fired, run_wall_seconds_ + SecondsSince(start),
                     queue_.Size());
    }
  }
  fn.Reset();  // Destroy the last callback before the timer stops.
  run_wall_seconds_ += SecondsSince(start);
  events_fired_ += fired;
  fired_counter_->Increment(fired);
  SyncCancelledCounter();
  return fired;
}

size_t Simulator::Run(size_t max_events) {
  return RunLoop(max_events, [] { return true; });
}

size_t Simulator::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  const size_t fired = RunLoop(SIZE_MAX, [this, t] { return queue_.NextTime() <= t; });
  now_ = t;
  return fired;
}

void Simulator::SyncCancelledCounter() {
  const uint64_t total = queue_.cancelled_total();
  cancelled_counter_->Increment(total - cancelled_synced_);
  cancelled_synced_ = total;
}

double Simulator::EventsPerSecond() const {
  if (events_fired_ == 0 || run_wall_seconds_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(events_fired_) / run_wall_seconds_;
}

Gauge& Simulator::ThroughputGauge() {
  if (throughput_gauge_ == nullptr) {
    throughput_gauge_ = &GlobalMetrics().GetGauge("sim.events_per_sec");
  }
  return *throughput_gauge_;
}

void Simulator::PublishThroughputMetrics() { ThroughputGauge().Set(EventsPerSecond()); }

void Simulator::AccumulatePeriodicSample(uint64_t fired_delta, uint64_t total_fired,
                                         double wall_now, size_t queue_depth) {
  if (sample_every_ == 0 || fired_delta == 0) {
    return;
  }
  events_since_sample_ += fired_delta;
  if (events_since_sample_ < sample_every_) {
    return;
  }
  events_since_sample_ %= sample_every_;
  SamplePeriodic(total_fired, wall_now, queue_depth);
}

void Simulator::SamplePeriodic(uint64_t total_fired, double wall_now,
                               size_t queue_depth) {
  const double dt = wall_now - window_start_wall_;
  if (dt > 0.0) {
    live_events_per_sec_ =
        static_cast<double>(total_fired - window_start_fired_) / dt;
    ThroughputGauge().Set(live_events_per_sec_);
  }
  window_start_fired_ = total_fired;
  window_start_wall_ = wall_now;
  Profiler& profiler = GlobalProfiler();
  profiler.RecordSample("sim_queue_depth", static_cast<double>(queue_depth));
  profiler.Sample();
}

}  // namespace totoro
