// Simulated network message.
//
// Messages carry a module-defined opcode, a size in bytes (which drives transmission
// time and traffic accounting), a traffic class + transport (for the Fig. 7 overhead
// breakdown), and a type-erased shared payload. The simulation is single-threaded and
// payloads are immutable after send, so sharing one allocation among all recipients of a
// broadcast is safe and keeps large fan-outs cheap.
#ifndef SRC_SIM_MESSAGE_H_
#define SRC_SIM_MESSAGE_H_

#include <cstdint>
#include <memory>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace totoro {

using HostId = uint32_t;
inline constexpr HostId kInvalidHost = UINT32_MAX;

// What the bytes are for — used by per-node traffic accounting (Fig. 7, Fig. 13).
enum class TrafficClass : uint8_t {
  kControl = 0,        // Generic protocol control.
  kDhtMaintenance = 1, // Overlay join/repair/keep-alive.
  kTreeControl = 2,    // Pub/sub JOIN, children-table upkeep.
  kModel = 3,          // Model broadcast payloads.
  kGradient = 4,       // Gradient/update aggregation payloads.
};
inline constexpr int kNumTrafficClasses = 5;

// Stable lowercase names for metric series and trace args.
inline const char* TrafficClassName(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kDhtMaintenance:
      return "dht_maintenance";
    case TrafficClass::kTreeControl:
      return "tree_control";
    case TrafficClass::kModel:
      return "model";
    case TrafficClass::kGradient:
      return "gradient";
  }
  return "unknown";
}

enum class Transport : uint8_t { kTcp = 0, kUdp = 1 };

struct Message {
  int type = 0;
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  uint64_t size_bytes = 64;
  TrafficClass traffic = TrafficClass::kControl;
  Transport transport = Transport::kUdp;
  // Overlay forwarding hop count (a TTL-style header field). Multi-hop routing layers
  // stamp it on each forwarded wrapper instead of mutating the shared payload, so one
  // payload allocation can serve an entire route. 0 for direct messages.
  uint8_t hops = 0;
  // Causal trace context. Network::Send stamps it (inheriting the sender's open span
  // when unset) so a broadcast can be reconstructed hop by hop; empty when tracing is
  // disabled.
  TraceContext trace;
  std::shared_ptr<const void> payload;

  template <typename T>
  void SetPayload(T value) {
    payload = std::make_shared<const T>(std::move(value));
  }

  template <typename T>
  const T& As() const {
    CHECK(payload != nullptr);
    return *static_cast<const T*>(payload.get());
  }
};

}  // namespace totoro

#endif  // SRC_SIM_MESSAGE_H_
