// Per-host and global traffic/work accounting.
//
// Fig. 7 reports traffic per node by transport (TCP vs UDP); Fig. 13 splits work into
// FL-related and DHT-related. Because the testbed here is a simulator, overhead is
// tracked by explicit accounting: every sent message updates byte counters, and protocol
// layers report abstract "work units" (a proxy for CPU time) and state bytes (a proxy
// for resident memory).
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/prefetch.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/message.h"

namespace totoro {

struct HostTraffic {
  uint64_t msgs_sent = 0;
  uint64_t msgs_recv = 0;
  uint64_t msgs_dropped = 0;  // Drops attributed to this host (down, lossy, filtered).
  uint64_t bytes_sent = 0;
  uint64_t bytes_recv = 0;
  uint64_t bytes_sent_tcp = 0;
  uint64_t bytes_sent_udp = 0;
  std::array<uint64_t, kNumTrafficClasses> bytes_sent_by_class{};
};

// Work categories for Fig. 13's CPU-overhead split.
enum class WorkKind : uint8_t { kFlTask = 0, kDhtTask = 1 };
inline constexpr int kNumWorkKinds = 2;

struct HostWork {
  // Abstract work units; FL layers charge per parameter touched, DHT layers per
  // routing-table operation.
  std::array<double, kNumWorkKinds> work_units{};
  // Current bytes of long-lived protocol state (routing tables, children tables,
  // buffered models); updated incrementally by the owning layer.
  int64_t state_bytes = 0;
};

class NetworkMetrics {
 public:
  void EnsureHosts(size_t n);
  // Pre-sizes per-host accounting for a known-size topology.
  void Reserve(size_t n);

  // Sharded-simulation mode: gives each of `num_slots` threads (coordinator + shard
  // workers, indexed by internal::ThreadShardSlot()) a private cache-line-aligned lane
  // for the global totals, so concurrent Record* calls never contend. Getters fold all
  // lanes; totals are sums of per-thread sums, so folds are order-independent. Per-host
  // entries need no lanes — a host is only ever touched by the thread owning its shard.
  void ShardGlobalTotals(size_t num_slots);

  void RecordSend(const Message& msg);
  void RecordDelivery(const Message& msg);
  // Hints that `host`'s accounting entry is about to be touched (see prefetch.h). The
  // entry spans more than one cache line; hint every line so ChargeWork and the
  // send/recv counters all land warm.
  void PrefetchHost(HostId host) const {
    if (host < hosts_.size()) {
      const char* p = reinterpret_cast<const char*>(&hosts_[host]);
      for (size_t off = 0; off < sizeof(HostAccounting); off += 64) {
        PrefetchRead(p + off);
      }
    }
  }
  void ChargeWork(HostId host, WorkKind kind, double units);
  void AdjustStateBytes(HostId host, int64_t delta);

  const HostTraffic& traffic(HostId host) const { return hosts_.at(host).traffic; }
  const HostWork& work(HostId host) const { return hosts_.at(host).work; }
  size_t num_hosts() const { return hosts_.size(); }

  uint64_t total_messages() const;
  uint64_t total_bytes() const;
  uint64_t dropped_messages() const;

  // Records a drop attributed to `host` (the host where the message died: the sender
  // when it was down or the link lost the packet, the receiver when it was down, the
  // filtering node for egress rejections), split by traffic class so churn experiments
  // can see which layer loses messages.
  void RecordDrop(HostId host, TrafficClass traffic);
  uint64_t DroppedByClass(TrafficClass c) const;

  // Aggregates across hosts.
  uint64_t TotalBytesTcp() const;
  uint64_t TotalBytesUdp() const;
  uint64_t TotalBytesByClass(TrafficClass c) const;
  double TotalWork(WorkKind kind) const;
  int64_t TotalStateBytes() const;

  // Snapshots the accounting into the named-metrics registry as gauges
  // (net.bytes.sent, net.drops.class.<class>, work.fl.units, ...), so exporters emit
  // one unified view. Gauge semantics: repeated calls overwrite, never double-count.
  void PublishTo(MetricsRegistry& registry) const;

  void Reset();

 private:
  // Traffic and work for one host share a struct (and so a cache neighbourhood): the
  // per-hop pattern "charge DHT work, then record the send" on the same host is two
  // touches of one entry instead of two random-indexed vectors. Work precedes traffic
  // so the per-hop fields (work units plus the leading recv/send counters) pack into
  // the entry's first cache lines.
  struct HostAccounting {
    HostWork work;
    HostTraffic traffic;
  };

  // One thread's lane of the global totals (sharded mode only). Cache-line aligned so
  // neighbouring lanes never false-share on the hot send path.
  struct alignas(64) TotalsLane {
    uint64_t total_messages = 0;
    uint64_t total_bytes = 0;
    uint64_t dropped_messages = 0;
    std::array<uint64_t, kNumTrafficClasses> drops_by_class{};
  };

  std::vector<HostAccounting> hosts_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dropped_messages_ = 0;
  std::array<uint64_t, kNumTrafficClasses> drops_by_class_{};
  std::vector<TotalsLane> lanes_;  // Empty in single-threaded mode (scalar path).
};

}  // namespace totoro

#endif  // SRC_SIM_METRICS_H_
