#include "src/sim/latency_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace totoro {
namespace {

uint64_t MixPair(uint64_t seed, HostId a, HostId b) {
  // Symmetric: order the pair first.
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  uint64_t z = seed ^ (lo * 0x9E3779B97F4A7C15ull) ^ (hi * 0xC2B2AE3D27D4EB4Full);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

double PairwiseUniformLatency::LatencyMs(HostId a, HostId b) const {
  if (a == b) {
    return 0.05;  // Loopback.
  }
  const uint64_t h = MixPair(seed_, a, b);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo_ + (hi_ - lo_) * u;
}

double GeoLatency::LatencyMs(HostId a, HostId b) const {
  CHECK_LT(a, positions_.size());
  CHECK_LT(b, positions_.size());
  if (a == b) {
    return 0.05;
  }
  return EstimateRttMs(positions_[a], positions_[b]) / 2.0;
}

}  // namespace totoro
