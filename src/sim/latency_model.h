// Pairwise propagation-latency models for the simulated network.
#ifndef SRC_SIM_LATENCY_MODEL_H_
#define SRC_SIM_LATENCY_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/geo.h"
#include "src/sim/message.h"

namespace totoro {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way propagation delay in virtual ms between two hosts. Must be symmetric and
  // deterministic for a given pair so repeated sends see a stable base latency.
  virtual double LatencyMs(HostId a, HostId b) const = 0;
  // Lower bound over all pairs, used as the sharded simulator's conservative-barrier
  // lookahead. 0 (the safe default) forces the sharded engine to reject K > 1 rather
  // than risk a causality violation; models that know their floor override this.
  virtual double MinLatencyMs() const { return 0.0; }
};

class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(double ms) : ms_(ms) {}
  double LatencyMs(HostId, HostId) const override { return ms_; }
  double MinLatencyMs() const override { return ms_; }

 private:
  double ms_;
};

// Deterministic per-pair latency drawn uniformly from [lo, hi] by hashing the pair with
// a seed. Models a WAN with heterogeneous but stable link delays.
class PairwiseUniformLatency : public LatencyModel {
 public:
  PairwiseUniformLatency(double lo_ms, double hi_ms, uint64_t seed)
      : lo_(lo_ms), hi_(hi_ms), seed_(seed) {}
  double LatencyMs(HostId a, HostId b) const override;
  double MinLatencyMs() const override { return lo_; }

 private:
  double lo_;
  double hi_;
  uint64_t seed_;
};

// Latency derived from geographic positions (haversine distance at WAN propagation
// speed). One-way latency = RTT estimate / 2.
class GeoLatency : public LatencyModel {
 public:
  explicit GeoLatency(std::vector<GeoPoint> positions) : positions_(std::move(positions)) {}
  double LatencyMs(HostId a, HostId b) const override;
  const std::vector<GeoPoint>& positions() const { return positions_; }

 private:
  std::vector<GeoPoint> positions_;
};

}  // namespace totoro

#endif  // SRC_SIM_LATENCY_MODEL_H_
