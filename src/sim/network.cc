#include "src/sim/network.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/prefetch.h"
#include "src/obs/trace.h"

namespace totoro {

Network::Network(Simulator* sim, std::unique_ptr<LatencyModel> latency, NetworkConfig config)
    : sim_(sim), latency_(std::move(latency)), config_(config) {
  CHECK(sim_ != nullptr);
  CHECK(latency_ != nullptr);
  sharded_ = sim_->sharded();
  if (sharded_) {
    metrics_.ShardGlobalTotals(1 + sim_->num_shards());
  }
}

HostId Network::AddHost(Host* host) {
  CHECK(host != nullptr);
  HostState state;
  state.host = host;
  state.bandwidth_bytes_per_ms = config_.default_bandwidth_bytes_per_ms;
  hosts_.push_back(state);
  metrics_.EnsureHosts(hosts_.size());
  const HostId id = static_cast<HostId>(hosts_.size() - 1);
  sim_->OnHostAdded(id);
  return id;
}

void Network::SetHostUp(HostId id, bool up) {
  CHECK_LT(id, hosts_.size());
  hosts_[id].up = up;
}

bool Network::IsUp(HostId id) const {
  CHECK_LT(id, hosts_.size());
  return hosts_[id].up;
}

void Network::SetHostBandwidth(HostId id, double bytes_per_ms) {
  CHECK_LT(id, hosts_.size());
  CHECK_GT(bytes_per_ms, 0.0);
  hosts_[id].bandwidth_bytes_per_ms = bytes_per_ms;
}

void Network::Send(Message msg) {
  CHECK_LT(msg.src, hosts_.size());
  CHECK_LT(msg.dst, hosts_.size());
  if (sharded_) {
    SendSharded(std::move(msg));
    return;
  }
  auto& src = hosts_[msg.src];
  if (!src.up) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }
  metrics_.RecordSend(msg);
  if (loss_fn_ && loss_fn_(msg)) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }
  FaultAction fault;
  if (fault_fn_ && fault_fn_(msg, &fault) && fault.drop) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }

  const SimTime now = sim_->Now();
  SimTime departure = now;
  if (config_.model_bandwidth) {
    const double tx_time = static_cast<double>(msg.size_bytes) / src.bandwidth_bytes_per_ms;
    src.tx_free_at = std::max(src.tx_free_at, now) + tx_time;
    departure = src.tx_free_at;
  }
  const double prop = latency_->LatencyMs(msg.src, msg.dst) + fault.extra_delay_ms;
  const SimTime arrival_start = departure + prop;

  auto& dst = hosts_[msg.dst];
  SimTime delivery = arrival_start;
  if (config_.model_bandwidth) {
    const double rx_time = static_cast<double>(msg.size_bytes) / dst.bandwidth_bytes_per_ms;
    dst.rx_free_at = std::max(dst.rx_free_at, arrival_start) + rx_time;
    delivery = dst.rx_free_at;
  }

  Tracer& tracer = GlobalTracer();
  if (tracer.enabled()) {
    // The transmission itself is a span [send, delivery] on the sender, parented to the
    // message's existing context (multi-hop forwarding) or the sender's open span.
    const TraceContext parent = msg.trace.valid() ? msg.trace : tracer.current();
    msg.trace = tracer.RecordComplete(
        "net.msg", "net", msg.src, now, delivery, parent,
        {{"dst", std::to_string(msg.dst)},
         {"bytes", std::to_string(msg.size_bytes)},
         {"class", TrafficClassName(msg.traffic)}});
  }

  // The delivery event usually fires as the very next pop; hint its cold reads (the
  // destination's transport state and accounting entry) now so the misses overlap with
  // the scheduling work below.
  PrefetchRead(&hosts_[msg.dst]);
  metrics_.PrefetchHost(msg.dst);

  // Fault-injected duplicates: each extra copy serializes through both NICs after the
  // original, so duplication consumes real bandwidth and arrives strictly later.
  for (int c = 0; c < fault.extra_copies; ++c) {
    metrics_.RecordSend(msg);
    SimTime dup_departure = now;
    if (config_.model_bandwidth) {
      const double tx_time = static_cast<double>(msg.size_bytes) / src.bandwidth_bytes_per_ms;
      src.tx_free_at = std::max(src.tx_free_at, now) + tx_time;
      dup_departure = src.tx_free_at;
    }
    SimTime dup_delivery = dup_departure + prop;
    if (config_.model_bandwidth) {
      const double rx_time = static_cast<double>(msg.size_bytes) / dst.bandwidth_bytes_per_ms;
      dst.rx_free_at = std::max(dst.rx_free_at, dup_delivery) + rx_time;
      dup_delivery = dst.rx_free_at;
    }
    sim_->ScheduleAt(dup_delivery, [this, msg]() {
      auto& dst_state = hosts_[msg.dst];
      if (!dst_state.up) {
        metrics_.RecordDrop(msg.dst, msg.traffic);
        return;
      }
      metrics_.RecordDelivery(msg);
      dst_state.host->HandleMessage(msg);
    });
  }

  auto deliver = [this, msg = std::move(msg)]() {
    auto& dst_state = hosts_[msg.dst];
    // Pull the receiver object in while RecordDelivery runs; HandleMessage dispatches
    // into it immediately after and walks a few cache lines of routing state.
    const char* host_obj = reinterpret_cast<const char*>(dst_state.host);
    PrefetchRead(host_obj);
    PrefetchRead(host_obj + 64);
    PrefetchRead(host_obj + 128);
    PrefetchRead(host_obj + 192);
    if (!dst_state.up) {
      metrics_.RecordDrop(msg.dst, msg.traffic);
      return;
    }
    metrics_.RecordDelivery(msg);
    dst_state.host->HandleMessage(msg);
  };
  // The delivery closure is the hottest event in the system; it must stay within
  // EventFn's inline buffer or every message in flight costs a heap allocation.
  static_assert(sizeof(deliver) <= EventFn::kInlineSize,
                "Message grew: delivery closure no longer fits EventFn inline storage");
  sim_->ScheduleAt(delivery, std::move(deliver));
}

void Network::SendSharded(Message msg) {
  // Src phase — everything here reads/writes only sender-shard state, the (frozen
  // during windows) loss/fault config, and this thread's metrics lane.
  auto& src = hosts_[msg.src];
  if (!src.up) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }
  metrics_.RecordSend(msg);
  if (loss_fn_ && loss_fn_(msg)) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }
  FaultAction fault;
  if (fault_fn_ && fault_fn_(msg, &fault) && fault.drop) {
    metrics_.RecordDrop(msg.src, msg.traffic);
    return;
  }

  const SimTime now = sim_->Now();
  SimTime departure = now;
  if (config_.model_bandwidth) {
    const double tx_time = static_cast<double>(msg.size_bytes) / src.bandwidth_bytes_per_ms;
    src.tx_free_at = std::max(src.tx_free_at, now) + tx_time;
    departure = src.tx_free_at;
  }
  const double prop = latency_->LatencyMs(msg.src, msg.dst) + fault.extra_delay_ms;
  const SimTime arrival = departure + prop;

  Tracer& tracer = GlobalTracer();
  if (tracer.enabled()) {
    // Sharded transmission span covers tx + propagation; rx serialization is the
    // destination's business and can't be known sender-side without crossing shards.
    const TraceContext parent = msg.trace.valid() ? msg.trace : tracer.current();
    msg.trace = tracer.RecordComplete(
        "net.msg", "net", msg.src, now, arrival, parent,
        {{"dst", std::to_string(msg.dst)},
         {"bytes", std::to_string(msg.size_bytes)},
         {"class", TrafficClassName(msg.traffic)}});
  }

  for (int c = 0; c < fault.extra_copies; ++c) {
    metrics_.RecordSend(msg);
    SimTime dup_departure = now;
    if (config_.model_bandwidth) {
      const double tx_time = static_cast<double>(msg.size_bytes) / src.bandwidth_bytes_per_ms;
      src.tx_free_at = std::max(src.tx_free_at, now) + tx_time;
      dup_departure = src.tx_free_at;
    }
    ScheduleArrival(msg, dup_departure + prop);
  }
  ScheduleArrival(msg, arrival);
}

void Network::ScheduleArrival(const Message& msg, SimTime arrival) {
  auto arrive = [this, msg]() { Arrive(msg); };
  static_assert(sizeof(arrive) <= EventFn::kInlineSize,
                "Message grew: arrival closure no longer fits EventFn inline storage");
  sim_->ScheduleMessageArrival(msg.src, msg.dst, arrival, std::move(arrive));
}

void Network::Arrive(const Message& msg) {
  auto& dst = hosts_[msg.dst];
  if (config_.model_bandwidth) {
    const SimTime now = sim_->Now();
    const double rx_time = static_cast<double>(msg.size_bytes) / dst.bandwidth_bytes_per_ms;
    dst.rx_free_at = std::max(dst.rx_free_at, now) + rx_time;
    // rx serialization happens in the destination's canonical event order (not at the
    // K-dependent send instant), so NIC backlog evolution is shard-layout-blind.
    if (dst.rx_free_at > now) {
      sim_->Schedule(dst.rx_free_at - now, [this, msg]() { Deliver(msg); });
      return;
    }
  }
  Deliver(msg);
}

void Network::Deliver(const Message& msg) {
  auto& dst_state = hosts_[msg.dst];
  if (!dst_state.up) {
    metrics_.RecordDrop(msg.dst, msg.traffic);
    return;
  }
  metrics_.RecordDelivery(msg);
  dst_state.host->HandleMessage(msg);
}

void Network::ReserveHosts(size_t n) {
  hosts_.reserve(n);
  metrics_.Reserve(n);
}

}  // namespace totoro
