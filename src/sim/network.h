// Simulated message-passing network connecting hosts.
//
// Delivery time = sender NIC queueing + transmission (size / uplink bandwidth) +
// propagation latency + receiver NIC queueing + reception (size / downlink bandwidth).
// Modelling both NIC sides matters: the centralized FL baseline's parameter server
// bottlenecks on its downlink when many clients upload gradients concurrently, which is
// the mechanism behind Table 3's speedup trend. Hosts can be marked down (churn);
// messages to down hosts are silently dropped and counted, matching UDP loss semantics —
// higher layers recover via keep-alive timers exactly as the paper's §4.5 describes.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/latency_model.h"
#include "src/sim/message.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace totoro {

class Host {
 public:
  virtual ~Host() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

struct NetworkConfig {
  // Default per-host bandwidth in bytes per virtual ms (12500 B/ms = 100 Mbit/s).
  double default_bandwidth_bytes_per_ms = 12500.0;
  // When true, NIC serialization (queueing) is modelled; when false only propagation
  // latency applies. Hop-count-style experiments disable it for clarity.
  bool model_bandwidth = true;
};

// What a fault hook does to one message in flight. Drop wins over everything;
// otherwise the message is delivered `1 + extra_copies` times, each delivery delayed by
// `extra_delay_ms` on top of the normal transport time. A large enough delay makes the
// message arrive after later sends — that is how reordering is injected.
struct FaultAction {
  bool drop = false;
  int extra_copies = 0;
  double extra_delay_ms = 0.0;
};

class Network {
 public:
  Network(Simulator* sim, std::unique_ptr<LatencyModel> latency, NetworkConfig config = {});

  // Registers a host (non-owning) and returns its id. Hosts start up.
  HostId AddHost(Host* host);
  size_t num_hosts() const { return hosts_.size(); }

  // Pre-sizes host state (and per-host metrics) for a known-size topology so AddHost
  // never reallocates during construction of large overlays.
  void ReserveHosts(size_t n);

  void SetHostUp(HostId id, bool up);
  bool IsUp(HostId id) const;

  // Overrides the uplink/downlink bandwidth of one host (e.g. a beefy parameter server).
  void SetHostBandwidth(HostId id, double bytes_per_ms);

  // Sends msg from msg.src to msg.dst. src must be up; if dst is down or the message is
  // lost, it is dropped (counted in metrics). Self-sends are delivered with loopback
  // latency.
  void Send(Message msg);

  // Optional per-message loss hook: return true to drop. Used for unreliable-link
  // experiments at the transport level.
  void SetLossFn(std::function<bool(const Message&)> fn) { loss_fn_ = std::move(fn); }

  // Optional per-message fault hook (partitions, correlated flaps, duplicate/delay
  // injection — see src/faultsim). Runs after loss_fn_; fills `*action` and returns
  // true when the message is affected. At most one hook; the FaultInjector owns it.
  using FaultFn = std::function<bool(const Message&, FaultAction*)>;
  void SetFaultFn(FaultFn fn) { fault_fn_ = std::move(fn); }
  bool HasFaultFn() const { return fault_fn_ != nullptr; }

  double LatencyMs(HostId a, HostId b) const { return latency_->LatencyMs(a, b); }
  const LatencyModel& latency_model() const { return *latency_; }

  Simulator* sim() { return sim_; }
  NetworkMetrics& metrics() { return metrics_; }
  const NetworkMetrics& metrics() const { return metrics_; }

 private:
  struct HostState {
    Host* host = nullptr;
    bool up = true;
    double bandwidth_bytes_per_ms = 0.0;
    SimTime tx_free_at = 0.0;
    SimTime rx_free_at = 0.0;
  };

  // Two-phase send for the sharded engine: the src side (liveness, send accounting,
  // loss/fault hooks, tx serialization, propagation) runs in the sender's execution
  // context, then a single arrival event — routed to the destination's shard — performs
  // rx serialization and delivery, so each host's NIC state is only ever touched by the
  // thread owning its shard. The legacy single-queue path is byte-for-byte untouched.
  void SendSharded(Message msg);
  void ScheduleArrival(const Message& msg, SimTime arrival);
  // Runs in the destination's execution context at the arrival timestamp.
  void Arrive(const Message& msg);
  void Deliver(const Message& msg);

  Simulator* sim_;
  bool sharded_ = false;
  std::unique_ptr<LatencyModel> latency_;
  NetworkConfig config_;
  std::vector<HostState> hosts_;
  NetworkMetrics metrics_;
  std::function<bool(const Message&)> loss_fn_;
  FaultFn fault_fn_;
};

}  // namespace totoro

#endif  // SRC_SIM_NETWORK_H_
