// Priority event queue for the discrete-event simulator.
//
// Events fire in (time, sequence) order; the sequence number breaks ties FIFO so runs
// are deterministic regardless of heap implementation details. The implementation is
// allocation-free in steady state:
//
//  - Callbacks live in a free-list slab of EventSlot records; scheduling acquires a
//    slot (reusing a freed one when available), firing releases it. The callback is an
//    EventFn (see event_fn.h), so captures up to EventFn::kInlineSize bytes never touch
//    the heap and popping MOVES the callback out of the slab — the old implementation
//    deep-copied a std::function (and its control block) per pop.
//  - Cancellation is a (slot, generation) handle resolved against the slab: O(1), no
//    per-event shared_ptr<bool>. The generation counter bumps every time a slot is
//    released, so a stale handle (event already fired or skipped) can never cancel the
//    slot's next tenant. Handles stay safe after the queue itself dies — they hold a
//    weak_ptr to the slab (one allocation per QUEUE, not per event).
//  - The heap is an explicit 4-ary heap over 16-byte (time, seq|slot) keys. Sift
//    operations on 16-byte PODs touch 4x fewer cache lines than the previous
//    std::priority_queue of 64-byte Events, and a 4-ary layout halves the tree depth.
//
// Cancelled events are skipped lazily at pop time (their heap key stays until it
// surfaces), so Size() counts cancelled-but-unpopped events, exactly like before.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_fn.h"

namespace totoro {

using SimTime = double;  // Virtual milliseconds.

namespace internal {

inline constexpr uint32_t kNilSlot = UINT32_MAX;

struct EventSlot {
  EventFn fn;
  uint32_t generation = 0;
  uint32_t next_free = kNilSlot;
  bool cancelled = false;
};

struct EventSlab {
  std::vector<EventSlot> slots;
  uint32_t free_head = kNilSlot;
  // Cancels that actually took effect (pending event marked dead), ever.
  uint64_t cancelled_total = 0;
};

}  // namespace internal

// Cancellation handle for one scheduled event. Copyable; all copies refer to the same
// event. Safe to use after the event fired (no-op) and after the owning queue was
// destroyed (no-op) — the generation check resolves both without dangling.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it is still pending. Returns true iff this call is the one
  // that cancelled it (false when already fired, already cancelled, or queue gone).
  bool Cancel();

  // True while the event is pending-and-cancelled (not yet lazily removed). Once the
  // queue skips or releases it — or the queue is destroyed — this reverts to false.
  bool IsCancelled() const;

 private:
  friend class EventQueue;
  friend class KeyedEventQueue;
  EventHandle(std::weak_ptr<internal::EventSlab> slab, uint32_t slot, uint32_t generation)
      : slab_(std::move(slab)), slot_(slot), generation_(generation) {}

  std::weak_ptr<internal::EventSlab> slab_;
  uint32_t slot_ = internal::kNilSlot;
  uint32_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() : slab_(std::make_shared<internal::EventSlab>()) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventHandle Push(SimTime at, EventFn fn);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }
  SimTime NextTime() const;

  // Pops the earliest non-cancelled event into (*at, *fn) without running it, so the
  // caller can advance its clock before invoking. The callback is MOVED out of the
  // slab, never copied. Returns false if the queue was exhausted (only cancelled
  // events remained).
  bool PopNext(SimTime* at, EventFn* fn);

  // Convenience for tests: pops and immediately runs.
  bool PopAndRun(SimTime* fired_at);

  // Pre-sizes the heap and slab for `n` concurrently pending events so steady-state
  // scheduling never reallocates.
  void Reserve(size_t n);

  // Cancels that took effect over the queue's lifetime (whether or not the dead entry
  // has been lazily popped yet).
  uint64_t cancelled_total() const { return slab_->cancelled_total; }
  // Slots ever created — stays flat under schedule/fire churn because freed slots are
  // reused before the slab grows.
  size_t slab_size() const { return slab_->slots.size(); }

 private:
  // Heap key: 8-byte time + (seq << kSlotBits | slot). Comparing `key` after `at`
  // yields FIFO order among equal times because seq occupies the high bits and is
  // unique; the low bits give O(1) access to the slab slot on pop.
  struct HeapEntry {
    SimTime at;
    uint64_t key;
  };
  static constexpr int kSlotBits = 24;  // Up to ~16.7M concurrently pending events.
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static constexpr uint64_t kMaxSeq = uint64_t{1} << (64 - kSlotBits);

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.at < b.at || (a.at == b.at && a.key < b.key);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::shared_ptr<internal::EventSlab> slab_;
  std::vector<HeapEntry> heap_;
  uint64_t next_seq_ = 0;
};

// Priority queue ordered by (time, explicit 64-bit key) for the sharded simulator.
//
// The sharded engine keys every event with a canonical, shard-count-independent id —
// (origin host, per-origin sequence) packed into 64 bits — so the pop order of any
// shard's queue is a pure function of the event population, never of K or of push
// order. Keys are unique by construction (each origin's counter only ever increments),
// so (at, key) is a strict total order and no FIFO tiebreak sequence is needed.
//
// Each entry also carries the host the event executes AS (`exec_host`): the run loop
// re-establishes that host's identity (canonical id counter, trace ids) before
// invoking the callback. Slab, EventFn storage, and cancellation handles are shared
// with EventQueue — an EventHandle works identically against either queue.
class KeyedEventQueue {
 public:
  KeyedEventQueue() : slab_(std::make_shared<internal::EventSlab>()) {}
  KeyedEventQueue(const KeyedEventQueue&) = delete;
  KeyedEventQueue& operator=(const KeyedEventQueue&) = delete;

  EventHandle Push(SimTime at, uint64_t key, uint32_t exec_host, EventFn fn);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }
  SimTime NextTime() const;

  // Pops the earliest non-cancelled event (MOVING the callback out of the slab).
  // Returns false when only cancelled events remained.
  bool PopNext(SimTime* at, uint32_t* exec_host, EventFn* fn);

  void Reserve(size_t n);

  uint64_t cancelled_total() const { return slab_->cancelled_total; }

 private:
  struct HeapEntry {
    SimTime at;
    uint64_t key;
    uint32_t slot;
    uint32_t exec_host;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.at < b.at || (a.at == b.at && a.key < b.key);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::shared_ptr<internal::EventSlab> slab_;
  std::vector<HeapEntry> heap_;
};

}  // namespace totoro

#endif  // SRC_SIM_EVENT_QUEUE_H_
