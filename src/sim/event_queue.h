// Priority event queue for the discrete-event simulator.
//
// Events fire in (time, sequence) order; the sequence number breaks ties FIFO so runs
// are deterministic regardless of heap implementation details. Cancellation is handled
// with a shared flag so that pending timers (e.g. keep-alives of a node that just died)
// can be invalidated in O(1) without rebuilding the heap.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace totoro {

using SimTime = double;  // Virtual milliseconds.

class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  void Cancel() {
    if (cancelled_) {
      *cancelled_ = true;
    }
  }
  bool IsCancelled() const { return cancelled_ && *cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  EventHandle Push(SimTime at, std::function<void()> fn);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }
  SimTime NextTime() const;

  // Pops the earliest non-cancelled event into (*at, *fn) without running it, so the
  // caller can advance its clock before invoking. Returns false if the queue was
  // exhausted (only cancelled events remained).
  bool PopNext(SimTime* at, std::function<void()>* fn);

  // Convenience for tests: pops and immediately runs.
  bool PopAndRun(SimTime* fired_at);

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace totoro

#endif  // SRC_SIM_EVENT_QUEUE_H_
