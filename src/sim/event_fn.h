// Small-buffer-optimized, move-only callable for simulator events.
//
// Every scheduled event used to carry a std::function<void()>, which heap-allocates for
// any capture larger than the library's tiny inline buffer (16 bytes in libstdc++) and
// requires the callable to be copyable. The simulator's hottest callback — the network
// delivery lambda capturing a 64-byte Message plus the Network pointer — is 72 bytes, so
// literally every message in flight paid one allocation plus a deep Message copy when
// the priority queue duplicated the std::function.
//
// EventFn fixes both: kInlineSize bytes of in-object storage sized to fit the delivery
// lambda (Network::Send static_asserts the fit so a Message field added later is caught
// at compile time), a heap fallback only for oversized or over-aligned captures, and
// move-only semantics so unique-ownership captures (std::unique_ptr, moved-in buffers)
// schedule directly. Dispatch is one operations-table pointer per callable type — no
// virtual bases, no RTTI — and relocation is noexcept so slab vectors can grow by move.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace totoro {

class EventFn {
 public:
  // Fits [Network* + Message] (72 bytes) — the per-message delivery capture that
  // dominates event traffic. Captures beyond this size (engine round closures with
  // payload vectors) take the heap path, which is rare per event fired.
  static constexpr size_t kInlineSize = 72;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function.
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Destroys the held callable (no-op when empty).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's (raw relocation).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { static_cast<D*>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) { ::new (dst) D*(*static_cast<D**>(src)); },
      [](void* s) { delete *static_cast<D**>(s); },
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace totoro

#endif  // SRC_SIM_EVENT_FN_H_
