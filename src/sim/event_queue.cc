#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace totoro {

bool EventHandle::Cancel() {
  const std::shared_ptr<internal::EventSlab> slab = slab_.lock();
  if (slab == nullptr || slot_ >= slab->slots.size()) {
    return false;
  }
  internal::EventSlot& s = slab->slots[slot_];
  if (s.generation != generation_ || s.cancelled) {
    return false;  // Already fired/skipped (slot reused or pending reuse), or cancelled.
  }
  s.cancelled = true;
  ++slab->cancelled_total;
  return true;
}

bool EventHandle::IsCancelled() const {
  const std::shared_ptr<internal::EventSlab> slab = slab_.lock();
  if (slab == nullptr || slot_ >= slab->slots.size()) {
    return false;
  }
  const internal::EventSlot& s = slab->slots[slot_];
  return s.generation == generation_ && s.cancelled;
}

uint32_t EventQueue::AcquireSlot() {
  internal::EventSlab& slab = *slab_;
  if (slab.free_head != internal::kNilSlot) {
    const uint32_t slot = slab.free_head;
    slab.free_head = slab.slots[slot].next_free;
    slab.slots[slot].next_free = internal::kNilSlot;
    return slot;
  }
  CHECK_LT(slab.slots.size(), static_cast<size_t>(kSlotMask));
  slab.slots.emplace_back();
  return static_cast<uint32_t>(slab.slots.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  internal::EventSlot& s = slab_->slots[slot];
  s.fn.Reset();
  s.cancelled = false;
  ++s.generation;  // Invalidates every outstanding handle to the old tenant.
  s.next_free = slab_->free_head;
  slab_->free_head = slot;
}

void EventQueue::SiftUp(size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    // Smallest of up to 4 children — they are contiguous, typically one cache line.
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], entry)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

EventHandle EventQueue::Push(SimTime at, EventFn fn) {
  const uint32_t slot = AcquireSlot();
  internal::EventSlot& s = slab_->slots[slot];
  s.fn = std::move(fn);
  const uint64_t seq = next_seq_++;
  CHECK_LT(seq, kMaxSeq);
  heap_.push_back(HeapEntry{at, (seq << kSlotBits) | slot});
  SiftUp(heap_.size() - 1);
  return EventHandle(slab_, slot, s.generation);
}

SimTime EventQueue::NextTime() const {
  CHECK(!heap_.empty());
  return heap_[0].at;
}

bool EventQueue::PopNext(SimTime* at, EventFn* fn) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
    const uint32_t slot = static_cast<uint32_t>(top.key & kSlotMask);
    internal::EventSlot& s = slab_->slots[slot];
    const bool cancelled = s.cancelled;
    if (!cancelled) {
      *at = top.at;
      *fn = std::move(s.fn);
    }
    ReleaseSlot(slot);
    if (!cancelled) {
      return true;
    }
  }
  return false;
}

bool EventQueue::PopAndRun(SimTime* fired_at) {
  SimTime at = 0;
  EventFn fn;
  if (!PopNext(&at, &fn)) {
    return false;
  }
  if (fired_at != nullptr) {
    *fired_at = at;
  }
  fn();
  return true;
}

void EventQueue::Reserve(size_t n) {
  heap_.reserve(n);
  slab_->slots.reserve(n);
}

uint32_t KeyedEventQueue::AcquireSlot() {
  internal::EventSlab& slab = *slab_;
  if (slab.free_head != internal::kNilSlot) {
    const uint32_t slot = slab.free_head;
    slab.free_head = slab.slots[slot].next_free;
    slab.slots[slot].next_free = internal::kNilSlot;
    return slot;
  }
  CHECK_LT(slab.slots.size(), static_cast<size_t>(UINT32_MAX));
  slab.slots.emplace_back();
  return static_cast<uint32_t>(slab.slots.size() - 1);
}

void KeyedEventQueue::ReleaseSlot(uint32_t slot) {
  internal::EventSlot& s = slab_->slots[slot];
  s.fn.Reset();
  s.cancelled = false;
  ++s.generation;
  s.next_free = slab_->free_head;
  slab_->free_head = slot;
}

void KeyedEventQueue::SiftUp(size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void KeyedEventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], entry)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

EventHandle KeyedEventQueue::Push(SimTime at, uint64_t key, uint32_t exec_host, EventFn fn) {
  const uint32_t slot = AcquireSlot();
  internal::EventSlot& s = slab_->slots[slot];
  s.fn = std::move(fn);
  heap_.push_back(HeapEntry{at, key, slot, exec_host});
  SiftUp(heap_.size() - 1);
  return EventHandle(slab_, slot, s.generation);
}

SimTime KeyedEventQueue::NextTime() const {
  CHECK(!heap_.empty());
  return heap_[0].at;
}

bool KeyedEventQueue::PopNext(SimTime* at, uint32_t* exec_host, EventFn* fn) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
    internal::EventSlot& s = slab_->slots[top.slot];
    const bool cancelled = s.cancelled;
    if (!cancelled) {
      *at = top.at;
      *exec_host = top.exec_host;
      *fn = std::move(s.fn);
    }
    ReleaseSlot(top.slot);
    if (!cancelled) {
      return true;
    }
  }
  return false;
}

void KeyedEventQueue::Reserve(size_t n) {
  heap_.reserve(n);
  slab_->slots.reserve(n);
}

}  // namespace totoro
