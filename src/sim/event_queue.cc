#include "src/sim/event_queue.h"

#include "src/common/check.h"

namespace totoro {

EventHandle EventQueue::Push(SimTime at, std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return EventHandle(cancelled);
}

SimTime EventQueue::NextTime() const {
  CHECK(!heap_.empty());
  return heap_.top().at;
}

bool EventQueue::PopNext(SimTime* at, std::function<void()>* fn) {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (*ev.cancelled) {
      continue;
    }
    *at = ev.at;
    *fn = std::move(ev.fn);
    return true;
  }
  return false;
}

bool EventQueue::PopAndRun(SimTime* fired_at) {
  SimTime at = 0;
  std::function<void()> fn;
  if (!PopNext(&at, &fn)) {
    return false;
  }
  if (fired_at != nullptr) {
    *fired_at = at;
  }
  fn();
  return true;
}

}  // namespace totoro
