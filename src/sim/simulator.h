// Discrete-event simulator core: virtual clock + event scheduling.
//
// The entire repository runs on virtual time. One Simulator instance drives one
// experiment; every protocol layer schedules callbacks through it. The simulator is
// single-threaded — determinism is a feature, and the evaluation measures virtual time,
// not wall-clock time.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>

#include "src/sim/event_queue.h"

namespace totoro {

class Simulator {
 public:
  // Registers this simulator's clock as the process-wide virtual-time source for the
  // tracer and the logger; the destructor deregisters it (only if still the active
  // source, so nested/successive simulators behave sanely).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` virtual ms from now. delay must be >= 0.
  EventHandle Schedule(SimTime delay, std::function<void()> fn);
  EventHandle ScheduleAt(SimTime at, std::function<void()> fn);

  // Runs events until the queue drains or `max_events` fire. Returns events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with firing time <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t);
  size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  bool Idle() const { return queue_.Empty(); }
  size_t PendingEvents() const { return queue_.Size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

}  // namespace totoro

#endif  // SRC_SIM_SIMULATOR_H_
