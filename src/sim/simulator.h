// Discrete-event simulator core: virtual clock + event scheduling.
//
// The entire repository runs on virtual time. One Simulator instance drives one
// experiment; every protocol layer schedules callbacks through it. The simulator is
// single-threaded — determinism is a feature, and the evaluation measures virtual time,
// not wall-clock time. (Independent Simulators may run on different THREADS — the
// parallel bench runner does — because the tracer/metrics/log sinks they register with
// are thread-local.)
//
// Callbacks are EventFns (see event_fn.h): any callable up to EventFn::kInlineSize
// bytes schedules without heap allocation, and move-only captures are allowed.
//
// Throughput accounting: Run/RunUntil count fired events into the thread's metrics
// registry (`sim.events_fired`; effective cancellations fold into
// `sim.events_cancelled`) and accumulate wall-clock spent inside the event loop, so
// any bench can report simulated events per wall second. The events/sec gauge is
// wall-clock dependent, so it is never written implicitly — implicit writes would
// break bit-identical metric exports across runs. It is written either by an explicit
// PublishThroughputMetrics() call (whole-run average) or, when a bench opts in with
// EnablePeriodicSampling(N), every N fired events from inside the loop (live sliding
// window), which also drives the profiler's sampling hooks (queue depth + registered
// samplers).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/sim/event_queue.h"

namespace totoro {

class Counter;
class Gauge;

class Simulator {
 public:
  // Registers this simulator's clock as the thread-wide virtual-time source for the
  // tracer and the logger; the destructor deregisters it (only if still the active
  // source, so nested/successive simulators behave sanely).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` virtual ms from now. delay must be >= 0.
  EventHandle Schedule(SimTime delay, EventFn fn);
  EventHandle ScheduleAt(SimTime at, EventFn fn);

  // Schedules a completion-stamp rejoin: an event whose callback is allowed to BLOCK
  // the wall clock waiting for work running off the simulator thread (e.g. a
  // ComputePool ticket) before folding the result into the event stream. Virtual-time
  // semantics are exactly Schedule(); the separate entry point documents the contract
  // and keeps a deterministic count so tests can assert the offload actually engaged.
  // The rejoin's position in the queue — and hence everything downstream — must not
  // depend on the off-thread result, only on `delay` and the call site's order.
  EventHandle ScheduleRejoin(SimTime delay, EventFn fn);
  uint64_t rejoins_scheduled() const { return rejoins_scheduled_; }

  // Runs events until the queue drains or `max_events` fire. Returns events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with firing time <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t);
  size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  bool Idle() const { return queue_.Empty(); }
  size_t PendingEvents() const { return queue_.Size(); }

  // Pre-sizes the event queue for `n` concurrently pending events.
  void ReserveEvents(size_t n) { queue_.Reserve(n); }

  // --- Throughput introspection ---
  uint64_t events_fired() const { return events_fired_; }
  uint64_t events_cancelled() const { return queue_.cancelled_total(); }
  // Wall-clock seconds spent inside Run/RunUntil event loops.
  double run_wall_seconds() const { return run_wall_seconds_; }
  // Fired events per wall-clock second (0 before any event ran).
  double EventsPerSecond() const;
  // Writes the `sim.events_per_sec` gauge (whole-run average) into the thread's
  // metrics registry. Wall-clock values are not deterministic, so this never happens
  // implicitly — only here or via the opt-in periodic sampler below.
  void PublishThroughputMetrics();

  // --- Periodic in-run sampling (opt-in; default off) ---
  // Every `every_events` fired events the loop updates `sim.events_per_sec` with the
  // rate over the window since the previous sample and drives the profiler's sampling
  // hooks (event-queue depth as `sim_queue_depth`, plus all registered samplers).
  // 0 disables. Opting in makes the metrics registry wall-clock dependent — scale
  // benches that fingerprint metrics must exclude the gauge from their probe.
  void EnablePeriodicSampling(uint64_t every_events) { sample_every_ = every_events; }
  uint64_t sample_every() const { return sample_every_; }
  // Rate over the most recent completed sampling window (0 before the first sample).
  double live_events_per_sec() const { return live_events_per_sec_; }

 private:
  template <typename StopCondition>
  size_t RunLoop(size_t max_events, StopCondition keep_going);
  // Folds queue-side cancellations observed since the last sync into the counter.
  void SyncCancelledCounter();
  // The single registration site for the `sim.events_per_sec` gauge.
  Gauge& ThroughputGauge();
  // Closes the current sampling window at (cumulative fired, cumulative wall seconds)
  // and publishes the window rate. Chrono-free signature keeps <chrono> out of here.
  void SamplePeriodic(uint64_t total_fired, double wall_now);

  EventQueue queue_;
  SimTime now_ = 0.0;
  uint64_t events_fired_ = 0;
  uint64_t rejoins_scheduled_ = 0;
  uint64_t cancelled_synced_ = 0;
  double run_wall_seconds_ = 0.0;
  uint64_t sample_every_ = 0;            // 0 = periodic sampling off.
  uint64_t events_since_sample_ = 0;
  uint64_t window_start_fired_ = 0;
  double window_start_wall_ = 0.0;
  double live_events_per_sec_ = 0.0;
  Counter* fired_counter_ = nullptr;      // Cached thread-local registry series.
  Counter* cancelled_counter_ = nullptr;
  Gauge* throughput_gauge_ = nullptr;     // Lazily cached by ThroughputGauge().
};

}  // namespace totoro

#endif  // SRC_SIM_SIMULATOR_H_
