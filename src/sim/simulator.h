// Discrete-event simulator core: virtual clock + event scheduling.
//
// The entire repository runs on virtual time. One Simulator instance drives one
// experiment; every protocol layer schedules callbacks through it. The simulator is
// single-threaded — determinism is a feature, and the evaluation measures virtual time,
// not wall-clock time. (Independent Simulators may run on different THREADS — the
// parallel bench runner does — because the tracer/metrics/log sinks they register with
// are thread-local.)
//
// Callbacks are EventFns (see event_fn.h): any callable up to EventFn::kInlineSize
// bytes schedules without heap allocation, and move-only captures are allowed.
//
// Throughput accounting: Run/RunUntil count fired events into the thread's metrics
// registry (`sim.events_fired`; effective cancellations fold into
// `sim.events_cancelled`) and accumulate wall-clock spent inside the event loop, so
// any bench can report simulated events per wall second. The events/sec gauge is
// wall-clock dependent, so it is never written implicitly — implicit writes would
// break bit-identical metric exports across runs. It is written either by an explicit
// PublishThroughputMetrics() call (whole-run average) or, when a bench opts in with
// EnablePeriodicSampling(N), every N fired events from inside the loop (live sliding
// window), which also drives the profiler's sampling hooks (queue depth + registered
// samplers).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"

namespace totoro {

class Counter;
class Gauge;

using HostId = uint32_t;

// The scheduling seam is virtual: the default implementation below is the proven
// single-threaded engine (one queue, one thread, byte-identical to every committed
// baseline), and ShardedSimulator (sharded_sim.h) overrides it with K per-shard queues
// behind a conservative time-windowed barrier. Protocol layers only ever hold a
// Simulator*, so they run unchanged on either engine.
class Simulator {
 public:
  // Registers this simulator's clock as the thread-wide virtual-time source for the
  // tracer and the logger; the destructor deregisters it (only if still the active
  // source, so nested/successive simulators behave sanely).
  Simulator();
  virtual ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  virtual SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` virtual ms from now. delay must be >= 0.
  virtual EventHandle Schedule(SimTime delay, EventFn fn);
  virtual EventHandle ScheduleAt(SimTime at, EventFn fn);

  // Schedules a completion-stamp rejoin: an event whose callback is allowed to BLOCK
  // the wall clock waiting for work running off the simulator thread (e.g. a
  // ComputePool ticket) before folding the result into the event stream. Virtual-time
  // semantics are exactly Schedule(); the separate entry point documents the contract
  // and keeps a deterministic count so tests can assert the offload actually engaged.
  // The rejoin's position in the queue — and hence everything downstream — must not
  // depend on the off-thread result, only on `delay` and the call site's order.
  virtual EventHandle ScheduleRejoin(SimTime delay, EventFn fn);
  uint64_t rejoins_scheduled() const { return rejoins_scheduled_; }

  // Runs events until the queue drains or `max_events` fire. Returns events fired.
  // (The sharded engine treats `max_events` as a window-granular bound.)
  virtual size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with firing time <= t, then advances the clock to exactly t.
  virtual size_t RunUntil(SimTime t);
  size_t RunFor(SimTime duration) { return RunUntil(Now() + duration); }

  virtual bool Idle() const { return queue_.Empty(); }
  virtual size_t PendingEvents() const { return queue_.Size(); }

  // Pre-sizes the event queue for `n` concurrently pending events.
  virtual void ReserveEvents(size_t n) { queue_.Reserve(n); }

  // --- Sharded-execution seam (inert single-queue defaults) ---
  // True when this simulator partitions hosts across shard queues.
  virtual bool sharded() const { return false; }
  virtual size_t num_shards() const { return 1; }
  // Runs `fn` immediately with `host` established as the executing identity, so
  // schedules and sends issued inside land in the host's shard with canonical ids.
  // Harness/driver code wraps per-node setup calls (Subscribe, StartKeepAlive, ...) in
  // this; the default engine just invokes `fn`.
  virtual void RunAsHost(HostId host, const std::function<void()>& fn) {
    (void)host;
    fn();
  }
  // Schedules a message-arrival event that executes as `dst` (possibly on another
  // shard), keyed by `src`'s canonical sequence. The default engine has one queue, so
  // this is exactly ScheduleAt.
  virtual EventHandle ScheduleMessageArrival(HostId src, HostId dst, SimTime at,
                                             EventFn fn) {
    (void)src;
    (void)dst;
    return ScheduleAt(at, std::move(fn));
  }
  // Host-registration hook (Network::AddHost calls it); the sharded engine uses it to
  // size its host->shard map before the first run.
  virtual void OnHostAdded(HostId id) { (void)id; }
  // Conservative-barrier lookahead (min link propagation latency, virtual ms). No-op
  // on the single-queue engine; harnesses call it unconditionally after wiring the
  // network.
  virtual void SetLookaheadMs(double ms) { (void)ms; }

  // --- Throughput introspection ---
  uint64_t events_fired() const { return events_fired_; }
  virtual uint64_t events_cancelled() const { return queue_.cancelled_total(); }
  // Wall-clock seconds spent inside Run/RunUntil event loops.
  double run_wall_seconds() const { return run_wall_seconds_; }
  // Fired events per wall-clock second (0 before any event ran).
  double EventsPerSecond() const;
  // Writes the `sim.events_per_sec` gauge (whole-run average) into the thread's
  // metrics registry. Wall-clock values are not deterministic, so this never happens
  // implicitly — only here or via the opt-in periodic sampler below.
  void PublishThroughputMetrics();

  // --- Periodic in-run sampling (opt-in; default off) ---
  // Every `every_events` fired events the loop updates `sim.events_per_sec` with the
  // rate over the window since the previous sample and drives the profiler's sampling
  // hooks (event-queue depth as `sim_queue_depth`, plus all registered samplers).
  // 0 disables. Opting in makes the metrics registry wall-clock dependent — scale
  // benches that fingerprint metrics must exclude the gauge from their probe.
  // The sharded engine samples too, at barrier granularity: its coordinator advances
  // the countdown by each window's fired total with every worker parked, so samples
  // land in the main thread's gauge/profiler exactly as in the single-queue engine
  // (sample COUNT depends on K, since a window can cross the threshold only once).
  void EnablePeriodicSampling(uint64_t every_events) { sample_every_ = every_events; }
  uint64_t sample_every() const { return sample_every_; }
  // Rate over the most recent completed sampling window (0 before the first sample).
  double live_events_per_sec() const { return live_events_per_sec_; }

 protected:
  // Wall-clock seconds since an arbitrary fixed epoch. The single audited wall-time
  // source (lint R1 allows steady_clock in simulator.cc only); it feeds nothing but
  // events/s accounting, never scheduling.
  static double WallClockSeconds();

  // Advances the periodic-sampling countdown by `fired_delta` events and, when the
  // threshold is crossed, closes the window at (`total_fired`, `wall_now`) recording
  // `queue_depth` as `sim_queue_depth`. The sharded coordinator calls this once per
  // barrier with the window's fired total and all workers parked; a crossing samples
  // once and carries the remainder, so a coarse window never bursts samples. No-op
  // while sampling is disabled.
  void AccumulatePeriodicSample(uint64_t fired_delta, uint64_t total_fired,
                                double wall_now, size_t queue_depth);

  // Shared accounting state the sharded engine drives from its coordinator loop. The
  // base constructor registers &now_ as the thread's virtual-time source, so a subclass
  // advancing now_ keeps main-thread tracer/log/profiler stamps correct for free.
  SimTime now_ = 0.0;
  uint64_t events_fired_ = 0;
  uint64_t rejoins_scheduled_ = 0;
  uint64_t cancelled_synced_ = 0;
  double run_wall_seconds_ = 0.0;
  Counter* fired_counter_ = nullptr;      // Cached thread-local registry series.
  Counter* cancelled_counter_ = nullptr;

 private:
  template <typename StopCondition>
  size_t RunLoop(size_t max_events, StopCondition keep_going);
  // Folds queue-side cancellations observed since the last sync into the counter.
  void SyncCancelledCounter();
  // The single registration site for the `sim.events_per_sec` gauge.
  Gauge& ThroughputGauge();
  // Closes the current sampling window at (cumulative fired, cumulative wall seconds)
  // and publishes the window rate. Chrono-free signature keeps <chrono> out of here.
  void SamplePeriodic(uint64_t total_fired, double wall_now, size_t queue_depth);

  EventQueue queue_;
  uint64_t sample_every_ = 0;            // 0 = periodic sampling off.
  uint64_t events_since_sample_ = 0;
  uint64_t window_start_fired_ = 0;
  double window_start_wall_ = 0.0;
  double live_events_per_sec_ = 0.0;
  Gauge* throughput_gauge_ = nullptr;     // Lazily cached by ThroughputGauge().
};

}  // namespace totoro

#endif  // SRC_SIM_SIMULATOR_H_
