// Thread -> accounting-slot index for sharded simulation.
//
// A few accounting structures (NetworkMetrics' global totals) are written from every
// shard worker on the hot message path. Instead of atomics, each thread owns a private
// lane indexed by this slot: 0 on the main/coordinator thread (also the only slot that
// exists in single-threaded mode), 1 + shard index on shard worker threads.
// ShardedSimulator assigns the slot once at worker-thread start; readers fold all lanes
// under the coordinator's barrier (workers parked), so folds need no synchronization
// beyond the barrier's happens-before.
#ifndef SRC_SIM_SHARD_SLOT_H_
#define SRC_SIM_SHARD_SLOT_H_

#include <cstddef>

namespace totoro {
namespace internal {

inline size_t& ThreadShardSlot() {
  // LINT: thread-confined the slot index IS the thread->lane binding; never shared.
  static thread_local size_t slot = 0;
  return slot;
}

}  // namespace internal
}  // namespace totoro

#endif  // SRC_SIM_SHARD_SLOT_H_
