// Sharded discrete-event simulator: K event queues behind a conservative barrier.
//
// The id ring is partitioned into K contiguous host ranges (shards); each shard owns a
// KeyedEventQueue, a clock, and a worker thread, and every event executes on the worker
// that owns its host. Cross-shard interaction happens only through messages, and the
// minimum link propagation latency L (the "lookahead") bounds how far one shard's
// present can reach into another shard's future. The coordinator therefore runs the
// simulation as a sequence of half-open time windows [T, T+L): within a window each
// worker drains its own queue independently — any message it emits arrives at
// t + prop >= T + L, i.e. strictly after the window — and at the window barrier the
// coordinator drains cross-shard outboxes, so no shard ever receives an event in its
// past. This is classic conservative PDES (CMB-style null-message-free windows), the
// same shape as the `src/fl/compute_pool` offload template: every schedule-affecting
// value is fixed before parallel work begins, and results rejoin at a pre-computed
// stamp.
//
// Determinism contract — a K-shard run is BIT-IDENTICAL to the 1-shard run:
//  - Every event carries a canonical key (origin host, per-origin sequence) packed into
//    64 bits. A host's execution stream (the ordered list of events it runs) is a pure
//    function of the event population, so the keys it assigns are too — independent of
//    K and of worker interleaving. Queues pop in strict (time, key) order; keys are
//    unique by construction, so there are no ties to break.
//  - Trace/span ids draw from the SAME per-host counters (Tracer::SetIdSource), and
//    per-worker span sinks are folded in canonical span-id order after each run;
//    per-worker metric registries fold by name (commutative sums). Exports are
//    byte-equal across K.
//  - Events scheduled from OUTSIDE any host context (harness drivers, engine rounds)
//    form the control stream: they run on the coordinator thread at window boundaries
//    with all workers parked, ordered before same-time shard events. Setup code that
//    acts on behalf of a node (Subscribe, StartKeepAlive) wraps the call in
//    RunAsHost(host, fn) so its schedules and ids join the host's canonical stream.
//
// Supported at any K: fault scripts, including probabilistic link perturbations —
// FaultInjector derives one Rng per (src, dst, send-sequence) from the sender's
// canonical stream, so no draw depends on worker interleaving; and periodic in-run
// sampling (EnablePeriodicSampling) — the coordinator advances the sampling countdown
// by each window's fired total at the barrier, with all workers parked (the live-rate
// SAMPLE COUNT is window-granular, so it varies with K; the event stream does not).
//
// Not supported in sharded mode (CHECK or documented): K > 1 requires lookahead > 0;
// TOTORO_PROFILE merges per-shard virtual-ms sums in shard order, so profile gauges
// may differ across K in the last ulp.
#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/sim/simulator.h"

namespace totoro {

class Tracer;
class MetricsRegistry;
class Profiler;

// Builds the simulator selected by TOTORO_SIM_SHARDS: a plain Simulator when the knob
// is unset/1, a ShardedSimulator with that many shards otherwise. The single place
// benches/tests consult the knob.
std::unique_ptr<Simulator> MakeSimulatorFromEnv();

class ShardedSimulator : public Simulator {
 public:
  explicit ShardedSimulator(size_t num_shards);
  ~ShardedSimulator() override;

  SimTime Now() const override;
  EventHandle Schedule(SimTime delay, EventFn fn) override;
  EventHandle ScheduleAt(SimTime at, EventFn fn) override;
  EventHandle ScheduleRejoin(SimTime delay, EventFn fn) override;
  size_t Run(size_t max_events = SIZE_MAX) override;
  size_t RunUntil(SimTime t) override;
  bool Idle() const override;
  size_t PendingEvents() const override;
  void ReserveEvents(size_t n) override;
  uint64_t events_cancelled() const override;

  bool sharded() const override { return true; }
  size_t num_shards() const override { return shards_.size(); }
  void RunAsHost(HostId host, const std::function<void()>& fn) override;
  EventHandle ScheduleMessageArrival(HostId src, HostId dst, SimTime at,
                                     EventFn fn) override;
  void OnHostAdded(HostId id) override;
  void SetLookaheadMs(double ms) override;

  // Shard owning `id` (hosts are split into contiguous ranges at first run).
  size_t ShardOf(HostId id) const;
  double lookahead_ms() const { return lookahead_ms_; }

 private:
  struct PendingCrossShard {
    SimTime at;
    uint64_t key;
    uint32_t exec_host;
    EventFn fn;
  };

  struct Shard {
    KeyedEventQueue queue;
    SimTime now = 0.0;
    // Worker-owned copy of the current window's exclusive end, taken from window_end_
    // under mu_ before the window opens; lets worker-side conservative-bound CHECKs
    // read it without touching the guarded coordinator field mid-window.
    SimTime window_end = 0.0;
    uint64_t window_fired = 0;     // Events run in the most recent window.
    SimTime window_last_at = 0.0;  // Fire time of the last event in that window.
    uint64_t rejoins = 0;          // Folded into rejoins_scheduled_ at run end.
    // One outbox per destination shard; drained by the coordinator at barriers.
    std::vector<std::vector<PendingCrossShard>> outbox;
    // The worker thread's thread-local observability sinks, published at thread start
    // and only touched cross-thread while the worker is parked.
    Tracer* tracer = nullptr;
    MetricsRegistry* metrics = nullptr;
    Profiler* profiler = nullptr;
    std::thread thread;
  };

  // Freezes the host -> shard partition (contiguous ranges) on first use.
  void SealPartition();
  // Canonical key allocation: (origin + 2) << kKeyOriginShift | per-origin sequence.
  // Origin 0's range is reserved for the control stream (base 1 << shift); sequential
  // tracer ids stay below every base, so nothing collides.
  uint64_t NextHostKey(HostId origin) { return HostKeyBase(origin) + ops_[origin]++; }
  static uint64_t HostKeyBase(HostId origin) {
    return (static_cast<uint64_t>(origin) + 2) << kKeyOriginShift;
  }
  uint64_t NextControlKey() { return (uint64_t{1} << kKeyOriginShift) + control_ops_++; }

  // The coordinator loop shared by Run/RunUntil: executes every event with
  // at < end_exclusive, window by window. max_events is window-granular.
  size_t RunShardedLoop(size_t max_events, SimTime end_exclusive);
  // Runs control events due at exactly `at` (workers parked). Returns events fired.
  size_t RunControlAt(SimTime at);
  // Moves every outbox entry into its destination shard's queue (workers parked).
  void DrainOutboxes();
  // Folds worker spans/metrics/profiles into the main thread's sinks (workers parked).
  void FoldObservability();
  void SyncShardCancelled();

  void WorkerMain(size_t shard_index);
  // Runs shard events with at < end (the worker's copy of window_end_, read under mu_
  // in WorkerMain before the window opened); called on the worker thread.
  void RunWindow(Shard& shard, SimTime end);

  static constexpr int kKeyOriginShift = 28;
  static constexpr uint32_t kControlExec = UINT32_MAX;

  std::vector<std::unique_ptr<Shard>> shards_;
  KeyedEventQueue control_;        // Driver/harness events; runs on the coordinator.
  uint64_t control_ops_ = 0;       // Control-stream key sequence.
  std::vector<uint64_t> ops_;      // Per-host canonical sequence (sized at seal).
  std::vector<uint32_t> shard_of_; // Host -> shard (sized at seal).
  size_t num_hosts_ = 0;
  bool sealed_ = false;
  double lookahead_ms_ = 0.0;
  bool first_run_done_ = false;

  // Window barrier state. The coordinator publishes window_end_ and a generation
  // bump under mu_; workers copy window_end_ out under mu_, run their window
  // lock-free on shard-owned state, and report back under mu_.
  Mutex mu_;
  CondVar cv_workers_;
  CondVar cv_done_;
  uint64_t window_gen_ TOTORO_GUARDED_BY(mu_) = 0;
  size_t workers_ready_ TOTORO_GUARDED_BY(mu_) = 0;  // Startup: sink pointers published.
  size_t workers_running_ TOTORO_GUARDED_BY(mu_) = 0;
  SimTime window_end_ TOTORO_GUARDED_BY(mu_) = 0.0;
  bool stopping_ TOTORO_GUARDED_BY(mu_) = false;
};

}  // namespace totoro

#endif  // SRC_SIM_SHARDED_SIM_H_
