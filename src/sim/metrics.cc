#include "src/sim/metrics.h"

#include "src/common/check.h"
#include "src/sim/shard_slot.h"

namespace totoro {

void NetworkMetrics::Reserve(size_t n) { hosts_.reserve(n); }

void NetworkMetrics::ShardGlobalTotals(size_t num_slots) {
  CHECK_GE(num_slots, size_t{1});
  CHECK_EQ(total_messages_ + total_bytes_ + dropped_messages_, uint64_t{0});
  lanes_.assign(num_slots, TotalsLane{});
}

void NetworkMetrics::EnsureHosts(size_t n) {
  if (hosts_.size() < n) {
    hosts_.resize(n);
  }
}

void NetworkMetrics::RecordSend(const Message& msg) {
  CHECK_LT(msg.src, hosts_.size());
  auto& t = hosts_[msg.src].traffic;
  ++t.msgs_sent;
  t.bytes_sent += msg.size_bytes;
  if (msg.transport == Transport::kTcp) {
    t.bytes_sent_tcp += msg.size_bytes;
  } else {
    t.bytes_sent_udp += msg.size_bytes;
  }
  t.bytes_sent_by_class[static_cast<size_t>(msg.traffic)] += msg.size_bytes;
  if (lanes_.empty()) {
    ++total_messages_;
    total_bytes_ += msg.size_bytes;
  } else {
    TotalsLane& lane = lanes_[internal::ThreadShardSlot()];
    ++lane.total_messages;
    lane.total_bytes += msg.size_bytes;
  }
}

void NetworkMetrics::RecordDelivery(const Message& msg) {
  CHECK_LT(msg.dst, hosts_.size());
  auto& t = hosts_[msg.dst].traffic;
  ++t.msgs_recv;
  t.bytes_recv += msg.size_bytes;
}

void NetworkMetrics::RecordDrop(HostId host, TrafficClass traffic) {
  CHECK_LT(host, hosts_.size());
  ++hosts_[host].traffic.msgs_dropped;
  if (lanes_.empty()) {
    ++drops_by_class_[static_cast<size_t>(traffic)];
    ++dropped_messages_;
  } else {
    TotalsLane& lane = lanes_[internal::ThreadShardSlot()];
    ++lane.drops_by_class[static_cast<size_t>(traffic)];
    ++lane.dropped_messages;
  }
}

uint64_t NetworkMetrics::total_messages() const {
  uint64_t total = total_messages_;
  for (const TotalsLane& lane : lanes_) {
    total += lane.total_messages;
  }
  return total;
}

uint64_t NetworkMetrics::total_bytes() const {
  uint64_t total = total_bytes_;
  for (const TotalsLane& lane : lanes_) {
    total += lane.total_bytes;
  }
  return total;
}

uint64_t NetworkMetrics::dropped_messages() const {
  uint64_t total = dropped_messages_;
  for (const TotalsLane& lane : lanes_) {
    total += lane.dropped_messages;
  }
  return total;
}

uint64_t NetworkMetrics::DroppedByClass(TrafficClass c) const {
  uint64_t total = drops_by_class_[static_cast<size_t>(c)];
  for (const TotalsLane& lane : lanes_) {
    total += lane.drops_by_class[static_cast<size_t>(c)];
  }
  return total;
}

void NetworkMetrics::ChargeWork(HostId host, WorkKind kind, double units) {
  CHECK_LT(host, hosts_.size());
  hosts_[host].work.work_units[static_cast<size_t>(kind)] += units;
}

void NetworkMetrics::AdjustStateBytes(HostId host, int64_t delta) {
  CHECK_LT(host, hosts_.size());
  hosts_[host].work.state_bytes += delta;
  CHECK_GE(hosts_[host].work.state_bytes, 0);
}

uint64_t NetworkMetrics::TotalBytesTcp() const {
  uint64_t total = 0;
  for (const auto& h : hosts_) {
    const auto& t = h.traffic;
    total += t.bytes_sent_tcp;
  }
  return total;
}

uint64_t NetworkMetrics::TotalBytesUdp() const {
  uint64_t total = 0;
  for (const auto& h : hosts_) {
    const auto& t = h.traffic;
    total += t.bytes_sent_udp;
  }
  return total;
}

uint64_t NetworkMetrics::TotalBytesByClass(TrafficClass c) const {
  uint64_t total = 0;
  for (const auto& h : hosts_) {
    const auto& t = h.traffic;
    total += t.bytes_sent_by_class[static_cast<size_t>(c)];
  }
  return total;
}

double NetworkMetrics::TotalWork(WorkKind kind) const {
  double total = 0;
  for (const auto& h : hosts_) {
    total += h.work.work_units[static_cast<size_t>(kind)];
  }
  return total;
}

int64_t NetworkMetrics::TotalStateBytes() const {
  int64_t total = 0;
  for (const auto& h : hosts_) {
    total += h.work.state_bytes;
  }
  return total;
}

void NetworkMetrics::PublishTo(MetricsRegistry& registry) const {
  uint64_t msgs_sent = 0;
  uint64_t hosts_with_drops = 0;
  for (const auto& h : hosts_) {
    const auto& t = h.traffic;
    msgs_sent += t.msgs_sent;
    hosts_with_drops += t.msgs_dropped > 0 ? 1 : 0;
  }
  registry.GetGauge("net.msgs.sent").Set(static_cast<double>(msgs_sent));
  registry.GetGauge("net.msgs.dropped").Set(static_cast<double>(dropped_messages()));
  registry.GetGauge("net.hosts.with_drops").Set(static_cast<double>(hosts_with_drops));
  registry.GetGauge("net.bytes.sent").Set(static_cast<double>(total_bytes()));
  registry.GetGauge("net.bytes.tcp").Set(static_cast<double>(TotalBytesTcp()));
  registry.GetGauge("net.bytes.udp").Set(static_cast<double>(TotalBytesUdp()));
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    const auto traffic_class = static_cast<TrafficClass>(c);
    const std::string suffix = TrafficClassName(traffic_class);
    registry.GetGauge("net.bytes.class." + suffix)
        .Set(static_cast<double>(TotalBytesByClass(traffic_class)));
    registry.GetGauge("net.drops.class." + suffix)
        .Set(static_cast<double>(DroppedByClass(traffic_class)));
  }
  registry.GetGauge("work.fl.units").Set(TotalWork(WorkKind::kFlTask));
  registry.GetGauge("work.dht.units").Set(TotalWork(WorkKind::kDhtTask));
  registry.GetGauge("state.bytes.total").Set(static_cast<double>(TotalStateBytes()));
}

void NetworkMetrics::Reset() {
  for (auto& h : hosts_) {
    h = HostAccounting{};
  }
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_messages_ = 0;
  drops_by_class_.fill(0);
  for (TotalsLane& lane : lanes_) {
    lane = TotalsLane{};
  }
}

}  // namespace totoro
