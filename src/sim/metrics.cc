#include "src/sim/metrics.h"

#include "src/common/check.h"

namespace totoro {

void NetworkMetrics::EnsureHosts(size_t n) {
  if (traffic_.size() < n) {
    traffic_.resize(n);
    work_.resize(n);
  }
}

void NetworkMetrics::RecordSend(const Message& msg) {
  CHECK_LT(msg.src, traffic_.size());
  auto& t = traffic_[msg.src];
  ++t.msgs_sent;
  t.bytes_sent += msg.size_bytes;
  if (msg.transport == Transport::kTcp) {
    t.bytes_sent_tcp += msg.size_bytes;
  } else {
    t.bytes_sent_udp += msg.size_bytes;
  }
  t.bytes_sent_by_class[static_cast<size_t>(msg.traffic)] += msg.size_bytes;
  ++total_messages_;
  total_bytes_ += msg.size_bytes;
}

void NetworkMetrics::RecordDelivery(const Message& msg) {
  CHECK_LT(msg.dst, traffic_.size());
  auto& t = traffic_[msg.dst];
  ++t.msgs_recv;
  t.bytes_recv += msg.size_bytes;
}

void NetworkMetrics::ChargeWork(HostId host, WorkKind kind, double units) {
  CHECK_LT(host, work_.size());
  work_[host].work_units[static_cast<size_t>(kind)] += units;
}

void NetworkMetrics::AdjustStateBytes(HostId host, int64_t delta) {
  CHECK_LT(host, work_.size());
  work_[host].state_bytes += delta;
  CHECK_GE(work_[host].state_bytes, 0);
}

uint64_t NetworkMetrics::TotalBytesTcp() const {
  uint64_t total = 0;
  for (const auto& t : traffic_) {
    total += t.bytes_sent_tcp;
  }
  return total;
}

uint64_t NetworkMetrics::TotalBytesUdp() const {
  uint64_t total = 0;
  for (const auto& t : traffic_) {
    total += t.bytes_sent_udp;
  }
  return total;
}

uint64_t NetworkMetrics::TotalBytesByClass(TrafficClass c) const {
  uint64_t total = 0;
  for (const auto& t : traffic_) {
    total += t.bytes_sent_by_class[static_cast<size_t>(c)];
  }
  return total;
}

double NetworkMetrics::TotalWork(WorkKind kind) const {
  double total = 0;
  for (const auto& w : work_) {
    total += w.work_units[static_cast<size_t>(kind)];
  }
  return total;
}

int64_t NetworkMetrics::TotalStateBytes() const {
  int64_t total = 0;
  for (const auto& w : work_) {
    total += w.state_bytes;
  }
  return total;
}

void NetworkMetrics::Reset() {
  for (auto& t : traffic_) {
    t = HostTraffic{};
  }
  for (auto& w : work_) {
    w = HostWork{};
  }
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_messages_ = 0;
}

}  // namespace totoro
