#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sim/shard_slot.h"

namespace totoro {

namespace {

constexpr SimTime kInfTime = std::numeric_limits<SimTime>::infinity();
// Each origin owns 1 << kKeyOriginShift keys; overflowing would collide with the next
// origin's range and silently break the canonical order, so it is always CHECKed.
constexpr uint64_t kMaxOpsPerOrigin = uint64_t{1} << 28;

// Who is executing on this thread right now. The default-initialized state means
// "plain driver code": schedules route to the control stream, Now() reads the base
// clock. Workers install themselves at thread start; RunAsHost/RunControlAt swap the
// context in and out on the coordinator thread.
struct ExecContext {
  ShardedSimulator* sim = nullptr;
  uint32_t host = UINT32_MAX;  // kControlExec when not acting as a host.
  size_t shard = SIZE_MAX;
  bool worker = false;
  SimTime* now = nullptr;
};

// Swapped only by the owning thread: workers at start, the coordinator around
// RunAsHost / RunControlAt.
// LINT: thread-confined execution identity is by design one per thread
thread_local ExecContext tls_exec;

}  // namespace

std::unique_ptr<Simulator> MakeSimulatorFromEnv() {
  const size_t k = EnvThreadCount("TOTORO_SIM_SHARDS", 1);
  if (k <= 1) {
    return std::make_unique<Simulator>();
  }
  return std::make_unique<ShardedSimulator>(k);
}

ShardedSimulator::ShardedSimulator(size_t num_shards) {
  CHECK_GE(num_shards, size_t{1});
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->outbox.resize(num_shards);
    shards_.push_back(std::move(shard));
  }
  for (size_t i = 0; i < num_shards; ++i) {
    shards_[i]->thread = std::thread(&ShardedSimulator::WorkerMain, this, i);
  }
  // Wait until every worker has published its thread-local sink pointers, so folds and
  // flag propagation never read a null Shard::tracer.
  MutexLock lock(&mu_);
  while (workers_ready_ != shards_.size()) {
    cv_done_.Wait(mu_);
  }
}

ShardedSimulator::~ShardedSimulator() {
  SyncShardCancelled();
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_workers_.NotifyAll();
  for (auto& shard : shards_) {
    shard->thread.join();
  }
}

void ShardedSimulator::OnHostAdded(HostId id) {
  CHECK(!sealed_);  // Sharded runs need the full topology before the first event.
  num_hosts_ = std::max(num_hosts_, static_cast<size_t>(id) + 1);
}

void ShardedSimulator::SealPartition() {
  if (sealed_) {
    return;
  }
  sealed_ = true;
  const uint64_t k = shards_.size();
  ops_.assign(num_hosts_, 0);
  shard_of_.resize(num_hosts_);
  for (size_t h = 0; h < num_hosts_; ++h) {
    // Contiguous ranges: shard workers sweep adjacent host state, and the split
    // depends only on (num_hosts, K) — never on insertion order.
    shard_of_[h] = static_cast<uint32_t>(static_cast<uint64_t>(h) * k / num_hosts_);
  }
}

size_t ShardedSimulator::ShardOf(HostId id) const {
  CHECK(sealed_);
  CHECK_LT(id, shard_of_.size());
  return shard_of_[id];
}

void ShardedSimulator::SetLookaheadMs(double ms) {
  CHECK_GE(ms, 0.0);
  lookahead_ms_ = ms;
}

SimTime ShardedSimulator::Now() const {
  const ExecContext& ctx = tls_exec;
  if (ctx.sim == this && ctx.now != nullptr) {
    return *ctx.now;
  }
  return now_;
}

EventHandle ShardedSimulator::Schedule(SimTime delay, EventFn fn) {
  CHECK_GE(delay, 0.0);
  return ScheduleAt(Now() + delay, std::move(fn));
}

EventHandle ShardedSimulator::ScheduleAt(SimTime at, EventFn fn) {
  CHECK_GE(at, Now());
  ExecContext& ctx = tls_exec;
  if (ctx.sim == this && ctx.host != kControlExec) {
    // Acting as a host (worker event or parked RunAsHost): a self-schedule joins the
    // host's canonical stream on its own shard.
    CHECK_LT(ops_[ctx.host], kMaxOpsPerOrigin);
    const uint64_t key = NextHostKey(ctx.host);
    return shards_[shard_of_[ctx.host]]->queue.Push(at, key, ctx.host, std::move(fn));
  }
  // Driver/harness code on the coordinator thread: the control stream.
  CHECK_LT(control_ops_, kMaxOpsPerOrigin);
  return control_.Push(at, NextControlKey(), kControlExec, std::move(fn));
}

EventHandle ShardedSimulator::ScheduleRejoin(SimTime delay, EventFn fn) {
  ExecContext& ctx = tls_exec;
  if (ctx.sim == this && ctx.worker) {
    ++shards_[ctx.shard]->rejoins;  // Folded into rejoins_scheduled_ at run end.
  } else {
    ++rejoins_scheduled_;
  }
  return Schedule(delay, std::move(fn));
}

EventHandle ShardedSimulator::ScheduleMessageArrival(HostId src, HostId dst, SimTime at,
                                                     EventFn fn) {
  ExecContext& ctx = tls_exec;
  CHECK(ctx.sim == this);
  CHECK_LT(dst, shard_of_.size());
  CHECK_LT(ops_[src], kMaxOpsPerOrigin);
  const uint64_t key = NextHostKey(src);
  const size_t dst_shard = shard_of_[dst];
  if (!ctx.worker || dst_shard == ctx.shard) {
    // Same shard, or the coordinator with all workers parked: push directly.
    return shards_[dst_shard]->queue.Push(at, key, dst, std::move(fn));
  }
  // Cross-shard from a worker: the src's counter is only safe because the send runs in
  // src's execution context, and the arrival can't land inside the open window because
  // propagation >= lookahead. The barrier drains it before the next window opens. The
  // conservative bound is checked against the worker's own window_end copy.
  CHECK_EQ(ctx.host, src);
  CHECK_GE(at, shards_[ctx.shard]->window_end);
  shards_[ctx.shard]->outbox[dst_shard].push_back(
      PendingCrossShard{at, key, dst, std::move(fn)});
  return EventHandle();
}

void ShardedSimulator::RunAsHost(HostId host, const std::function<void()>& fn) {
  SealPartition();
  CHECK_LT(host, num_hosts_);
  ExecContext& ctx = tls_exec;
  if (ctx.worker) {
    // Re-entrant call from inside a host event (node methods self-wrap so harness code
    // can call them too): legal only for hosts on the calling worker's own shard, where
    // single-threaded shard execution makes the identity swap safe.
    CHECK_EQ(shard_of_[host], ctx.shard);
    const uint32_t saved_host = ctx.host;
    ctx.host = host;
    Tracer& tracer = GlobalTracer();
    tracer.SetIdSource(HostKeyBase(host), &ops_[host]);
    fn();
    ctx.host = saved_host;
    tracer.SetIdSource(HostKeyBase(saved_host), &ops_[saved_host]);
    return;
  }
  const ExecContext saved = ctx;
  ctx = ExecContext{this, host, shard_of_[host], /*worker=*/false, &now_};
  Tracer& tracer = GlobalTracer();
  tracer.SetIdSource(HostKeyBase(host), &ops_[host]);
  fn();
  if (saved.sim == this && saved.host != kControlExec) {
    tracer.SetIdSource(HostKeyBase(saved.host), &ops_[saved.host]);  // Nested call.
  } else {
    tracer.ClearIdSource();
  }
  ctx = saved;
}

size_t ShardedSimulator::Run(size_t max_events) {
  return RunShardedLoop(max_events, kInfTime);
}

size_t ShardedSimulator::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  // Events at exactly t must run: the exclusive bound is the next representable time.
  const size_t fired = RunShardedLoop(SIZE_MAX, std::nextafter(t, kInfTime));
  now_ = t;
  return fired;
}

size_t ShardedSimulator::RunShardedLoop(size_t max_events, SimTime end_exclusive) {
  SealPartition();
  if (shards_.size() > 1) {
    // Zero lookahead would let a window-open shard receive a same-window arrival,
    // violating the conservative bound. Call SetLookaheadMs (min link latency) first.
    CHECK_GT(lookahead_ms_, 0.0);
  }
  first_run_done_ = true;
  ProfileScope profile_scope("sim_run");
  const double wall_start = WallClockSeconds();
  // Propagate observability switches to the parked workers' thread-local sinks.
  const bool trace_on = GlobalTracer().enabled();
  const bool profile_on = GlobalProfiler().enabled();
  for (auto& shard : shards_) {
    shard->tracer->SetEnabled(trace_on);
    shard->profiler->SetEnabled(profile_on);
  }
  size_t fired_total = 0;
  while (fired_total < max_events) {
    DrainOutboxes();
    SimTime t_first = kInfTime;
    for (auto& shard : shards_) {
      if (!shard->queue.Empty()) {
        t_first = std::min(t_first, shard->queue.NextTime());
      }
    }
    const SimTime control_next = control_.Empty() ? kInfTime : control_.NextTime();
    t_first = std::min(t_first, control_next);
    if (t_first >= end_exclusive) {
      break;
    }
    if (control_next == t_first) {
      // Control-before-shard at equal times, with every worker parked: control events
      // may touch any shard's state (churn scripts, engine rounds) race-free.
      now_ = control_next;
      const size_t control_fired = RunControlAt(control_next);
      fired_total += control_fired;
      if (sample_every() != 0) {
        AccumulatePeriodicSample(control_fired, events_fired_ + fired_total,
                                 run_wall_seconds_ + (WallClockSeconds() - wall_start),
                                 PendingEvents());
      }
      continue;
    }
    SimTime window_end = shards_.size() == 1 ? end_exclusive : t_first + lookahead_ms_;
    window_end = std::min(window_end, std::min(control_next, end_exclusive));
    now_ = t_first;
    {
      MutexLock lock(&mu_);
      window_end_ = window_end;
      workers_running_ = shards_.size();
      ++window_gen_;
    }
    cv_workers_.NotifyAll();
    {
      MutexLock lock(&mu_);
      while (workers_running_ != 0) {
        cv_done_.Wait(mu_);
      }
    }
    SimTime last_at = now_;
    size_t window_fired = 0;
    for (auto& shard : shards_) {
      window_fired += shard->window_fired;
      if (shard->window_fired != 0) {
        last_at = std::max(last_at, shard->window_last_at);
      }
    }
    fired_total += window_fired;
    now_ = last_at;  // K-independent: the max fire time over a K-independent event set.
    if (sample_every() != 0) {
      // Barrier-granular periodic sampling: every worker is parked, so the gauge and
      // the profiler samples land in the coordinator's thread-local sinks, exactly
      // like the single-queue engine's in-loop samples.
      AccumulatePeriodicSample(window_fired, events_fired_ + fired_total,
                               run_wall_seconds_ + (WallClockSeconds() - wall_start),
                               PendingEvents());
    }
  }
  run_wall_seconds_ += WallClockSeconds() - wall_start;
  events_fired_ += fired_total;
  fired_counter_->Increment(fired_total);
  SyncShardCancelled();
  FoldObservability();
  return fired_total;
}

size_t ShardedSimulator::RunControlAt(SimTime at) {
  ExecContext& ctx = tls_exec;
  const ExecContext saved = ctx;
  ctx = ExecContext{this, kControlExec, SIZE_MAX, /*worker=*/false, &now_};
  size_t fired = 0;
  SimTime t = at;
  uint32_t exec = 0;
  EventFn fn;
  // A control event may schedule another at the same instant; drain until the stream
  // moves past `at` so same-time control stays ahead of same-time shard events.
  while (!control_.Empty() && control_.NextTime() <= at) {
    if (!control_.PopNext(&t, &exec, &fn)) {
      break;
    }
    fn();
    ++fired;
  }
  fn.Reset();
  ctx = saved;
  return fired;
}

void ShardedSimulator::DrainOutboxes() {
  for (auto& src : shards_) {
    for (size_t d = 0; d < src->outbox.size(); ++d) {
      for (PendingCrossShard& p : src->outbox[d]) {
        shards_[d]->queue.Push(p.at, p.key, p.exec_host, std::move(p.fn));
      }
      src->outbox[d].clear();
    }
  }
}

void ShardedSimulator::FoldObservability() {
  // Spans: canonical span-id order. Both the set and the ids are K-independent, so the
  // sorted fold is byte-stable; ids are unique (disjoint per-origin ranges), so the
  // sort is a strict order with nothing left to tie-break.
  std::vector<SpanRecord> all;
  for (auto& shard : shards_) {
    std::vector<SpanRecord> spans = shard->tracer->TakeSpans();
    all.insert(all.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end(),
              [](const SpanRecord& a, const SpanRecord& b) { return a.span_id < b.span_id; });
    GlobalTracer().AppendSpans(std::move(all));
  }
  MetricsRegistry& main_registry = GlobalMetrics();
  Profiler& main_profiler = GlobalProfiler();
  for (auto& shard : shards_) {
    main_registry.MergeFrom(*shard->metrics);
    shard->metrics->ResetValues();
    if (main_profiler.enabled()) {
      main_profiler.MergeFrom(*shard->profiler);
      shard->profiler->Reset();
    }
    rejoins_scheduled_ += shard->rejoins;
    shard->rejoins = 0;
  }
}

void ShardedSimulator::SyncShardCancelled() {
  uint64_t total = control_.cancelled_total();
  for (const auto& shard : shards_) {
    total += shard->queue.cancelled_total();
  }
  cancelled_counter_->Increment(total - cancelled_synced_);
  cancelled_synced_ = total;
}

uint64_t ShardedSimulator::events_cancelled() const {
  uint64_t total = control_.cancelled_total();
  for (const auto& shard : shards_) {
    total += shard->queue.cancelled_total();
  }
  return total;
}

bool ShardedSimulator::Idle() const {
  if (!control_.Empty()) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (!shard->queue.Empty()) {
      return false;
    }
  }
  return true;
}

size_t ShardedSimulator::PendingEvents() const {
  size_t total = control_.Size();
  for (const auto& shard : shards_) {
    total += shard->queue.Size();
  }
  return total;
}

void ShardedSimulator::ReserveEvents(size_t n) {
  const size_t per_shard = n / shards_.size() + 1;
  for (auto& shard : shards_) {
    shard->queue.Reserve(per_shard);
  }
}

void ShardedSimulator::WorkerMain(size_t shard_index) {
  internal::ThreadShardSlot() = 1 + shard_index;
  Shard& shard = *shards_[shard_index];
  ExecContext& ctx = tls_exec;
  ctx = ExecContext{this, kControlExec, shard_index, /*worker=*/true, &shard.now};
  shard.tracer = &GlobalTracer();
  shard.metrics = &GlobalMetrics();
  shard.profiler = &GlobalProfiler();
  shard.tracer->SetClockSource(&shard.now);
  shard.profiler->SetClockSource(&shard.now);
  SetLogTimeSource(&shard.now);
  {
    MutexLock lock(&mu_);
    ++workers_ready_;
  }
  cv_done_.NotifyAll();
  uint64_t seen_gen = 0;
  while (true) {
    SimTime end = 0.0;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && window_gen_ == seen_gen) {
        cv_workers_.Wait(mu_);
      }
      if (stopping_) {
        return;
      }
      seen_gen = window_gen_;
      // Copy the window bound out under the lock; the worker (and any conservative
      // CHECK it hits mid-window) reads only its own copy from here on.
      end = window_end_;
    }
    shard.window_end = end;
    RunWindow(shard, end);
    {
      MutexLock lock(&mu_);
      --workers_running_;
      if (workers_running_ == 0) {
        cv_done_.NotifyOne();
      }
    }
  }
}

void ShardedSimulator::RunWindow(Shard& shard, SimTime end) {
  ExecContext& ctx = tls_exec;
  Tracer& tracer = *shard.tracer;
  uint64_t fired = 0;
  SimTime at = shard.now;
  uint32_t exec = 0;
  EventFn fn;
  while (!shard.queue.Empty() && shard.queue.NextTime() < end) {
    if (!shard.queue.PopNext(&at, &exec, &fn)) {
      break;
    }
    shard.now = at;
    ctx.host = exec;
    // Every id (event key, trace id, span id) the event allocates comes from its
    // host's canonical counter, so downstream behaviour is shard-layout-blind.
    tracer.SetIdSource(HostKeyBase(exec), &ops_[exec]);
    fn();
    ++fired;
  }
  fn.Reset();
  tracer.ClearIdSource();
  ctx.host = kControlExec;
  shard.window_fired = fired;
  shard.window_last_at = at;
}

}  // namespace totoro
