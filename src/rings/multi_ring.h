// The locality-aware P2P multi-ring overlay: zone-binned Pastry rings in one id space.
//
// MultiRing glues the three Layer-1 pieces together: distributed binning assigns each
// physical node a zone from its geographic position; node ids are zone-prefixed
// (zones.h) so that prefix routing keeps intra-zone traffic inside the zone; and a
// boundary policy implements administrative isolation for zone-restricted applications.
// Multi-zone applications traverse at most m zones, giving the paper's m * O(log N)
// routing bound.
#ifndef SRC_RINGS_MULTI_RING_H_
#define SRC_RINGS_MULTI_RING_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dht/pastry_network.h"
#include "src/rings/binning.h"
#include "src/rings/two_level_table.h"

namespace totoro {

struct MultiRingConfig {
  int zone_bits = 4;  // m: up to 2^m zones.
  PastryConfig pastry;
};

class MultiRing {
 public:
  MultiRing(Network* net, MultiRingConfig config);

  // Adds a node geographically located at `where`; its zone comes from the binning
  // instance and its id is zone-prefixed random. Returns the node index.
  size_t AddNode(const GeoPoint& where, DistributedBinning& binning, Rng& rng);

  // Adds a node with an explicit zone.
  size_t AddNodeInZone(ZoneId zone, Rng& rng);

  // Installs converged overlay state (oracle bootstrap; see PastryNetwork).
  void Build(Rng& rng);

  PastryNetwork& pastry() { return pastry_; }
  const MultiRingConfig& config() const { return config_; }

  ZoneId zone_of_node(size_t i) const { return zones_.at(i); }
  std::vector<size_t> NodesInZone(ZoneId zone) const;
  std::map<ZoneId, size_t> ZonePopulation() const;

  // True if routing a packet for `key` out of node i's zone is permitted under `policy`.
  bool MayForward(size_t node_index, const NodeId& key, const BoundaryPolicy& policy) const;

 private:
  MultiRingConfig config_;
  PastryNetwork pastry_;
  std::vector<ZoneId> zones_;  // Parallel to pastry_ node indices.
};

}  // namespace totoro

#endif  // SRC_RINGS_MULTI_RING_H_
