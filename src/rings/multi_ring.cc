#include "src/rings/multi_ring.h"

#include "src/common/check.h"

namespace totoro {

MultiRing::MultiRing(Network* net, MultiRingConfig config)
    : config_(config), pastry_(net, config.pastry) {
  CHECK_GE(config_.zone_bits, 1);
  CHECK_LE(config_.zone_bits, 24);
}

size_t MultiRing::AddNode(const GeoPoint& where, DistributedBinning& binning, Rng& rng) {
  const uint32_t bin = binning.BinOf(where);
  binning.RecordMember(bin, where);
  const ZoneId zone = bin & ((1u << config_.zone_bits) - 1u);
  return AddNodeInZone(zone, rng);
}

size_t MultiRing::AddNodeInZone(ZoneId zone, Rng& rng) {
  CHECK_LT(zone, 1u << config_.zone_bits);
  NodeId id = RandomZonedId(zone, config_.zone_bits, rng);
  while (pastry_.FindById(id) != nullptr) {
    id = RandomZonedId(zone, config_.zone_bits, rng);
  }
  const size_t index = pastry_.AddNode(id);
  CHECK_EQ(index, zones_.size());
  zones_.push_back(zone);
  return index;
}

void MultiRing::Build(Rng& rng) { pastry_.BuildOracle(rng); }

std::vector<size_t> MultiRing::NodesInZone(ZoneId zone) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i] == zone) {
      out.push_back(i);
    }
  }
  return out;
}

std::map<ZoneId, size_t> MultiRing::ZonePopulation() const {
  std::map<ZoneId, size_t> pop;
  for (ZoneId z : zones_) {
    ++pop[z];
  }
  return pop;
}

bool MultiRing::MayForward(size_t node_index, const NodeId& key,
                           const BoundaryPolicy& policy) const {
  CHECK_LT(node_index, zones_.size());
  return policy(key, zones_[node_index]);
}

}  // namespace totoro
