#include "src/rings/two_level_table.h"

#include "src/common/check.h"

namespace totoro {
namespace {

// Clockwise distance in a 2^bits space.
uint64_t CwDist(uint64_t from, uint64_t to, int bits) {
  const uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  return (to - from) & mask;
}

}  // namespace

TwoLevelTable::TwoLevelTable(NodeId self, int zone_bits, int suffix_bits)
    : self_(self), zone_bits_(zone_bits), suffix_bits_(suffix_bits) {
  CHECK_GE(zone_bits_, 1);
  CHECK_LE(zone_bits_, 31);
  CHECK_GE(suffix_bits_, 1);
  CHECK_LE(zone_bits_ + suffix_bits_, 128);
  const ZoneId p = ZoneOf(self_, zone_bits_);
  // Level 1: i-th entry targets zone (P + 2^{i-1}) mod 2^m, carrying a zero suffix.
  for (int i = 1; i <= zone_bits_; ++i) {
    const ZoneId target_zone =
        static_cast<ZoneId>((p + (1ull << (i - 1))) & ((1ull << zone_bits_) - 1));
    TwoLevelEntry e;
    e.target = MakeZonedId(target_zone, U128(0, 0), zone_bits_);
    level1_.push_back(e);
  }
  // Level 2: i-th entry targets suffix (S + 2^{i-1}) mod 2^n within the local zone.
  // Suffix is taken from the bits immediately after the zone prefix.
  const U128 suffix_full = (self_ << zone_bits_) >> (128 - suffix_bits_);
  const uint64_t s = suffix_full.lo();
  for (int i = 1; i <= suffix_bits_; ++i) {
    const uint64_t target_suffix = CwDist(0, s + (1ull << (i - 1)), suffix_bits_);
    TwoLevelEntry e;
    // Place the suffix in the bits right below the zone prefix.
    const U128 suffix_bits_value = U128(0, target_suffix) << (128 - zone_bits_ - suffix_bits_);
    e.target = MakeZonedId(p, suffix_bits_value, zone_bits_);
    level2_.push_back(e);
  }
}

bool TwoLevelTable::ConsiderSlot(TwoLevelEntry& slot, const RouteEntry& entry) const {
  // Slot owner = known node closest clockwise from the target point.
  const U128 cand_dist = U128::ClockwiseDistance(slot.target, entry.id);
  if (!slot.node.has_value()) {
    slot.node = entry;
    return true;
  }
  if (slot.node->id == entry.id) {
    return false;
  }
  const U128 cur_dist = U128::ClockwiseDistance(slot.target, slot.node->id);
  if (cand_dist < cur_dist) {
    slot.node = entry;
    return true;
  }
  return false;
}

bool TwoLevelTable::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  bool changed = false;
  for (auto& slot : level1_) {
    changed |= ConsiderSlot(slot, entry);
  }
  // Level 2 only accepts nodes of the local zone: cross-zone contacts must go through
  // level 1, which is what makes boundary control enforceable.
  if (ZoneOf(entry.id, zone_bits_) == zone()) {
    for (auto& slot : level2_) {
      changed |= ConsiderSlot(slot, entry);
    }
  }
  return changed;
}

bool TwoLevelTable::Remove(NodeId id) {
  bool changed = false;
  for (auto& slot : level1_) {
    if (slot.node.has_value() && slot.node->id == id) {
      slot.node.reset();
      changed = true;
    }
  }
  for (auto& slot : level2_) {
    if (slot.node.has_value() && slot.node->id == id) {
      slot.node.reset();
      changed = true;
    }
  }
  return changed;
}

std::optional<RouteEntry> TwoLevelTable::NextHop(const NodeId& key) const {
  // Greedy Chord-style step: among eligible entries, the one making the largest
  // clockwise progress from self toward key without passing it.
  const U128 self_to_key = U128::ClockwiseDistance(self_, key);
  std::optional<RouteEntry> best;
  U128 best_progress = U128(0, 0);
  auto consider_level = [&](const std::vector<TwoLevelEntry>& level) {
    for (const auto& slot : level) {
      if (!slot.node.has_value()) {
        continue;
      }
      const U128 progress = U128::ClockwiseDistance(self_, slot.node->id);
      if (progress == U128(0, 0) || progress > self_to_key) {
        continue;  // No progress, or overshoots the key.
      }
      if (!best.has_value() || progress > best_progress) {
        best = slot.node;
        best_progress = progress;
      }
    }
  };
  const bool cross_zone = ZoneOf(key, zone_bits_) != zone();
  if (cross_zone) {
    consider_level(level1_);
  } else {
    consider_level(level2_);
    // Within the zone, level-1 slot targets the next zone and never helps; skip it.
  }
  return best;
}

size_t TwoLevelTable::NumResolvedEntries() const {
  size_t n = 0;
  for (const auto& slot : level1_) {
    if (slot.node.has_value()) {
      ++n;
    }
  }
  for (const auto& slot : level2_) {
    if (slot.node.has_value()) {
      ++n;
    }
  }
  return n;
}

BoundaryPolicy AllowAllBoundaryPolicy() {
  return [](const NodeId&, ZoneId) { return true; };
}

BoundaryPolicy IsolateZoneBoundaryPolicy(int zone_bits) {
  return [zone_bits](const NodeId& key, ZoneId local_zone) {
    return ZoneOf(key, zone_bits) == local_zone;
  };
}

}  // namespace totoro
