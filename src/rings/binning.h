// Ratnasamy–Shenker distributed binning (INFOCOM '02), used by §4.2 to carve the edge
// network into locality-aware zones.
//
// Each node measures its RTT to a small set of well-known landmarks. Nodes whose
// landmark-ordering (and, optionally, quantized RTT level vector) match fall into the
// same bin; bins become edge zones. The procedure is fully decentralized in the paper's
// deployment — each node bins itself — which this implementation mirrors: BinOf() uses
// only the node's own RTT vector.
#ifndef SRC_RINGS_BINNING_H_
#define SRC_RINGS_BINNING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/geo.h"

namespace totoro {

struct BinningConfig {
  // RTT quantization thresholds in ms; RTTs are classified into level 0..thresholds.size().
  std::vector<double> rtt_level_thresholds_ms = {10.0, 40.0, 160.0};
  // When true the bin signature includes the full landmark ordering; when false only the
  // nearest landmark, which yields exactly one bin per landmark (Voronoi zones).
  bool use_full_ordering = false;
};

class DistributedBinning {
 public:
  DistributedBinning(std::vector<GeoPoint> landmarks, BinningConfig config = {});

  // The node-side computation: RTT vector to all landmarks from the node's location.
  std::vector<double> MeasureRtts(const GeoPoint& node) const;

  // Bin signature string, e.g. "2:0|0:1|1:2" (landmark:level in RTT order).
  std::string SignatureOf(const GeoPoint& node) const;

  // Stable zone id for the node: signatures are interned in first-seen order.
  // (Zone ids are small integers suitable for id prefixes.)
  uint32_t BinOf(const GeoPoint& node);

  // Nearest landmark index (the Voronoi zone).
  uint32_t NearestLandmark(const GeoPoint& node) const;

  size_t num_bins() const { return signature_to_bin_.size(); }
  size_t num_landmarks() const { return landmarks_.size(); }
  const std::vector<GeoPoint>& landmarks() const { return landmarks_; }

  // The maximum observed intra-bin RTT for nodes binned so far: the zone "diameter".
  double DiameterOf(uint32_t bin) const;
  void RecordMember(uint32_t bin, const GeoPoint& node);

 private:
  int LevelOf(double rtt_ms) const;

  std::vector<GeoPoint> landmarks_;
  BinningConfig config_;
  std::map<std::string, uint32_t> signature_to_bin_;
  // bin -> members recorded (for diameter computation).
  std::map<uint32_t, std::vector<GeoPoint>> members_;
};

}  // namespace totoro

#endif  // SRC_RINGS_BINNING_H_
