// Boundary-aware two-level routing table (§4.2, third design change).
//
// Each node keeps:
//   level 1 — m entries spanning zones: the i-th target is (P_x + 2^{i-1}) mod 2^m,
//             i.e. exponentially spaced zone ids starting from the local zone;
//   level 2 — n entries within the zone: the i-th target is (S_y + 2^{i-1}) mod 2^n,
//             exponentially spaced suffixes starting from the local suffix.
//
// Targets are resolved to the live node whose id is closest to the target point
// (clockwise), so each level behaves like a Chord finger table: level 2 reaches any
// suffix within the zone in O(log 2^n) hops, level 1 reaches any zone in O(log m) hops.
// Administrative isolation is enforced at forwarding time: a packet whose destination
// zone differs from the local zone is only handed to level 1, and an administrator
// policy may veto the hand-off entirely (§4.2 "block the packet before routing it
// outside the edge zone").
#ifndef SRC_RINGS_TWO_LEVEL_TABLE_H_
#define SRC_RINGS_TWO_LEVEL_TABLE_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/dht/routing_table.h"
#include "src/rings/zones.h"

namespace totoro {

struct TwoLevelEntry {
  NodeId target;  // The ideal point this entry aims at.
  std::optional<RouteEntry> node;  // The resolved owner, if any is known.
};

class TwoLevelTable {
 public:
  // zone_bits = m (zone prefix width); suffix_bits = n (intra-zone id width); for a full
  // 128-bit id, zone_bits + suffix_bits == 128, but smaller synthetic spaces are allowed
  // in tests.
  TwoLevelTable(NodeId self, int zone_bits, int suffix_bits);

  int zone_bits() const { return zone_bits_; }
  int suffix_bits() const { return suffix_bits_; }
  ZoneId zone() const { return ZoneOf(self_, zone_bits_); }

  // Offers a candidate node; it is installed into every level-1/level-2 slot for which
  // it is the best-known owner (closest clockwise to the slot's target point).
  bool Consider(const RouteEntry& entry);
  bool Remove(NodeId id);

  const std::vector<TwoLevelEntry>& level1() const { return level1_; }
  const std::vector<TwoLevelEntry>& level2() const { return level2_; }

  // Next hop toward `key`. Cross-zone keys use level 1; intra-zone keys use level 2.
  // Returns nullopt when the local node is the best known owner.
  std::optional<RouteEntry> NextHop(const NodeId& key) const;

  size_t NumResolvedEntries() const;

 private:
  bool ConsiderSlot(TwoLevelEntry& slot, const RouteEntry& entry) const;

  NodeId self_;
  int zone_bits_;
  int suffix_bits_;
  std::vector<TwoLevelEntry> level1_;  // zone_bits entries.
  std::vector<TwoLevelEntry> level2_;  // suffix_bits entries.
};

// Administrator policy hook for zone-boundary enforcement: return true to allow a packet
// for `key` to leave `local_zone`. The default-deny policy used by zone-restricted
// applications simply returns key's zone == local zone.
using BoundaryPolicy = std::function<bool(const NodeId& key, ZoneId local_zone)>;

// Policy allowing everything (multi-zone applications).
BoundaryPolicy AllowAllBoundaryPolicy();

// Policy confining traffic to the local zone (the paper's administrative isolation).
BoundaryPolicy IsolateZoneBoundaryPolicy(int zone_bits);

}  // namespace totoro

#endif  // SRC_RINGS_TWO_LEVEL_TABLE_H_
