#include "src/rings/binning.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace totoro {

DistributedBinning::DistributedBinning(std::vector<GeoPoint> landmarks, BinningConfig config)
    : landmarks_(std::move(landmarks)), config_(std::move(config)) {
  CHECK(!landmarks_.empty());
}

std::vector<double> DistributedBinning::MeasureRtts(const GeoPoint& node) const {
  std::vector<double> rtts;
  rtts.reserve(landmarks_.size());
  for (const auto& lm : landmarks_) {
    rtts.push_back(EstimateRttMs(node, lm));
  }
  return rtts;
}

int DistributedBinning::LevelOf(double rtt_ms) const {
  int level = 0;
  for (double threshold : config_.rtt_level_thresholds_ms) {
    if (rtt_ms < threshold) {
      break;
    }
    ++level;
  }
  return level;
}

std::string DistributedBinning::SignatureOf(const GeoPoint& node) const {
  const std::vector<double> rtts = MeasureRtts(node);
  std::vector<size_t> order(rtts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return rtts[a] < rtts[b]; });
  std::string sig;
  const size_t depth = config_.use_full_ordering ? order.size() : 1;
  for (size_t i = 0; i < depth; ++i) {
    if (i > 0) {
      sig += '|';
    }
    sig += std::to_string(order[i]);
    sig += ':';
    sig += std::to_string(LevelOf(rtts[order[i]]));
  }
  return sig;
}

uint32_t DistributedBinning::BinOf(const GeoPoint& node) {
  const std::string sig = SignatureOf(node);
  auto it = signature_to_bin_.find(sig);
  if (it == signature_to_bin_.end()) {
    const uint32_t bin = static_cast<uint32_t>(signature_to_bin_.size());
    it = signature_to_bin_.emplace(sig, bin).first;
  }
  return it->second;
}

uint32_t DistributedBinning::NearestLandmark(const GeoPoint& node) const {
  const std::vector<double> rtts = MeasureRtts(node);
  return static_cast<uint32_t>(
      std::min_element(rtts.begin(), rtts.end()) - rtts.begin());
}

void DistributedBinning::RecordMember(uint32_t bin, const GeoPoint& node) {
  members_[bin].push_back(node);
}

double DistributedBinning::DiameterOf(uint32_t bin) const {
  auto it = members_.find(bin);
  if (it == members_.end() || it->second.size() < 2) {
    return 0.0;
  }
  // Exact pairwise max is O(k^2); sample-cap large zones to keep this cheap while still
  // reporting a faithful diameter estimate.
  const auto& pts = it->second;
  const size_t stride = pts.size() > 512 ? pts.size() / 512 : 1;
  double max_rtt = 0.0;
  for (size_t i = 0; i < pts.size(); i += stride) {
    for (size_t j = i + stride; j < pts.size(); j += stride) {
      max_rtt = std::max(max_rtt, EstimateRttMs(pts[i], pts[j]));
    }
  }
  return max_rtt;
}

}  // namespace totoro
