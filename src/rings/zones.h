// Zone-prefixed identifiers for the locality-aware multi-ring structure (§4.2).
//
// Totoro divides the single Pastry ring into m = 2^zone_bits smaller rings ("edge
// zones"). A NodeId carries its zone in the top zone_bits bits and a per-zone suffix in
// the remaining bits: D = P * 2^n + S. Because prefix routing resolves the most
// significant digits first, a zone-prefixed key's route converges inside the key's zone,
// which is what enables administrative isolation at zone boundaries.
#ifndef SRC_RINGS_ZONES_H_
#define SRC_RINGS_ZONES_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/dht/node_id.h"

namespace totoro {

using ZoneId = uint32_t;

// Builds a node id with zone prefix `zone` (zone_bits wide) and the given 128-zone_bits
// bit suffix (top bits of `suffix` beyond the suffix width are discarded).
inline NodeId MakeZonedId(ZoneId zone, const U128& suffix, int zone_bits) {
  const U128 prefix = U128(0, zone) << (128 - zone_bits);
  const U128 mask = (U128(0, 1) << (128 - zone_bits)) - U128(0, 1);
  return prefix | (suffix & mask);
}

inline NodeId RandomZonedId(ZoneId zone, int zone_bits, Rng& rng) {
  return MakeZonedId(zone, U128(rng.Next(), rng.Next()), zone_bits);
}

// Extracts the zone prefix of an id.
inline ZoneId ZoneOf(const NodeId& id, int zone_bits) {
  return static_cast<ZoneId>((id >> (128 - zone_bits)).lo());
}

// True if `id` belongs to `zone`.
inline bool InZone(const NodeId& id, ZoneId zone, int zone_bits) {
  return ZoneOf(id, zone_bits) == zone;
}

}  // namespace totoro

#endif  // SRC_RINGS_ZONES_H_
