// ASCII table rendering for bench output.
//
// Every bench binary prints the rows of the paper table/figure it reproduces; this
// helper keeps the formatting uniform and column-aligned.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace totoro {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with %.*f.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long v);

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace totoro

#endif  // SRC_COMMON_TABLE_H_
