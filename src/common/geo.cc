#include "src/common/geo.h"

#include <cmath>

namespace totoro {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
// Light speed in fiber is roughly 200 km/ms; routes detour ~1.5x the geodesic.
constexpr double kKmPerMsOneWay = 200.0;
constexpr double kRouteStretch = 1.5;
constexpr double kBaseRttMs = 0.5;

}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double EstimateRttMs(double distance_km) {
  return kBaseRttMs + 2.0 * distance_km * kRouteStretch / kKmPerMsOneWay;
}

double EstimateRttMs(const GeoPoint& a, const GeoPoint& b) {
  return EstimateRttMs(HaversineKm(a, b));
}

}  // namespace totoro
