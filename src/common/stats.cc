#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/check.h"

namespace totoro {

void Summary::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void Summary::AddAll(const std::vector<double>& xs) {
  for (double x : xs) {
    Add(x);
  }
}

double Summary::Mean() const { return samples_.empty() ? 0.0 : sum_ / samples_.size(); }

double Summary::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = Mean();
  double acc = 0.0;
  for (double x : samples_) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / (samples_.size() - 1));
}

double Summary::Min() const {
  CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.front();
}

double Summary::Max() const {
  CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

double Summary::Percentile(double q) const {
  CHECK(!samples_.empty());
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  EnsureSorted();
  const double pos = q * (sorted_.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  if (i + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  const double frac = pos - static_cast<double>(i);
  return sorted_[i] * (1.0 - frac) + sorted_[i + 1] * frac;
}

std::string Summary::Brief() const {
  if (samples_.empty()) {
    return "n=0";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.4g p50=%.4g p99=%.4g max=%.4g", count(),
                Mean(), Percentile(0.5), Percentile(0.99), Max());
  return buf;
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

AsciiHistogram::AsciiHistogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  CHECK_LT(lo, hi);
  CHECK_GT(bins, 0);
  buckets_.assign(static_cast<size_t>(bins), 0);
}

void AsciiHistogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  size_t i = static_cast<size_t>(frac * buckets_.size());
  if (i >= buckets_.size()) {
    i = buckets_.size() - 1;
  }
  ++buckets_[i];
}

double AsciiHistogram::BucketLow(int i) const {
  return lo_ + (hi_ - lo_) * i / static_cast<double>(buckets_.size());
}

double AsciiHistogram::BucketHigh(int i) const {
  return lo_ + (hi_ - lo_) * (i + 1) / static_cast<double>(buckets_.size());
}

std::string AsciiHistogram::Render(int max_bar_width) const {
  size_t peak = 1;
  for (size_t b : buckets_) {
    peak = std::max(peak, b);
  }
  std::string out;
  char line[256];
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int bar = static_cast<int>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) * max_bar_width);
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8zu ", BucketLow(static_cast<int>(i)),
                  BucketHigh(static_cast<int>(i)), buckets_[i]);
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

size_t IntCounter::Total() const {
  size_t total = 0;
  for (const auto& [value, n] : counts_) {
    (void)value;
    total += n;
  }
  return total;
}

double IntCounter::CumulativeFraction(long v) const {
  const size_t total = Total();
  if (total == 0) {
    return 0.0;
  }
  size_t at_or_below = 0;
  for (const auto& [value, n] : counts_) {
    if (value <= v) {
      at_or_below += n;
    }
  }
  return static_cast<double>(at_or_below) / static_cast<double>(total);
}

}  // namespace totoro
