#include "src/common/sha1.h"

#include <cstring>

namespace totoro {
namespace {

inline uint32_t Rotl(uint32_t x, int s) { return (x << s) | (x >> (32 - s)); }

struct Sha1State {
  uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};

  void ProcessBlock(const uint8_t* block) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0];
    uint32_t b = h[1];
    uint32_t c = h[2];
    uint32_t d = h[3];
    uint32_t e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f;
      uint32_t k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

std::array<uint8_t, 20> Sha1(std::string_view data) {
  Sha1State state;
  const auto* bytes = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  size_t offset = 0;
  while (n - offset >= 64) {
    state.ProcessBlock(bytes + offset);
    offset += 64;
  }
  // Final block(s): append 0x80, zero-pad, then the 64-bit big-endian bit length.
  uint8_t tail[128];
  const size_t rem = n - offset;
  std::memcpy(tail, bytes + offset, rem);
  tail[rem] = 0x80;
  size_t tail_len = rem + 1 <= 56 ? 64 : 128;
  std::memset(tail + rem + 1, 0, tail_len - rem - 1);
  const uint64_t bit_len = static_cast<uint64_t>(n) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  state.ProcessBlock(tail);
  if (tail_len == 128) {
    state.ProcessBlock(tail + 64);
  }
  std::array<uint8_t, 20> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state.h[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state.h[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state.h[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state.h[i]);
  }
  return digest;
}

U128 Sha1To128(std::string_view data) {
  const auto d = Sha1(data);
  uint64_t hi = 0;
  uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | d[i];
    lo = (lo << 8) | d[i + 8];
  }
  return U128(hi, lo);
}

}  // namespace totoro
