#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace totoro {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::Int(long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", v);
  return buf;
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';
  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

}  // namespace totoro
