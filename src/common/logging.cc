#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/env.h"

namespace totoro {
namespace {

LogLevel g_level = LogLevel::kWarn;
// When TOTORO_LOG_LEVEL is set it overrides SetLogLevel; g_env_level holds the parsed
// value and g_env_override marks it active.
bool g_env_override = false;
LogLevel g_env_level = LogLevel::kWarn;
thread_local const double* g_time_source = nullptr;  // Per-thread: one simulator per thread.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool ParseLevel(const char* s, LogLevel* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "DEBUG") == 0 ||
      std::strcmp(s, "0") == 0) {
    *out = LogLevel::kDebug;
  } else if (std::strcmp(s, "info") == 0 || std::strcmp(s, "INFO") == 0 ||
             std::strcmp(s, "1") == 0) {
    *out = LogLevel::kInfo;
  } else if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "WARN") == 0 ||
             std::strcmp(s, "warning") == 0 || std::strcmp(s, "2") == 0) {
    *out = LogLevel::kWarn;
  } else if (std::strcmp(s, "error") == 0 || std::strcmp(s, "ERROR") == 0 ||
             std::strcmp(s, "3") == 0) {
    *out = LogLevel::kError;
  } else if (std::strcmp(s, "off") == 0 || std::strcmp(s, "OFF") == 0 ||
             std::strcmp(s, "none") == 0 || std::strcmp(s, "4") == 0) {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

// Parsed exactly once per process (unless a test re-parses via InitLogLevelFromEnv).
void EnsureEnvParsed() {
  static const bool parsed = [] {
    InitLogLevelFromEnv();
    return true;
  }();
  (void)parsed;
}

LogLevel EffectiveLevel() {
  EnsureEnvParsed();
  return g_env_override ? g_env_level : g_level;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return EffectiveLevel(); }

bool InitLogLevelFromEnv() {
  const char* value = EnvString("TOTORO_LOG_LEVEL");
  LogLevel parsed = LogLevel::kWarn;
  if (ParseLevel(value, &parsed)) {
    g_env_override = true;
    g_env_level = parsed;
    return true;
  }
  if (value != nullptr) {
    std::fprintf(stderr, "[WARN] TOTORO_LOG_LEVEL=\"%s\" not recognized (want debug/info/warn/error/off or 0-4)\n",
                 value);
  }
  g_env_override = false;
  return false;
}

void SetLogTimeSource(const double* now_ms) { g_time_source = now_ms; }

const double* GetLogTimeSource() { return g_time_source; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (level < EffectiveLevel()) {
    return;
  }
  if (g_time_source != nullptr) {
    std::fprintf(stderr, "[%s t=%.3f] ", LevelName(level), *g_time_source);
  } else {
    std::fprintf(stderr, "[%s] ", LevelName(level));
  }
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace totoro
