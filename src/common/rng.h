// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (topology sampling, link success draws,
// dataset synthesis, churn injection) owns an Rng seeded explicitly, so that every test
// and bench is reproducible bit-for-bit. The core generator is xoshiro256**, seeded via
// SplitMix64 as its authors recommend.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace totoro {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p.
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Exponential with the given mean (mean must be > 0).
  double Exponential(double mean);

  // Geometric: number of Bernoulli(p) trials up to and including the first success
  // (support {1, 2, ...}, mean 1/p). Matches the paper's link-delay model.
  uint64_t Geometric(double p);

  // Symmetric Dirichlet(alpha) over k categories; used by the non-IID data partitioner.
  std::vector<double> Dirichlet(double alpha, int k);

  // Samples an index in [0, weights.size()) proportionally to `weights` (all >= 0, with
  // positive sum).
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; used to give each simulated node its own
  // stream without correlations.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace totoro

#endif  // SRC_COMMON_RNG_H_
