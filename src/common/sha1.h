// Self-contained SHA-1 implementation (FIPS 180-1).
//
// Totoro derives application ids as AppId = SHA1(name || creator key || salt) truncated
// to 128 bits, exactly as the paper's §4.3 step (a) prescribes. SHA-1's collision
// weaknesses are irrelevant here: the hash is used only to spread rendezvous points
// uniformly over the identifier ring, not for authentication.
#ifndef SRC_COMMON_SHA1_H_
#define SRC_COMMON_SHA1_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/u128.h"

namespace totoro {

// Computes the 20-byte SHA-1 digest of `data`.
std::array<uint8_t, 20> Sha1(std::string_view data);

// First 128 bits of the SHA-1 digest, for use as a DHT key.
U128 Sha1To128(std::string_view data);

}  // namespace totoro

#endif  // SRC_COMMON_SHA1_H_
