// Minimal leveled logger.
//
// Protocol layers log at kDebug/kInfo; benches run with kWarn so output stays clean.
// Severity is a process-global because the simulator is single-threaded by design.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace totoro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging; drops messages below the global level.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace totoro

#define TLOG_DEBUG(...) ::totoro::Logf(::totoro::LogLevel::kDebug, __VA_ARGS__)
#define TLOG_INFO(...) ::totoro::Logf(::totoro::LogLevel::kInfo, __VA_ARGS__)
#define TLOG_WARN(...) ::totoro::Logf(::totoro::LogLevel::kWarn, __VA_ARGS__)
#define TLOG_ERROR(...) ::totoro::Logf(::totoro::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_COMMON_LOGGING_H_
