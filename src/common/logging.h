// Minimal leveled logger.
//
// Protocol layers log at kDebug/kInfo; benches run with kWarn so output stays clean.
// Severity is a process-global because the simulator is single-threaded by design.
//
// The TOTORO_LOG_LEVEL environment variable (debug/info/warn/error/off, or 0-4)
// overrides the programmatic level unconditionally — it is parsed once, on first use,
// so a user can crank verbosity on any binary without recompiling.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace totoro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Re-reads TOTORO_LOG_LEVEL. Called automatically on first Logf/GetLogLevel; exposed
// so tests can exercise the parser after setenv(). Returns true when the variable was
// present and valid.
bool InitLogLevelFromEnv();

// Registers the active simulator's virtual clock (ms). When set, every log line is
// prefixed with the current virtual time. The Simulator constructor registers itself.
void SetLogTimeSource(const double* now_ms);
const double* GetLogTimeSource();

// printf-style logging; drops messages below the global level.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace totoro

#define TLOG_DEBUG(...) ::totoro::Logf(::totoro::LogLevel::kDebug, __VA_ARGS__)
#define TLOG_INFO(...) ::totoro::Logf(::totoro::LogLevel::kInfo, __VA_ARGS__)
#define TLOG_WARN(...) ::totoro::Logf(::totoro::LogLevel::kWarn, __VA_ARGS__)
#define TLOG_ERROR(...) ::totoro::Logf(::totoro::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_COMMON_LOGGING_H_
