// Geographic coordinates and RTT estimation for edge topologies.
//
// The EUA-like topology generator places edge nodes at latitude/longitude points; RTTs
// between nodes are derived from great-circle distance plus a per-hop jitter, which is
// how the paper estimates the "diameter" of each edge zone from the EUA dataset.
#ifndef SRC_COMMON_GEO_H_
#define SRC_COMMON_GEO_H_

namespace totoro {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance in kilometers (haversine).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

// Estimated round-trip time in milliseconds for a link spanning `distance_km`.
// Model: base processing latency + propagation at ~2/3 c over a route ~1.5x the
// great-circle distance — a standard WAN approximation.
double EstimateRttMs(double distance_km);

double EstimateRttMs(const GeoPoint& a, const GeoPoint& b);

}  // namespace totoro

#endif  // SRC_COMMON_GEO_H_
