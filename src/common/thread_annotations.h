// Clang thread-safety annotations + an annotated Mutex/CondVar wrapper.
//
// The repo's concurrency surface is deliberately small — the ComputePool's task
// queue, the ShardedSimulator's window barrier, and the bench runner's error slot —
// but PR 9's thread-locality bug sweep showed that "small" is not "safe by
// inspection". These macros attach the lock discipline to the code itself so Clang's
// -Wthread-safety analysis (enabled whenever the compiler is Clang; promoted to an
// error by TOTORO_WERROR in the dedicated CI job) proves at compile time that every
// access to a TOTORO_GUARDED_BY member happens with its mutex held. GCC expands the
// annotations to nothing, so the single-compiler analysis gates CI without
// constraining local builds.
//
// Discipline:
//  - Every std::mutex in src/ is replaced by totoro::Mutex below (the raw type has no
//    capability attribute, so the analysis cannot see it). lint R7 keeps ambient
//    mutable statics out of the deterministic directories; the analysis covers the
//    explicitly-shared remainder.
//  - Guarded members carry TOTORO_GUARDED_BY(mu_); functions that expect the caller
//    to hold a lock carry TOTORO_REQUIRES(mu_).
//  - Condition waits go through CondVar::Wait(mu) inside an explicit while(pred)
//    loop in the annotated caller — never a predicate lambda, which the analysis
//    would treat as an unannotated function and flag every guarded access inside.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TOTORO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TOTORO_THREAD_ANNOTATION(x)
#endif

// Type attributes.
#define TOTORO_CAPABILITY(x) TOTORO_THREAD_ANNOTATION(capability(x))
#define TOTORO_SCOPED_CAPABILITY TOTORO_THREAD_ANNOTATION(scoped_lockable)

// Member attributes.
#define TOTORO_GUARDED_BY(x) TOTORO_THREAD_ANNOTATION(guarded_by(x))
#define TOTORO_PT_GUARDED_BY(x) TOTORO_THREAD_ANNOTATION(pt_guarded_by(x))
#define TOTORO_ACQUIRED_BEFORE(...) TOTORO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TOTORO_ACQUIRED_AFTER(...) TOTORO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes.
#define TOTORO_REQUIRES(...) TOTORO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TOTORO_ACQUIRE(...) TOTORO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TOTORO_RELEASE(...) TOTORO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TOTORO_TRY_ACQUIRE(...) TOTORO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TOTORO_EXCLUDES(...) TOTORO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TOTORO_RETURN_CAPABILITY(x) TOTORO_THREAD_ANNOTATION(lock_returned(x))
#define TOTORO_NO_THREAD_SAFETY_ANALYSIS TOTORO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace totoro {

class CondVar;

// std::mutex wearing Clang's capability attribute. Same cost, same semantics; the
// only addition is that the analysis can now name the lock.
class TOTORO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TOTORO_ACQUIRE() { mu_.lock(); }
  void Unlock() TOTORO_RELEASE() { mu_.unlock(); }
  bool TryLock() TOTORO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock scope for Mutex (the analysis tracks scoped_lockable acquisition through
// early returns and breaks, so `{ MutexLock lock(&mu_); ... }` is the idiom).
class TOTORO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TOTORO_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TOTORO_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable for Mutex. Wait() REQUIRES the caller to hold `mu` and holds it
// again on return, so callers keep the canonical shape the analysis can check:
//
//   MutexLock lock(&mu_);
//   while (!condition_on_guarded_state) {
//     cv_.Wait(mu_);
//   }
//
// (The predicate is evaluated in the annotated caller, not in a lambda.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and re-acquires `mu` before returning. Spurious
  // wakeups happen; always wrap in a while(pred) loop.
  void Wait(Mutex& mu) TOTORO_REQUIRES(mu) {
    // Adopt the already-held mutex for the wait, then release the std::unique_lock
    // wrapper so it does not unlock on destruction — ownership stays with the caller
    // exactly as the annotation promises.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace totoro

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
