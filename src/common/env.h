// The single sanctioned environment-variable access point (totoro_lint rule R1).
//
// Environment reads are a nondeterminism source: two runs of the same binary can
// diverge on nothing but an ambient variable, which breaks the bit-identical-replay
// guarantee the simulator and benches rely on. Concentrating every read here keeps the
// surface auditable — all knobs are named in one place, every caller goes through a
// typed parse-with-default helper, and direct std::getenv() anywhere else in the tree
// is a lint error.
//
// Known knobs:
//   TOTORO_LOG_LEVEL       debug/info/warn/error/off or 0-4 (src/common/logging.cc)
//   TOTORO_COMPUTE_THREADS local-training pool size, >= 1   (src/fl/compute_pool.cc)
//   TOTORO_BENCH_THREADS   bench trial parallelism, >= 1    (bench/parallel_runner.cc)
//   TOTORO_PROFILE         >= 1 enables the phase profiler  (src/obs/profiler.cc)
//   TOTORO_BENCH_REPORT_DIR  BENCH_*.json output dir, default "."; "off" disables
//                                                           (src/obs/bench_report.cc)
//   TOTORO_SIMD            kernel dispatch level: scalar/unrolled/sse2/avx2/neon;
//                          default = best the CPU supports. All levels are
//                          bit-identical, so this only affects speed.
//                                                           (src/ml/kernels.cc)
//   TOTORO_SIM_SHARDS      simulator shard count for MakeSimulatorFromEnv, >= 1;
//                          1 (default) = the single-threaded engine, K > 1 = K
//                          worker shards behind the conservative barrier. All K
//                          produce bit-identical exports (src/sim/sharded_sim.cc)
#ifndef SRC_COMMON_ENV_H_
#define SRC_COMMON_ENV_H_

#include <cstddef>
#include <string>

namespace totoro {

// Raw read. Returns nullptr when unset; never returns an empty string as "set"
// (an empty value is treated as unset, matching every existing caller).
const char* EnvString(const char* name);

// Integer knob: returns `fallback` when unset, unparsable, trailing-garbage, or
// below `min_value`.
long EnvInt64(const char* name, long fallback, long min_value);

// Positive thread/worker-count knob: EnvInt64 with min_value 1, narrowed to size_t.
size_t EnvThreadCount(const char* name, size_t fallback);

}  // namespace totoro

#endif  // SRC_COMMON_ENV_H_
