// Lightweight invariant-checking macros in the spirit of absl CHECK.
//
// CHECK(cond) aborts with a message when `cond` is false, in every build type. Protocol
// invariants in the DHT/pub-sub layers use CHECK so that a corrupted overlay fails loudly
// instead of silently mis-routing. DCHECK compiles out in NDEBUG builds and guards
// hot-path-only assertions.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace totoro {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace totoro

#define CHECK(cond)                                  \
  do {                                               \
    if (!(cond)) {                                   \
      ::totoro::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                \
  } while (0)

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))

#ifdef NDEBUG
#define DCHECK(cond) \
  do {               \
  } while (0)
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // SRC_COMMON_CHECK_H_
