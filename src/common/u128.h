// Unsigned 128-bit integer used for DHT node and application identifiers.
//
// Pastry identifiers live in a circular space of size 2^128. This type provides exactly
// the operations identifier arithmetic needs: comparison, wrap-around addition and
// subtraction, shifts, and digit extraction in base 2^b. It is a trivially copyable value
// type, safe to pass around by value.
#ifndef SRC_COMMON_U128_H_
#define SRC_COMMON_U128_H_

#include <bit>
#include <cstdint>
#include <string>

namespace totoro {

class U128 {
 public:
  constexpr U128() = default;
  constexpr U128(uint64_t hi, uint64_t lo) : hi_(hi), lo_(lo) {}
  // Implicit from uint64_t mirrors built-in integer widening.
  constexpr U128(uint64_t lo) : hi_(0), lo_(lo) {}  // NOLINT(google-explicit-constructor)

  constexpr uint64_t hi() const { return hi_; }
  constexpr uint64_t lo() const { return lo_; }

  friend constexpr bool operator==(const U128& a, const U128& b) {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }
  friend constexpr bool operator!=(const U128& a, const U128& b) { return !(a == b); }
  friend constexpr bool operator<(const U128& a, const U128& b) {
    return a.hi_ != b.hi_ ? a.hi_ < b.hi_ : a.lo_ < b.lo_;
  }
  friend constexpr bool operator<=(const U128& a, const U128& b) { return !(b < a); }
  friend constexpr bool operator>(const U128& a, const U128& b) { return b < a; }
  friend constexpr bool operator>=(const U128& a, const U128& b) { return !(a < b); }

  // Addition and subtraction wrap modulo 2^128, matching circular identifier space math.
  friend constexpr U128 operator+(const U128& a, const U128& b) {
    uint64_t lo = a.lo_ + b.lo_;
    uint64_t carry = lo < a.lo_ ? 1 : 0;
    return U128(a.hi_ + b.hi_ + carry, lo);
  }
  friend constexpr U128 operator-(const U128& a, const U128& b) {
    uint64_t lo = a.lo_ - b.lo_;
    uint64_t borrow = a.lo_ < b.lo_ ? 1 : 0;
    return U128(a.hi_ - b.hi_ - borrow, lo);
  }

  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return U128(a.hi_ & b.hi_, a.lo_ & b.lo_);
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return U128(a.hi_ | b.hi_, a.lo_ | b.lo_);
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return U128(a.hi_ ^ b.hi_, a.lo_ ^ b.lo_);
  }
  friend constexpr U128 operator~(const U128& a) { return U128(~a.hi_, ~a.lo_); }

  friend constexpr U128 operator<<(const U128& a, int s) {
    if (s == 0) {
      return a;
    }
    if (s >= 128) {
      return U128(0, 0);
    }
    if (s >= 64) {
      return U128(a.lo_ << (s - 64), 0);
    }
    return U128((a.hi_ << s) | (a.lo_ >> (64 - s)), a.lo_ << s);
  }
  friend constexpr U128 operator>>(const U128& a, int s) {
    if (s == 0) {
      return a;
    }
    if (s >= 128) {
      return U128(0, 0);
    }
    if (s >= 64) {
      return U128(0, a.hi_ >> (s - 64));
    }
    return U128(a.hi_ >> s, (a.lo_ >> s) | (a.hi_ << (64 - s)));
  }

  // Extracts the digit at `index` (0 = most significant) when the 128 bits are read as a
  // string of digits of `bits` bits each. Used by Pastry prefix routing with bits = b.
  constexpr uint32_t Digit(int index, int bits) const {
    const int shift = 128 - (index + 1) * bits;
    const U128 shifted = *this >> shift;
    return static_cast<uint32_t>(shifted.lo_) & ((1u << bits) - 1u);
  }

  // Number of leading digits (base 2^bits) shared with `other`. Computed from the
  // position of the first differing bit: digit floor(clz/bits) is the first digit that
  // contains a differing bit, so exactly that many leading digits match. One XOR +
  // count-leading-zeros instead of a digit-by-digit shift loop — this sits on the
  // Pastry per-hop routing path (RoutingTable::NextHop).
  constexpr int CommonPrefixDigits(const U128& other, int bits) const {
    const uint64_t xhi = hi_ ^ other.hi_;
    const uint64_t xlo = lo_ ^ other.lo_;
    const int leading =
        xhi != 0 ? std::countl_zero(xhi)
                 : (xlo != 0 ? 64 + std::countl_zero(xlo) : 128);
    const int digits = 128 / bits;
    const int shared = leading / bits;
    return shared < digits ? shared : digits;
  }

  // Minimal circular distance between two points in the 2^128 identifier ring.
  static constexpr U128 RingDistance(const U128& a, const U128& b) {
    const U128 d1 = a - b;
    const U128 d2 = b - a;
    return d1 < d2 ? d1 : d2;
  }

  // Clockwise (increasing-id) distance from a to b, wrapping modulo 2^128.
  static constexpr U128 ClockwiseDistance(const U128& a, const U128& b) { return b - a; }

  static constexpr U128 Max() { return U128(~0ull, ~0ull); }

  std::string ToHex() const;
  static U128 FromHex(const std::string& hex);

  // FNV-style mix down to 64 bits for use as a hash-map key.
  constexpr uint64_t Hash64() const {
    uint64_t h = hi_ * 0x9E3779B97F4A7C15ull;
    h ^= lo_ + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  }

 private:
  uint64_t hi_ = 0;
  uint64_t lo_ = 0;
};

struct U128Hash {
  size_t operator()(const U128& v) const { return static_cast<size_t>(v.Hash64()); }
};

}  // namespace totoro

#endif  // SRC_COMMON_U128_H_
