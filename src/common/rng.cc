#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace totoro {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl64(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl64(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl64(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Rng::Exponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

uint64_t Rng::Geometric(double p) {
  CHECK_GT(p, 0.0);
  CHECK_LE(p, 1.0);
  if (p >= 1.0) {
    return 1;
  }
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  // Inverse CDF of the {1,2,...} geometric distribution.
  const double k = std::ceil(std::log(u) / std::log(1.0 - p));
  return k < 1.0 ? 1 : static_cast<uint64_t>(k);
}

std::vector<double> Rng::Dirichlet(double alpha, int k) {
  CHECK_GT(alpha, 0.0);
  CHECK_GT(k, 0);
  // Marsaglia-Tsang gamma sampling; Dirichlet = normalized gammas.
  auto sample_gamma = [this](double shape) {
    if (shape < 1.0) {
      // Boost via Gamma(shape+1) and a uniform power.
      double u = NextDouble();
      while (u <= 1e-300) {
        u = NextDouble();
      }
      const double boost = std::pow(u, 1.0 / shape);
      shape += 1.0;
      const double d = shape - 1.0 / 3.0;
      const double c = 1.0 / std::sqrt(9.0 * d);
      for (;;) {
        double x = Gaussian();
        double v = 1.0 + c * x;
        if (v <= 0) {
          continue;
        }
        v = v * v * v;
        const double u2 = NextDouble();
        if (u2 < 1.0 - 0.0331 * x * x * x * x ||
            std::log(u2 + 1e-300) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
          return d * v * boost;
        }
      }
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = Gaussian();
      double v = 1.0 + c * x;
      if (v <= 0) {
        continue;
      }
      v = v * v * v;
      const double u = NextDouble();
      if (u < 1.0 - 0.0331 * x * x * x * x ||
          std::log(u + 1e-300) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  };
  std::vector<double> out(static_cast<size_t>(k));
  double sum = 0.0;
  for (auto& v : out) {
    v = sample_gamma(alpha);
    sum += v;
  }
  if (sum <= 0.0) {
    // Degenerate draw; fall back to uniform.
    for (auto& v : out) {
      v = 1.0 / k;
    }
    return out;
  }
  for (auto& v : out) {
    v /= sum;
  }
  return out;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA02BDBF7BB3C0A7ull); }

}  // namespace totoro
