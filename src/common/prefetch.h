// Software prefetch hint for hot paths that chase pointers into cold, randomly
// indexed state (per-host tables in a 10k+ node simulation are effectively always
// DRAM-resident). Issuing the load hint as soon as the address is computable lets the
// miss overlap with the independent work in between; a wrong or useless hint costs one
// instruction.
#ifndef SRC_COMMON_PREFETCH_H_
#define SRC_COMMON_PREFETCH_H_

namespace totoro {

inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace totoro

#endif  // SRC_COMMON_PREFETCH_H_
