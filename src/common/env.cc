#include "src/common/env.h"

#include <cstdlib>

namespace totoro {

const char* EnvString(const char* name) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? nullptr : value;
}

long EnvInt64(const char* name, long fallback, long min_value) {
  const char* value = EnvString(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min_value) {
    return fallback;
  }
  return parsed;
}

size_t EnvThreadCount(const char* name, size_t fallback) {
  return static_cast<size_t>(EnvInt64(name, static_cast<long>(fallback), 1));
}

}  // namespace totoro
