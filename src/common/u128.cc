#include "src/common/u128.h"

#include <cstdio>

#include "src/common/check.h"

namespace totoro {

std::string U128::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return std::string(buf);
}

U128 U128::FromHex(const std::string& hex) {
  CHECK_LE(hex.size(), 32u);
  U128 v;
  for (char c : hex) {
    uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      CheckFailed(__FILE__, __LINE__, "invalid hex digit");
    }
    v = (v << 4) | U128(0, nibble);
  }
  return v;
}

}  // namespace totoro
