// Streaming summary statistics and percentile estimation for bench/eval output.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace totoro {

// Accumulates samples and answers mean/stddev/min/max/percentile queries. Keeps all
// samples (evaluation-scale data sets are small enough); percentile queries sort lazily.
class Summary {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;
  // q in [0, 1]; linear interpolation between order statistics.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

  // "mean=... p50=... p99=... max=..." convenience string.
  std::string Brief() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

// Fixed-width ASCII-rendered histogram over [lo, hi) for bench output (the metrics
// registry's Histogram in src/obs/ is the canonical series type).
class AsciiHistogram {
 public:
  AsciiHistogram(double lo, double hi, int bins);

  void Add(double x);
  size_t count() const { return count_; }
  const std::vector<size_t>& buckets() const { return buckets_; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  double BucketLow(int i) const;
  double BucketHigh(int i) const;

  // Multi-line ASCII rendering with proportional bars.
  std::string Render(int max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> buckets_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t count_ = 0;
};

// Counts exact integer values; used for e.g. "#masters hosted per node".
class IntCounter {
 public:
  void Add(long v) { ++counts_[v]; }
  const std::map<long, size_t>& counts() const { return counts_; }
  size_t Total() const;
  // Fraction of observations with value <= v.
  double CumulativeFraction(long v) const;

 private:
  std::map<long, size_t> counts_;
};

}  // namespace totoro

#endif  // SRC_COMMON_STATS_H_
