#include "src/bandit/policies.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/bandit/kl_ucb.h"
#include "src/common/check.h"

namespace totoro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared scaffolding: per-link stats + greedy path extraction over a cost table.
class HopByHopBase : public PathPolicy {
 public:
  HopByHopBase(std::string name, const LinkGraph* graph, BanditNode source, BanditNode dest)
      : name_(std::move(name)),
        graph_(graph),
        source_(source),
        dest_(dest),
        stats_(static_cast<size_t>(graph->num_links())) {}

  const std::string& name() const override { return name_; }

  std::vector<LinkId> ChoosePath(uint64_t packet_index) override {
    const std::vector<double> omega = LinkCosts(packet_index);
    // J_tau(w): optimistic cost-to-go under the current omegas.
    const std::vector<double> cost_to_go = graph_->CostToGo(dest_, omega);
    std::vector<LinkId> path;
    BanditNode v = source_;
    std::vector<bool> visited(static_cast<size_t>(graph_->num_nodes()), false);
    while (v != dest_) {
      visited[static_cast<size_t>(v)] = true;
      LinkId best = -1;
      double best_cost = kInf;
      for (LinkId id : graph_->OutLinks(v)) {
        const auto& l = graph_->link(id);
        if (visited[static_cast<size_t>(l.to)]) {
          continue;  // Loop-free constraint.
        }
        const double c = omega[static_cast<size_t>(id)] + cost_to_go[static_cast<size_t>(l.to)];
        if (c < best_cost) {
          best_cost = c;
          best = id;
        }
      }
      CHECK_GE(best, 0);  // Experiment graphs always keep the destination reachable.
      path.push_back(best);
      v = graph_->link(best).to;
      CHECK_LE(path.size(), static_cast<size_t>(graph_->num_links()));
    }
    return path;
  }

  void Observe(const PacketFeedback& feedback) override {
    // Semi-bandit: every crossed link reveals its attempt count (one success, the rest
    // failures).
    for (size_t i = 0; i < feedback.path.size(); ++i) {
      auto& s = stats_[static_cast<size_t>(feedback.path[i])];
      s.attempts += feedback.attempts[i];
      s.successes += 1;
    }
  }

 protected:
  // Per-link optimistic expected delays for this packet.
  virtual std::vector<double> LinkCosts(uint64_t packet_index) = 0;

  std::string name_;
  const LinkGraph* graph_;
  BanditNode source_;
  BanditNode dest_;
  std::vector<LinkStats> stats_;
};

class TotoroHopByHop : public HopByHopBase {
 public:
  using HopByHopBase::HopByHopBase;

 protected:
  std::vector<double> LinkCosts(uint64_t packet_index) override {
    const double tau = std::max<double>(2.0, static_cast<double>(packet_index));
    std::vector<double> omega(stats_.size());
    for (size_t i = 0; i < stats_.size(); ++i) {
      omega[i] = KlUcbLinkCost(stats_[i].ThetaHat(), stats_[i].attempts, tau);
    }
    return omega;
  }
};

class Ucb1HopByHop : public HopByHopBase {
 public:
  using HopByHopBase::HopByHopBase;

 protected:
  std::vector<double> LinkCosts(uint64_t packet_index) override {
    const double log_tau = std::log(std::max<double>(2.0, static_cast<double>(packet_index)));
    std::vector<double> omega(stats_.size());
    for (size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].attempts == 0) {
        omega[i] = 1.0;
        continue;
      }
      const double bonus =
          std::sqrt(1.5 * log_tau / static_cast<double>(stats_[i].attempts));
      const double u = std::clamp(stats_[i].ThetaHat() + bonus, 1e-12, 1.0);
      omega[i] = 1.0 / u;
    }
    return omega;
  }
};

class EpsGreedyHopByHop : public HopByHopBase {
 public:
  EpsGreedyHopByHop(const LinkGraph* graph, BanditNode source, BanditNode dest, double epsilon,
                    uint64_t seed)
      : HopByHopBase("eps-greedy", graph, source, dest), epsilon_(epsilon), rng_(seed) {}

 protected:
  std::vector<double> LinkCosts(uint64_t packet_index) override {
    (void)packet_index;
    std::vector<double> omega(stats_.size());
    for (size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].attempts == 0 || rng_.Bernoulli(epsilon_)) {
        // Exploration: pretend the link is perfect, with tiny noise to break ties.
        omega[i] = 1.0 + rng_.NextDouble() * 1e-6;
      } else {
        omega[i] = 1.0 / std::max(stats_[i].ThetaHat(), 1e-12);
      }
    }
    return omega;
  }

 private:
  double epsilon_;
  Rng rng_;
};

// Next-hop greedy: only the immediate link's empirical delay matters; downstream links
// are costed purely by hop count. Finds locally attractive but globally mediocre paths.
class NextHopGreedy : public HopByHopBase {
 public:
  NextHopGreedy(const LinkGraph* graph, BanditNode source, BanditNode dest)
      : HopByHopBase("next-hop", graph, source, dest) {
    // Precompute hop counts to destination (unit weights).
    std::vector<double> unit(static_cast<size_t>(graph->num_links()), 1.0);
    hops_to_dest_ = graph->CostToGo(dest, unit);
  }

  std::vector<LinkId> ChoosePath(uint64_t packet_index) override {
    (void)packet_index;
    std::vector<LinkId> path;
    BanditNode v = source_;
    std::vector<bool> visited(static_cast<size_t>(graph_->num_nodes()), false);
    while (v != dest_) {
      visited[static_cast<size_t>(v)] = true;
      LinkId best = -1;
      double best_cost = kInf;
      for (LinkId id : graph_->OutLinks(v)) {
        const auto& l = graph_->link(id);
        if (visited[static_cast<size_t>(l.to)] ||
            !std::isfinite(hops_to_dest_[static_cast<size_t>(l.to)])) {
          continue;
        }
        const auto& s = stats_[static_cast<size_t>(id)];
        // Optimistic 1.0 for never-tried links; otherwise the raw empirical delay.
        const double local = s.attempts == 0 ? 1.0 : 1.0 / std::max(s.ThetaHat(), 1e-12);
        // Hop-count tiebreak keeps the packet moving toward the destination without
        // using any downstream quality information.
        const double c = local + 1e-3 * hops_to_dest_[static_cast<size_t>(l.to)];
        if (c < best_cost) {
          best_cost = c;
          best = id;
        }
      }
      CHECK_GE(best, 0);
      path.push_back(best);
      v = graph_->link(best).to;
      CHECK_LE(path.size(), static_cast<size_t>(graph_->num_links()));
    }
    return path;
  }

 protected:
  std::vector<double> LinkCosts(uint64_t) override { return {}; }  // Unused.

 private:
  std::vector<double> hops_to_dest_;
};

// End-to-end LCB: each loop-free path is an arm; only total delay is observed.
class EndToEndLcb : public PathPolicy {
 public:
  EndToEndLcb(const LinkGraph* graph, BanditNode source, BanditNode dest)
      : name_("end-to-end"), graph_(graph) {
    paths_ = graph->EnumeratePaths(source, dest);
    CHECK(!paths_.empty());
    pulls_.assign(paths_.size(), 0);
    delay_sum_.assign(paths_.size(), 0.0);
  }

  const std::string& name() const override { return name_; }

  std::vector<LinkId> ChoosePath(uint64_t packet_index) override {
    // Play every arm once, then pick by LCB of mean delay.
    for (size_t i = 0; i < paths_.size(); ++i) {
      if (pulls_[i] == 0) {
        last_chosen_ = i;
        return paths_[i];
      }
    }
    const double log_tau = std::log(std::max<double>(2.0, static_cast<double>(packet_index)));
    size_t best = 0;
    double best_lcb = kInf;
    for (size_t i = 0; i < paths_.size(); ++i) {
      const double mean = delay_sum_[i] / static_cast<double>(pulls_[i]);
      // Delay scale for the confidence radius: path length (min possible delay is one
      // slot per hop).
      const double scale = static_cast<double>(paths_[i].size());
      const double lcb =
          mean - scale * std::sqrt(1.5 * log_tau / static_cast<double>(pulls_[i]));
      if (lcb < best_lcb) {
        best_lcb = lcb;
        best = i;
      }
    }
    last_chosen_ = best;
    return paths_[best];
  }

  void Observe(const PacketFeedback& feedback) override {
    ++pulls_[last_chosen_];
    delay_sum_[last_chosen_] += feedback.total_delay;
  }

 private:
  std::string name_;
  const LinkGraph* graph_;
  std::vector<std::vector<LinkId>> paths_;
  std::vector<uint64_t> pulls_;
  std::vector<double> delay_sum_;
  size_t last_chosen_ = 0;
};

class OptimalOracle : public PathPolicy {
 public:
  OptimalOracle(const LinkGraph* graph, BanditNode source, BanditNode dest) : name_("optimal") {
    path_ = graph->TrueShortestPath(source, dest);
    CHECK(!path_.empty());
  }
  const std::string& name() const override { return name_; }
  std::vector<LinkId> ChoosePath(uint64_t) override { return path_; }
  void Observe(const PacketFeedback&) override {}

 private:
  std::string name_;
  std::vector<LinkId> path_;
};

}  // namespace

std::unique_ptr<PathPolicy> MakeTotoroHopByHop(const LinkGraph* graph, BanditNode source,
                                               BanditNode dest) {
  return std::make_unique<TotoroHopByHop>("totoro", graph, source, dest);
}

std::unique_ptr<PathPolicy> MakeEndToEndLcb(const LinkGraph* graph, BanditNode source,
                                            BanditNode dest) {
  return std::make_unique<EndToEndLcb>(graph, source, dest);
}

std::unique_ptr<PathPolicy> MakeNextHopGreedy(const LinkGraph* graph, BanditNode source,
                                              BanditNode dest) {
  return std::make_unique<NextHopGreedy>(graph, source, dest);
}

std::unique_ptr<PathPolicy> MakeOptimalOracle(const LinkGraph* graph, BanditNode source,
                                              BanditNode dest) {
  return std::make_unique<OptimalOracle>(graph, source, dest);
}

std::unique_ptr<PathPolicy> MakeUcb1HopByHop(const LinkGraph* graph, BanditNode source,
                                             BanditNode dest) {
  return std::make_unique<Ucb1HopByHop>("ucb1", graph, source, dest);
}

std::unique_ptr<PathPolicy> MakeEpsGreedyHopByHop(const LinkGraph* graph, BanditNode source,
                                                  BanditNode dest, double epsilon,
                                                  uint64_t seed) {
  return std::make_unique<EpsGreedyHopByHop>(graph, source, dest, epsilon, seed);
}

}  // namespace totoro
