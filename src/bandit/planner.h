// Episode runner for path-planning experiments: routes K packets under a policy,
// sampling geometric per-link delays, and accounts regret against the optimal path.
#ifndef SRC_BANDIT_PLANNER_H_
#define SRC_BANDIT_PLANNER_H_

#include <memory>
#include <vector>

#include "src/bandit/policies.h"

namespace totoro {

struct EpisodeResult {
  std::vector<double> per_packet_delay;       // Observed delay of each packet.
  std::vector<double> cumulative_regret;      // Sum of delays minus k * optimal expected.
  std::vector<int> chosen_path_rank;          // 0 = optimal path, by expected delay.
  double optimal_expected_delay = 0.0;
  double FinalRegret() const {
    return cumulative_regret.empty() ? 0.0 : cumulative_regret.back();
  }
};

// Routes `packets` packets from source to dest under `policy`. Link transmissions
// succeed i.i.d. with the hidden thetas; a link crossing costs Geometric(theta) slots.
// `rank_paths` enables Fig. 11's per-packet path rank (requires enumerable paths).
EpisodeResult RunEpisode(const LinkGraph& graph, BanditNode source, BanditNode dest,
                         PathPolicy& policy, uint64_t packets, Rng& rng,
                         bool rank_paths = false);

}  // namespace totoro

#endif  // SRC_BANDIT_PLANNER_H_
