// Episode runner for path-planning experiments: routes K packets under a policy,
// sampling geometric per-link delays, and accounts regret against the optimal path.
#ifndef SRC_BANDIT_PLANNER_H_
#define SRC_BANDIT_PLANNER_H_

#include <memory>
#include <vector>

#include "src/bandit/policies.h"

namespace totoro {

struct EpisodeResult {
  std::vector<double> per_packet_delay;       // Observed delay of each packet.
  std::vector<double> cumulative_regret;      // Sum of delays minus k * optimal expected.
  std::vector<int> chosen_path_rank;          // 0 = optimal path, by expected delay.
  double optimal_expected_delay = 0.0;
  double FinalRegret() const {
    return cumulative_regret.empty() ? 0.0 : cumulative_regret.back();
  }
};

// A scripted link outage: for packets in [from_packet, to_packet] the listed links'
// success probability collapses to EpisodeFaults::outage_theta (a near-dead link, e.g.
// the overlay path crossing a partitioned backhaul). The policy is not told — it must
// discover the outage through its own feedback and reroute, which is exactly the
// KL-UCB adaptivity claim the faultsim scenarios exercise.
struct LinkOutage {
  uint64_t from_packet = 0;
  uint64_t to_packet = 0;
  std::vector<LinkId> links;
};

struct EpisodeFaults {
  std::vector<LinkOutage> outages;
  double outage_theta = 0.02;  // Effective theta of an outaged link.
};

// Routes `packets` packets from source to dest under `policy`. Link transmissions
// succeed i.i.d. with the hidden thetas; a link crossing costs Geometric(theta) slots.
// `rank_paths` enables Fig. 11's per-packet path rank (requires enumerable paths).
// `faults` optionally injects scripted outage windows; regret stays accounted against
// the fault-free optimum, so outage windows show up as regret spikes that flatten once
// the policy reroutes.
EpisodeResult RunEpisode(const LinkGraph& graph, BanditNode source, BanditNode dest,
                         PathPolicy& policy, uint64_t packets, Rng& rng,
                         bool rank_paths = false, const EpisodeFaults* faults = nullptr);

}  // namespace totoro

#endif  // SRC_BANDIT_PLANNER_H_
