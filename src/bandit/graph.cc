#include "src/bandit/graph.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "src/common/check.h"

namespace totoro {

LinkGraph::LinkGraph(int num_nodes) : num_nodes_(num_nodes) {
  CHECK_GT(num_nodes, 0);
  out_links_.resize(static_cast<size_t>(num_nodes));
}

LinkId LinkGraph::AddLink(BanditNode from, BanditNode to, double theta) {
  CHECK_GE(from, 0);
  CHECK_LT(from, num_nodes_);
  CHECK_GE(to, 0);
  CHECK_LT(to, num_nodes_);
  CHECK_NE(from, to);
  CHECK_GT(theta, 0.0);
  CHECK_LE(theta, 1.0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(BanditLink{id, from, to, theta});
  out_links_[static_cast<size_t>(from)].push_back(id);
  return id;
}

std::vector<double> LinkGraph::CostToGo(BanditNode to,
                                        const std::vector<double>& link_weights) const {
  CHECK_EQ(link_weights.size(), links_.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(num_nodes_), kInf);
  // Dijkstra on the reverse graph from `to`.
  std::vector<std::vector<LinkId>> in_links(static_cast<size_t>(num_nodes_));
  for (const auto& l : links_) {
    in_links[static_cast<size_t>(l.to)].push_back(l.id);
  }
  using Item = std::pair<double, BanditNode>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<size_t>(to)] = 0.0;
  heap.emplace(0.0, to);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(v)]) {
      continue;
    }
    for (LinkId id : in_links[static_cast<size_t>(v)]) {
      const auto& l = links_[static_cast<size_t>(id)];
      const double w = link_weights[static_cast<size_t>(id)];
      CHECK_GE(w, 0.0);
      const double nd = d + w;
      if (nd < dist[static_cast<size_t>(l.from)]) {
        dist[static_cast<size_t>(l.from)] = nd;
        heap.emplace(nd, l.from);
      }
    }
  }
  return dist;
}

std::vector<LinkId> LinkGraph::TrueShortestPath(BanditNode from, BanditNode to) const {
  std::vector<double> weights(links_.size());
  for (size_t i = 0; i < links_.size(); ++i) {
    weights[i] = 1.0 / links_[i].theta;
  }
  const std::vector<double> cost = CostToGo(to, weights);
  if (!std::isfinite(cost[static_cast<size_t>(from)])) {
    return {};
  }
  // Greedy descent along optimal cost-to-go.
  std::vector<LinkId> path;
  BanditNode v = from;
  while (v != to) {
    LinkId best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (LinkId id : OutLinks(v)) {
      const auto& l = links_[static_cast<size_t>(id)];
      const double c = weights[static_cast<size_t>(id)] + cost[static_cast<size_t>(l.to)];
      if (c < best_cost) {
        best_cost = c;
        best = id;
      }
    }
    CHECK_GE(best, 0);
    path.push_back(best);
    v = links_[static_cast<size_t>(best)].to;
    CHECK_LE(path.size(), links_.size());
  }
  return path;
}

double LinkGraph::TruePathDelay(const std::vector<LinkId>& path) const {
  double delay = 0.0;
  for (LinkId id : path) {
    delay += 1.0 / links_[static_cast<size_t>(id)].theta;
  }
  return delay;
}

std::vector<std::vector<LinkId>> LinkGraph::EnumeratePaths(BanditNode from, BanditNode to,
                                                           size_t max_paths) const {
  std::vector<std::vector<LinkId>> paths;
  std::vector<LinkId> current;
  std::vector<bool> visited(static_cast<size_t>(num_nodes_), false);
  std::function<void(BanditNode)> dfs = [&](BanditNode v) {
    if (v == to) {
      paths.push_back(current);
      CHECK_LE(paths.size(), max_paths);
      return;
    }
    visited[static_cast<size_t>(v)] = true;
    for (LinkId id : OutLinks(v)) {
      const auto& l = links_[static_cast<size_t>(id)];
      if (visited[static_cast<size_t>(l.to)]) {
        continue;
      }
      current.push_back(id);
      dfs(l.to);
      current.pop_back();
    }
    visited[static_cast<size_t>(v)] = false;
  };
  dfs(from);
  return paths;
}

LinkGraph LinkGraph::MakeLayered(int layers, int width, double theta_lo, double theta_hi,
                                 Rng& rng) {
  CHECK_GE(layers, 1);
  CHECK_GE(width, 1);
  const int num_nodes = 2 + layers * width;
  LinkGraph g(num_nodes);
  const BanditNode source = 0;
  const BanditNode dest = num_nodes - 1;
  auto node_at = [&](int layer, int slot) { return 1 + layer * width + slot; };
  for (int slot = 0; slot < width; ++slot) {
    g.AddLink(source, node_at(0, slot), rng.Uniform(theta_lo, theta_hi));
  }
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        g.AddLink(node_at(layer, a), node_at(layer + 1, b), rng.Uniform(theta_lo, theta_hi));
      }
    }
  }
  for (int slot = 0; slot < width; ++slot) {
    g.AddLink(node_at(layers - 1, slot), dest, rng.Uniform(theta_lo, theta_hi));
  }
  return g;
}

}  // namespace totoro
