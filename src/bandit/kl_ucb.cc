#include "src/bandit/kl_ucb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace totoro {

double BernoulliKl(double p, double q) {
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 1.0);
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  constexpr double kEps = 1e-15;
  if (p <= kEps) {
    // KL(0, q) = -log(1-q).
    return q >= 1.0 - kEps ? std::numeric_limits<double>::infinity() : -std::log1p(-q);
  }
  if (p >= 1.0 - kEps) {
    // KL(1, q) = -log(q).
    return q <= kEps ? std::numeric_limits<double>::infinity() : -std::log(q);
  }
  if (q <= kEps || q >= 1.0 - kEps) {
    return std::numeric_limits<double>::infinity();
  }
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

double KlUcbUpperBound(double theta_hat, uint64_t trials, double budget, double tol) {
  CHECK_GE(budget, 0.0);
  if (trials == 0) {
    return 1.0;
  }
  const double per_trial = budget / static_cast<double>(trials);
  double lo = std::clamp(theta_hat, 0.0, 1.0);
  double hi = 1.0;
  if (BernoulliKl(theta_hat, hi) <= per_trial) {
    return 1.0;
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (BernoulliKl(theta_hat, mid) <= per_trial) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double KlUcbLinkCost(double theta_hat, uint64_t trials, double tau) {
  CHECK_GE(tau, 1.0);
  const double u = KlUcbUpperBound(theta_hat, trials, std::log(std::max(tau, 1.0)));
  // u can be 0 only when theta_hat == 0 and the budget is 0, which trials==0 already
  // short-circuits; clamp defensively anyway.
  return 1.0 / std::max(u, 1e-12);
}

}  // namespace totoro
