// KL-UCB confidence indices for Bernoulli link-success estimation (§5.2).
//
// The empirical transmission cost with exploration adjustment is
//   omega_tau = min{ 1/u : u in [theta_hat, 1], t' * KL(theta_hat, u) <= log(tau) }
// i.e. 1 over the KL-UCB upper confidence bound on the link's success probability. KL
// confidence intervals are tight at the [0,1] boundaries, which is what lets the policy
// stop exploring hopeless links quickly (UCB1's sqrt-intervals cannot).
#ifndef SRC_BANDIT_KL_UCB_H_
#define SRC_BANDIT_KL_UCB_H_

#include <cstdint>

namespace totoro {

// KL divergence between Bernoulli(p) and Bernoulli(q), with the usual conventions at the
// boundaries (0*log0 = 0; divergence is +inf when q in {0,1} disagrees with p).
double BernoulliKl(double p, double q);

// Largest u in [theta_hat, 1] with trials * KL(theta_hat, u) <= budget; bisection to
// `tol`. trials == 0 returns 1 (fully optimistic).
double KlUcbUpperBound(double theta_hat, uint64_t trials, double budget, double tol = 1e-9);

// The paper's omega: optimistic expected delay of one link, 1 / KlUcbUpperBound, with
// log(tau) as the exploration budget (tau >= 1).
double KlUcbLinkCost(double theta_hat, uint64_t trials, double tau);

}  // namespace totoro

#endif  // SRC_BANDIT_KL_UCB_H_
