#include "src/bandit/planner.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace totoro {

EpisodeResult RunEpisode(const LinkGraph& graph, BanditNode source, BanditNode dest,
                         PathPolicy& policy, uint64_t packets, Rng& rng, bool rank_paths) {
  EpisodeResult result;
  const std::vector<LinkId> optimal = graph.TrueShortestPath(source, dest);
  CHECK(!optimal.empty());
  result.optimal_expected_delay = graph.TruePathDelay(optimal);

  // Path ranking table for Fig. 11: all loop-free paths ordered by true expected delay.
  std::map<std::vector<LinkId>, int> rank_of;
  if (rank_paths) {
    auto paths = graph.EnumeratePaths(source, dest);
    std::sort(paths.begin(), paths.end(),
              [&](const std::vector<LinkId>& a, const std::vector<LinkId>& b) {
                return graph.TruePathDelay(a) < graph.TruePathDelay(b);
              });
    for (size_t i = 0; i < paths.size(); ++i) {
      rank_of[paths[i]] = static_cast<int>(i);
    }
  }

  double cumulative = 0.0;
  for (uint64_t k = 1; k <= packets; ++k) {
    const std::vector<LinkId> path = policy.ChoosePath(k);
    CHECK(!path.empty());
    PacketFeedback feedback;
    feedback.path = path;
    feedback.attempts.reserve(path.size());
    for (LinkId id : path) {
      const uint64_t attempts = rng.Geometric(graph.link(id).theta);
      feedback.attempts.push_back(attempts);
      feedback.total_delay += static_cast<double>(attempts);
    }
    policy.Observe(feedback);

    cumulative += feedback.total_delay - result.optimal_expected_delay;
    result.per_packet_delay.push_back(feedback.total_delay);
    result.cumulative_regret.push_back(cumulative);
    if (rank_paths) {
      auto it = rank_of.find(path);
      result.chosen_path_rank.push_back(it == rank_of.end() ? -1 : it->second);
    }
  }
  return result;
}

}  // namespace totoro
