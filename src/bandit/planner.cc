#include "src/bandit/planner.h"

#include <algorithm>
#include <map>
#include <string>

#include "src/common/check.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace totoro {

EpisodeResult RunEpisode(const LinkGraph& graph, BanditNode source, BanditNode dest,
                         PathPolicy& policy, uint64_t packets, Rng& rng, bool rank_paths,
                         const EpisodeFaults* faults) {
  TraceSpan episode_span = GlobalTracer().Begin("bandit.episode", "bandit", source);
  if (episode_span.active()) {
    episode_span.AddArg("packets", std::to_string(packets));
  }
  static thread_local Histogram* delay_hist = &GlobalMetrics().GetHistogram(
      "bandit.packet.delay_slots", Histogram::DefaultLatencyBoundsMs());
  Counter& packet_counter = GlobalMetrics().GetCounter("bandit.episode.packets");
  EpisodeResult result;
  const std::vector<LinkId> optimal = graph.TrueShortestPath(source, dest);
  CHECK(!optimal.empty());
  result.optimal_expected_delay = graph.TruePathDelay(optimal);

  // Path ranking table for Fig. 11: all loop-free paths ordered by true expected delay.
  std::map<std::vector<LinkId>, int> rank_of;
  if (rank_paths) {
    auto paths = graph.EnumeratePaths(source, dest);
    std::sort(paths.begin(), paths.end(),
              [&](const std::vector<LinkId>& a, const std::vector<LinkId>& b) {
                return graph.TruePathDelay(a) < graph.TruePathDelay(b);
              });
    for (size_t i = 0; i < paths.size(); ++i) {
      rank_of[paths[i]] = static_cast<int>(i);
    }
  }

  double cumulative = 0.0;
  std::vector<LinkId> previous_path;
  for (uint64_t k = 1; k <= packets; ++k) {
    const std::vector<LinkId> path = policy.ChoosePath(k);
    CHECK(!path.empty());
    // Bandit episodes run outside the simulator clock; use the packet index as the
    // virtual timestamp so path switches line up on a per-packet axis in the trace.
    if (path != previous_path) {
      GlobalTracer().InstantAt("bandit.path.switch", "bandit", source,
                               static_cast<double>(k), episode_span.context(),
                               {{"packet", std::to_string(k)},
                                {"path_len", std::to_string(path.size())}});
      previous_path = path;
    }
    PacketFeedback feedback;
    feedback.path = path;
    feedback.attempts.reserve(path.size());
    for (LinkId id : path) {
      double theta = graph.link(id).theta;
      if (faults != nullptr) {
        for (const LinkOutage& outage : faults->outages) {
          if (k >= outage.from_packet && k <= outage.to_packet &&
              std::find(outage.links.begin(), outage.links.end(), id) !=
                  outage.links.end()) {
            theta = faults->outage_theta;
            break;
          }
        }
      }
      const uint64_t attempts = rng.Geometric(theta);
      feedback.attempts.push_back(attempts);
      feedback.total_delay += static_cast<double>(attempts);
    }
    policy.Observe(feedback);

    delay_hist->Observe(feedback.total_delay);
    packet_counter.Increment();
    cumulative += feedback.total_delay - result.optimal_expected_delay;
    result.per_packet_delay.push_back(feedback.total_delay);
    result.cumulative_regret.push_back(cumulative);
    if (rank_paths) {
      auto it = rank_of.find(path);
      result.chosen_path_rank.push_back(it == rank_of.end() ? -1 : it->second);
    }
  }
  GlobalMetrics().GetGauge("bandit.path.regret").Set(cumulative);
  return result;
}

}  // namespace totoro
