// Path-planning policies compared in Fig. 10 / Fig. 11.
//
// All policies share per-link statistics with semi-bandit feedback where applicable:
// routing a packet reveals, for every link it crossed, the number of transmission
// attempts that link needed. The end-to-end baseline deliberately uses only the total
// path delay (that is its handicap).
#ifndef SRC_BANDIT_POLICIES_H_
#define SRC_BANDIT_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bandit/graph.h"

namespace totoro {

// Per-link semi-bandit statistics: attempts and successes.
struct LinkStats {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  double ThetaHat() const {
    return attempts == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(attempts);
  }
};

// Feedback for one routed packet.
struct PacketFeedback {
  std::vector<LinkId> path;           // Links crossed, in order.
  std::vector<uint64_t> attempts;     // Attempts per crossed link (parallel to path).
  double total_delay = 0.0;           // Sum of attempts (one time slot per attempt).
};

class PathPolicy {
 public:
  virtual ~PathPolicy() = default;
  virtual const std::string& name() const = 0;
  // Chooses the full path for packet number `packet_index` (1-based).
  virtual std::vector<LinkId> ChoosePath(uint64_t packet_index) = 0;
  virtual void Observe(const PacketFeedback& feedback) = 0;
};

// The paper's Algorithm 1: at each hop minimize omega_tau(v,w) + J_tau(w), where omega
// is the KL-UCB optimistic link delay and J is the optimistic cost-to-go (computed by
// value iteration over the current omegas — the distributed DP's fixed point).
std::unique_ptr<PathPolicy> MakeTotoroHopByHop(const LinkGraph* graph, BanditNode source,
                                               BanditNode dest);

// End-to-end baseline [Gai et al. 2012-style]: treats each loop-free path as one arm,
// observes only total path delay, selects by lower confidence bound on path delay.
std::unique_ptr<PathPolicy> MakeEndToEndLcb(const LinkGraph* graph, BanditNode source,
                                            BanditNode dest);

// Next-hop baseline [Bhorkar et al. 2012-style]: greedy on the empirical delay of the
// immediate link only (ties toward fewer remaining hops), ignoring downstream quality.
std::unique_ptr<PathPolicy> MakeNextHopGreedy(const LinkGraph* graph, BanditNode source,
                                              BanditNode dest);

// Oracle: knows the true thetas and always plays the optimal path.
std::unique_ptr<PathPolicy> MakeOptimalOracle(const LinkGraph* graph, BanditNode source,
                                              BanditNode dest);

// Ablation policies for the exploration rule inside the hop-by-hop planner.
std::unique_ptr<PathPolicy> MakeUcb1HopByHop(const LinkGraph* graph, BanditNode source,
                                             BanditNode dest);
std::unique_ptr<PathPolicy> MakeEpsGreedyHopByHop(const LinkGraph* graph, BanditNode source,
                                                  BanditNode dest, double epsilon,
                                                  uint64_t seed);

}  // namespace totoro

#endif  // SRC_BANDIT_POLICIES_H_
