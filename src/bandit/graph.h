// Directed link graph with Bernoulli link-success probabilities (§5.1 model).
//
// A transmission on link i succeeds with unknown probability theta_i; retransmitting
// until success makes the per-link delay geometric with mean 1/theta_i. The planner's
// job is to route K packets from s to d minimizing cumulative expected delay.
#ifndef SRC_BANDIT_GRAPH_H_
#define SRC_BANDIT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace totoro {

using BanditNode = int;
using LinkId = int;

struct BanditLink {
  LinkId id = -1;
  BanditNode from = -1;
  BanditNode to = -1;
  double theta = 1.0;  // True success probability (hidden from policies).
};

class LinkGraph {
 public:
  explicit LinkGraph(int num_nodes);

  LinkId AddLink(BanditNode from, BanditNode to, double theta);

  int num_nodes() const { return num_nodes_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const BanditLink& link(LinkId id) const { return links_.at(static_cast<size_t>(id)); }
  const std::vector<LinkId>& OutLinks(BanditNode v) const {
    return out_links_.at(static_cast<size_t>(v));
  }

  // Expected-delay (sum of 1/theta) shortest path from `from` to `to` using the true
  // thetas; empty when unreachable. Used as the oracle and for regret baselines.
  std::vector<LinkId> TrueShortestPath(BanditNode from, BanditNode to) const;
  double TruePathDelay(const std::vector<LinkId>& path) const;

  // Dijkstra over arbitrary per-link weights (all weights must be >= 0); returns the
  // cost-to-go from every node to `to`, with unreachable nodes at +infinity.
  std::vector<double> CostToGo(BanditNode to, const std::vector<double>& link_weights) const;

  // All loop-free paths from `from` to `to` (for path-level policies and Fig. 11's path
  // ranking). Intended for small experiment graphs; asserts if the count explodes.
  std::vector<std::vector<LinkId>> EnumeratePaths(BanditNode from, BanditNode to,
                                                  size_t max_paths = 4096) const;

  // Builds the layered random graph used by the adaptivity experiments: `layers` ranks
  // of `width` nodes between a source (node 0) and destination (last node), fully
  // connected rank-to-rank, with link thetas drawn uniformly from [theta_lo, theta_hi].
  static LinkGraph MakeLayered(int layers, int width, double theta_lo, double theta_hi,
                               Rng& rng);

 private:
  int num_nodes_;
  std::vector<BanditLink> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

}  // namespace totoro

#endif  // SRC_BANDIT_GRAPH_H_
