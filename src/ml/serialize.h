// Weight-vector serialization (§6: "a serialization mechanism to convert trained models
// into binary arrays for low-cost communication").
//
// Encodings: raw float32 little-endian, and int8 linear quantization (per-tensor scale)
// for the compression experiments. Encode/Decode round-trip exactly for float32 and
// within one quantization step for int8.
#ifndef SRC_ML_SERIALIZE_H_
#define SRC_ML_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace totoro {

std::vector<uint8_t> EncodeFloat32(std::span<const float> weights);
std::vector<float> DecodeFloat32(std::span<const uint8_t> bytes);

// Int8 linear quantization: byte stream = [float32 scale][int8 values...]. scale maps
// int8 range to [-max_abs, max_abs].
std::vector<uint8_t> EncodeInt8(std::span<const float> weights);
std::vector<float> DecodeInt8(std::span<const uint8_t> bytes);

}  // namespace totoro

#endif  // SRC_ML_SERIALIZE_H_
