#include "src/ml/tensor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void MatMul(const Matrix& a, const Matrix& b, Matrix& out) {
  CHECK_EQ(a.cols(), b.rows());
  CHECK_EQ(out.rows(), a.rows());
  CHECK_EQ(out.cols(), b.cols());
  out.Fill(0.0f);
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) {
        continue;
      }
      const auto brow = b.row(p);
      auto orow = out.row(i);
      for (size_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void MatTMulAdd(const Matrix& a, const Matrix& b, Matrix& out) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(out.rows(), a.cols());
  CHECK_EQ(out.cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    const auto brow = b.row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;
      }
      auto orow = out.row(p);
      for (size_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void MulMatT(const Matrix& a, const Matrix& b, Matrix& out) {
  CHECK_EQ(a.cols(), b.cols());
  CHECK_EQ(out.rows(), a.rows());
  CHECK_EQ(out.cols(), b.rows());
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t k = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    auto orow = out.row(i);
    for (size_t j = 0; j < k; ++j) {
      orow[j] = Dot(arow, b.row(j));
    }
  }
  (void)n;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

float Dot(std::span<const float> a, std::span<const float> b) {
  CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

float L2Norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) {
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(acc));
}

void Scale(std::span<float> x, float alpha) {
  for (float& v : x) {
    v *= alpha;
  }
}

void ReluInPlace(Matrix& m) {
  for (float& v : m.data()) {
    v = std::max(v, 0.0f);
  }
}

void ReluBackward(const Matrix& activation, Matrix& grad) {
  CHECK_EQ(activation.size(), grad.size());
  for (size_t i = 0; i < grad.data().size(); ++i) {
    if (activation.data()[i] <= 0.0f) {
      grad.data()[i] = 0.0f;
    }
  }
}

void SoftmaxRows(Matrix& m) {
  for (size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    float max_v = row[0];
    for (float v : row) {
      max_v = std::max(max_v, v);
    }
    float sum = 0.0f;
    for (float& v : row) {
      v = std::exp(v - max_v);
      sum += v;
    }
    for (float& v : row) {
      v /= sum;
    }
  }
}

}  // namespace totoro
