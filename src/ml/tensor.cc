#include "src/ml/tensor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/ml/kernels.h"

namespace totoro {

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void MatMul(const Matrix& a, const Matrix& b, Matrix& out) {
  CHECK_EQ(a.cols(), b.rows());
  CHECK_EQ(out.rows(), a.rows());
  CHECK_EQ(out.cols(), b.cols());
  out.Fill(0.0f);
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    float* orow = out.row(i).data();
    size_t p = 0;
    // Blocks of four b-rows through KAxpy4 (one output pass per block). Per output
    // element the contributions still arrive in ascending-p order, one mul+add each,
    // so this is bit-identical to the sequential axpy loop. The zero-skip semantics
    // (a zero coefficient contributes nothing, exactly as before) force the scalar
    // fallback whenever a block contains a zero — rare for dense activations.
    for (; p + 4 <= k; p += 4) {
      const float al[4] = {arow[p], arow[p + 1], arow[p + 2], arow[p + 3]};
      if (al[0] != 0.0f && al[1] != 0.0f && al[2] != 0.0f && al[3] != 0.0f) {
        KAxpy4(al, b.row(p).data(), b.row(p + 1).data(), b.row(p + 2).data(),
               b.row(p + 3).data(), orow, n);
      } else {
        for (size_t q = 0; q < 4; ++q) {
          if (al[q] != 0.0f) {
            KAxpy(al[q], b.row(p + q).data(), orow, n);
          }
        }
      }
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      if (av != 0.0f) {
        KAxpy(av, b.row(p).data(), orow, n);
      }
    }
  }
}

void MatTMulAdd(const Matrix& a, const Matrix& b, Matrix& out) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(out.rows(), a.cols());
  CHECK_EQ(out.cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  // Blocked over four examples (i): out.row(p) receives its i-contributions in the
  // same ascending order as the sequential loop, one mul+add per term, so the result
  // is bit-identical; the block shares one pass over out.row(p) instead of four.
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const auto ar0 = a.row(i);
    const auto ar1 = a.row(i + 1);
    const auto ar2 = a.row(i + 2);
    const auto ar3 = a.row(i + 3);
    const float* b0 = b.row(i).data();
    const float* b1 = b.row(i + 1).data();
    const float* b2 = b.row(i + 2).data();
    const float* b3 = b.row(i + 3).data();
    for (size_t p = 0; p < k; ++p) {
      const float al[4] = {ar0[p], ar1[p], ar2[p], ar3[p]};
      float* orow = out.row(p).data();
      if (al[0] != 0.0f && al[1] != 0.0f && al[2] != 0.0f && al[3] != 0.0f) {
        KAxpy4(al, b0, b1, b2, b3, orow, n);
      } else {
        // Preserve the zero-skip semantics exactly: skipped terms contribute
        // nothing, the rest land in ascending-i order.
        if (al[0] != 0.0f) {
          KAxpy(al[0], b0, orow, n);
        }
        if (al[1] != 0.0f) {
          KAxpy(al[1], b1, orow, n);
        }
        if (al[2] != 0.0f) {
          KAxpy(al[2], b2, orow, n);
        }
        if (al[3] != 0.0f) {
          KAxpy(al[3], b3, orow, n);
        }
      }
    }
  }
  for (; i < m; ++i) {
    const auto arow = a.row(i);
    const auto brow = b.row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;
      }
      KAxpy(av, brow.data(), out.row(p).data(), n);
    }
  }
}

void MulMatT(const Matrix& a, const Matrix& b, Matrix& out) {
  Matrix bt;
  MulMatT(a, b, out, bt);
}

void MulMatT(const Matrix& a, const Matrix& b, Matrix& out, Matrix& bt_scratch) {
  CHECK_EQ(a.cols(), b.cols());
  CHECK_EQ(out.rows(), a.rows());
  CHECK_EQ(out.cols(), b.rows());
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t k = b.rows();
  // out[i][j] = dot(a.row(i), b.row(j)), but restructured: transpose b once (an exact
  // copy) and accumulate with c-outer axpys over unit-stride rows of b^T. For each
  // out[i][j] the contributions a[i][c]*b[j][c] still land in ascending-c order onto
  // one float accumulator — the same IEEE op sequence as the sequential dot, so the
  // result is bit-identical while the inner loop vectorizes.
  Matrix& bt = bt_scratch;
  bt.Resize(n, k);
  for (size_t j = 0; j < k; ++j) {
    const auto brow = b.row(j);
    for (size_t c = 0; c < n; ++c) {
      bt.at(c, j) = brow[c];
    }
  }
  out.Fill(0.0f);
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    float* orow = out.row(i).data();
    // No zero-skip anywhere here: the sequential dot added every a[i][c]*b[j][c]
    // term, and acc += ±0.0 is not always a bitwise no-op (it rounds -0.0 up to
    // +0.0). Blocked by four c's per output pass; ascending-c order is preserved.
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const float al[4] = {arow[c], arow[c + 1], arow[c + 2], arow[c + 3]};
      KAxpy4(al, bt.row(c).data(), bt.row(c + 1).data(), bt.row(c + 2).data(),
             bt.row(c + 3).data(), orow, k);
    }
    for (; c < n; ++c) {
      KAxpy(arow[c], bt.row(c).data(), orow, k);
    }
  }
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CHECK_EQ(x.size(), y.size());
  KAxpy(alpha, x.data(), y.data(), x.size());
}

float Dot(std::span<const float> a, std::span<const float> b) {
  CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

float L2Norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) {
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(acc));
}

void Scale(std::span<float> x, float alpha) { KScale(x.data(), alpha, x.size()); }

void ReluInPlace(Matrix& m) { KRelu(m.data().data(), m.data().size()); }

void ReluBackward(const Matrix& activation, Matrix& grad) {
  CHECK_EQ(activation.size(), grad.size());
  KReluMask(activation.data().data(), grad.data().data(), grad.data().size());
}

void SoftmaxRows(Matrix& m) {
  for (size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    KSoftmax(row.data(), row.size());
  }
}

}  // namespace totoro
