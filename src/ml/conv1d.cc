// 1-D convolutional classifier: conv(K, F filters) -> ReLU -> global average pooling ->
// dense softmax. The closest structural relative of the paper's audio models
// (ResNet-34 on speech spectrogram features) that still trains in simulation time.
#include <cmath>

#include "src/common/check.h"
#include "src/ml/kernels.h"
#include "src/ml/model.h"

namespace totoro {
namespace {

class Conv1dModel : public Model {
 public:
  Conv1dModel(std::string name, int input_len, int filters, int kernel, int num_classes,
              uint64_t seed)
      : name_(std::move(name)),
        input_len_(input_len),
        filters_(filters),
        kernel_(kernel),
        num_classes_(num_classes),
        positions_(input_len - kernel + 1) {
    CHECK_GT(input_len_, 0);
    CHECK_GT(filters_, 0);
    CHECK_GT(kernel_, 1);
    CHECK_LT(kernel_, input_len_);
    CHECK_GT(num_classes_, 1);
    conv_w_.assign(static_cast<size_t>(filters_) * kernel_, 0.0f);
    conv_b_.assign(static_cast<size_t>(filters_), 0.0f);
    dense_w_.assign(static_cast<size_t>(filters_) * num_classes_, 0.0f);
    dense_b_.assign(static_cast<size_t>(num_classes_), 0.0f);
    Rng rng(seed ^ 0xC07FEull);
    const float s1 = std::sqrt(2.0f / static_cast<float>(kernel_));
    for (auto& v : conv_w_) {
      v = static_cast<float>(rng.Gaussian(0.0, s1));
    }
    const float s2 = std::sqrt(2.0f / static_cast<float>(filters_));
    for (auto& v : dense_w_) {
      v = static_cast<float>(rng.Gaussian(0.0, s2));
    }
  }

  const std::string& name() const override { return name_; }

  size_t NumParams() const override {
    return conv_w_.size() + conv_b_.size() + dense_w_.size() + dense_b_.size();
  }

  std::vector<float> GetWeights() const override {
    std::vector<float> out;
    out.reserve(NumParams());
    out.insert(out.end(), conv_w_.begin(), conv_w_.end());
    out.insert(out.end(), conv_b_.begin(), conv_b_.end());
    out.insert(out.end(), dense_w_.begin(), dense_w_.end());
    out.insert(out.end(), dense_b_.begin(), dense_b_.end());
    return out;
  }

  void SetWeights(std::span<const float> weights) override {
    CHECK_EQ(weights.size(), NumParams());
    size_t off = 0;
    auto take = [&](std::vector<float>& dst) {
      std::copy(weights.begin() + static_cast<long>(off),
                weights.begin() + static_cast<long>(off + dst.size()), dst.begin());
      off += dst.size();
    };
    take(conv_w_);
    take(conv_b_);
    take(dense_w_);
    take(dense_b_);
  }

  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<Conv1dModel>(*this);
  }

  float TrainLocal(const Dataset& shard, const TrainConfig& config, Rng& rng,
                   std::span<const float> anchor) override {
    CHECK_EQ(shard.dim(), input_len_);
    CHECK_GT(shard.size(), 0u);
    std::vector<float> anchor_copy;
    if (config.fedprox_mu > 0.0f) {
      CHECK_EQ(anchor.size(), NumParams());
      anchor_copy.assign(anchor.begin(), anchor.end());
    }
    float loss_sum = 0.0f;
    for (size_t step = 0; step < config.local_steps; ++step) {
      const auto idx = shard.SampleBatch(config.batch_size, rng);
      loss_sum += SgdStep(shard, idx, config, anchor_copy);
    }
    return loss_sum / static_cast<float>(config.local_steps);
  }

  double Accuracy(const Dataset& data) const override {
    CHECK_GT(data.size(), 0u);
    size_t correct = 0;
    std::vector<float> probs;
    std::vector<float> act;
    std::vector<float> pooled;
    for (size_t i = 0; i < data.size(); ++i) {
      Forward(data.example(i).x, act, pooled, probs);
      int best = 0;
      for (int c = 1; c < num_classes_; ++c) {
        if (probs[static_cast<size_t>(c)] > probs[static_cast<size_t>(best)]) {
          best = c;
        }
      }
      correct += best == data.example(i).label ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
  }

  double Loss(const Dataset& data) const override {
    CHECK_GT(data.size(), 0u);
    double loss = 0.0;
    std::vector<float> probs;
    std::vector<float> act;
    std::vector<float> pooled;
    for (size_t i = 0; i < data.size(); ++i) {
      Forward(data.example(i).x, act, pooled, probs);
      loss += -std::log(
          std::max(probs[static_cast<size_t>(data.example(i).label)], 1e-12f));
    }
    return loss / static_cast<double>(data.size());
  }

 private:
  // act: filters x positions (ReLU outputs); pooled: filters; probs: softmax.
  void Forward(const std::vector<float>& x, std::vector<float>& act,
               std::vector<float>& pooled, std::vector<float>& probs) const {
    act.assign(static_cast<size_t>(filters_) * positions_, 0.0f);
    pooled.assign(static_cast<size_t>(filters_), 0.0f);
    // k-outer axpy over positions: each act[p] still accumulates b, then w_0*x[p],
    // w_1*x[p+1], ... in the same order as the old per-position k-loop, but every pass
    // is now a unit-stride vectorizable sweep instead of a K-long dot product.
    for (int f = 0; f < filters_; ++f) {
      float* arow = act.data() + static_cast<size_t>(f) * positions_;
      std::fill(arow, arow + positions_, conv_b_[static_cast<size_t>(f)]);
      for (int k = 0; k < kernel_; ++k) {
        KAxpy(conv_w_[static_cast<size_t>(f * kernel_ + k)],
              x.data() + static_cast<size_t>(k), arow, static_cast<size_t>(positions_));
      }
      KRelu(arow, static_cast<size_t>(positions_));
      // The pool sum stays a sequential scalar reduction (its order is part of the
      // fingerprinted numerics).
      float sum = 0.0f;
      for (int p = 0; p < positions_; ++p) {
        sum += arow[p];
      }
      pooled[static_cast<size_t>(f)] = sum / static_cast<float>(positions_);
    }
    probs.assign(dense_b_.begin(), dense_b_.end());
    for (int f = 0; f < filters_; ++f) {
      const float pv = pooled[static_cast<size_t>(f)];
      if (pv == 0.0f) {
        continue;
      }
      KAxpy(pv, dense_w_.data() + static_cast<size_t>(f * num_classes_), probs.data(),
            static_cast<size_t>(num_classes_));
    }
    KSoftmax(probs.data(), probs.size());
  }

  float SgdStep(const Dataset& shard, const std::vector<size_t>& idx,
                const TrainConfig& config, const std::vector<float>& anchor) {
    std::vector<float> g_conv_w(conv_w_.size(), 0.0f);
    std::vector<float> g_conv_b(conv_b_.size(), 0.0f);
    std::vector<float> g_dense_w(dense_w_.size(), 0.0f);
    std::vector<float> g_dense_b(dense_b_.size(), 0.0f);
    std::vector<float> act;
    std::vector<float> pooled;
    std::vector<float> probs;
    float loss = 0.0f;
    const float inv_batch = 1.0f / static_cast<float>(idx.size());
    for (size_t i : idx) {
      const Example& e = shard.example(i);
      Forward(e.x, act, pooled, probs);
      loss += -std::log(std::max(probs[static_cast<size_t>(e.label)], 1e-12f));
      // dLogits = softmax - onehot.
      std::vector<float> dlogits = probs;
      dlogits[static_cast<size_t>(e.label)] -= 1.0f;
      // Dense grads + dPooled.
      std::vector<float> dpooled(static_cast<size_t>(filters_), 0.0f);
      for (int c = 0; c < num_classes_; ++c) {
        g_dense_b[static_cast<size_t>(c)] += dlogits[static_cast<size_t>(c)] * inv_batch;
        for (int f = 0; f < filters_; ++f) {
          g_dense_w[static_cast<size_t>(f * num_classes_ + c)] +=
              pooled[static_cast<size_t>(f)] * dlogits[static_cast<size_t>(c)] * inv_batch;
          dpooled[static_cast<size_t>(f)] +=
              dense_w_[static_cast<size_t>(f * num_classes_ + c)] *
              dlogits[static_cast<size_t>(c)];
        }
      }
      // Through the mean pool and ReLU into the conv weights.
      const float inv_positions = 1.0f / static_cast<float>(positions_);
      for (int f = 0; f < filters_; ++f) {
        const float dp = dpooled[static_cast<size_t>(f)] * inv_positions;
        for (int p = 0; p < positions_; ++p) {
          if (act[static_cast<size_t>(f * positions_ + p)] <= 0.0f) {
            continue;  // ReLU gate.
          }
          g_conv_b[static_cast<size_t>(f)] += dp * inv_batch;
          for (int k = 0; k < kernel_; ++k) {
            g_conv_w[static_cast<size_t>(f * kernel_ + k)] +=
                dp * e.x[static_cast<size_t>(p + k)] * inv_batch;
          }
        }
      }
    }
    // Apply (with the optional FedProx proximal pull, flattened layout of GetWeights()).
    const float lr = config.learning_rate;
    const float mu = config.fedprox_mu;
    size_t off = 0;
    auto update = [&](std::vector<float>& w, const std::vector<float>& g) {
      if (mu > 0.0f) {
        for (size_t i = 0; i < w.size(); ++i) {
          const float grad = g[i] + mu * (w[i] - anchor[off + i]);
          w[i] -= lr * grad;
        }
      } else {
        // w -= lr * g is bit-identical to w += (-lr) * g (sign flip is exact).
        KAxpy(-lr, g.data(), w.data(), w.size());
      }
      off += w.size();
    };
    update(conv_w_, g_conv_w);
    update(conv_b_, g_conv_b);
    update(dense_w_, g_dense_w);
    update(dense_b_, g_dense_b);
    return loss * inv_batch;
  }

  std::string name_;
  int input_len_;
  int filters_;
  int kernel_;
  int num_classes_;
  int positions_;
  std::vector<float> conv_w_;
  std::vector<float> conv_b_;
  std::vector<float> dense_w_;
  std::vector<float> dense_b_;
};

}  // namespace

std::unique_ptr<Model> MakeConv1d(const std::string& name, int input_len, int filters,
                                  int kernel, int num_classes, uint64_t seed) {
  return std::make_unique<Conv1dModel>(name, input_len, filters, kernel, num_classes, seed);
}

}  // namespace totoro
