#include "src/ml/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace totoro {

std::vector<uint8_t> EncodeFloat32(std::span<const float> weights) {
  std::vector<uint8_t> bytes(weights.size() * sizeof(float));
  std::memcpy(bytes.data(), weights.data(), bytes.size());
  return bytes;
}

std::vector<float> DecodeFloat32(std::span<const uint8_t> bytes) {
  CHECK_EQ(bytes.size() % sizeof(float), 0u);
  std::vector<float> weights(bytes.size() / sizeof(float));
  std::memcpy(weights.data(), bytes.data(), bytes.size());
  return weights;
}

std::vector<uint8_t> EncodeInt8(std::span<const float> weights) {
  // Non-finite inputs (reachable after high-sigma DP noise) must not poison the scale:
  // a NaN/Inf max_abs would corrupt EVERY coordinate on decode. The scale is computed
  // over finite values only; NaN encodes as 0 and +/-Inf saturates to +/-127.
  float max_abs = 0.0f;
  for (float v : weights) {
    if (std::isfinite(v)) {
      max_abs = std::max(max_abs, std::abs(v));
    }
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  std::vector<uint8_t> bytes(sizeof(float) + weights.size());
  std::memcpy(bytes.data(), &scale, sizeof(float));
  for (size_t i = 0; i < weights.size(); ++i) {
    const float w = weights[i];
    // std::clamp is unspecified for NaN; handle it before quantizing. round(+/-Inf)
    // stays +/-Inf and clamps to the saturation bound below.
    const float q = std::isnan(w) ? 0.0f : std::round(w / scale);
    const int8_t v = static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
    bytes[sizeof(float) + i] = static_cast<uint8_t>(v);
  }
  return bytes;
}

std::vector<float> DecodeInt8(std::span<const uint8_t> bytes) {
  CHECK_GE(bytes.size(), sizeof(float));
  float scale = 0.0f;
  std::memcpy(&scale, bytes.data(), sizeof(float));
  std::vector<float> weights(bytes.size() - sizeof(float));
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(static_cast<int8_t>(bytes[sizeof(float) + i])) * scale;
  }
  return weights;
}

}  // namespace totoro
