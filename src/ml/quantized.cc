#include "src/ml/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/ml/kernels.h"

namespace totoro {
namespace {

// Quantizes one row with the same symmetric scheme as EncodeInt8 (serialize.cc):
// scale = max_abs / 127, NaN -> 0, saturate to +/-127.
void QuantizeRow(const float* row, int cols, int8_t* out, float* scale_out) {
  float max_abs = 0.0f;
  for (int j = 0; j < cols; ++j) {
    if (std::isfinite(row[j])) {
      max_abs = std::max(max_abs, std::abs(row[j]));
    }
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  for (int j = 0; j < cols; ++j) {
    const float q = std::isnan(row[j]) ? 0.0f : std::round(row[j] / scale);
    out[j] = static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
  *scale_out = scale;
}

}  // namespace

size_t QuantizedMlp::Layout::NumParams() const {
  return static_cast<size_t>(input_dim) * static_cast<size_t>(hidden_dim) +
         static_cast<size_t>(hidden_dim) +
         static_cast<size_t>(hidden_dim) * static_cast<size_t>(num_classes) +
         static_cast<size_t>(num_classes);
}

QuantizedMlp QuantizedMlp::FromWeights(std::span<const float> weights,
                                       const Layout& layout) {
  CHECK_GT(layout.input_dim, 0);
  CHECK_GT(layout.hidden_dim, 0);
  CHECK_GT(layout.num_classes, 0);
  CHECK_EQ(weights.size(), layout.NumParams());
  QuantizedMlp m;
  m.layout_ = layout;
  const size_t w1_n = static_cast<size_t>(layout.input_dim) * layout.hidden_dim;
  const size_t w2_n = static_cast<size_t>(layout.hidden_dim) * layout.num_classes;
  const float* w1 = weights.data();
  const float* b1 = w1 + w1_n;
  const float* w2 = b1 + layout.hidden_dim;
  const float* b2 = w2 + w2_n;

  m.w1_.rows = layout.input_dim;
  m.w1_.cols = layout.hidden_dim;
  m.w1_.values.resize(w1_n);
  m.w1_.scales.resize(layout.input_dim);
  for (int d = 0; d < layout.input_dim; ++d) {
    QuantizeRow(w1 + static_cast<size_t>(d) * layout.hidden_dim, layout.hidden_dim,
                m.w1_.values.data() + static_cast<size_t>(d) * layout.hidden_dim,
                &m.w1_.scales[d]);
  }

  m.w2_.rows = layout.hidden_dim;
  m.w2_.cols = layout.num_classes;
  m.w2_.values.resize(w2_n);
  m.w2_.scales.resize(layout.hidden_dim);
  for (int h = 0; h < layout.hidden_dim; ++h) {
    QuantizeRow(w2 + static_cast<size_t>(h) * layout.num_classes, layout.num_classes,
                m.w2_.values.data() + static_cast<size_t>(h) * layout.num_classes,
                &m.w2_.scales[h]);
  }

  m.b1_.assign(b1, b1 + layout.hidden_dim);
  m.b2_.assign(b2, b2 + layout.num_classes);
  return m;
}

QuantizedMlp QuantizedMlp::FromInt8Blob(std::span<const uint8_t> blob,
                                        const Layout& layout) {
  CHECK_GT(layout.input_dim, 0);
  CHECK_GT(layout.hidden_dim, 0);
  CHECK_GT(layout.num_classes, 0);
  CHECK_EQ(blob.size(), sizeof(float) + layout.NumParams());
  float scale = 0.0f;
  std::memcpy(&scale, blob.data(), sizeof(float));
  const int8_t* q = reinterpret_cast<const int8_t*>(blob.data() + sizeof(float));

  QuantizedMlp m;
  m.layout_ = layout;
  const size_t w1_n = static_cast<size_t>(layout.input_dim) * layout.hidden_dim;
  const size_t w2_n = static_cast<size_t>(layout.hidden_dim) * layout.num_classes;
  const int8_t* q_w1 = q;
  const int8_t* q_b1 = q_w1 + w1_n;
  const int8_t* q_w2 = q_b1 + layout.hidden_dim;
  const int8_t* q_b2 = q_w2 + w2_n;

  m.w1_.rows = layout.input_dim;
  m.w1_.cols = layout.hidden_dim;
  m.w1_.values.assign(q_w1, q_w1 + w1_n);
  m.w1_.scales.assign(static_cast<size_t>(layout.input_dim), scale);

  m.w2_.rows = layout.hidden_dim;
  m.w2_.cols = layout.num_classes;
  m.w2_.values.assign(q_w2, q_w2 + w2_n);
  m.w2_.scales.assign(static_cast<size_t>(layout.hidden_dim), scale);

  // Biases are a negligible fraction of the parameters; dequantizing them keeps the
  // accumulation float and matches DecodeInt8's value exactly.
  m.b1_.resize(layout.hidden_dim);
  for (int h = 0; h < layout.hidden_dim; ++h) {
    m.b1_[h] = static_cast<float>(q_b1[h]) * scale;
  }
  m.b2_.resize(layout.num_classes);
  for (int c = 0; c < layout.num_classes; ++c) {
    m.b2_[c] = static_cast<float>(q_b2[c]) * scale;
  }
  return m;
}

void QuantizedMlp::PredictInto(std::span<const float> x, std::vector<float>& hidden,
                               std::vector<float>& probs) const {
  CHECK_EQ(x.size(), static_cast<size_t>(layout_.input_dim));
  const int H = layout_.hidden_dim;
  const int C = layout_.num_classes;
  hidden.assign(b1_.begin(), b1_.end());
  // hidden[h] += (x_d * scale_d) * q1[d][h] — the row scale folds into alpha so the
  // int8 row is consumed directly. Same axpy accumulation order as MlpModel::Predict.
  for (int d = 0; d < layout_.input_dim; ++d) {
    const float xd = x[static_cast<size_t>(d)];
    if (xd == 0.0f) {
      continue;
    }
    KAxpyI8(xd * w1_.scales[static_cast<size_t>(d)],
            w1_.values.data() + static_cast<size_t>(d) * H, hidden.data(),
            static_cast<size_t>(H));
  }
  probs.assign(b2_.begin(), b2_.end());
  for (int h = 0; h < H; ++h) {
    const float hv = std::max(hidden[static_cast<size_t>(h)], 0.0f);
    if (hv == 0.0f) {
      continue;
    }
    KAxpyI8(hv * w2_.scales[static_cast<size_t>(h)],
            w2_.values.data() + static_cast<size_t>(h) * C, probs.data(),
            static_cast<size_t>(C));
  }
  KSoftmax(probs.data(), static_cast<size_t>(C));
}

std::vector<float> QuantizedMlp::Predict(std::span<const float> x) const {
  std::vector<float> hidden;
  std::vector<float> probs;
  PredictInto(x, hidden, probs);
  return probs;
}

double QuantizedMlp::Accuracy(const Dataset& data) const {
  if (data.size() == 0) {
    return 0.0;
  }
  std::vector<float> hidden;
  std::vector<float> probs;
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Example& e = data.example(i);
    PredictInto(e.x, hidden, probs);
    const size_t pred = static_cast<size_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    if (pred == static_cast<size_t>(e.label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

uint64_t QuantizedMlp::WireBytes() const {
  return w1_.WireBytes() + w2_.WireBytes() +
         static_cast<uint64_t>(b1_.size() + b2_.size()) * sizeof(float);
}

}  // namespace totoro
