// Datasets and federated (non-IID) partitioning.
//
// Synthetic stand-ins for the paper's datasets keep the class structure and scale knobs:
// Google Speech (35 commands) and FEMNIST (62 classes) become class-conditional Gaussian
// mixtures in feature space (the "embedding after a frozen feature extractor" view), and
// per-client shards are drawn with a Dirichlet label-skew partitioner — the standard way
// to reproduce federated non-IID-ness when raw data is unavailable.
#ifndef SRC_ML_DATASET_H_
#define SRC_ML_DATASET_H_

#include <vector>

#include "src/common/rng.h"

namespace totoro {

struct Example {
  std::vector<float> x;
  int label = 0;
};

class Dataset {
 public:
  Dataset(int dim, int num_classes) : dim_(dim), num_classes_(num_classes) {}

  int dim() const { return dim_; }
  int num_classes() const { return num_classes_; }
  size_t size() const { return examples_.size(); }
  const Example& example(size_t i) const { return examples_[i]; }
  void Add(Example e);

  // Random sample of `n` indices (with replacement) for minibatching.
  std::vector<size_t> SampleBatch(size_t n, Rng& rng) const;

 private:
  int dim_;
  int num_classes_;
  std::vector<Example> examples_;
};

struct SyntheticSpec {
  int dim = 64;
  int num_classes = 10;
  // Distance between class means relative to within-class noise; larger = easier task.
  double class_separation = 2.2;
  double noise_stddev = 1.0;
  uint64_t seed = 1;
};

// Class-conditional Gaussian generator. All draws derive from spec.seed so train/test
// splits and every client shard share one consistent ground truth.
class SyntheticTask {
 public:
  explicit SyntheticTask(SyntheticSpec spec);

  Dataset Generate(size_t num_examples, Rng& rng) const;
  const SyntheticSpec& spec() const { return spec_; }

  // The paper's two evaluation tasks.
  static SyntheticSpec SpeechCommandsLike(uint64_t seed);  // 35 classes.
  static SyntheticSpec FemnistLike(uint64_t seed);         // 62 classes.
  static SyntheticSpec TextClassificationLike(uint64_t seed);  // Fig. 13 workload.

 private:
  SyntheticSpec spec_;
  std::vector<std::vector<float>> class_means_;
};

// Dirichlet label-skew partition: client i's class mix ~ Dir(alpha). Lower alpha means
// more skew (alpha -> inf recovers IID). Returns per-client datasets.
std::vector<Dataset> PartitionDirichlet(const Dataset& full, size_t num_clients, double alpha,
                                        Rng& rng);

}  // namespace totoro

#endif  // SRC_ML_DATASET_H_
