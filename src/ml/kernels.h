// Explicitly vectorized inner-loop kernels for the model math hot path.
//
// Every kernel here is ELEMENTWISE (axpy / scale / relu / lerp / int8-axpy): each
// output element is computed by the same sequence of IEEE operations regardless of
// vector width, so the SSE2/AVX2/NEON paths are bit-identical to the scalar reference
// — no reductions are reassociated, no FMA contraction is emitted (mul + add stay
// separate instructions). That is the contract that lets the training path vectorize
// while the committed bench fingerprints (bit-exact per seed) stay unchanged; the
// parity tests in tests/kernels_test.cc enforce it at every dispatch level.
//
// Reductions that would reassociate under vectorization (the sequential float Dot used
// by backprop's MulMatT, softmax's exp-sum) deliberately stay scalar; softmax's
// row max IS vectorized because max is exact under any association.
//
// Dispatch is resolved once at startup: highest level the CPU supports, overridable
// with the TOTORO_SIMD env knob (scalar|unrolled|sse2|avx2|neon|native) or
// SetSimdLevelForTest(). Because all levels are bit-identical, the choice never
// affects simulation results — only wall-clock speed.
#ifndef SRC_ML_KERNELS_H_
#define SRC_ML_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace totoro {

enum class SimdLevel : int {
  kScalar = 0,    // Plain loops (also the semantic reference).
  kUnrolled = 1,  // Portable 8-wide unrolled scalar fallback.
  kSse2 = 2,      // x86-64 baseline 4-wide.
  kAvx2 = 3,      // 8-wide, runtime-detected.
  kNeon = 4,      // aarch64 baseline 4-wide.
};

const char* SimdLevelName(SimdLevel level);

// The level all kernels currently dispatch to.
SimdLevel ActiveSimdLevel();

// Every level this build + CPU can execute, in ascending order (always starts with
// kScalar and kUnrolled). Parity tests sweep this list.
std::vector<SimdLevel> SupportedSimdLevels();

// Forces a dispatch level (clamped to supported ones; returns the level actually
// installed). Pass ActiveSimdLevel()'s saved value to restore. Not thread-safe
// against concurrent kernel calls — tests only.
SimdLevel SetSimdLevelForTest(SimdLevel level);

// y[i] += alpha * x[i]
void KAxpy(float alpha, const float* x, float* y, size_t n);
// Register-blocked 4-row axpy: per element, y[i] += alpha[0]*x0[i]; then
// += alpha[1]*x1[i]; += alpha[2]*x2[i]; += alpha[3]*x3[i] — each term its own
// mul + add, in that order, i.e. EXACTLY the op sequence of four consecutive KAxpy
// calls, but with one y load/store pass instead of four. The matmul wrappers in
// tensor.cc use it to cut output-row memory traffic 4x without moving a single
// rounding. y must not alias any x row.
void KAxpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
            const float* x3, float* y, size_t n);
// y[i] += alpha * float(q[i])   (dequantize-free int8 row accumulation: the per-row
// quantization scale is folded into alpha, so the int8 payload is consumed directly).
void KAxpyI8(float alpha, const int8_t* q, float* y, size_t n);
// x[i] *= alpha
void KScale(float* x, float alpha, size_t n);
// x[i] = max(x[i], 0) with std::max(v, 0.0f) semantics: -0.0 and NaN pass through.
void KRelu(float* x, size_t n);
// grad[i] = act[i] <= 0 ? 0 : grad[i]   (ReLU backward mask; NaN act keeps grad).
void KReluMask(const float* act, float* grad, size_t n);
// w[i] = (1 - alpha) * w[i] + alpha * p[i]   (FedAsync mixing).
void KLerp(float* w, const float* p, float alpha, size_t n);
// max over x (exact under any association; NaN inputs are not supported).
float KMax(const float* x, size_t n);
// x[i] /= denom
void KDiv(float* x, float denom, size_t n);

// In-place softmax over x[0..n): vectorized max, scalar exp + sequential sum (the sum
// order is part of the fingerprinted numerics), vectorized divide.
void KSoftmax(float* x, size_t n);

}  // namespace totoro

#endif  // SRC_ML_KERNELS_H_
