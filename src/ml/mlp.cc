#include <cmath>

#include "src/common/check.h"
#include "src/ml/kernels.h"
#include "src/ml/model.h"
#include "src/ml/tensor.h"

namespace totoro {
namespace {

// MLP with 0 or 1 hidden layer: x -> [W1 + b1, ReLU] -> W2 + b2 -> softmax.
// hidden_dim == 0 degenerates to softmax regression.
class MlpModel : public Model {
 public:
  MlpModel(std::string name, int input_dim, int hidden_dim, int num_classes,
           uint64_t init_seed)
      : name_(std::move(name)),
        input_dim_(input_dim),
        hidden_dim_(hidden_dim),
        num_classes_(num_classes) {
    CHECK_GT(input_dim_, 0);
    CHECK_GE(hidden_dim_, 0);
    CHECK_GT(num_classes_, 1);
    const int first_out = hidden_dim_ > 0 ? hidden_dim_ : num_classes_;
    w1_ = Matrix(static_cast<size_t>(input_dim_), static_cast<size_t>(first_out));
    b1_.assign(static_cast<size_t>(first_out), 0.0f);
    if (hidden_dim_ > 0) {
      w2_ = Matrix(static_cast<size_t>(hidden_dim_), static_cast<size_t>(num_classes_));
      b2_.assign(static_cast<size_t>(num_classes_), 0.0f);
    }
    // He initialization.
    Rng rng(init_seed ^ 0x1217AB1E5ull);
    const float s1 = std::sqrt(2.0f / static_cast<float>(input_dim_));
    for (auto& v : w1_.data()) {
      v = static_cast<float>(rng.Gaussian(0.0, s1));
    }
    if (hidden_dim_ > 0) {
      const float s2 = std::sqrt(2.0f / static_cast<float>(hidden_dim_));
      for (auto& v : w2_.data()) {
        v = static_cast<float>(rng.Gaussian(0.0, s2));
      }
    }
  }

  const std::string& name() const override { return name_; }

  size_t NumParams() const override {
    return w1_.size() + b1_.size() + w2_.size() + b2_.size();
  }

  std::vector<float> GetWeights() const override {
    std::vector<float> out;
    out.reserve(NumParams());
    out.insert(out.end(), w1_.data().begin(), w1_.data().end());
    out.insert(out.end(), b1_.begin(), b1_.end());
    out.insert(out.end(), w2_.data().begin(), w2_.data().end());
    out.insert(out.end(), b2_.begin(), b2_.end());
    return out;
  }

  void SetWeights(std::span<const float> weights) override {
    CHECK_EQ(weights.size(), NumParams());
    size_t off = 0;
    auto take = [&](auto dst, size_t n) {
      std::copy(weights.begin() + static_cast<long>(off),
                weights.begin() + static_cast<long>(off + n), dst);
      off += n;
    };
    take(w1_.data().begin(), w1_.size());
    take(b1_.begin(), b1_.size());
    if (hidden_dim_ > 0) {
      take(w2_.data().begin(), w2_.size());
      take(b2_.begin(), b2_.size());
    }
  }

  std::unique_ptr<Model> Clone() const override { return std::make_unique<MlpModel>(*this); }

  float TrainLocal(const Dataset& shard, const TrainConfig& config, Rng& rng,
                   std::span<const float> anchor) override {
    CHECK_EQ(shard.dim(), input_dim_);
    CHECK_GT(shard.size(), 0u);
    std::vector<float> anchor_copy;
    if (config.fedprox_mu > 0.0f) {
      CHECK_EQ(anchor.size(), NumParams());
      anchor_copy.assign(anchor.begin(), anchor.end());
    }
    float loss_sum = 0.0f;
    for (size_t step = 0; step < config.local_steps; ++step) {
      const auto idx = shard.SampleBatch(config.batch_size, rng);
      loss_sum += SgdStep(shard, idx, config, anchor_copy);
    }
    return loss_sum / static_cast<float>(config.local_steps);
  }

  double Accuracy(const Dataset& data) const override {
    CHECK_GT(data.size(), 0u);
    size_t correct = 0;
    std::vector<float> probs;
    for (size_t i = 0; i < data.size(); ++i) {
      const Example& e = data.example(i);
      Predict(e.x, probs);
      int best = 0;
      for (int c = 1; c < num_classes_; ++c) {
        if (probs[static_cast<size_t>(c)] > probs[static_cast<size_t>(best)]) {
          best = c;
        }
      }
      if (best == e.label) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
  }

  double Loss(const Dataset& data) const override {
    CHECK_GT(data.size(), 0u);
    double loss = 0.0;
    std::vector<float> probs;
    for (size_t i = 0; i < data.size(); ++i) {
      const Example& e = data.example(i);
      Predict(e.x, probs);
      loss += -std::log(std::max(probs[static_cast<size_t>(e.label)], 1e-12f));
    }
    return loss / static_cast<double>(data.size());
  }

 private:
  void Predict(const std::vector<float>& x, std::vector<float>& probs) const {
    // Accumulate along ROWS of the weight matrices (axpy order, the same order MatMul
    // uses in training): unit-stride streaming the compiler can vectorize, instead of
    // a strided column walk per output. Same trick MatMul plays with zero inputs: a
    // ReLU'd hidden layer is typically ~half zeros, so skipping them halves stage 2.
    if (hidden_dim_ == 0) {
      probs.assign(b1_.begin(), b1_.end());
      for (int d = 0; d < input_dim_; ++d) {
        const float xd = x[static_cast<size_t>(d)];
        if (xd == 0.0f) {
          continue;
        }
        KAxpy(xd, w1_.row(static_cast<size_t>(d)).data(), probs.data(),
              static_cast<size_t>(num_classes_));
      }
    } else {
      hidden_scratch_.assign(b1_.begin(), b1_.end());
      for (int d = 0; d < input_dim_; ++d) {
        const float xd = x[static_cast<size_t>(d)];
        if (xd == 0.0f) {
          continue;
        }
        KAxpy(xd, w1_.row(static_cast<size_t>(d)).data(), hidden_scratch_.data(),
              static_cast<size_t>(hidden_dim_));
      }
      probs.assign(b2_.begin(), b2_.end());
      for (int h = 0; h < hidden_dim_; ++h) {
        const float hv = std::max(hidden_scratch_[static_cast<size_t>(h)], 0.0f);
        if (hv == 0.0f) {
          continue;
        }
        KAxpy(hv, w2_.row(static_cast<size_t>(h)).data(), probs.data(),
              static_cast<size_t>(num_classes_));
      }
    }
    KSoftmax(probs.data(), probs.size());
  }

  // One minibatch SGD step; returns the batch's mean cross-entropy.
  float SgdStep(const Dataset& shard, const std::vector<size_t>& idx, const TrainConfig& config,
                const std::vector<float>& anchor) {
    const size_t bsz = idx.size();
    // All scratch matrices are members reused across steps (fully overwritten each
    // call: MatMul/MulMatT Fill their output, gradient buffers are zeroed below), so
    // the hot path does no per-step allocation after the first batch.
    Matrix& x = x_scratch_;
    x.Resize(bsz, static_cast<size_t>(input_dim_));
    for (size_t i = 0; i < bsz; ++i) {
      const auto& ex = shard.example(idx[i]).x;
      std::copy(ex.begin(), ex.end(), x.row(i).begin());
    }
    const int first_out = hidden_dim_ > 0 ? hidden_dim_ : num_classes_;

    Matrix& a1 = a1_scratch_;
    a1.Resize(bsz, static_cast<size_t>(first_out));
    MatMul(x, w1_, a1);
    for (size_t i = 0; i < bsz; ++i) {
      Axpy(1.0f, b1_, a1.row(i));
    }
    // After ReLU, a1 IS the hidden activation and is not modified again; alias it
    // instead of copying a bsz x hidden_dim matrix every step. With no hidden layer,
    // a1 already holds the logits, so alias it there too instead of copying.
    const Matrix& hidden = a1;
    Matrix& logits = hidden_dim_ > 0 ? logits_scratch_ : a1;
    if (hidden_dim_ > 0) {
      ReluInPlace(a1);
      logits.Resize(bsz, static_cast<size_t>(num_classes_));
      MatMul(hidden, w2_, logits);
      for (size_t i = 0; i < bsz; ++i) {
        Axpy(1.0f, b2_, logits.row(i));
      }
    }
    SoftmaxRows(logits);
    // Cross-entropy and dLogits = (softmax - onehot) / batch.
    float loss = 0.0f;
    for (size_t i = 0; i < bsz; ++i) {
      const int label = shard.example(idx[i]).label;
      loss += -std::log(std::max(logits.at(i, static_cast<size_t>(label)), 1e-12f));
      logits.at(i, static_cast<size_t>(label)) -= 1.0f;
    }
    loss /= static_cast<float>(bsz);
    Scale(std::span<float>(logits.data()), 1.0f / static_cast<float>(bsz));

    const float lr = config.learning_rate;
    if (hidden_dim_ > 0) {
      // Grad for W2/b2.
      Matrix& gw2 = gw2_scratch_;
      gw2.Resize(static_cast<size_t>(hidden_dim_), static_cast<size_t>(num_classes_));
      gw2.Fill(0.0f);
      MatTMulAdd(hidden, logits, gw2);
      gb2_scratch_.assign(static_cast<size_t>(num_classes_), 0.0f);
      for (size_t i = 0; i < bsz; ++i) {
        Axpy(1.0f, logits.row(i), gb2_scratch_);
      }
      // Backprop into hidden.
      Matrix& dh = dh_scratch_;
      dh.Resize(bsz, static_cast<size_t>(hidden_dim_));
      MulMatT(logits, w2_, dh, bt_scratch_);
      ReluBackward(hidden, dh);
      // Grad for W1/b1.
      Matrix& gw1 = gw1_scratch_;
      gw1.Resize(static_cast<size_t>(input_dim_), static_cast<size_t>(hidden_dim_));
      gw1.Fill(0.0f);
      MatTMulAdd(x, dh, gw1);
      gb1_scratch_.assign(static_cast<size_t>(hidden_dim_), 0.0f);
      for (size_t i = 0; i < bsz; ++i) {
        Axpy(1.0f, dh.row(i), gb1_scratch_);
      }
      ApplyUpdate(gw1, gb1_scratch_, &gw2, &gb2_scratch_, lr, config.fedprox_mu, anchor);
    } else {
      Matrix& gw1 = gw1_scratch_;
      gw1.Resize(static_cast<size_t>(input_dim_), static_cast<size_t>(num_classes_));
      gw1.Fill(0.0f);
      MatTMulAdd(x, logits, gw1);
      gb1_scratch_.assign(static_cast<size_t>(num_classes_), 0.0f);
      for (size_t i = 0; i < bsz; ++i) {
        Axpy(1.0f, logits.row(i), gb1_scratch_);
      }
      ApplyUpdate(gw1, gb1_scratch_, nullptr, nullptr, lr, config.fedprox_mu, anchor);
    }
    return loss;
  }

  void ApplyUpdate(const Matrix& gw1, const std::vector<float>& gb1, const Matrix* gw2,
                   const std::vector<float>* gb2, float lr, float mu,
                   const std::vector<float>& anchor) {
    // FedProx proximal pull: grad += mu * (w - anchor), applied per parameter group
    // using the flattened anchor layout of GetWeights().
    size_t off = 0;
    auto update = [&](std::span<float> w, std::span<const float> g) {
      if (mu > 0.0f) {
        for (size_t i = 0; i < w.size(); ++i) {
          const float grad = g[i] + mu * (w[i] - anchor[off + i]);
          w[i] -= lr * grad;
        }
      } else {
        // w -= lr * g is bit-identical to w += (-lr) * g (sign flip is exact).
        KAxpy(-lr, g.data(), w.data(), w.size());
      }
      off += w.size();
    };
    update(std::span<float>(w1_.data()), std::span<const float>(gw1.data()));
    update(b1_, gb1);
    if (gw2 != nullptr) {
      update(std::span<float>(w2_.data()), std::span<const float>(gw2->data()));
      update(b2_, *gb2);
    }
  }

  std::string name_;
  int input_dim_;
  int hidden_dim_;
  int num_classes_;
  Matrix w1_;
  std::vector<float> b1_;
  Matrix w2_{0, 0};
  std::vector<float> b2_;
  // Per-instance Predict scratch (models are single-threaded; trainers own clones).
  mutable std::vector<float> hidden_scratch_;
  // SgdStep scratch, reused across steps. Every buffer is fully overwritten per call,
  // so reuse carries no state between steps and the math stays bit-identical.
  Matrix x_scratch_, a1_scratch_, logits_scratch_, gw1_scratch_, gw2_scratch_;
  Matrix dh_scratch_, bt_scratch_;
  std::vector<float> gb1_scratch_, gb2_scratch_;
};

}  // namespace

std::unique_ptr<Model> MakeMlp(const std::string& name, int input_dim, int hidden_dim,
                               int num_classes, uint64_t init_seed) {
  return std::make_unique<MlpModel>(name, input_dim, hidden_dim, num_classes, init_seed);
}

std::unique_ptr<Model> MakeSoftmaxRegression(const std::string& name, int input_dim,
                                             int num_classes, uint64_t init_seed) {
  return std::make_unique<MlpModel>(name, input_dim, /*hidden_dim=*/0, num_classes, init_seed);
}

std::unique_ptr<Model> MakeResNet34Proxy(int input_dim, int num_classes, uint64_t seed) {
  return MakeMlp("resnet34-proxy", input_dim, /*hidden_dim=*/256, num_classes, seed);
}

std::unique_ptr<Model> MakeShuffleNetV2Proxy(int input_dim, int num_classes, uint64_t seed) {
  return MakeMlp("shufflenetv2-proxy", input_dim, /*hidden_dim=*/96, num_classes, seed);
}

std::unique_ptr<Model> MakeTextClassifierProxy(int input_dim, int num_classes, uint64_t seed) {
  return MakeMlp("text-ff-proxy", input_dim, /*hidden_dim=*/32, num_classes, seed);
}

}  // namespace totoro
