#include "src/ml/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>

#include "src/common/env.h"

#if defined(__x86_64__) || defined(_M_X64)
#define TOTORO_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define TOTORO_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace totoro {
namespace {

// ---- Scalar reference ----------------------------------------------------------
// Every other level must match these bit for bit (elementwise ops only; see header).

namespace scalar {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Axpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
           const float* x3, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // Four sequential mul+add pairs per element — the same roundings, in the same
    // order, as four consecutive Axpy passes.
    float acc = y[i];
    acc += alpha[0] * x0[i];
    acc += alpha[1] * x1[i];
    acc += alpha[2] * x2[i];
    acc += alpha[3] * x3[i];
    y[i] = acc;
  }
}

void AxpyI8(float alpha, const int8_t* q, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * static_cast<float>(q[i]);
  }
}

void ScaleK(float* x, float alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

void Relu(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::max(x[i], 0.0f);
  }
}

void ReluMask(const float* act, float* grad, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (act[i] <= 0.0f) {
      grad[i] = 0.0f;
    }
  }
}

void Lerp(float* w, const float* p, float alpha, size_t n) {
  const float one_minus = 1.0f - alpha;
  for (size_t i = 0; i < n; ++i) {
    w[i] = one_minus * w[i] + alpha * p[i];
  }
}

float MaxK(const float* x, size_t n) {
  float m = x[0];
  for (size_t i = 1; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

void Div(float* x, float denom, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] /= denom;
  }
}

}  // namespace scalar

// ---- Portable 8-wide unrolled fallback -----------------------------------------
// Same elementwise expressions, unrolled so compilers without good vector cost models
// still pipeline the loop. Bit-identical to scalar by construction.

namespace unrolled {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += alpha * x[i + 0];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
    y[i + 4] += alpha * x[i + 4];
    y[i + 5] += alpha * x[i + 5];
    y[i + 6] += alpha * x[i + 6];
    y[i + 7] += alpha * x[i + 7];
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Axpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
           const float* x3, float* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      float acc = y[i + j];
      acc += alpha[0] * x0[i + j];
      acc += alpha[1] * x1[i + j];
      acc += alpha[2] * x2[i + j];
      acc += alpha[3] * x3[i + j];
      y[i + j] = acc;
    }
  }
  for (; i < n; ++i) {
    float acc = y[i];
    acc += alpha[0] * x0[i];
    acc += alpha[1] * x1[i];
    acc += alpha[2] * x2[i];
    acc += alpha[3] * x3[i];
    y[i] = acc;
  }
}

void AxpyI8(float alpha, const int8_t* q, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += alpha * static_cast<float>(q[i + 0]);
    y[i + 1] += alpha * static_cast<float>(q[i + 1]);
    y[i + 2] += alpha * static_cast<float>(q[i + 2]);
    y[i + 3] += alpha * static_cast<float>(q[i + 3]);
    y[i + 4] += alpha * static_cast<float>(q[i + 4]);
    y[i + 5] += alpha * static_cast<float>(q[i + 5]);
    y[i + 6] += alpha * static_cast<float>(q[i + 6]);
    y[i + 7] += alpha * static_cast<float>(q[i + 7]);
  }
  for (; i < n; ++i) {
    y[i] += alpha * static_cast<float>(q[i]);
  }
}

void ScaleK(float* x, float alpha, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    x[i + 0] *= alpha;
    x[i + 1] *= alpha;
    x[i + 2] *= alpha;
    x[i + 3] *= alpha;
    x[i + 4] *= alpha;
    x[i + 5] *= alpha;
    x[i + 6] *= alpha;
    x[i + 7] *= alpha;
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

void Relu(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    x[i + 0] = std::max(x[i + 0], 0.0f);
    x[i + 1] = std::max(x[i + 1], 0.0f);
    x[i + 2] = std::max(x[i + 2], 0.0f);
    x[i + 3] = std::max(x[i + 3], 0.0f);
    x[i + 4] = std::max(x[i + 4], 0.0f);
    x[i + 5] = std::max(x[i + 5], 0.0f);
    x[i + 6] = std::max(x[i + 6], 0.0f);
    x[i + 7] = std::max(x[i + 7], 0.0f);
  }
  for (; i < n; ++i) {
    x[i] = std::max(x[i], 0.0f);
  }
}

void ReluMask(const float* act, float* grad, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      // Branch-free form of the scalar mask (same result for every input, NaN incl.).
      grad[i + j] = act[i + j] <= 0.0f ? 0.0f : grad[i + j];
    }
  }
  for (; i < n; ++i) {
    grad[i] = act[i] <= 0.0f ? 0.0f : grad[i];
  }
}

void Lerp(float* w, const float* p, float alpha, size_t n) {
  const float one_minus = 1.0f - alpha;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      w[i + j] = one_minus * w[i + j] + alpha * p[i + j];
    }
  }
  for (; i < n; ++i) {
    w[i] = one_minus * w[i] + alpha * p[i];
  }
}

float MaxK(const float* x, size_t n) {
  // Eight independent accumulator lanes, reduced pairwise at the end. max is exact
  // under any association, so this matches the sequential scalar result.
  if (n < 8) {
    return scalar::MaxK(x, n);
  }
  float m0 = x[0];
  float m1 = x[1];
  float m2 = x[2];
  float m3 = x[3];
  float m4 = x[4];
  float m5 = x[5];
  float m6 = x[6];
  float m7 = x[7];
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    m0 = std::max(m0, x[i + 0]);
    m1 = std::max(m1, x[i + 1]);
    m2 = std::max(m2, x[i + 2]);
    m3 = std::max(m3, x[i + 3]);
    m4 = std::max(m4, x[i + 4]);
    m5 = std::max(m5, x[i + 5]);
    m6 = std::max(m6, x[i + 6]);
    m7 = std::max(m7, x[i + 7]);
  }
  float m = std::max(std::max(std::max(m0, m1), std::max(m2, m3)),
                     std::max(std::max(m4, m5), std::max(m6, m7)));
  for (; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

void Div(float* x, float denom, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      x[i + j] /= denom;
    }
  }
  for (; i < n; ++i) {
    x[i] /= denom;
  }
}

}  // namespace unrolled

#if defined(TOTORO_KERNELS_X86)

// ---- SSE2 (x86-64 baseline, 4-wide) --------------------------------------------

namespace sse2 {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vx = _mm_loadu_ps(x + i);
    const __m128 vy = _mm_loadu_ps(y + i);
    _mm_storeu_ps(y + i, _mm_add_ps(vy, _mm_mul_ps(va, vx)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Axpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
           const float* x3, float* y, size_t n) {
  const __m128 va0 = _mm_set1_ps(alpha[0]);
  const __m128 va1 = _mm_set1_ps(alpha[1]);
  const __m128 va2 = _mm_set1_ps(alpha[2]);
  const __m128 va3 = _mm_set1_ps(alpha[3]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vy = _mm_loadu_ps(y + i);
    vy = _mm_add_ps(vy, _mm_mul_ps(va0, _mm_loadu_ps(x0 + i)));
    vy = _mm_add_ps(vy, _mm_mul_ps(va1, _mm_loadu_ps(x1 + i)));
    vy = _mm_add_ps(vy, _mm_mul_ps(va2, _mm_loadu_ps(x2 + i)));
    vy = _mm_add_ps(vy, _mm_mul_ps(va3, _mm_loadu_ps(x3 + i)));
    _mm_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) {
    float acc = y[i];
    acc += alpha[0] * x0[i];
    acc += alpha[1] * x1[i];
    acc += alpha[2] * x2[i];
    acc += alpha[3] * x3[i];
    y[i] = acc;
  }
}

void AxpyI8(float alpha, const int8_t* q, float* y, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Sign-extend 4 int8 -> int32 without SSE4.1: duplicate the bytes up the lane and
    // arithmetic-shift back down.
    int32_t raw = 0;
    std::memcpy(&raw, q + i, 4);
    __m128i v8 = _mm_cvtsi32_si128(raw);
    v8 = _mm_unpacklo_epi8(v8, v8);
    v8 = _mm_unpacklo_epi16(v8, v8);
    const __m128i v32 = _mm_srai_epi32(v8, 24);
    const __m128 vq = _mm_cvtepi32_ps(v32);
    const __m128 vy = _mm_loadu_ps(y + i);
    _mm_storeu_ps(y + i, _mm_add_ps(vy, _mm_mul_ps(va, vq)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * static_cast<float>(q[i]);
  }
}

void ScaleK(float* x, float alpha, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

void Relu(float* x, size_t n) {
  // maxps(0, v) = (0 > v) ? 0 : v — exactly std::max(v, 0.0f): -0.0 and NaN pass
  // through (the second operand wins ties and unordered compares).
  const __m128 zero = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_max_ps(zero, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    x[i] = std::max(x[i], 0.0f);
  }
}

void ReluMask(const float* act, float* grad, size_t n) {
  const __m128 zero = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // cmple is an ordered compare: NaN activation keeps its gradient, like the scalar
    // `act <= 0` test.
    const __m128 mask = _mm_cmple_ps(_mm_loadu_ps(act + i), zero);
    _mm_storeu_ps(grad + i, _mm_andnot_ps(mask, _mm_loadu_ps(grad + i)));
  }
  for (; i < n; ++i) {
    grad[i] = act[i] <= 0.0f ? 0.0f : grad[i];
  }
}

void Lerp(float* w, const float* p, float alpha, size_t n) {
  const float one_minus = 1.0f - alpha;
  const __m128 va = _mm_set1_ps(alpha);
  const __m128 vb = _mm_set1_ps(one_minus);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vw = _mm_mul_ps(vb, _mm_loadu_ps(w + i));
    const __m128 vp = _mm_mul_ps(va, _mm_loadu_ps(p + i));
    _mm_storeu_ps(w + i, _mm_add_ps(vw, vp));
  }
  for (; i < n; ++i) {
    w[i] = one_minus * w[i] + alpha * p[i];
  }
}

float MaxK(const float* x, size_t n) {
  if (n < 4) {
    return scalar::MaxK(x, n);
  }
  __m128 vm = _mm_loadu_ps(x);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vm = _mm_max_ps(vm, _mm_loadu_ps(x + i));
  }
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, vm);
  float m = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

void Div(float* x, float denom, size_t n) {
  const __m128 vd = _mm_set1_ps(denom);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_div_ps(_mm_loadu_ps(x + i), vd));
  }
  for (; i < n; ++i) {
    x[i] /= denom;
  }
}

}  // namespace sse2

// ---- AVX2 (8-wide, runtime-detected) -------------------------------------------
// target("avx2") does NOT enable FMA: mul and add stay separate instructions, which
// is what keeps these bit-identical to the scalar reference.

namespace avx2 {

__attribute__((target("avx2"))) void Axpy(float alpha, const float* x, float* y,
                                          size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

__attribute__((target("avx2"))) void Axpy4(const float alpha[4], const float* x0,
                                           const float* x1, const float* x2,
                                           const float* x3, float* y, size_t n) {
  const __m256 va0 = _mm256_set1_ps(alpha[0]);
  const __m256 va1 = _mm256_set1_ps(alpha[1]);
  const __m256 va2 = _mm256_set1_ps(alpha[2]);
  const __m256 va3 = _mm256_set1_ps(alpha[3]);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_add_ps(vy, _mm256_mul_ps(va0, _mm256_loadu_ps(x0 + i)));
    vy = _mm256_add_ps(vy, _mm256_mul_ps(va1, _mm256_loadu_ps(x1 + i)));
    vy = _mm256_add_ps(vy, _mm256_mul_ps(va2, _mm256_loadu_ps(x2 + i)));
    vy = _mm256_add_ps(vy, _mm256_mul_ps(va3, _mm256_loadu_ps(x3 + i)));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) {
    float acc = y[i];
    acc += alpha[0] * x0[i];
    acc += alpha[1] * x1[i];
    acc += alpha[2] * x2[i];
    acc += alpha[3] * x3[i];
    y[i] = acc;
  }
}

__attribute__((target("avx2"))) void AxpyI8(float alpha, const int8_t* q, float* y,
                                            size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i v8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
    const __m256i v32 = _mm256_cvtepi8_epi32(v8);
    const __m256 vq = _mm256_cvtepi32_ps(v32);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vq)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * static_cast<float>(q[i]);
  }
}

__attribute__((target("avx2"))) void ScaleK(float* x, float alpha, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

__attribute__((target("avx2"))) void Relu(float* x, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(zero, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    x[i] = std::max(x[i], 0.0f);
  }
}

__attribute__((target("avx2"))) void ReluMask(const float* act, float* grad, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(act + i), zero, _CMP_LE_OQ);
    _mm256_storeu_ps(grad + i, _mm256_andnot_ps(mask, _mm256_loadu_ps(grad + i)));
  }
  for (; i < n; ++i) {
    grad[i] = act[i] <= 0.0f ? 0.0f : grad[i];
  }
}

__attribute__((target("avx2"))) void Lerp(float* w, const float* p, float alpha,
                                          size_t n) {
  const float one_minus = 1.0f - alpha;
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(one_minus);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vw = _mm256_mul_ps(vb, _mm256_loadu_ps(w + i));
    const __m256 vp = _mm256_mul_ps(va, _mm256_loadu_ps(p + i));
    _mm256_storeu_ps(w + i, _mm256_add_ps(vw, vp));
  }
  for (; i < n; ++i) {
    w[i] = one_minus * w[i] + alpha * p[i];
  }
}

__attribute__((target("avx2"))) float MaxK(const float* x, size_t n) {
  if (n < 8) {
    return scalar::MaxK(x, n);
  }
  __m256 vm = _mm256_loadu_ps(x);
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float m = std::max(std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3])),
                     std::max(std::max(lanes[4], lanes[5]), std::max(lanes[6], lanes[7])));
  for (; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

__attribute__((target("avx2"))) void Div(float* x, float denom, size_t n) {
  const __m256 vd = _mm256_set1_ps(denom);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_div_ps(_mm256_loadu_ps(x + i), vd));
  }
  for (; i < n; ++i) {
    x[i] /= denom;
  }
}

}  // namespace avx2

#endif  // TOTORO_KERNELS_X86

#if defined(TOTORO_KERNELS_NEON)

// ---- NEON (aarch64 baseline, 4-wide) -------------------------------------------

namespace neon {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    const float32x4_t vy = vld1q_f32(y + i);
    vst1q_f32(y + i, vaddq_f32(vy, vmulq_f32(va, vx)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void Axpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
           const float* x3, float* y, size_t n) {
  const float32x4_t va0 = vdupq_n_f32(alpha[0]);
  const float32x4_t va1 = vdupq_n_f32(alpha[1]);
  const float32x4_t va2 = vdupq_n_f32(alpha[2]);
  const float32x4_t va3 = vdupq_n_f32(alpha[3]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t vy = vld1q_f32(y + i);
    vy = vaddq_f32(vy, vmulq_f32(va0, vld1q_f32(x0 + i)));
    vy = vaddq_f32(vy, vmulq_f32(va1, vld1q_f32(x1 + i)));
    vy = vaddq_f32(vy, vmulq_f32(va2, vld1q_f32(x2 + i)));
    vy = vaddq_f32(vy, vmulq_f32(va3, vld1q_f32(x3 + i)));
    vst1q_f32(y + i, vy);
  }
  for (; i < n; ++i) {
    float acc = y[i];
    acc += alpha[0] * x0[i];
    acc += alpha[1] * x1[i];
    acc += alpha[2] * x2[i];
    acc += alpha[3] * x3[i];
    y[i] = acc;
  }
}

void AxpyI8(float alpha, const int8_t* q, float* y, size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t v16 = vmovl_s8(vld1_s8(q + i));
    const float32x4_t lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(v16)));
    const float32x4_t hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(v16)));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vmulq_f32(va, lo)));
    vst1q_f32(y + i + 4, vaddq_f32(vld1q_f32(y + i + 4), vmulq_f32(va, hi)));
  }
  for (; i < n; ++i) {
    y[i] += alpha * static_cast<float>(q[i]);
  }
}

void ScaleK(float* x, float alpha, size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

void Relu(float* x, size_t n) {
  // Compare + select, not vmax: FMAX orders -0 < +0 which would flip the sign of zero
  // relative to std::max(v, 0.0f).
  const float32x4_t zero = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const uint32x4_t neg = vcltq_f32(v, zero);
    vst1q_f32(x + i, vbslq_f32(neg, zero, v));
  }
  for (; i < n; ++i) {
    x[i] = std::max(x[i], 0.0f);
  }
}

void ReluMask(const float* act, float* grad, size_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t dead = vcleq_f32(vld1q_f32(act + i), zero);
    vst1q_f32(grad + i, vbslq_f32(dead, zero, vld1q_f32(grad + i)));
  }
  for (; i < n; ++i) {
    grad[i] = act[i] <= 0.0f ? 0.0f : grad[i];
  }
}

void Lerp(float* w, const float* p, float alpha, size_t n) {
  const float one_minus = 1.0f - alpha;
  const float32x4_t va = vdupq_n_f32(alpha);
  const float32x4_t vb = vdupq_n_f32(one_minus);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t vw = vmulq_f32(vb, vld1q_f32(w + i));
    const float32x4_t vp = vmulq_f32(va, vld1q_f32(p + i));
    vst1q_f32(w + i, vaddq_f32(vw, vp));
  }
  for (; i < n; ++i) {
    w[i] = one_minus * w[i] + alpha * p[i];
  }
}

float MaxK(const float* x, size_t n) {
  if (n < 4) {
    return scalar::MaxK(x, n);
  }
  float32x4_t vm = vld1q_f32(x);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vm = vmaxq_f32(vm, vld1q_f32(x + i));
  }
  float m = vmaxvq_f32(vm);
  for (; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

void Div(float* x, float denom, size_t n) {
  const float32x4_t vd = vdupq_n_f32(denom);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vdivq_f32(vld1q_f32(x + i), vd));
  }
  for (; i < n; ++i) {
    x[i] /= denom;
  }
}

}  // namespace neon

#endif  // TOTORO_KERNELS_NEON

// ---- Dispatch ------------------------------------------------------------------

struct KernelTable {
  void (*axpy)(float, const float*, float*, size_t);
  void (*axpy4)(const float[4], const float*, const float*, const float*, const float*,
                float*, size_t);
  void (*axpy_i8)(float, const int8_t*, float*, size_t);
  void (*scale)(float*, float, size_t);
  void (*relu)(float*, size_t);
  void (*relu_mask)(const float*, float*, size_t);
  void (*lerp)(float*, const float*, float, size_t);
  float (*max)(const float*, size_t);
  void (*div)(float*, float, size_t);
};

constexpr KernelTable kScalarTable = {scalar::Axpy,     scalar::Axpy4,
                                      scalar::AxpyI8,   scalar::ScaleK,
                                      scalar::Relu,     scalar::ReluMask,
                                      scalar::Lerp,     scalar::MaxK,   scalar::Div};
constexpr KernelTable kUnrolledTable = {unrolled::Axpy, unrolled::Axpy4,
                                        unrolled::AxpyI8,
                                        unrolled::ScaleK, unrolled::Relu,
                                        unrolled::ReluMask, unrolled::Lerp,
                                        unrolled::MaxK, unrolled::Div};
#if defined(TOTORO_KERNELS_X86)
constexpr KernelTable kSse2Table = {sse2::Axpy,     sse2::Axpy4,
                                    sse2::AxpyI8,   sse2::ScaleK,
                                    sse2::Relu,     sse2::ReluMask,
                                    sse2::Lerp,     sse2::MaxK,   sse2::Div};
constexpr KernelTable kAvx2Table = {avx2::Axpy,     avx2::Axpy4,
                                    avx2::AxpyI8,   avx2::ScaleK,
                                    avx2::Relu,     avx2::ReluMask,
                                    avx2::Lerp,     avx2::MaxK,   avx2::Div};
#endif
#if defined(TOTORO_KERNELS_NEON)
constexpr KernelTable kNeonTable = {neon::Axpy,     neon::Axpy4,
                                    neon::AxpyI8,   neon::ScaleK,
                                    neon::Relu,     neon::ReluMask,
                                    neon::Lerp,     neon::MaxK,   neon::Div};
#endif

const KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarTable;
    case SimdLevel::kUnrolled:
      return &kUnrolledTable;
#if defined(TOTORO_KERNELS_X86)
    case SimdLevel::kSse2:
      return &kSse2Table;
    case SimdLevel::kAvx2:
      return &kAvx2Table;
#endif
#if defined(TOTORO_KERNELS_NEON)
    case SimdLevel::kNeon:
      return &kNeonTable;
#endif
    default:
      return &kUnrolledTable;
  }
}

bool LevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
    case SimdLevel::kUnrolled:
      return true;
#if defined(TOTORO_KERNELS_X86)
    case SimdLevel::kSse2:
      return true;  // x86-64 baseline.
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(TOTORO_KERNELS_NEON)
    case SimdLevel::kNeon:
      return true;  // aarch64 baseline.
#endif
    default:
      return false;
  }
}

SimdLevel BestSupportedLevel() {
#if defined(TOTORO_KERNELS_X86)
  if (LevelSupported(SimdLevel::kAvx2)) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kSse2;
#elif defined(TOTORO_KERNELS_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kUnrolled;
#endif
}

SimdLevel ResolveStartupLevel() {
  const char* env = EnvString("TOTORO_SIMD");
  if (env == nullptr) {
    return BestSupportedLevel();
  }
  const std::string v(env);
  SimdLevel wanted = BestSupportedLevel();
  if (v == "scalar") {
    wanted = SimdLevel::kScalar;
  } else if (v == "unrolled") {
    wanted = SimdLevel::kUnrolled;
  } else if (v == "sse2") {
    wanted = SimdLevel::kSse2;
  } else if (v == "avx2") {
    wanted = SimdLevel::kAvx2;
  } else if (v == "neon") {
    wanted = SimdLevel::kNeon;
  }
  return LevelSupported(wanted) ? wanted : BestSupportedLevel();
}

// The active table. Resolved on first use; SetSimdLevelForTest swaps it (tests only —
// kernels are bit-identical across levels, so a mid-run swap cannot change results,
// only instruction mix).
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_level{-1};

const KernelTable* ActiveTable() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) {
    return t;
  }
  const SimdLevel level = ResolveStartupLevel();
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  const KernelTable* resolved = TableFor(level);
  g_table.store(resolved, std::memory_order_release);
  return resolved;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kUnrolled:
      return "unrolled";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  ActiveTable();
  return static_cast<SimdLevel>(g_level.load(std::memory_order_relaxed));
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kUnrolled, SimdLevel::kSse2,
                          SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (LevelSupported(level)) {
      out.push_back(level);
    }
  }
  return out;
}

SimdLevel SetSimdLevelForTest(SimdLevel level) {
  const SimdLevel installed = LevelSupported(level) ? level : BestSupportedLevel();
  g_level.store(static_cast<int>(installed), std::memory_order_relaxed);
  g_table.store(TableFor(installed), std::memory_order_release);
  return installed;
}

void KAxpy(float alpha, const float* x, float* y, size_t n) {
  ActiveTable()->axpy(alpha, x, y, n);
}

void KAxpy4(const float alpha[4], const float* x0, const float* x1, const float* x2,
            const float* x3, float* y, size_t n) {
  ActiveTable()->axpy4(alpha, x0, x1, x2, x3, y, n);
}

void KAxpyI8(float alpha, const int8_t* q, float* y, size_t n) {
  ActiveTable()->axpy_i8(alpha, q, y, n);
}

void KScale(float* x, float alpha, size_t n) { ActiveTable()->scale(x, alpha, n); }

void KRelu(float* x, size_t n) { ActiveTable()->relu(x, n); }

void KReluMask(const float* act, float* grad, size_t n) {
  ActiveTable()->relu_mask(act, grad, n);
}

void KLerp(float* w, const float* p, float alpha, size_t n) {
  ActiveTable()->lerp(w, p, alpha, n);
}

float KMax(const float* x, size_t n) { return ActiveTable()->max(x, n); }

void KDiv(float* x, float denom, size_t n) { ActiveTable()->div(x, denom, n); }

void KSoftmax(float* x, size_t n) {
  if (n == 0) {
    return;
  }
  const float max_v = KMax(x, n);
  // exp + the sequential sum stay scalar: the sum order is part of the fingerprinted
  // numerics and must not reassociate under vectorization.
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max_v);
    sum += x[i];
  }
  KDiv(x, sum, n);
}

}  // namespace totoro
