// Minimal dense linear algebra for the FL substrate.
//
// Row-major float matrices with exactly the operations MLP forward/backward needs.
// Deliberately simple — the evaluation's claims depend on round/communication structure,
// not on BLAS throughput — but the math is real: models genuinely train.
#ifndef SRC_ML_TENSOR_H_
#define SRC_ML_TENSOR_H_

#include <cstddef>
#include <span>
#include <vector>

namespace totoro {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  std::span<float> row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(size_t r) const { return {data_.data() + r * cols_, cols_}; }
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float v);

  // Reshape to rows x cols, reallocating only when the element count grows.
  // Contents are unspecified afterwards; callers must fully overwrite.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// out[m x n] = a[m x k] * b[k x n].
void MatMul(const Matrix& a, const Matrix& b, Matrix& out);
// out[k x n] += a^T[k x m] * b[m x n]   (gradient of weights).
void MatTMulAdd(const Matrix& a, const Matrix& b, Matrix& out);
// out[m x k] = a[m x n] * b^T[k x n]^T  i.e. a * transpose(b) (gradient of inputs).
void MulMatT(const Matrix& a, const Matrix& b, Matrix& out);
// Same, but reuses `bt_scratch` for the internal transpose of b so a hot caller
// (e.g. the MLP backward pass) avoids reallocating it every step.
void MulMatT(const Matrix& a, const Matrix& b, Matrix& out, Matrix& bt_scratch);

// y += alpha * x (sizes must match).
void Axpy(float alpha, std::span<const float> x, std::span<float> y);
float Dot(std::span<const float> a, std::span<const float> b);
float L2Norm(std::span<const float> x);
void Scale(std::span<float> x, float alpha);

// In-place ReLU and its backward mask application: grad *= (activation > 0).
void ReluInPlace(Matrix& m);
void ReluBackward(const Matrix& activation, Matrix& grad);

// Row-wise softmax in place.
void SoftmaxRows(Matrix& m);

}  // namespace totoro

#endif  // SRC_ML_TENSOR_H_
