#include "src/ml/dataset.h"

#include "src/common/check.h"

namespace totoro {

void Dataset::Add(Example e) {
  CHECK_EQ(static_cast<int>(e.x.size()), dim_);
  CHECK_GE(e.label, 0);
  CHECK_LT(e.label, num_classes_);
  examples_.push_back(std::move(e));
}

std::vector<size_t> Dataset::SampleBatch(size_t n, Rng& rng) const {
  CHECK_GT(size(), 0u);
  std::vector<size_t> idx(n);
  for (auto& i : idx) {
    i = static_cast<size_t>(rng.NextBelow(size()));
  }
  return idx;
}

SyntheticTask::SyntheticTask(SyntheticSpec spec) : spec_(spec) {
  CHECK_GT(spec_.dim, 0);
  CHECK_GT(spec_.num_classes, 1);
  Rng rng(spec_.seed ^ 0x5EEDD00Dull);
  class_means_.resize(static_cast<size_t>(spec_.num_classes));
  for (auto& mean : class_means_) {
    mean.resize(static_cast<size_t>(spec_.dim));
    for (auto& v : mean) {
      v = static_cast<float>(rng.Gaussian(0.0, spec_.class_separation));
    }
  }
}

Dataset SyntheticTask::Generate(size_t num_examples, Rng& rng) const {
  Dataset ds(spec_.dim, spec_.num_classes);
  for (size_t i = 0; i < num_examples; ++i) {
    Example e;
    e.label = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(spec_.num_classes)));
    e.x.resize(static_cast<size_t>(spec_.dim));
    const auto& mean = class_means_[static_cast<size_t>(e.label)];
    for (int d = 0; d < spec_.dim; ++d) {
      e.x[static_cast<size_t>(d)] = mean[static_cast<size_t>(d)] +
                                    static_cast<float>(rng.Gaussian(0.0, spec_.noise_stddev));
    }
    ds.Add(std::move(e));
  }
  return ds;
}

SyntheticSpec SyntheticTask::SpeechCommandsLike(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 64;  // MFCC-embedding width.
  spec.num_classes = 35;
  spec.class_separation = 1.4;  // Middle-scale difficulty: 53% target is non-trivial.
  spec.noise_stddev = 2.2;
  spec.seed = seed;
  return spec;
}

SyntheticSpec SyntheticTask::FemnistLike(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 64;
  spec.num_classes = 62;
  spec.class_separation = 1.8;
  spec.noise_stddev = 1.6;
  spec.seed = seed;
  return spec;
}

SyntheticSpec SyntheticTask::TextClassificationLike(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 32;
  spec.num_classes = 4;
  spec.class_separation = 2.0;
  spec.noise_stddev = 1.2;
  spec.seed = seed;
  return spec;
}

std::vector<Dataset> PartitionDirichlet(const Dataset& full, size_t num_clients, double alpha,
                                        Rng& rng) {
  CHECK_GT(num_clients, 0u);
  std::vector<Dataset> shards;
  shards.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    shards.emplace_back(full.dim(), full.num_classes());
  }
  // Per-client class mixing proportions.
  std::vector<std::vector<double>> mix(num_clients);
  for (auto& m : mix) {
    m = rng.Dirichlet(alpha, full.num_classes());
  }
  // Assign each example to a client weighted by that client's affinity for its label.
  for (size_t i = 0; i < full.size(); ++i) {
    const Example& e = full.example(i);
    std::vector<double> weights(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      weights[c] = mix[c][static_cast<size_t>(e.label)];
    }
    const size_t client = rng.WeightedIndex(weights);
    shards[client].Add(e);
  }
  return shards;
}

}  // namespace totoro
