// Dequantize-free int8 inference for the two-layer MLP family.
//
// The FL compression path ships EncodeInt8 blobs ([float32 scale][int8 ...],
// src/ml/serialize.h). Before this layer existed, a consumer had to DecodeInt8 the blob
// back into a full float weight vector before predicting. QuantizedMlp instead keeps the
// int8 payload as-is and folds the quantization scale into the axpy alpha
// (`y += (x_d * scale_row) * q_row`, KAxpyI8), so inference runs straight off the
// quantized bytes — ~4x less weight memory traffic and no dequantized matrices
// materialized.
//
// Two constructors:
//   FromWeights(float weights) — rowwise symmetric quantization (per-row max_abs/127
//     scales), the higher-fidelity path when the float weights are at hand.
//   FromInt8Blob(EncodeInt8 bytes) — consumes the wire blob directly: one per-tensor
//     scale (replicated per row), int8 values aliased without decode; only the biases
//     (a few dozen floats) are dequantized.
//
// Like the float kernels, the accumulation order matches MlpModel::Predict exactly
// (axpy over rows, ReLU, axpy, softmax), so results are bit-identical across SIMD
// dispatch levels — quantization error is the only difference from the float path.
#ifndef SRC_ML_QUANTIZED_H_
#define SRC_ML_QUANTIZED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/ml/dataset.h"

namespace totoro {

// Row-major int8 matrix with one float scale per row: row i dequantizes as
// scales[i] * int8 value.
struct QuantizedMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> values;  // rows * cols, row-major.
  std::vector<float> scales;   // rows.

  uint64_t WireBytes() const {
    return static_cast<uint64_t>(values.size()) +
           static_cast<uint64_t>(scales.size()) * sizeof(float);
  }
};

class QuantizedMlp {
 public:
  struct Layout {
    int input_dim = 0;
    int hidden_dim = 0;  // > 0; the two-layer MLP shape used by the proxy models.
    int num_classes = 0;

    size_t NumParams() const;
  };

  // Rowwise quantization of a flattened [w1, b1, w2, b2] float weight vector (the
  // Model::GetWeights layout). weights.size() must equal layout.NumParams().
  static QuantizedMlp FromWeights(std::span<const float> weights, const Layout& layout);

  // Consumes an EncodeInt8 blob of the same flattened weight vector without decoding
  // it: the blob's single per-tensor scale becomes every row's scale and the int8
  // values are copied byte-for-byte. Biases are dequantized to float.
  static QuantizedMlp FromInt8Blob(std::span<const uint8_t> blob, const Layout& layout);

  // Softmax class probabilities for one example. `x` must have layout.input_dim
  // elements. Bit-identical across SIMD dispatch levels.
  std::vector<float> Predict(std::span<const float> x) const;

  // Scratch-reusing form for hot loops; hidden/probs are resized as needed.
  void PredictInto(std::span<const float> x, std::vector<float>& hidden,
                   std::vector<float>& probs) const;

  // Top-1 accuracy on a dataset (same contract as Model::Accuracy).
  double Accuracy(const Dataset& data) const;

  const Layout& layout() const { return layout_; }
  // Bytes this representation would occupy on the wire (int8 values + per-row scales
  // + float biases).
  uint64_t WireBytes() const;

 private:
  Layout layout_;
  QuantizedMatrix w1_;       // input_dim x hidden_dim.
  QuantizedMatrix w2_;       // hidden_dim x num_classes.
  std::vector<float> b1_;    // hidden_dim.
  std::vector<float> b2_;    // num_classes.
};

}  // namespace totoro

#endif  // SRC_ML_QUANTIZED_H_
