// Model interface for local training and federated aggregation.
//
// Federated aggregation works on flattened weight vectors: workers train local copies
// and ship weights; aggregators average them (FedAvg/FedProx). A model therefore only
// needs Get/SetWeights, a training step, and evaluation.
#ifndef SRC_ML_MODEL_H_
#define SRC_ML_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ml/dataset.h"

namespace totoro {

struct TrainConfig {
  float learning_rate = 0.05f;
  size_t batch_size = 20;   // Paper's minibatch size for both tasks.
  size_t local_steps = 10;  // Minibatch SGD steps per local round.
  // FedProx proximal coefficient; 0 disables the proximal term (plain FedAvg local
  // objective).
  float fedprox_mu = 0.0f;
};

class Model {
 public:
  virtual ~Model() = default;

  virtual const std::string& name() const = 0;
  virtual size_t NumParams() const = 0;
  virtual std::vector<float> GetWeights() const = 0;
  virtual void SetWeights(std::span<const float> weights) = 0;
  virtual std::unique_ptr<Model> Clone() const = 0;

  // One local round of minibatch SGD on `shard`; returns the mean training loss over the
  // steps. When config.fedprox_mu > 0, `anchor` (the global weights at round start) adds
  // the proximal pull mu * (w - anchor) to every gradient.
  virtual float TrainLocal(const Dataset& shard, const TrainConfig& config, Rng& rng,
                           std::span<const float> anchor = {}) = 0;

  // Top-1 accuracy on a dataset.
  virtual double Accuracy(const Dataset& data) const = 0;
  // Mean cross-entropy loss on a dataset.
  virtual double Loss(const Dataset& data) const = 0;

  // Serialized size of the weights on the wire (float32).
  uint64_t WireBytes() const { return NumParams() * sizeof(float); }
};

// Two-layer MLP (input -> ReLU hidden -> softmax) with cross-entropy loss.
std::unique_ptr<Model> MakeMlp(const std::string& name, int input_dim, int hidden_dim,
                               int num_classes, uint64_t init_seed);

// Softmax regression (no hidden layer); the smallest model in the suite.
std::unique_ptr<Model> MakeSoftmaxRegression(const std::string& name, int input_dim,
                                             int num_classes, uint64_t init_seed);

// 1-D convolutional classifier: conv(kernel, filters) -> ReLU -> global average pooling
// -> dense softmax. Structurally closest to the paper's audio models.
std::unique_ptr<Model> MakeConv1d(const std::string& name, int input_len, int filters,
                                  int kernel, int num_classes, uint64_t seed);

// Named proxies for the paper's models. Parameter counts are scaled-down stand-ins; the
// relative size ordering (ResNet-34 proxy > ShuffleNet V2 proxy > feedforward text
// model) is preserved so compute/communication cost ratios carry over.
std::unique_ptr<Model> MakeResNet34Proxy(int input_dim, int num_classes, uint64_t seed);
std::unique_ptr<Model> MakeShuffleNetV2Proxy(int input_dim, int num_classes, uint64_t seed);
std::unique_ptr<Model> MakeTextClassifierProxy(int input_dim, int num_classes, uint64_t seed);

}  // namespace totoro

#endif  // SRC_ML_MODEL_H_
