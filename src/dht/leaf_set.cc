#include "src/dht/leaf_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace totoro {
namespace {

// Insert into a side list kept sorted by distance (nearest first), capped at `cap`.
bool InsertSide(std::vector<RouteEntry>& side, const RouteEntry& entry, const U128& dist,
                const NodeId& self, bool clockwise, size_t cap) {
  auto dist_of = [&](const RouteEntry& e) {
    return clockwise ? U128::ClockwiseDistance(self, e.id) : U128::ClockwiseDistance(e.id, self);
  };
  for (const auto& e : side) {
    if (e.id == entry.id) {
      return false;
    }
  }
  auto it = std::lower_bound(side.begin(), side.end(), dist,
                             [&](const RouteEntry& e, const U128& d) { return dist_of(e) < d; });
  if (side.size() >= cap && it == side.end()) {
    return false;
  }
  side.insert(it, entry);
  if (side.size() > cap) {
    side.pop_back();
  }
  return true;
}

}  // namespace

LeafSet::LeafSet(NodeId self, int size) : self_(self), size_(size) {
  CHECK_GE(size_, 2);
  CHECK_EQ(size_ % 2, 0);
}

bool LeafSet::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  const size_t cap = static_cast<size_t>(size_ / 2);
  const U128 cw_dist = U128::ClockwiseDistance(self_, entry.id);
  const U128 ccw_dist = U128::ClockwiseDistance(entry.id, self_);
  bool changed = false;
  // A node can be in both sides of a sparse ring (fewer than L nodes total); that is
  // correct — coverage then spans the full circle.
  changed |= InsertSide(cw_, entry, cw_dist, self_, /*clockwise=*/true, cap);
  changed |= InsertSide(ccw_, entry, ccw_dist, self_, /*clockwise=*/false, cap);
  return changed;
}

bool LeafSet::Remove(NodeId id) {
  bool changed = false;
  auto drop = [&](std::vector<RouteEntry>& side) {
    for (auto it = side.begin(); it != side.end(); ++it) {
      if (it->id == id) {
        side.erase(it);
        changed = true;
        return;
      }
    }
  };
  drop(cw_);
  drop(ccw_);
  return changed;
}

bool LeafSet::Contains(NodeId id) const {
  for (const auto& e : cw_) {
    if (e.id == id) {
      return true;
    }
  }
  for (const auto& e : ccw_) {
    if (e.id == id) {
      return true;
    }
  }
  return false;
}

bool LeafSet::Full() const {
  const size_t cap = static_cast<size_t>(size_ / 2);
  return cw_.size() >= cap && ccw_.size() >= cap;
}

bool LeafSet::Covers(const NodeId& key) const {
  if (!Full()) {
    return true;
  }
  // Interval [ccw_.back(), cw_.back()] around self, measured clockwise from ccw_.back().
  const U128 span = U128::ClockwiseDistance(ccw_.back().id, cw_.back().id);
  const U128 offset = U128::ClockwiseDistance(ccw_.back().id, key);
  return offset <= span;
}

RouteEntry LeafSet::Closest(const NodeId& key, HostId self_host,
                            const std::function<bool(const RouteEntry&)>* alive) const {
  RouteEntry best{self_, self_host, 0.0};
  U128 best_dist = U128::RingDistance(self_, key);
  auto scan = [&](const std::vector<RouteEntry>& side) {
    for (const auto& e : side) {
      if (alive != nullptr && !(*alive)(e)) {
        continue;
      }
      const U128 d = U128::RingDistance(e.id, key);
      if (d < best_dist || (d == best_dist && e.id < best.id)) {
        best_dist = d;
        best = e;
      }
    }
  };
  scan(cw_);
  scan(ccw_);
  return best;
}

std::vector<RouteEntry> LeafSet::All() const {
  std::vector<RouteEntry> out = cw_;
  for (const auto& e : ccw_) {
    bool dup = false;
    for (const auto& o : out) {
      if (o.id == e.id) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<RouteEntry> LeafSet::CwNeighbor() const {
  if (cw_.empty()) {
    return std::nullopt;
  }
  return cw_.front();
}

std::optional<RouteEntry> LeafSet::CcwNeighbor() const {
  if (ccw_.empty()) {
    return std::nullopt;
  }
  return ccw_.front();
}

void LeafSet::ForEach(const std::function<void(const RouteEntry&)>& fn) const {
  for (const auto& e : All()) {
    fn(e);
  }
}

}  // namespace totoro
