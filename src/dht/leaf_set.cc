#include "src/dht/leaf_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace totoro {

LeafSet::LeafSet(NodeId self, int size) : self_(self), size_(size) {
  CHECK_GE(size_, 2);
  CHECK_EQ(size_ % 2, 0);
  // +1: Consider briefly holds one extra entry between insert and same-side evict.
  entries_.reserve(static_cast<size_t>(size_) + 1);
}

bool LeafSet::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  const size_t cap = static_cast<size_t>(size_ / 2);
  bool changed = false;
  // A node can be in both sides of a sparse ring (fewer than L nodes total); that is
  // correct — coverage then spans the full circle. `first`/`count` delimit one side
  // within the shared buffer.
  auto insert_side = [&](size_t first, size_t count, const U128& dist, bool clockwise) {
    auto dist_of = [&](const RouteEntry& e) {
      return clockwise ? U128::ClockwiseDistance(self_, e.id)
                       : U128::ClockwiseDistance(e.id, self_);
    };
    const auto begin = entries_.begin() + static_cast<ptrdiff_t>(first);
    const auto end = begin + static_cast<ptrdiff_t>(count);
    for (auto it = begin; it != end; ++it) {
      if (it->id == entry.id) {
        return false;
      }
    }
    const auto pos = std::lower_bound(
        begin, end, dist,
        [&](const RouteEntry& e, const U128& d) { return dist_of(e) < d; });
    if (count >= cap && pos == end) {
      return false;
    }
    entries_.insert(pos, entry);
    if (count + 1 > cap) {
      // Evict the side's farthest member (now one past the old end).
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(first + cap));
      return true;
    }
    return true;
  };
  const U128 cw_dist = U128::ClockwiseDistance(self_, entry.id);
  const U128 ccw_dist = U128::ClockwiseDistance(entry.id, self_);
  if (insert_side(0, cw_count_, cw_dist, /*clockwise=*/true)) {
    if (cw_count_ + 1 <= cap) {
      ++cw_count_;
    }
    changed = true;
  }
  if (insert_side(ccw_begin(), entries_.size() - ccw_begin(), ccw_dist,
                  /*clockwise=*/false)) {
    changed = true;
  }
  return changed;
}

bool LeafSet::Remove(NodeId id) {
  bool changed = false;
  for (size_t i = 0; i < cw_count_; ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      --cw_count_;
      changed = true;
      break;
    }
  }
  for (size_t i = ccw_begin(); i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      changed = true;
      break;
    }
  }
  return changed;
}

bool LeafSet::Contains(NodeId id) const {
  for (const auto& e : entries_) {
    if (e.id == id) {
      return true;
    }
  }
  return false;
}

bool LeafSet::Full() const {
  const size_t cap = static_cast<size_t>(size_ / 2);
  return cw_count_ >= cap && entries_.size() - cw_count_ >= cap;
}

bool LeafSet::Covers(const NodeId& key) const {
  if (!Full()) {
    return true;
  }
  // Interval [farthest ccw, farthest cw] around self, measured clockwise from the
  // farthest ccw member.
  const NodeId& cw_far = entries_[cw_count_ - 1].id;
  const NodeId& ccw_far = entries_.back().id;
  const U128 span = U128::ClockwiseDistance(ccw_far, cw_far);
  const U128 offset = U128::ClockwiseDistance(ccw_far, key);
  return offset <= span;
}

RouteEntry LeafSet::Closest(const NodeId& key, HostId self_host, AliveFn alive) const {
  // Fast path (no liveness filter, both sides populated and covering disjoint arcs —
  // the steady state on any ring with more than L nodes): the buffer, read as
  // [cw side, ccw side reversed], is sorted by clockwise position around self, so the
  // two ring-neighbors of `key` can be found by binary search. The numerically closest
  // member is always one of those two neighbors (circular distance is unimodal in ring
  // position, so its minimum over a set of positions is attained at an extreme), which
  // replaces L ring-distance computations with ~log2(L) position compares plus three
  // distance computations. Sparse rings where the sides overlap fall through to the
  // exhaustive scan below; both paths implement min by (distance, id) over
  // {self} ∪ members and therefore return bit-identical results.
  const size_t n = entries_.size();
  if (!alive && cw_count_ > 0 && cw_count_ < n &&
      U128::ClockwiseDistance(self_, entries_[cw_count_ - 1].id) <
          U128::ClockwiseDistance(self_, entries_.back().id)) {
    // Virtual index i walks the buffer in ascending clockwise position from self.
    const auto at = [&](size_t i) -> const RouteEntry& {
      return i < cw_count_ ? entries_[i] : entries_[n - 1 - (i - cw_count_)];
    };
    const U128 kp = U128::ClockwiseDistance(self_, key);
    size_t lo = 0;
    size_t hi = n;  // First virtual index whose position is >= kp (n if none).
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (U128::ClockwiseDistance(self_, at(mid).id) < kp) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const RouteEntry& succ = at(lo % n);
    const RouteEntry& pred = at((lo + n - 1) % n);
    RouteEntry best{self_, self_host, 0.0};
    U128 best_dist = U128::RingDistance(self_, key);
    for (const RouteEntry* e : {&succ, &pred}) {
      const U128 d = U128::RingDistance(e->id, key);
      if (d < best_dist || (d == best_dist && e->id < best.id)) {
        best_dist = d;
        best = *e;
      }
    }
    return best;
  }

  RouteEntry best{self_, self_host, 0.0};
  U128 best_dist = U128::RingDistance(self_, key);
  for (const auto& e : entries_) {
    if (alive && !alive(e)) {
      continue;
    }
    const U128 d = U128::RingDistance(e.id, key);
    if (d < best_dist || (d == best_dist && e.id < best.id)) {
      best_dist = d;
      best = e;
    }
  }
  return best;
}

std::vector<RouteEntry> LeafSet::clockwise() const {
  return std::vector<RouteEntry>(entries_.begin(),
                                 entries_.begin() + static_cast<ptrdiff_t>(cw_count_));
}

std::vector<RouteEntry> LeafSet::counter_clockwise() const {
  return std::vector<RouteEntry>(entries_.begin() + static_cast<ptrdiff_t>(ccw_begin()),
                                 entries_.end());
}

std::vector<RouteEntry> LeafSet::All() const {
  std::vector<RouteEntry> out(entries_.begin(),
                              entries_.begin() + static_cast<ptrdiff_t>(cw_count_));
  for (size_t i = ccw_begin(); i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    bool dup = false;
    for (const auto& o : out) {
      if (o.id == e.id) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<RouteEntry> LeafSet::CwNeighbor() const {
  if (cw_count_ == 0) {
    return std::nullopt;
  }
  return entries_.front();
}

std::optional<RouteEntry> LeafSet::CcwNeighbor() const {
  if (ccw_begin() >= entries_.size()) {
    return std::nullopt;
  }
  return entries_[ccw_begin()];
}

void LeafSet::ForEach(const std::function<void(const RouteEntry&)>& fn) const {
  for (const auto& e : All()) {
    fn(e);
  }
}

}  // namespace totoro
