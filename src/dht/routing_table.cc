#include "src/dht/routing_table.h"

#include "src/common/check.h"

namespace totoro {

RoutingTable::RoutingTable(NodeId self, int bits_per_digit) : self_(self), bits_(bits_per_digit) {
  CHECK_GE(bits_, 1);
  CHECK_LE(bits_, 7);
  CHECK_EQ(128 % bits_ == 0 ? 0 : 128 % bits_, 128 % bits_);  // Digits need not divide 128
}

bool RoutingTable::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  const int row = self_.CommonPrefixDigits(entry.id, bits_);
  if (row >= digits()) {
    return false;  // Identical id.
  }
  const uint32_t col = entry.id.Digit(row, bits_);
  DCHECK(col != self_.Digit(row, bits_));
  auto it = rows_.find(row);
  if (it == rows_.end()) {
    it = rows_.emplace(row, std::vector<std::optional<RouteEntry>>(columns())).first;
  }
  auto& slot = it->second[col];
  if (!slot.has_value()) {
    slot = entry;
    return true;
  }
  if (slot->id == entry.id) {
    // Refresh host/proximity.
    if (slot->host != entry.host || slot->proximity_ms != entry.proximity_ms) {
      slot = entry;
      return true;
    }
    return false;
  }
  // Prefer the physically closer candidate (Pastry locality heuristic).
  if (entry.proximity_ms < slot->proximity_ms) {
    slot = entry;
    return true;
  }
  return false;
}

bool RoutingTable::Remove(NodeId id) {
  const int row = self_.CommonPrefixDigits(id, bits_);
  auto it = rows_.find(row);
  if (it == rows_.end()) {
    return false;
  }
  const uint32_t col = id.Digit(row, bits_);
  auto& slot = it->second[col];
  if (slot.has_value() && slot->id == id) {
    slot.reset();
    return true;
  }
  return false;
}

std::optional<RouteEntry> RoutingTable::Get(int row, uint32_t col) const {
  auto it = rows_.find(row);
  if (it == rows_.end()) {
    return std::nullopt;
  }
  CHECK_LT(col, it->second.size());
  return it->second[col];
}

std::optional<RouteEntry> RoutingTable::NextHop(const NodeId& key) const {
  const int row = self_.CommonPrefixDigits(key, bits_);
  if (row >= digits()) {
    return std::nullopt;  // key == self.
  }
  return Get(row, key.Digit(row, bits_));
}

std::optional<RouteEntry> RoutingTable::CloserFallback(
    const NodeId& key, const std::function<bool(const RouteEntry&)>* alive) const {
  const int self_prefix = self_.CommonPrefixDigits(key, bits_);
  const U128 self_dist = U128::RingDistance(self_, key);
  std::optional<RouteEntry> best;
  U128 best_dist = self_dist;
  for (const auto& [row, cols] : rows_) {
    if (row < self_prefix) {
      continue;  // Shorter shared prefix than we already have.
    }
    for (const auto& slot : cols) {
      if (!slot.has_value()) {
        continue;
      }
      if (alive != nullptr && !(*alive)(*slot)) {
        continue;
      }
      if (slot->id.CommonPrefixDigits(key, bits_) < self_prefix) {
        continue;
      }
      const U128 d = U128::RingDistance(slot->id, key);
      if (d < best_dist) {
        best_dist = d;
        best = *slot;
      }
    }
  }
  return best;
}

size_t RoutingTable::NumEntries() const {
  size_t n = 0;
  for (const auto& [row, cols] : rows_) {
    (void)row;
    for (const auto& slot : cols) {
      if (slot.has_value()) {
        ++n;
      }
    }
  }
  return n;
}

void RoutingTable::ForEach(const std::function<void(const RouteEntry&)>& fn) const {
  for (const auto& [row, cols] : rows_) {
    (void)row;
    for (const auto& slot : cols) {
      if (slot.has_value()) {
        fn(*slot);
      }
    }
  }
}

std::vector<RouteEntry> RoutingTable::Row(int row) const {
  std::vector<RouteEntry> out;
  auto it = rows_.find(row);
  if (it == rows_.end()) {
    return out;
  }
  for (const auto& slot : it->second) {
    if (slot.has_value()) {
      out.push_back(*slot);
    }
  }
  return out;
}

}  // namespace totoro
