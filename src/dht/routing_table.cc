#include "src/dht/routing_table.h"

#include "src/common/check.h"

namespace totoro {

RoutingTable::RoutingTable(NodeId self, int bits_per_digit) : self_(self), bits_(bits_per_digit) {
  CHECK_GE(bits_, 1);
  CHECK_LE(bits_, 7);
  CHECK_EQ(128 % bits_ == 0 ? 0 : 128 % bits_, 128 % bits_);  // Digits need not divide 128
  inline_offset_.fill(-1);
  row_offset_.assign(static_cast<size_t>(digits()), -1);
}

std::optional<RouteEntry>* RoutingTable::MaterializeRow(int row) {
  if (std::optional<RouteEntry>* slots = RowSlots(row); slots != nullptr) {
    return slots;
  }
  const size_t off = arena_.size();
  arena_.resize(off + static_cast<size_t>(columns()));
  row_offset_[static_cast<size_t>(row)] = static_cast<int32_t>(off);
  if (row < kInlineRows) {
    inline_offset_[static_cast<size_t>(row)] = static_cast<int32_t>(off);
  }
  return arena_.data() + off;
}

bool RoutingTable::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  const int row = self_.CommonPrefixDigits(entry.id, bits_);
  if (row >= digits()) {
    return false;  // Identical id.
  }
  const uint32_t col = entry.id.Digit(row, bits_);
  DCHECK(col != self_.Digit(row, bits_));
  auto& slot = MaterializeRow(row)[col];
  if (!slot.has_value()) {
    slot = entry;
    return true;
  }
  if (slot->id == entry.id) {
    // Refresh host/proximity.
    if (slot->host != entry.host || slot->proximity_ms != entry.proximity_ms) {
      slot = entry;
      return true;
    }
    return false;
  }
  // Prefer the physically closer candidate (Pastry locality heuristic).
  if (entry.proximity_ms < slot->proximity_ms) {
    slot = entry;
    return true;
  }
  return false;
}

bool RoutingTable::Remove(NodeId id) {
  const int row = self_.CommonPrefixDigits(id, bits_);
  if (row >= digits()) {
    return false;
  }
  std::optional<RouteEntry>* slots = RowSlots(row);
  if (slots == nullptr) {
    return false;
  }
  auto& slot = slots[id.Digit(row, bits_)];
  if (slot.has_value() && slot->id == id) {
    slot.reset();
    return true;
  }
  return false;
}

std::optional<RouteEntry> RoutingTable::Get(int row, uint32_t col) const {
  CHECK_GE(row, 0);
  CHECK_LT(row, digits());
  CHECK_LT(col, static_cast<uint32_t>(columns()));
  const std::optional<RouteEntry>* slots = RowSlots(row);
  if (slots == nullptr) {
    return std::nullopt;
  }
  return slots[col];
}

std::optional<RouteEntry> RoutingTable::NextHop(const NodeId& key) const {
  const RouteEntry* hop = NextHopPtr(key);
  return hop != nullptr ? std::optional<RouteEntry>(*hop) : std::nullopt;
}

const RouteEntry* RoutingTable::NextHopPtr(const NodeId& key) const {
  const int row = self_.CommonPrefixDigits(key, bits_);
  if (row >= digits()) {
    return nullptr;  // key == self.
  }
  const std::optional<RouteEntry>* slots = RowSlots(row);
  if (slots == nullptr) {
    return nullptr;
  }
  const std::optional<RouteEntry>& slot = slots[key.Digit(row, bits_)];
  return slot.has_value() ? &*slot : nullptr;
}

std::optional<RouteEntry> RoutingTable::CloserFallback(const NodeId& key,
                                                       AliveFn alive) const {
  const int self_prefix = self_.CommonPrefixDigits(key, bits_);
  const U128 self_dist = U128::RingDistance(self_, key);
  std::optional<RouteEntry> best;
  U128 best_dist = self_dist;
  // Rows below self_prefix hold shorter shared prefixes than we already have.
  for (int row = self_prefix; row < digits(); ++row) {
    const std::optional<RouteEntry>* slots = RowSlots(row);
    if (slots == nullptr) {
      continue;
    }
    for (int col = 0; col < columns(); ++col) {
      const auto& slot = slots[col];
      if (!slot.has_value()) {
        continue;
      }
      if (alive && !alive(*slot)) {
        continue;
      }
      if (slot->id.CommonPrefixDigits(key, bits_) < self_prefix) {
        continue;
      }
      const U128 d = U128::RingDistance(slot->id, key);
      if (d < best_dist) {
        best_dist = d;
        best = *slot;
      }
    }
  }
  return best;
}

size_t RoutingTable::NumEntries() const {
  size_t n = 0;
  for (const auto& slot : arena_) {
    if (slot.has_value()) {
      ++n;
    }
  }
  return n;
}

size_t RoutingTable::NumRows() const {
  size_t n = 0;
  for (const int32_t off : row_offset_) {
    if (off >= 0) {
      ++n;
    }
  }
  return n;
}

void RoutingTable::ForEach(const std::function<void(const RouteEntry&)>& fn) const {
  // Row-major order (matching iteration before the arena layout): rows may have been
  // materialized out of order, so walk via the offset table.
  for (int row = 0; row < digits(); ++row) {
    const std::optional<RouteEntry>* slots = RowSlots(row);
    if (slots == nullptr) {
      continue;
    }
    for (int col = 0; col < columns(); ++col) {
      if (slots[col].has_value()) {
        fn(*slots[col]);
      }
    }
  }
}

std::vector<RouteEntry> RoutingTable::Row(int row) const {
  std::vector<RouteEntry> out;
  if (row < 0 || row >= digits()) {
    return out;
  }
  const std::optional<RouteEntry>* slots = RowSlots(row);
  if (slots == nullptr) {
    return out;
  }
  for (int col = 0; col < columns(); ++col) {
    if (slots[col].has_value()) {
      out.push_back(*slots[col]);
    }
  }
  return out;
}

}  // namespace totoro
