// Builder and test harness for a whole Pastry overlay.
//
// Two construction paths:
//  - JoinAll(): every node joins through the protocol (JOIN routed to rendezvous, state
//    transfer, announce). Faithful but O(N log N) messages — used for protocol tests and
//    small/medium experiments.
//  - BuildOracle(): installs the steady-state routing state directly from global
//    knowledge. Bit-for-bit the state the protocol converges to (leaf sets are exact;
//    routing-table slots are filled with the proximity-closest matching candidate),
//    letting 100k-node experiments skip the join phase the paper's testbed also
//    amortized away.
//
// The class also owns churn helpers (fail a node set, heal) and ground-truth queries
// (closest live node to a key) used to validate routing correctness in tests.
#ifndef SRC_DHT_PASTRY_NETWORK_H_
#define SRC_DHT_PASTRY_NETWORK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/dht/pastry_node.h"

namespace totoro {

class PastryNetwork {
 public:
  PastryNetwork(Network* net, PastryConfig config);

  // Creates a node with the given id (or a random one) and registers it with the
  // network. Returns its index in nodes().
  size_t AddNode(NodeId id);
  size_t AddRandomNode(Rng& rng);

  // Pre-sizes node storage, lookup maps, and the underlying network's host table for a
  // topology whose final size is known (benches, 100k-node scale runs).
  void Reserve(size_t num_nodes);

  PastryNode& node(size_t i) { return *nodes_[i]; }
  const PastryNode& node(size_t i) const { return *nodes_[i]; }
  size_t size() const { return nodes_.size(); }
  const std::vector<std::unique_ptr<PastryNode>>& nodes() const { return nodes_; }

  PastryNode* FindByHost(HostId host);
  PastryNode* FindById(const NodeId& id);

  // Installs converged routing state into every node from global knowledge.
  void BuildOracle(Rng& rng);

  // Joins all nodes through the protocol, one at a time (first node bootstraps alone).
  // Runs the simulator to quiescence between joins.
  void JoinAll();

  // Marks `count` distinct random live nodes as failed (network down). Returns them.
  std::vector<PastryNode*> FailRandomNodes(size_t count, Rng& rng);
  void Heal(PastryNode& node);

  // Ground truth: the live node numerically closest to `key`.
  PastryNode* ClosestLiveNode(const NodeId& key);

  Network* network() { return net_; }
  const PastryConfig& config() const { return config_; }

 private:
  Network* net_;
  PastryConfig config_;
  std::vector<std::unique_ptr<PastryNode>> nodes_;
  std::unordered_map<HostId, PastryNode*> by_host_;
  std::unordered_map<U128, PastryNode*, U128Hash> by_id_;
};

}  // namespace totoro

#endif  // SRC_DHT_PASTRY_NETWORK_H_
