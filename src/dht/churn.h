// Continuous-churn driver: nodes leave and new nodes join through the live protocol.
//
// The paper's adaptivity goal includes "high churn (nodes join and leave)". This driver
// turns that into a repeatable process: at a configurable rate it kills a random live
// node and (optionally) joins a brand-new node through an existing member, exercising
// keep-alive failure detection, leaf-set repair and the join protocol concurrently with
// whatever workload is running.
#ifndef SRC_DHT_CHURN_H_
#define SRC_DHT_CHURN_H_

#include "src/dht/pastry_network.h"

namespace totoro {

struct ChurnConfig {
  double event_interval_ms = 200.0;  // Mean time between churn events (exponential).
  double leave_fraction = 0.5;       // P(event is a leave); otherwise a join.
  size_t min_live_nodes = 8;         // Leaves are suppressed below this population.
  bool enable_joins = true;
};

class ChurnDriver {
 public:
  ChurnDriver(PastryNetwork* pastry, ChurnConfig config, uint64_t seed);

  // Starts the churn process; it reschedules itself until Stop().
  void Start();
  // Stops the process and cancels the pending tick. Without the cancel, an
  // already-scheduled Tick would still fire after Stop() — and dereference a destroyed
  // driver if the owner tears it down before the event queue drains.
  void Stop() {
    running_ = false;
    pending_.Cancel();
  }

  size_t leaves() const { return leaves_; }
  size_t joins() const { return joins_; }
  size_t LiveNodes() const;

 private:
  void Tick();

  PastryNetwork* pastry_;
  ChurnConfig config_;
  Rng rng_;
  bool running_ = false;
  size_t leaves_ = 0;
  size_t joins_ = 0;
  EventHandle pending_;
};

}  // namespace totoro

#endif  // SRC_DHT_CHURN_H_
