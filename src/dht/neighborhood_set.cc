#include "src/dht/neighborhood_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace totoro {

NeighborhoodSet::NeighborhoodSet(NodeId self, int capacity)
    : self_(self), capacity_(static_cast<size_t>(capacity)) {
  CHECK_GT(capacity, 0);
}

bool NeighborhoodSet::Consider(const RouteEntry& entry) {
  if (entry.id == self_) {
    return false;
  }
  for (auto& e : entries_) {
    if (e.id == entry.id) {
      if (e.proximity_ms != entry.proximity_ms || e.host != entry.host) {
        e = entry;
        std::sort(entries_.begin(), entries_.end(),
                  [](const RouteEntry& a, const RouteEntry& b) {
                    return a.proximity_ms < b.proximity_ms;
                  });
        return true;
      }
      return false;
    }
  }
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry,
                             [](const RouteEntry& a, const RouteEntry& b) {
                               return a.proximity_ms < b.proximity_ms;
                             });
  if (entries_.size() >= capacity_ && it == entries_.end()) {
    return false;
  }
  entries_.insert(it, entry);
  if (entries_.size() > capacity_) {
    entries_.pop_back();
  }
  return true;
}

bool NeighborhoodSet::Remove(NodeId id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace totoro
