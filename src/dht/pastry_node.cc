#include "src/dht/pastry_node.h"

#include <string>

#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace totoro {
namespace {

// State-byte accounting granularity: one table entry's in-memory footprint.
constexpr int64_t kEntryStateBytes = 48;

Histogram& RouteHopsHistogram() {
  static thread_local Histogram* h =
      &GlobalMetrics().GetHistogram("dht.route.hops", Histogram::HopCountBounds());
  return *h;
}

}  // namespace

PastryNode::PastryNode(Network* net, NodeId id, PastryConfig config)
    : net_(net),
      id_(id),
      host_(kInvalidHost),
      config_(config),
      routing_table_(id, config.bits_per_digit),
      leaf_set_(id, config.leaf_set_size),
      neighborhood_set_(id, config.neighborhood_size) {
  host_ = net_->AddHost(this);
}

namespace {

// Linear scan of a flat handler table (see the member comment in pastry_node.h).
template <typename Fn>
Fn* FindHandler(std::vector<std::pair<int, Fn>>& table, int type) {
  for (auto& [t, fn] : table) {
    if (t == type) {
      return &fn;
    }
  }
  return nullptr;
}

template <typename Fn>
void SetHandler(std::vector<std::pair<int, Fn>>& table, int type, Fn fn) {
  if (Fn* existing = FindHandler(table, type); existing != nullptr) {
    *existing = std::move(fn);
    return;
  }
  table.emplace_back(type, std::move(fn));
}

}  // namespace

void PastryNode::SetDeliverHandler(int app_type, DeliverFn fn) {
  SetHandler(deliver_handlers_, app_type, std::move(fn));
}

void PastryNode::SetForwardHandler(int app_type, ForwardFn fn) {
  SetHandler(forward_handlers_, app_type, std::move(fn));
}

RouteEntry PastryNode::SelfEntry() const { return RouteEntry{id_, host_, 0.0}; }

double PastryNode::ProximityTo(HostId other) const { return net_->LatencyMs(host_, other); }

void PastryNode::ChargeDhtWork(double units) {
  net_->metrics().ChargeWork(host_, WorkKind::kDhtTask, units);
}

RouteEntry PastryNode::ComputeNextHop(const NodeId& key) const {
  // Pastry routing (Rowstron & Druschel 2001, Fig. 3). Known-dead hosts are skipped:
  // this models the transport layer refusing the connection and Pastry falling back to
  // an alternate entry, which is FreePastry's behaviour under churn (lazy table repair
  // happens separately via ReportDead / keep-alives).
  const AliveFn alive{
      [](const void* ctx, const RouteEntry& e) {
        return static_cast<const Network*>(ctx)->IsUp(e.host);
      },
      net_};
  // (ForwardOrDeliver already issued prefetches for the leaf-set buffer and the
  // routing-table slot, so both lookups below usually hit warm lines.)
  // 1. Leaf set covers the key: deliver to the numerically closest member (maybe self).
  if (leaf_set_.Covers(key)) {
    // Fast path: pick without liveness filtering (all-up is the overwhelmingly common
    // case) and only rescan with the predicate when the winner is actually down —
    // one IsUp check instead of one per leaf-set member.
    const RouteEntry hop = leaf_set_.Closest(key, host_);
    if (hop.host == host_ || net_->IsUp(hop.host)) {
      return hop;
    }
    return leaf_set_.Closest(key, host_, alive);
  }
  // 2. Routing table: entry sharing a strictly longer prefix with the key.
  if (const RouteEntry* hop = routing_table_.NextHopPtr(key);
      hop != nullptr && net_->IsUp(hop->host)) {
    return *hop;
  }
  // 3. Rare fallback: any known node closer to the key with at least as long a prefix.
  if (auto hop = routing_table_.CloserFallback(key, alive); hop.has_value()) {
    return *hop;
  }
  return leaf_set_.Closest(key, host_, alive);
}

bool PastryNode::IsClosestKnownToKey(const NodeId& key) const {
  const AliveFn alive{
      [](const void* ctx, const RouteEntry& e) {
        return static_cast<const Network*>(ctx)->IsUp(e.host);
      },
      net_};
  return leaf_set_.Closest(key, host_, alive).host == host_;
}

void PastryNode::Route(const NodeId& key, Message inner) {
  TraceSpan span = GlobalTracer().Begin("dht.route", "dht", host_);
  if (span.active()) {
    span.AddArg("key", key.ToHex());
  }
  RouteEnvelope env;
  env.key = key;
  env.inner = std::move(inner);
  env.origin = host_;
  ForwardOrDeliver(std::make_shared<const RouteEnvelope>(std::move(env)), /*hops=*/0);
}

void PastryNode::ForwardOrDeliver(std::shared_ptr<const RouteEnvelope> env, int hops) {
  // Issue the next-hop lookup's cold reads (leaf-set buffer, routing-table slot) before
  // the accounting and filter work so the misses overlap with it.
  leaf_set_.Prefetch();
  routing_table_.PrefetchNextHop(env->key);
  ChargeDhtWork(1.0);
  if (egress_filter_ && !egress_filter_(env->key)) {
    TLOG_DEBUG("host %u: egress filter blocked packet for key %s", host_,
               env->key.ToHex().c_str());
    net_->metrics().RecordDrop(host_, env->inner.traffic);
    return;
  }
  const RouteEntry next = ComputeNextHop(env->key);
  // Give the layer above a chance to consume the message at this hop (Scribe-style
  // rendezvous interception). The handler takes a mutable inner message, so this path
  // works on a private copy of the envelope and re-wraps it; types without a forward
  // handler keep sharing the original allocation.
  if (ForwardFn* fwd = FindHandler(forward_handlers_, env->inner.type); fwd != nullptr) {
    RouteEnvelope mut = *env;
    if (!(*fwd)(mut.key, mut.inner, next.host)) {
      return;
    }
    env = std::make_shared<const RouteEnvelope>(std::move(mut));
  }
  if (env->inner.type == kDhtJoinRequest) {
    HandleJoinRequestAt(*env, /*is_destination=*/next.host == host_);
  }
  if (next.host == host_) {
    RouteHopsHistogram().Observe(static_cast<double>(hops));
    if (DeliverFn* del = FindHandler(deliver_handlers_, env->inner.type); del != nullptr) {
      (*del)(env->key, env->inner, hops);
    }
    return;
  }
  Message wrapper;
  wrapper.type = kDhtRouteEnvelope;
  wrapper.src = host_;
  wrapper.dst = next.host;
  wrapper.size_bytes = env->inner.size_bytes + 32;  // Envelope header overhead.
  wrapper.traffic = env->inner.traffic;
  wrapper.transport = env->inner.transport;
  wrapper.hops = static_cast<uint8_t>(hops + 1);
  wrapper.payload = std::move(env);
  net_->Send(std::move(wrapper));
}

void PastryNode::SendDirect(HostId dst, Message msg) {
  msg.src = host_;
  msg.dst = dst;
  net_->Send(std::move(msg));
}

void PastryNode::Join(HostId bootstrap) {
  JoinRequest req{id_, host_};
  Message inner;
  inner.type = kDhtJoinRequest;
  inner.size_bytes = 64;
  inner.traffic = TrafficClass::kDhtMaintenance;
  inner.transport = Transport::kTcp;
  inner.SetPayload(req);

  RouteEnvelope env;
  env.key = id_;
  env.inner = std::move(inner);
  env.origin = host_;

  Message wrapper;
  wrapper.type = kDhtRouteEnvelope;
  wrapper.src = host_;
  wrapper.dst = bootstrap;
  wrapper.size_bytes = 96;
  wrapper.traffic = TrafficClass::kDhtMaintenance;
  wrapper.transport = Transport::kTcp;
  wrapper.SetPayload(std::move(env));
  net_->Send(std::move(wrapper));
}

void PastryNode::HandleJoinRequestAt(const RouteEnvelope& env, bool is_destination) {
  const auto& req = env.inner.As<JoinRequest>();
  if (req.joiner_host == host_) {
    return;
  }
  // Ship the routing row matching the joiner's prefix depth at this node, plus (from the
  // rendezvous node) the leaf set; the joiner assembles its state from these fragments.
  JoinState state;
  state.sender = SelfEntry();
  state.sender.proximity_ms = 0.0;
  const int row = id_.CommonPrefixDigits(req.joiner_id, config_.bits_per_digit);
  for (int r = 0; r <= row && r < routing_table_.digits(); ++r) {
    for (const auto& e : routing_table_.Row(r)) {
      state.routing_entries.push_back(e);
    }
  }
  if (is_destination) {
    state.from_rendezvous = true;
    for (const auto& e : leaf_set_.All()) {
      state.leaf_entries.push_back(e);
    }
  }
  Message reply;
  reply.type = kDhtJoinState;
  reply.size_bytes = 32 + kRouteEntryWireBytes * (state.routing_entries.size() +
                                                  state.leaf_entries.size() + 1);
  reply.traffic = TrafficClass::kDhtMaintenance;
  reply.transport = Transport::kTcp;
  reply.SetPayload(std::move(state));
  SendDirect(req.joiner_host, std::move(reply));
  // The path node also learns about the joiner.
  Learn(RouteEntry{req.joiner_id, req.joiner_host, ProximityTo(req.joiner_host)});
}

void PastryNode::HandleJoinState(const Message& msg) {
  const auto& state = msg.As<JoinState>();
  Learn(RouteEntry{state.sender.id, state.sender.host, ProximityTo(state.sender.host)});
  for (const auto& e : state.routing_entries) {
    Learn(RouteEntry{e.id, e.host, ProximityTo(e.host)});
  }
  for (const auto& e : state.leaf_entries) {
    Learn(RouteEntry{e.id, e.host, ProximityTo(e.host)});
  }
  if (state.from_rendezvous) {
    // Final step of the join: announce ourselves to everyone we now know so they fold us
    // into their tables.
    Announce ann{SelfEntry()};
    auto announce_to = [&](const RouteEntry& e) {
      Message m;
      m.type = kDhtAnnounce;
      m.size_bytes = 32 + kRouteEntryWireBytes;
      m.traffic = TrafficClass::kDhtMaintenance;
      m.transport = Transport::kUdp;
      m.SetPayload(ann);
      SendDirect(e.host, std::move(m));
    };
    routing_table_.ForEach(announce_to);
    leaf_set_.ForEach(announce_to);
  }
}

void PastryNode::HandleAnnounce(const Message& msg) {
  const auto& ann = msg.As<Announce>();
  Learn(RouteEntry{ann.node.id, ann.node.host, ProximityTo(ann.node.host)});
}

void PastryNode::Learn(const RouteEntry& entry) {
  if (entry.id == id_) {
    return;
  }
  ChargeDhtWork(0.1);
  int64_t delta = 0;
  if (routing_table_.Consider(entry)) {
    delta += kEntryStateBytes;
  }
  if (leaf_set_.Consider(entry)) {
    delta += kEntryStateBytes;
  }
  if (neighborhood_set_.Consider(entry)) {
    delta += kEntryStateBytes;
  }
  if (delta != 0) {
    net_->metrics().AdjustStateBytes(host_, delta);
  }
}

void PastryNode::AddSuspect(const RouteEntry& entry) {
  const SimTime expires = net_->sim()->Now() + config_.suspect_ttl_ms;
  for (Suspect& s : suspects_) {
    if (s.entry.host == entry.host) {
      s.expires_ms = expires;
      return;
    }
  }
  // Bounded list: drop the entry closest to expiry when full.
  constexpr size_t kMaxSuspects = 32;
  if (suspects_.size() >= kMaxSuspects) {
    auto oldest = suspects_.begin();
    for (auto it = suspects_.begin(); it != suspects_.end(); ++it) {
      if (it->expires_ms < oldest->expires_ms) {
        oldest = it;
      }
    }
    suspects_.erase(oldest);
  }
  suspects_.push_back(Suspect{entry, expires});
}

void PastryNode::ProbeOneSuspect() {
  const SimTime now = net_->sim()->Now();
  while (!suspects_.empty()) {
    if (suspect_cursor_ >= suspects_.size()) {
      suspect_cursor_ = 0;
    }
    if (suspects_[suspect_cursor_].expires_ms <= now) {
      suspects_.erase(suspects_.begin() + static_cast<ptrdiff_t>(suspect_cursor_));
      continue;
    }
    // A plain keep-alive probe: if the suspect is back (partition healed, host
    // rejoined), its ack re-learns it here and the leaf-set gossip spreads the news.
    Message m;
    m.type = kDhtHeartbeat;
    m.size_bytes = 16;
    m.traffic = TrafficClass::kDhtMaintenance;
    m.transport = Transport::kUdp;
    m.SetPayload(SelfEntry());
    SendDirect(suspects_[suspect_cursor_].entry.host, std::move(m));
    ++suspect_cursor_;
    return;
  }
}

void PastryNode::ReportDead(const NodeId& id, HostId host) {
  ChargeDhtWork(0.5);
  if (config_.enable_suspect_probe && config_.enable_keepalive && host != host_) {
    AddSuspect(RouteEntry{id, host, ProximityTo(host)});
  }
  int64_t delta = 0;
  if (routing_table_.Remove(id)) {
    delta -= kEntryStateBytes;
  }
  if (leaf_set_.Remove(id)) {
    delta -= kEntryStateBytes;
    // Leaf-set repair: ask the current farthest members for their leaf sets so the hole
    // is refilled from the survivors (Pastry's standard repair).
    LeafRepair repair;
    for (const auto& e : leaf_set_.All()) {
      repair.leaf_entries.push_back(e);
    }
    auto ask = [&](const std::optional<RouteEntry>& target) {
      if (!target.has_value()) {
        return;
      }
      Message m;
      m.type = kDhtLeafRepairRequest;
      m.size_bytes = 32;
      m.traffic = TrafficClass::kDhtMaintenance;
      m.transport = Transport::kUdp;
      SendDirect(target->host, std::move(m));
    };
    ask(leaf_set_.CwNeighbor());
    ask(leaf_set_.CcwNeighbor());
  }
  if (neighborhood_set_.Remove(id)) {
    delta -= kEntryStateBytes;
  }
  if (delta != 0) {
    net_->metrics().AdjustStateBytes(host_, delta);
  }
  last_ack_.erase(host);
  if (failure_fn_) {
    failure_fn_(id, host);
  }
}

void PastryNode::StartKeepAlive() {
  if (!config_.enable_keepalive || keepalive_running_) {
    return;
  }
  keepalive_running_ = true;
  // Establish this node as the scheduling identity so the timer (and every reschedule
  // from inside the tick) lands on this host's shard under the sharded engine. A no-op
  // identity on the single-queue engine.
  net_->sim()->RunAsHost(host_, [this] {
    net_->sim()->Schedule(config_.keepalive_interval_ms, [this]() { KeepAliveTick(); });
  });
}

void PastryNode::KeepAliveTick() {
  if (!alive()) {
    keepalive_running_ = false;
    return;
  }
  for (const auto& e : leaf_set_.All()) {
    Message m;
    m.type = kDhtHeartbeat;
    m.size_bytes = 16;
    m.traffic = TrafficClass::kDhtMaintenance;
    m.transport = Transport::kUdp;
    m.SetPayload(SelfEntry());
    SendDirect(e.host, std::move(m));
    if (last_ack_.find(e.host) == last_ack_.end()) {
      last_ack_[e.host] = net_->sim()->Now();
    }
  }
  // Every few probes, gossip the full leaf set to the immediate ring neighbors over the
  // persistent TCP links — Pastry's periodic leaf-set exchange, which both repairs
  // drifted state and keeps connections warm.
  if (++keepalive_ticks_ % 4 == 0) {
    LeafRepair gossip;
    for (const auto& e : leaf_set_.All()) {
      gossip.leaf_entries.push_back(e);
    }
    gossip.leaf_entries.push_back(SelfEntry());
    for (const auto& neighbor : {leaf_set_.CwNeighbor(), leaf_set_.CcwNeighbor()}) {
      if (!neighbor.has_value()) {
        continue;
      }
      Message m;
      m.type = kDhtLeafRepairReply;
      m.size_bytes = 32 + kRouteEntryWireBytes * gossip.leaf_entries.size();
      m.traffic = TrafficClass::kDhtMaintenance;
      m.transport = Transport::kTcp;
      m.SetPayload(gossip);
      SendDirect(neighbor->host, std::move(m));
    }
  }
  if (config_.enable_suspect_probe) {
    ProbeOneSuspect();
  }
  CheckKeepAliveDeadlines();
  net_->sim()->Schedule(config_.keepalive_interval_ms, [this]() { KeepAliveTick(); });
}

void PastryNode::CheckKeepAliveDeadlines() {
  const SimTime now = net_->sim()->Now();
  std::vector<std::pair<NodeId, HostId>> dead;
  for (const auto& e : leaf_set_.All()) {
    auto it = last_ack_.find(e.host);
    if (it != last_ack_.end() && now - it->second > config_.keepalive_timeout_ms) {
      dead.emplace_back(e.id, e.host);
    }
  }
  for (const auto& [id, host] : dead) {
    TLOG_DEBUG("node %s detected failure of host %u", id_.ToHex().c_str(), host);
    ReportDead(id, host);
  }
}

void PastryNode::HandleHeartbeat(const Message& msg) {
  // The probe carries the sender's entry: fold it back in, so a suspect probe from a
  // node this side declared dead (partition, false positive) restores ring knowledge.
  if (msg.payload != nullptr) {
    const auto& sender = msg.As<RouteEntry>();
    Learn(RouteEntry{sender.id, sender.host, ProximityTo(sender.host)});
  }
  Message ack;
  ack.type = kDhtHeartbeatAck;
  ack.size_bytes = 16;
  ack.traffic = TrafficClass::kDhtMaintenance;
  ack.transport = Transport::kUdp;
  ack.SetPayload(SelfEntry());
  SendDirect(msg.src, std::move(ack));
}

void PastryNode::HandleHeartbeatAck(const Message& msg) {
  last_ack_[msg.src] = net_->sim()->Now();
  if (msg.payload != nullptr) {
    const auto& sender = msg.As<RouteEntry>();
    Learn(RouteEntry{sender.id, sender.host, ProximityTo(sender.host)});
  }
  // An answering suspect is alive again; stop probing it.
  for (auto it = suspects_.begin(); it != suspects_.end(); ++it) {
    if (it->entry.host == msg.src) {
      suspects_.erase(it);
      break;
    }
  }
}

void PastryNode::HandleLeafRepair(const Message& msg) {
  if (msg.type == kDhtLeafRepairRequest) {
    LeafRepair repair;
    for (const auto& e : leaf_set_.All()) {
      repair.leaf_entries.push_back(e);
    }
    repair.leaf_entries.push_back(SelfEntry());
    Message reply;
    reply.type = kDhtLeafRepairReply;
    reply.size_bytes = 32 + kRouteEntryWireBytes * repair.leaf_entries.size();
    reply.traffic = TrafficClass::kDhtMaintenance;
    reply.transport = Transport::kUdp;
    reply.SetPayload(std::move(repair));
    SendDirect(msg.src, std::move(reply));
    return;
  }
  const auto& repair = msg.As<LeafRepair>();
  for (const auto& e : repair.leaf_entries) {
    Learn(RouteEntry{e.id, e.host, ProximityTo(e.host)});
  }
}

void PastryNode::HandleEnvelope(const Message& msg) {
  // Adopt the shared envelope as-is; the hop count travels in the wrapper header.
  auto env = std::static_pointer_cast<const RouteEnvelope>(msg.payload);
  // The hop span parents to the incoming transmission (msg.trace) and scopes any
  // forwarded wrapper, chaining the whole route together.
  TraceSpan span = GlobalTracer().BeginWithParent("dht.route.hop", "dht", host_, msg.trace);
  if (span.active()) {
    span.AddArg("hops", std::to_string(msg.hops));
  }
  ForwardOrDeliver(std::move(env), msg.hops);
}

void PastryNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kDhtRouteEnvelope:
      HandleEnvelope(msg);
      return;
    case kDhtJoinState:
      HandleJoinState(msg);
      return;
    case kDhtAnnounce:
      HandleAnnounce(msg);
      return;
    case kDhtHeartbeat:
      HandleHeartbeat(msg);
      return;
    case kDhtHeartbeatAck:
      HandleHeartbeatAck(msg);
      return;
    case kDhtLeafRepairRequest:
    case kDhtLeafRepairReply:
      HandleLeafRepair(msg);
      return;
    default: {
      // Direct (non-routed) application message: dispatch to the deliver handler with
      // the local id as the key and zero overlay hops.
      if (DeliverFn* del = FindHandler(deliver_handlers_, msg.type); del != nullptr) {
        (*del)(id_, msg, 0);
        return;
      }
      TLOG_WARN("host %u dropping message with unknown type %d", host_, msg.type);
    }
  }
}

}  // namespace totoro
