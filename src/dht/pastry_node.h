// A Pastry DHT node: routing state + join protocol + keep-alive failure handling.
//
// This is the Layer-1 building block of Totoro (§4.2). Each node owns a routing table,
// leaf set and neighborhood set, and offers the classic Pastry API to upper layers:
//
//   Route(key, msg)       route msg to the live node numerically closest to key
//   SetDeliverHandler     invoked at the destination node
//   SetForwardHandler     invoked at every intermediate node (may consume the message)
//
// The pub/sub forest (Layer 2) is built entirely on these three calls. Failure handling
// follows §4.5: leaf-set members exchange keep-alives; a missed ack removes the node
// everywhere and triggers leaf-set repair via the surviving members, and upper layers
// are notified through the failure handler so they can re-JOIN their trees.
#ifndef SRC_DHT_PASTRY_NODE_H_
#define SRC_DHT_PASTRY_NODE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/dht/leaf_set.h"
#include "src/dht/messages.h"
#include "src/dht/neighborhood_set.h"
#include "src/dht/node_id.h"
#include "src/dht/routing_table.h"
#include "src/sim/network.h"

namespace totoro {

struct PastryConfig {
  int bits_per_digit = 4;      // b; routing table has 2^b - 1 usable columns per row.
  int leaf_set_size = 24;      // L (paper's EC2 config).
  int neighborhood_size = 16;  // M.
  bool enable_keepalive = false;
  double keepalive_interval_ms = 500.0;
  double keepalive_timeout_ms = 1600.0;
  // Suspect probing (requires keep-alives): a node removed by ReportDead is remembered
  // as a suspect for `suspect_ttl_ms` and probed round-robin, one per keep-alive tick.
  // A suspect that answers is re-learned. This is what re-merges the ring after a
  // network partition heals — without it both sides have purged each other and no
  // protocol path ever re-introduces them.
  bool enable_suspect_probe = true;
  double suspect_ttl_ms = 8000.0;
};

class PastryNode : public Host {
 public:
  // Invoked at the destination of a routed message.
  using DeliverFn = std::function<void(const NodeId& key, const Message& inner, int hops)>;
  // Invoked at every node a routed message passes through (including origin), before
  // forwarding. Return false to consume the message (stop routing). `next_hop` is the
  // host the envelope would be forwarded to (or the local host if this node delivers).
  // The handler may rewrite `inner` (Scribe rewrites the JOIN child pointer per hop).
  using ForwardFn = std::function<bool(const NodeId& key, Message& inner, HostId next_hop)>;
  // Invoked when a node is detected dead (keep-alive timeout or explicit report).
  using FailureFn = std::function<void(const NodeId& id, HostId host)>;

  PastryNode(Network* net, NodeId id, PastryConfig config);

  NodeId id() const { return id_; }
  HostId host() const { return host_; }
  bool alive() const { return net_->IsUp(host_); }
  Network* net() { return net_; }

  RoutingTable& routing_table() { return routing_table_; }
  const RoutingTable& routing_table() const { return routing_table_; }
  LeafSet& leaf_set() { return leaf_set_; }
  const LeafSet& leaf_set() const { return leaf_set_; }
  NeighborhoodSet& neighborhood_set() { return neighborhood_set_; }
  const PastryConfig& config() const { return config_; }

  // Registers a deliver/forward handler for inner messages of type `app_type`.
  void SetDeliverHandler(int app_type, DeliverFn fn);
  void SetForwardHandler(int app_type, ForwardFn fn);
  void SetFailureHandler(FailureFn fn) { failure_fn_ = std::move(fn); }

  // Administrator's packet-wise boundary control (§4.2): before any envelope is
  // forwarded or delivered, the filter inspects its key; returning false drops the
  // packet at this node. Used with rings::IsolateZoneBoundaryPolicy to keep
  // zone-restricted applications' control flows inside their edge site.
  using EgressFilterFn = std::function<bool(const NodeId& key)>;
  void SetEgressFilter(EgressFilterFn fn) { egress_filter_ = std::move(fn); }

  // Routes `inner` toward the node whose id is numerically closest to `key`.
  void Route(const NodeId& key, Message inner);

  // Sends a message directly (one hop, no overlay routing).
  void SendDirect(HostId dst, Message msg);

  // Protocol join through `bootstrap` (must be a live overlay member's host).
  void Join(HostId bootstrap);

  // Adds a node to local state (oracle bootstrap or gossip).
  void Learn(const RouteEntry& entry);

  // Removes a dead node from all local state and notifies the failure handler.
  void ReportDead(const NodeId& id, HostId host);

  // Starts periodic keep-alive of leaf-set neighbors (requires config.enable_keepalive).
  void StartKeepAlive();

  // Host:
  void HandleMessage(const Message& msg) override;

  // Exposed for tests: the pure next-hop decision. Returns {self host, self id} when the
  // local node is the destination.
  RouteEntry ComputeNextHop(const NodeId& key) const;

  // True when no live leaf-set member is numerically closer to `key` than this node.
  // This is the ownership question ("am I still the rendezvous?"), distinct from the
  // routing question ComputeNextHop answers: mid-repair a leaf set can stop covering
  // the key, which makes routing defer to a longer-prefix node even though self is
  // still the closest id on the ring.
  bool IsClosestKnownToKey(const NodeId& key) const;

 private:
  void HandleEnvelope(const Message& msg);
  void ForwardOrDeliver(std::shared_ptr<const RouteEnvelope> env, int hops);
  void HandleJoinRequestAt(const RouteEnvelope& env, bool is_destination);
  void HandleJoinState(const Message& msg);
  void HandleAnnounce(const Message& msg);
  void HandleHeartbeat(const Message& msg);
  void HandleHeartbeatAck(const Message& msg);
  void HandleLeafRepair(const Message& msg);
  void KeepAliveTick();
  void CheckKeepAliveDeadlines();
  void AddSuspect(const RouteEntry& entry);
  void ProbeOneSuspect();
  void ChargeDhtWork(double units);
  RouteEntry SelfEntry() const;
  double ProximityTo(HostId other) const;

  Network* net_;
  NodeId id_;
  HostId host_;
  PastryConfig config_;
  RoutingTable routing_table_;
  LeafSet leaf_set_;
  NeighborhoodSet neighborhood_set_;
  // Handler tables are flat vectors scanned linearly: a node registers a handful of
  // app types at most, and the per-hop lookup in ForwardOrDeliver beats a tree or hash
  // walk at that size.
  std::vector<std::pair<int, DeliverFn>> deliver_handlers_;
  std::vector<std::pair<int, ForwardFn>> forward_handlers_;
  FailureFn failure_fn_;
  EgressFilterFn egress_filter_;
  // Keep-alive bookkeeping: host -> last ack virtual time.
  std::unordered_map<HostId, SimTime> last_ack_;
  bool keepalive_running_ = false;
  uint64_t keepalive_ticks_ = 0;
  // Recently removed nodes still worth probing (ring re-merge after partition heal).
  struct Suspect {
    RouteEntry entry;
    SimTime expires_ms = 0.0;
  };
  std::vector<Suspect> suspects_;
  size_t suspect_cursor_ = 0;
};

}  // namespace totoro

#endif  // SRC_DHT_PASTRY_NODE_H_
