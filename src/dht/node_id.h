// DHT identifier aliases and helpers.
//
// Pastry node and key identifiers are points in the circular 2^128 space. Digit-level
// operations (base 2^b) live on U128 itself; this header adds id-generation helpers.
#ifndef SRC_DHT_NODE_ID_H_
#define SRC_DHT_NODE_ID_H_

#include <string_view>

#include "src/common/rng.h"
#include "src/common/sha1.h"
#include "src/common/u128.h"

namespace totoro {

using NodeId = U128;

// Uniformly random node id.
inline NodeId RandomNodeId(Rng& rng) { return NodeId(rng.Next(), rng.Next()); }

// Application id per the paper's §4.3: SHA-1 of the application's textual name, the
// creator's public key, and a salt, truncated to the 128-bit ring.
inline NodeId MakeAppId(std::string_view app_name, std::string_view creator_key,
                        std::string_view salt) {
  std::string material;
  material.reserve(app_name.size() + creator_key.size() + salt.size() + 2);
  material.append(app_name);
  material.push_back('|');
  material.append(creator_key);
  material.push_back('|');
  material.append(salt);
  return Sha1To128(material);
}

}  // namespace totoro

#endif  // SRC_DHT_NODE_ID_H_
