#include "src/dht/pastry_network.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

PastryNetwork::PastryNetwork(Network* net, PastryConfig config) : net_(net), config_(config) {}

void PastryNetwork::Reserve(size_t num_nodes) {
  nodes_.reserve(num_nodes);
  by_host_.reserve(num_nodes);
  by_id_.reserve(num_nodes);
  net_->ReserveHosts(num_nodes);
}

size_t PastryNetwork::AddNode(NodeId id) {
  CHECK(by_id_.find(id) == by_id_.end());
  auto node = std::make_unique<PastryNode>(net_, id, config_);
  by_host_[node->host()] = node.get();
  by_id_[id] = node.get();
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

size_t PastryNetwork::AddRandomNode(Rng& rng) {
  NodeId id = RandomNodeId(rng);
  while (by_id_.find(id) != by_id_.end()) {
    id = RandomNodeId(rng);
  }
  return AddNode(id);
}

PastryNode* PastryNetwork::FindByHost(HostId host) {
  auto it = by_host_.find(host);
  return it == by_host_.end() ? nullptr : it->second;
}

PastryNode* PastryNetwork::FindById(const NodeId& id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

void PastryNetwork::BuildOracle(Rng& rng) {
  const size_t n = nodes_.size();
  CHECK_GT(n, 0u);
  // Sorted view of all ids for interval queries.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return nodes_[a]->id() < nodes_[b]->id(); });
  std::vector<NodeId> sorted_ids(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_ids[i] = nodes_[order[i]]->id();
  }

  const int b = config_.bits_per_digit;
  const int digits = 128 / b;
  // Rows beyond log_{2^b}(N)+2 have empty candidate intervals w.h.p.; skip them.
  const int max_rows =
      std::min(digits, static_cast<int>(std::ceil(std::log2(static_cast<double>(n)) / b)) + 2);
  const size_t half_leaf = static_cast<size_t>(config_.leaf_set_size) / 2;

  for (size_t pos = 0; pos < n; ++pos) {
    PastryNode& node = *nodes_[order[pos]];
    // Leaf set: exact ring neighbors from the sorted order.
    for (size_t k = 1; k <= half_leaf && k < n; ++k) {
      const size_t cw = (pos + k) % n;
      const size_t ccw = (pos + n - k) % n;
      for (size_t neighbor_pos : {cw, ccw}) {
        PastryNode& other = *nodes_[order[neighbor_pos]];
        node.Learn(RouteEntry{other.id(), other.host(),
                              net_->LatencyMs(node.host(), other.host())});
      }
    }
    // Routing table: for each (row, col), pick the proximity-closest of a few sampled
    // candidates in the matching id interval.
    const NodeId self = node.id();
    for (int r = 0; r < max_rows; ++r) {
      const int shift = 128 - (r + 1) * b;
      const U128 prefix = r == 0 ? U128(0, 0) : (self >> (128 - r * b)) << (128 - r * b);
      const uint32_t self_digit = self.Digit(r, b);
      for (uint32_t c = 0; c < (1u << b); ++c) {
        if (c == self_digit) {
          continue;
        }
        const U128 lo = prefix | (U128(0, c) << shift);
        const U128 hi = shift == 0 ? lo : lo | ((U128(0, 1) << shift) - U128(0, 1));
        auto first = std::lower_bound(sorted_ids.begin(), sorted_ids.end(), lo);
        if (first == sorted_ids.end() || *first > hi) {
          continue;
        }
        auto last = std::upper_bound(first, sorted_ids.end(), hi);
        const size_t count = static_cast<size_t>(last - first);
        // Sample up to 4 candidates; keep the one closest in network proximity.
        PastryNode* best = nullptr;
        double best_prox = 0.0;
        for (int s = 0; s < 4; ++s) {
          const size_t idx = static_cast<size_t>(first - sorted_ids.begin()) +
                             (count == 1 ? 0 : rng.NextBelow(count));
          PastryNode& cand = *nodes_[order[idx]];
          const double prox = net_->LatencyMs(node.host(), cand.host());
          if (best == nullptr || prox < best_prox) {
            best = &cand;
            best_prox = prox;
          }
          if (count == 1) {
            break;
          }
        }
        node.routing_table().Consider(RouteEntry{best->id(), best->host(), best_prox});
      }
    }
  }
}

void PastryNetwork::JoinAll() {
  CHECK_GT(nodes_.size(), 0u);
  // First node forms the overlay alone; the rest join through it (or a recent member).
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const size_t bootstrap = i - 1;
    nodes_[i]->Join(nodes_[bootstrap]->host());
    net_->sim()->Run();
  }
}

std::vector<PastryNode*> PastryNetwork::FailRandomNodes(size_t count, Rng& rng) {
  std::vector<PastryNode*> live;
  for (const auto& node : nodes_) {
    if (node->alive()) {
      live.push_back(node.get());
    }
  }
  CHECK_LE(count, live.size());
  rng.Shuffle(live);
  live.resize(count);
  for (PastryNode* node : live) {
    net_->SetHostUp(node->host(), false);
  }
  return live;
}

void PastryNetwork::Heal(PastryNode& node) { net_->SetHostUp(node.host(), true); }

PastryNode* PastryNetwork::ClosestLiveNode(const NodeId& key) {
  PastryNode* best = nullptr;
  U128 best_dist = U128::Max();
  for (const auto& node : nodes_) {
    if (!node->alive()) {
      continue;
    }
    const U128 d = U128::RingDistance(node->id(), key);
    if (best == nullptr || d < best_dist || (d == best_dist && node->id() < best->id())) {
      best = node.get();
      best_dist = d;
    }
  }
  return best;
}

}  // namespace totoro
