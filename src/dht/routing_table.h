// Pastry routing table: rows indexed by shared-prefix length, columns by next digit.
//
// Row r holds entries whose ids share exactly r leading base-2^b digits with the local
// id; the column is the (r+1)-th digit. With N nodes roughly ceil(log_{2^b} N) rows are
// populated, giving the O(log N) routing bound. Rows are materialized lazily so that a
// 100k-node simulation does not pay for 128/b empty rows per node. When two candidates
// compete for a slot the physically closer one (lower proximity) wins, which is how
// Pastry builds locality into its routes.
#ifndef SRC_DHT_ROUTING_TABLE_H_
#define SRC_DHT_ROUTING_TABLE_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/dht/node_id.h"
#include "src/sim/message.h"

namespace totoro {

struct RouteEntry {
  NodeId id;
  HostId host = kInvalidHost;
  double proximity_ms = 0.0;
};

class RoutingTable {
 public:
  RoutingTable(NodeId self, int bits_per_digit);

  int bits_per_digit() const { return bits_; }
  int digits() const { return 128 / bits_; }
  int columns() const { return 1 << bits_; }
  const NodeId& self() const { return self_; }

  // Offers a candidate. Returns true if the table changed. Candidates equal to self or
  // sharing all digits with self are ignored.
  bool Consider(const RouteEntry& entry);

  // Removes a node (e.g. detected failure) from every slot it occupies.
  bool Remove(NodeId id);

  std::optional<RouteEntry> Get(int row, uint32_t col) const;

  // Routing-table step of Pastry routing: the entry at row = shared prefix digits of
  // (self, key), column = key's next digit. Empty if no such entry is known.
  std::optional<RouteEntry> NextHop(const NodeId& key) const;

  // Any known node strictly numerically closer to `key` than self whose shared prefix
  // with key is at least as long — Pastry's rare "fallback" case. Entries failing the
  // optional `alive` predicate are skipped.
  std::optional<RouteEntry> CloserFallback(
      const NodeId& key, const std::function<bool(const RouteEntry&)>* alive = nullptr) const;

  size_t NumEntries() const;
  size_t NumRows() const { return rows_.size(); }
  void ForEach(const std::function<void(const RouteEntry&)>& fn) const;

  // Entries of row `row` (for join-protocol state transfer).
  std::vector<RouteEntry> Row(int row) const;

 private:
  NodeId self_;
  int bits_;
  // row index -> columns() optional entries.
  std::map<int, std::vector<std::optional<RouteEntry>>> rows_;
};

}  // namespace totoro

#endif  // SRC_DHT_ROUTING_TABLE_H_
