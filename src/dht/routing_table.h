// Pastry routing table: rows indexed by shared-prefix length, columns by next digit.
//
// Row r holds entries whose ids share exactly r leading base-2^b digits with the local
// id; the column is the (r+1)-th digit. With N nodes roughly ceil(log_{2^b} N) rows are
// populated, giving the O(log N) routing bound. Rows are materialized lazily so that a
// 100k-node simulation does not pay for 128/b empty rows per node. When two candidates
// compete for a slot the physically closer one (lower proximity) wins, which is how
// Pastry builds locality into its routes.
#ifndef SRC_DHT_ROUTING_TABLE_H_
#define SRC_DHT_ROUTING_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/prefetch.h"
#include "src/dht/node_id.h"
#include "src/sim/message.h"

namespace totoro {

struct RouteEntry {
  NodeId id;
  HostId host = kInvalidHost;
  double proximity_ms = 0.0;
};

// Non-owning liveness predicate: a plain function pointer plus untyped context, cheap
// enough to build and invoke on the per-hop routing path (a std::function here cost a
// measurable slice of route time in indirect-call overhead). Default-constructed means
// "no filtering".
struct AliveFn {
  using Thunk = bool (*)(const void* ctx, const RouteEntry& entry);
  Thunk fn = nullptr;
  const void* ctx = nullptr;

  explicit operator bool() const { return fn != nullptr; }
  bool operator()(const RouteEntry& entry) const { return fn(ctx, entry); }
};

class RoutingTable {
 public:
  RoutingTable(NodeId self, int bits_per_digit);

  int bits_per_digit() const { return bits_; }
  int digits() const { return 128 / bits_; }
  int columns() const { return 1 << bits_; }
  const NodeId& self() const { return self_; }

  // Offers a candidate. Returns true if the table changed. Candidates equal to self or
  // sharing all digits with self are ignored.
  bool Consider(const RouteEntry& entry);

  // Removes a node (e.g. detected failure) from every slot it occupies.
  bool Remove(NodeId id);

  std::optional<RouteEntry> Get(int row, uint32_t col) const;

  // Routing-table step of Pastry routing: the entry at row = shared prefix digits of
  // (self, key), column = key's next digit. Empty if no such entry is known.
  std::optional<RouteEntry> NextHop(const NodeId& key) const;
  // Copy-free variant for the per-hop path; the pointer is invalidated by any mutation
  // of the table.
  const RouteEntry* NextHopPtr(const NodeId& key) const;
  // Hints the slot NextHopPtr(key) would read (see prefetch.h) — issued before the
  // leaf-set scan so the two lookups' cache misses overlap.
  void PrefetchNextHop(const NodeId& key) const {
    const int row = self_.CommonPrefixDigits(key, bits_);
    if (row >= digits()) {
      return;
    }
    if (const std::optional<RouteEntry>* slots = RowSlots(row); slots != nullptr) {
      const std::optional<RouteEntry>* slot = slots + key.Digit(row, bits_);
      // A slot is larger than a cache line's remainder at most alignments; hint both
      // lines it can straddle.
      PrefetchRead(slot);
      PrefetchRead(reinterpret_cast<const char*>(slot) + sizeof(*slot) - 1);
    }
  }

  // Any known node strictly numerically closer to `key` than self whose shared prefix
  // with key is at least as long — Pastry's rare "fallback" case. Entries failing the
  // optional `alive` predicate are skipped.
  std::optional<RouteEntry> CloserFallback(const NodeId& key, AliveFn alive = {}) const;

  size_t NumEntries() const;
  size_t NumRows() const;
  void ForEach(const std::function<void(const RouteEntry&)>& fn) const;

  // Entries of row `row` (for join-protocol state transfer).
  std::vector<RouteEntry> Row(int row) const;

 private:
  // With N nodes only ~log_{2^b} N rows are ever consulted, so the offsets of the
  // first kInlineRows rows are mirrored into a fixed member array. The array lives in
  // the owning node's leading cache lines (which the delivery path prefetches), making
  // the per-hop offset read a warm load instead of a dependent DRAM miss that would
  // stall before the slot prefetch can even issue.
  static constexpr int kInlineRows = 8;

  // Slots of row r live at arena_[offset .. offset + columns()), or nowhere when the
  // offset is < 0 (unmaterialized). One arena allocation for all materialized rows
  // keeps the per-hop NextHop lookup to a single indexed load instead of a per-row
  // vector chase; rows are never unmaterialized, so offsets are stable.
  int32_t RowOffset(int row) const {
    return row < kInlineRows ? inline_offset_[static_cast<size_t>(row)]
                             : row_offset_[static_cast<size_t>(row)];
  }
  std::optional<RouteEntry>* RowSlots(int row) {
    const int32_t off = RowOffset(row);
    return off < 0 ? nullptr : arena_.data() + off;
  }
  const std::optional<RouteEntry>* RowSlots(int row) const {
    const int32_t off = RowOffset(row);
    return off < 0 ? nullptr : arena_.data() + off;
  }
  std::optional<RouteEntry>* MaterializeRow(int row);

  NodeId self_;
  int bits_;
  std::array<int32_t, kInlineRows> inline_offset_;  // Mirror of row_offset_[0..kInlineRows).
  std::vector<int32_t> row_offset_;  // digits() entries; -1 = row not materialized.
  std::vector<std::optional<RouteEntry>> arena_;
};

}  // namespace totoro

#endif  // SRC_DHT_ROUTING_TABLE_H_
