// Pastry leaf set: the L/2 numerically closest nodes on each side of the local id.
//
// The leaf set terminates routing (a key whose id falls inside the leaf-set range is
// delivered to the numerically closest member) and anchors failure recovery: when a
// routing-table entry dies the leaf set is consulted to rebuild, and leaf-set members
// monitor each other with keep-alives.
//
// Both sides live in one contiguous buffer (clockwise side first, then
// counter-clockwise, each sorted nearest-first). Covers/Closest run on every routing
// hop, and a single allocation means one cache stream per lookup instead of two
// pointer-chased vectors.
#ifndef SRC_DHT_LEAF_SET_H_
#define SRC_DHT_LEAF_SET_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/common/prefetch.h"
#include "src/dht/routing_table.h"

namespace totoro {

class LeafSet {
 public:
  // `size` is the total capacity L (split L/2 clockwise, L/2 counter-clockwise).
  LeafSet(NodeId self, int size);

  const NodeId& self() const { return self_; }

  // Offers a candidate; keeps the set as the L/2 closest per side. Returns true if the
  // set changed.
  bool Consider(const RouteEntry& entry);
  bool Remove(NodeId id);
  bool Contains(NodeId id) const;

  // Whether `key` lies within [farthest ccw member, farthest cw member] (the leaf-set
  // coverage interval around self). Always true when the set is not yet full (small
  // rings: every node knows the whole ring).
  bool Covers(const NodeId& key) const;

  // Member (or self) numerically closest to key. `self_host` is returned for self.
  // When `alive` is provided, members failing the predicate are skipped (self is always
  // eligible) — used to route around hosts whose transport connection is known-dead.
  RouteEntry Closest(const NodeId& key, HostId self_host, AliveFn alive = {}) const;

  std::vector<RouteEntry> clockwise() const;
  std::vector<RouteEntry> counter_clockwise() const;
  std::vector<RouteEntry> All() const;
  size_t NumEntries() const { return entries_.size(); }
  int capacity() const { return size_; }
  bool Full() const;

  // Immediate ring neighbors (first entry on each side), if any.
  std::optional<RouteEntry> CwNeighbor() const;
  std::optional<RouteEntry> CcwNeighbor() const;

  void ForEach(const std::function<void(const RouteEntry&)>& fn) const;

  // Hints the whole entry buffer (see prefetch.h): Covers reads the far end of each
  // side and Closest scans it all, so issue the lines up front and let the misses
  // overlap with whatever runs before the lookup.
  void Prefetch() const {
    const char* data = reinterpret_cast<const char*>(entries_.data());
    const size_t bytes = entries_.size() * sizeof(RouteEntry);
    for (size_t off = 0; off < bytes; off += 64) {
      PrefetchRead(data + off);
    }
  }

 private:
  size_t ccw_begin() const { return cw_count_; }

  NodeId self_;
  int size_;
  // [0, cw_count_) clockwise side, [cw_count_, size()) counter-clockwise side; each
  // sorted by distance from self, nearest first.
  std::vector<RouteEntry> entries_;
  size_t cw_count_ = 0;
};

}  // namespace totoro

#endif  // SRC_DHT_LEAF_SET_H_
