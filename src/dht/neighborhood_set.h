// Pastry neighborhood set: the M physically closest nodes, by network proximity.
//
// Not used for routing; maintains locality information for routing-table repair and for
// the locality-aware ring construction (§4.2: "contains a fixed number of nodes that are
// physically closest to that node").
#ifndef SRC_DHT_NEIGHBORHOOD_SET_H_
#define SRC_DHT_NEIGHBORHOOD_SET_H_

#include <vector>

#include "src/dht/routing_table.h"

namespace totoro {

class NeighborhoodSet {
 public:
  NeighborhoodSet(NodeId self, int capacity);

  // Keeps the `capacity` lowest-proximity entries. Returns true if the set changed.
  bool Consider(const RouteEntry& entry);
  bool Remove(NodeId id);

  const std::vector<RouteEntry>& entries() const { return entries_; }
  size_t NumEntries() const { return entries_.size(); }

 private:
  NodeId self_;
  size_t capacity_;
  std::vector<RouteEntry> entries_;  // Sorted by proximity, nearest first.
};

}  // namespace totoro

#endif  // SRC_DHT_NEIGHBORHOOD_SET_H_
