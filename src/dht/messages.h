// Wire-message opcodes and payload structs for the DHT layer.
//
// Opcode ranges are partitioned across layers so a single Host dispatch switch can never
// collide: DHT 1-99, pub/sub 100-199, FL engine 200-299, baselines 300-399.
#ifndef SRC_DHT_MESSAGES_H_
#define SRC_DHT_MESSAGES_H_

#include <vector>

#include "src/dht/routing_table.h"
#include "src/sim/message.h"

namespace totoro {

enum DhtMsgType : int {
  kDhtRouteEnvelope = 1,
  kDhtJoinRequest = 2,
  kDhtJoinState = 3,
  kDhtAnnounce = 4,
  kDhtHeartbeat = 5,
  kDhtHeartbeatAck = 6,
  kDhtLeafRepairRequest = 7,
  kDhtLeafRepairReply = 8,
};

// Envelope for key-based routing. `inner` is the application message. The envelope is
// immutable once wrapped: every hop forwards the same shared payload allocation and the
// per-hop counter travels in the wrapper Message's `hops` header field, so an entire
// route costs one envelope allocation (a forward handler that rewrites `inner` forces a
// fresh envelope — the rare, already-allocating path).
struct RouteEnvelope {
  NodeId key;
  Message inner;
  HostId origin = kInvalidHost;
};

struct JoinRequest {
  NodeId joiner_id;
  HostId joiner_host = kInvalidHost;
};

// State transferred to a joining node: the sender's own entry, routing rows relevant to
// the joiner, and (from the rendezvous node) the leaf set.
struct JoinState {
  RouteEntry sender;
  std::vector<RouteEntry> routing_entries;
  std::vector<RouteEntry> leaf_entries;
  bool from_rendezvous = false;
};

struct Announce {
  RouteEntry node;
};

struct LeafRepair {
  std::vector<RouteEntry> leaf_entries;
};

// Approximate serialized size of a route entry on the wire (id + address + proximity).
inline constexpr uint64_t kRouteEntryWireBytes = 26;

}  // namespace totoro

#endif  // SRC_DHT_MESSAGES_H_
