#include "src/dht/churn.h"

#include "src/common/logging.h"

namespace totoro {

ChurnDriver::ChurnDriver(PastryNetwork* pastry, ChurnConfig config, uint64_t seed)
    : pastry_(pastry), config_(config), rng_(seed) {}

size_t ChurnDriver::LiveNodes() const {
  size_t live = 0;
  for (size_t i = 0; i < pastry_->size(); ++i) {
    if (pastry_->node(i).alive()) {
      ++live;
    }
  }
  return live;
}

void ChurnDriver::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = pastry_->network()->sim()->Schedule(rng_.Exponential(config_.event_interval_ms),
                                                 [this]() { Tick(); });
}

void ChurnDriver::Tick() {
  if (!running_) {
    return;
  }
  const bool leave = rng_.Bernoulli(config_.leave_fraction) || !config_.enable_joins;
  if (leave) {
    if (LiveNodes() > config_.min_live_nodes) {
      // Abrupt departure (no goodbye): peers must detect it via keep-alives.
      std::vector<PastryNode*> live;
      for (size_t i = 0; i < pastry_->size(); ++i) {
        if (pastry_->node(i).alive()) {
          live.push_back(&pastry_->node(i));
        }
      }
      PastryNode* victim = live[rng_.NextBelow(live.size())];
      pastry_->network()->SetHostUp(victim->host(), false);
      ++leaves_;
      TLOG_DEBUG("churn: node %s left", victim->id().ToHex().c_str());
    }
  } else {
    // A brand-new node joins through a random live bootstrap.
    std::vector<PastryNode*> live;
    for (size_t i = 0; i < pastry_->size(); ++i) {
      if (pastry_->node(i).alive()) {
        live.push_back(&pastry_->node(i));
      }
    }
    if (!live.empty()) {
      PastryNode* bootstrap = live[rng_.NextBelow(live.size())];
      const size_t index = pastry_->AddRandomNode(rng_);
      PastryNode& joiner = pastry_->node(index);
      if (joiner.config().enable_keepalive) {
        joiner.StartKeepAlive();
      }
      joiner.Join(bootstrap->host());
      ++joins_;
      TLOG_DEBUG("churn: node %s joining via host %u", joiner.id().ToHex().c_str(),
                 bootstrap->host());
    }
  }
  pending_ = pastry_->network()->sim()->Schedule(rng_.Exponential(config_.event_interval_ms),
                                                 [this]() { Tick(); });
}

}  // namespace totoro
