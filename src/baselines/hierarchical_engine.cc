#include "src/baselines/hierarchical_engine.h"

#include "src/common/check.h"
#include "src/fl/client.h"

namespace totoro {
namespace {

struct HierPayload {
  NodeId topic;
  uint64_t round = 0;
  std::vector<float> weights;
  double sample_weight = 0.0;
  uint64_t contributors = 0;
};

}  // namespace

struct HierarchicalEngine::AppRuntime {
  FlAppConfig config;
  NodeId topic;
  std::unique_ptr<Model> global_model;
  std::vector<float> global_weights;
  Dataset test_set{1, 2};
  std::vector<size_t> clients;
  std::map<size_t, std::unique_ptr<LocalTrainer>> trainers;
  // Per-edge round bookkeeping: how many of this app's clients hang off each edge, and
  // the partial updates each edge has buffered this round.
  // Ordered: StartRound fans the model out per edge in walk order.
  std::map<size_t, size_t> clients_per_edge;
  std::map<size_t, std::vector<WeightedUpdate>> edge_buffers;
  size_t edges_pending = 0;
  std::vector<WeightedUpdate> cloud_buffer;
  uint64_t round = 0;
  double launch_time_ms = 0.0;
  bool started = false;
  bool done = false;
  AppResult result;
};

class HierarchicalEngine::CloudHost : public Host {
 public:
  explicit CloudHost(HierarchicalEngine* engine) : engine_(engine) {}
  void HandleMessage(const Message& msg) override {
    CHECK_EQ(msg.type, kHierEdgeUpdate);
    engine_->OnEdgeUpdateAtCloud(msg);
  }

 private:
  HierarchicalEngine* engine_;
};

class HierarchicalEngine::EdgeHost : public Host {
 public:
  EdgeHost(HierarchicalEngine* engine, size_t index) : engine_(engine), index_(index) {}
  void HandleMessage(const Message& msg) override {
    if (msg.type == kHierModelToEdge) {
      engine_->OnModelAtEdge(index_, msg);
    } else {
      CHECK_EQ(msg.type, kHierClientUpdate);
      engine_->OnClientUpdateAtEdge(index_, msg);
    }
  }

 private:
  HierarchicalEngine* engine_;
  size_t index_;
};

class HierarchicalEngine::ClientHost : public Host {
 public:
  ClientHost(HierarchicalEngine* engine, size_t index) : engine_(engine), index_(index) {}
  void HandleMessage(const Message& msg) override {
    CHECK_EQ(msg.type, kHierModelToClient);
    engine_->OnModelAtClient(index_, msg);
  }

 private:
  HierarchicalEngine* engine_;
  size_t index_;
};

HierarchicalEngine::HierarchicalEngine(Simulator* sim, HierarchicalConfig config,
                                       size_t num_clients, uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {
  CHECK_GT(config_.num_edge_servers, 0u);
  NetworkConfig net_config;
  net_config.default_bandwidth_bytes_per_ms = config_.client_bandwidth_bytes_per_ms;
  network_ = std::make_unique<Network>(
      sim_,
      std::make_unique<PairwiseUniformLatency>(config_.latency_lo_ms, config_.latency_hi_ms,
                                               seed ^ 0x41ED6E),
      net_config);
  network_->ReserveHosts(1 + config_.num_edge_servers + num_clients);
  cloud_ = std::make_unique<CloudHost>(this);
  CHECK_EQ(network_->AddHost(cloud_.get()), CloudHostId());
  network_->SetHostBandwidth(CloudHostId(), config_.cloud_bandwidth_bytes_per_ms);
  for (size_t e = 0; e < config_.num_edge_servers; ++e) {
    edges_.push_back(std::make_unique<EdgeHost>(this, e));
    CHECK_EQ(network_->AddHost(edges_.back().get()), EdgeHostId(e));
    network_->SetHostBandwidth(EdgeHostId(e), config_.edge_bandwidth_bytes_per_ms);
  }
  for (size_t c = 0; c < num_clients; ++c) {
    clients_.push_back(std::make_unique<ClientHost>(this, c));
    CHECK_EQ(network_->AddHost(clients_.back().get()), ClientHostId(c));
  }
}

HierarchicalEngine::~HierarchicalEngine() = default;

NodeId HierarchicalEngine::LaunchApp(const FlAppConfig& config,
                                     const std::vector<size_t>& clients,
                                     std::vector<Dataset> shards, Dataset test_set) {
  CHECK(config.model_factory != nullptr);
  CHECK_EQ(clients.size(), shards.size());
  CHECK(!clients.empty());
  const NodeId topic = MakeAppId(config.name, config.creator_key, config.salt);
  CHECK(apps_.find(topic) == apps_.end());
  auto app = std::make_unique<AppRuntime>();
  app->config = config;
  app->topic = topic;
  app->global_model = config.model_factory(rng_.Next());
  app->global_weights = app->global_model->GetWeights();
  app->test_set = std::move(test_set);
  app->clients = clients;
  app->result.name = config.name;
  app->result.topic = topic;
  for (size_t i = 0; i < clients.size(); ++i) {
    CHECK_LT(clients[i], clients_.size());
    app->trainers[clients[i]] = std::make_unique<LocalTrainer>(
        config.model_factory(rng_.Next()), std::move(shards[i]), 1.0, rng_.Next());
    ++app->clients_per_edge[EdgeOfClient(clients[i])];
  }
  apps_[topic] = std::move(app);
  return topic;
}

void HierarchicalEngine::StartAll() {
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started) {
      app->started = true;
      app->launch_time_ms = sim_->Now();
      StartRound(*app);
    }
  }
}

void HierarchicalEngine::EnqueueCloudWork(double service_ms, EventFn fn) {
  const SimTime start = std::max(cloud_free_at_, sim_->Now());
  cloud_free_at_ = start + service_ms;
  network_->metrics().ChargeWork(CloudHostId(), WorkKind::kFlTask,
                                 service_ms * config_.compute.work_units_per_ms);
  sim_->ScheduleAt(cloud_free_at_, std::move(fn));
}

void HierarchicalEngine::StartRound(AppRuntime& app) {
  app.round += 1;
  app.edge_buffers.clear();
  app.cloud_buffer.clear();
  app.edges_pending = app.clients_per_edge.size();
  EnqueueCloudWork(config_.cloud_setup_ms_const, [this, topic = app.topic]() {
    auto it = apps_.find(topic);
    if (it == apps_.end() || it->second->done) {
      return;
    }
    AppRuntime& app2 = *it->second;
    // Cloud sends the model once per participating edge server.
    for (const auto& [edge, count] : app2.clients_per_edge) {
      (void)count;
      Message m;
      m.type = kHierModelToEdge;
      m.src = CloudHostId();
      m.dst = EdgeHostId(edge);
      m.size_bytes = app2.global_weights.size() * sizeof(float);
      m.traffic = TrafficClass::kModel;
      m.transport = Transport::kTcp;
      HierPayload payload;
      payload.topic = app2.topic;
      payload.round = app2.round;
      payload.weights = app2.global_weights;
      m.SetPayload(std::move(payload));
      network_->Send(std::move(m));
    }
  });
}

void HierarchicalEngine::OnModelAtEdge(size_t edge, const Message& msg) {
  const auto& payload = msg.As<HierPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  // Edge relays the model to its clients of this app.
  for (size_t client : app.clients) {
    if (EdgeOfClient(client) != edge) {
      continue;
    }
    Message m;
    m.type = kHierModelToClient;
    m.src = EdgeHostId(edge);
    m.dst = ClientHostId(client);
    m.size_bytes = msg.size_bytes;
    m.traffic = TrafficClass::kModel;
    m.transport = Transport::kTcp;
    m.SetPayload(payload);
    network_->Send(std::move(m));
  }
}

void HierarchicalEngine::OnModelAtClient(size_t client, const Message& msg) {
  const auto& payload = msg.As<HierPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  auto trainer_it = app.trainers.find(client);
  if (trainer_it == app.trainers.end()) {
    return;
  }
  LocalUpdate update = trainer_it->second->Train(payload.weights, app.config.train,
                                                 config_.compute, app.config.dp,
                                                 app.config.compression);
  network_->metrics().ChargeWork(
      ClientHostId(client), WorkKind::kFlTask,
      static_cast<double>(trainer_it->second->model().NumParams()) *
          static_cast<double>(app.config.train.batch_size * app.config.train.local_steps));
  HierPayload reply;
  reply.topic = app.topic;
  reply.round = payload.round;
  reply.weights = std::move(update.weights);
  reply.sample_weight = update.sample_weight;
  const uint64_t wire_bytes = update.wire_bytes;
  const HostId src = ClientHostId(client);
  const HostId dst = EdgeHostId(EdgeOfClient(client));
  sim_->Schedule(update.compute_time_ms,
                 [this, src, dst, wire_bytes, reply = std::move(reply)]() mutable {
                   Message m;
                   m.type = kHierClientUpdate;
                   m.src = src;
                   m.dst = dst;
                   m.size_bytes = wire_bytes;
                   m.traffic = TrafficClass::kGradient;
                   m.transport = Transport::kTcp;
                   m.SetPayload(std::move(reply));
                   network_->Send(std::move(m));
                 });
}

void HierarchicalEngine::OnClientUpdateAtEdge(size_t edge, const Message& msg) {
  const auto& payload = msg.As<HierPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  if (payload.round != app.round) {
    return;
  }
  network_->metrics().ChargeWork(EdgeHostId(edge), WorkKind::kFlTask,
                                 config_.edge_aggregate_ms_const *
                                     config_.compute.work_units_per_ms);
  auto& buffer = app.edge_buffers[edge];
  buffer.push_back(WeightedUpdate{payload.weights, payload.sample_weight});
  if (buffer.size() < app.clients_per_edge.at(edge)) {
    return;
  }
  // Partial aggregation at the edge, then one update up to the cloud.
  HierPayload up;
  up.topic = app.topic;
  up.round = app.round;
  up.weights = FederatedAverage(buffer);
  for (const auto& u : buffer) {
    up.sample_weight += u.sample_weight;
  }
  up.contributors = buffer.size();
  buffer.clear();
  Message m;
  m.type = kHierEdgeUpdate;
  m.src = EdgeHostId(edge);
  m.dst = CloudHostId();
  m.size_bytes = up.weights.size() * sizeof(float);
  m.traffic = TrafficClass::kGradient;
  m.transport = Transport::kTcp;
  m.SetPayload(std::move(up));
  network_->Send(std::move(m));
}

void HierarchicalEngine::OnEdgeUpdateAtCloud(const Message& msg) {
  const auto& payload = msg.As<HierPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  if (payload.round != app.round) {
    return;
  }
  WeightedUpdate update{payload.weights, payload.sample_weight};
  EnqueueCloudWork(config_.cloud_aggregate_ms_const,
                   [this, topic = app.topic, update = std::move(update)]() mutable {
                     auto it2 = apps_.find(topic);
                     if (it2 == apps_.end() || it2->second->done) {
                       return;
                     }
                     AppRuntime& app2 = *it2->second;
                     app2.cloud_buffer.push_back(std::move(update));
                     CHECK_GT(app2.edges_pending, 0u);
                     app2.edges_pending -= 1;
                     if (app2.edges_pending == 0) {
                       FinishRound(app2);
                     }
                   });
}

void HierarchicalEngine::FinishRound(AppRuntime& app) {
  app.global_weights = FederatedAverage(app.cloud_buffer);
  app.cloud_buffer.clear();
  app.global_model->SetWeights(app.global_weights);
  const double accuracy = app.global_model->Accuracy(app.test_set);
  const double now = sim_->Now();
  app.result.curve.push_back(AccuracyPoint{now - app.launch_time_ms, app.round, accuracy});
  app.result.rounds_completed = app.round;
  app.result.final_accuracy = accuracy;
  if (!app.result.reached_target && accuracy >= app.config.target_accuracy) {
    app.result.reached_target = true;
    app.result.time_to_target_ms = now - app.launch_time_ms;
  }
  if (app.result.reached_target || app.round >= app.config.max_rounds) {
    app.done = true;
    app.result.total_time_ms = now - app.launch_time_ms;
    return;
  }
  StartRound(app);
}

void HierarchicalEngine::FailEdgeServer(size_t edge_index) {
  CHECK_LT(edge_index, edges_.size());
  network_->SetHostUp(EdgeHostId(edge_index), false);
}

bool HierarchicalEngine::AllDone() const {
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->done) {
      return false;
    }
  }
  return true;
}

bool HierarchicalEngine::RunToCompletion(double max_virtual_ms) {
  const double deadline = sim_->Now() + max_virtual_ms;
  while (!AllDone() && !sim_->Idle() && sim_->Now() < deadline) {
    sim_->Run(20000);
  }
  return AllDone();
}

const AppResult& HierarchicalEngine::result(const NodeId& topic) const {
  auto it = apps_.find(topic);
  CHECK(it != apps_.end());
  return it->second->result;
}

std::vector<AppResult> HierarchicalEngine::AllResults() const {
  std::vector<AppResult> out;
  out.reserve(apps_.size());
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    out.push_back(app->result);
  }
  return out;
}

}  // namespace totoro
