// Hierarchical FL baseline (Table 1's "client-edge-cloud" class, e.g. Liu et al. 2020):
// an intermediate layer of edge servers partially aggregates client updates before a
// cloud server performs the global aggregation.
//
// Structure per round: cloud -> edge servers -> clients (model), then clients -> edge
// (partial FedAvg per edge) -> cloud (global FedAvg). The edge layer offloads the cloud
// — its downlink sees one update per edge server instead of one per client — but the
// architecture keeps a single cloud coordinator (apps still serialize there) and every
// edge server is a static single point of failure for its client group, the two
// weaknesses §3 attributes to this class.
#ifndef SRC_BASELINES_HIERARCHICAL_ENGINE_H_
#define SRC_BASELINES_HIERARCHICAL_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/app.h"
#include "src/fl/aggregation.h"
#include "src/sim/network.h"

namespace totoro {

enum HierMsgType : int {
  kHierModelToEdge = 310,
  kHierModelToClient = 311,
  kHierClientUpdate = 312,
  kHierEdgeUpdate = 313,
};

struct HierarchicalConfig {
  size_t num_edge_servers = 4;
  // Cloud coordinator serial costs (same scale as CentralConfig).
  double cloud_setup_ms_const = 30.0;
  double cloud_aggregate_ms_const = 5.0;
  // Edge servers have their own (parallel) aggregation cost per client update.
  double edge_aggregate_ms_const = 3.0;
  double cloud_bandwidth_bytes_per_ms = 125000.0;
  double edge_bandwidth_bytes_per_ms = 62500.0;
  double client_bandwidth_bytes_per_ms = 12500.0;
  double latency_lo_ms = 2.0;
  double latency_hi_ms = 40.0;
  ComputeModel compute;
};

class HierarchicalEngine {
 public:
  HierarchicalEngine(Simulator* sim, HierarchicalConfig config, size_t num_clients,
                     uint64_t seed);
  ~HierarchicalEngine();

  // Clients are assigned to edge servers round-robin by index.
  NodeId LaunchApp(const FlAppConfig& config, const std::vector<size_t>& clients,
                   std::vector<Dataset> shards, Dataset test_set);
  void StartAll();
  bool RunToCompletion(double max_virtual_ms = 1e12);
  bool AllDone() const;
  const AppResult& result(const NodeId& topic) const;
  std::vector<AppResult> AllResults() const;

  // Fails an edge server (its client group loses connectivity; the round stalls until
  // the straggler cut-off, demonstrating the class's single-point-of-failure weakness).
  void FailEdgeServer(size_t edge_index);

  Network& network() { return *network_; }

 private:
  class CloudHost;
  class EdgeHost;
  class ClientHost;
  struct AppRuntime;

  size_t EdgeOfClient(size_t client) const { return client % config_.num_edge_servers; }
  HostId CloudHostId() const { return 0; }
  HostId EdgeHostId(size_t edge) const { return static_cast<HostId>(1 + edge); }
  HostId ClientHostId(size_t client) const {
    return static_cast<HostId>(1 + config_.num_edge_servers + client);
  }

  void StartRound(AppRuntime& app);
  void OnModelAtEdge(size_t edge, const Message& msg);
  void OnModelAtClient(size_t client, const Message& msg);
  void OnClientUpdateAtEdge(size_t edge, const Message& msg);
  void OnEdgeUpdateAtCloud(const Message& msg);
  void FinishRound(AppRuntime& app);
  void EnqueueCloudWork(double service_ms, EventFn fn);

  Simulator* sim_;
  HierarchicalConfig config_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<CloudHost> cloud_;
  std::vector<std::unique_ptr<EdgeHost>> edges_;
  std::vector<std::unique_ptr<ClientHost>> clients_;
  SimTime cloud_free_at_ = 0.0;
  // Ordered map: round scheduling iterates apps_, so walk order must be stable.
  std::map<U128, std::unique_ptr<AppRuntime>> apps_;
};

}  // namespace totoro

#endif  // SRC_BASELINES_HIERARCHICAL_ENGINE_H_
