#include "src/baselines/central_engine.h"

#include "src/common/check.h"
#include "src/common/logging.h"

namespace totoro {

// Payload of both directions: weights + addressing metadata.
struct CentralPayload {
  NodeId topic;
  uint64_t round = 0;
  std::vector<float> weights;
  double sample_weight = 0.0;
  size_t client_index = 0;
};

struct CentralizedEngine::AppRuntime {
  FlAppConfig config;
  NodeId topic;
  std::unique_ptr<Model> global_model;
  std::vector<float> global_weights;
  Dataset test_set{1, 2};
  std::vector<size_t> clients;
  std::map<size_t, std::unique_ptr<LocalTrainer>> trainers;
  uint64_t round = 0;
  size_t pending_updates = 0;
  std::vector<WeightedUpdate> received;
  double launch_time_ms = 0.0;
  bool started = false;
  bool done = false;
  AppResult result;
};

class CentralizedEngine::ServerHost : public Host {
 public:
  explicit ServerHost(CentralizedEngine* engine) : engine_(engine) {}
  void HandleMessage(const Message& msg) override {
    CHECK_EQ(msg.type, kCentralUpdate);
    engine_->OnClientUpdate(msg);
  }

 private:
  CentralizedEngine* engine_;
};

class CentralizedEngine::ClientHost : public Host {
 public:
  ClientHost(CentralizedEngine* engine, size_t index) : engine_(engine), index_(index) {}
  void HandleMessage(const Message& msg) override {
    CHECK_EQ(msg.type, kCentralModel);
    engine_->OnModelAtClient(index_, msg);
  }

 private:
  CentralizedEngine* engine_;
  size_t index_;
};

CentralizedEngine::CentralizedEngine(Simulator* sim, CentralConfig config, size_t num_clients,
                                     uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {
  NetworkConfig net_config;
  net_config.default_bandwidth_bytes_per_ms = config_.client_bandwidth_bytes_per_ms;
  network_ = std::make_unique<Network>(
      sim_,
      std::make_unique<PairwiseUniformLatency>(config_.latency_lo_ms, config_.latency_hi_ms,
                                               seed ^ 0xBA5E),
      net_config);
  network_->ReserveHosts(num_clients + 1);
  server_ = std::make_unique<ServerHost>(this);
  server_host_ = network_->AddHost(server_.get());
  network_->SetHostBandwidth(server_host_, config_.server_bandwidth_bytes_per_ms);
  clients_.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients_.push_back(std::make_unique<ClientHost>(this, i));
    network_->AddHost(clients_.back().get());
  }
}

CentralizedEngine::~CentralizedEngine() = default;

NodeId CentralizedEngine::LaunchApp(const FlAppConfig& config,
                                    const std::vector<size_t>& clients,
                                    std::vector<Dataset> shards, Dataset test_set) {
  CHECK(config.model_factory != nullptr);
  CHECK_EQ(clients.size(), shards.size());
  CHECK(!clients.empty());
  const NodeId topic = MakeAppId(config.name, config.creator_key, config.salt);
  CHECK(apps_.find(topic) == apps_.end());
  auto app = std::make_unique<AppRuntime>();
  app->config = config;
  app->topic = topic;
  app->global_model = config.model_factory(rng_.Next());
  app->global_weights = app->global_model->GetWeights();
  app->test_set = std::move(test_set);
  app->clients = clients;
  app->result.name = config.name;
  app->result.topic = topic;
  for (size_t i = 0; i < clients.size(); ++i) {
    CHECK_LT(clients[i], clients_.size());
    app->trainers[clients[i]] = std::make_unique<LocalTrainer>(
        config.model_factory(rng_.Next()), std::move(shards[i]), 1.0, rng_.Next());
  }
  apps_[topic] = std::move(app);
  return topic;
}

void CentralizedEngine::StartAll() {
  for (auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->started) {
      app->started = true;
      app->launch_time_ms = sim_->Now();
      StartRound(*app);
    }
  }
}

void CentralizedEngine::EnqueueCoordinatorWork(double service_ms, EventFn fn) {
  // One logical coordinator thread: work is served FCFS, which is exactly the queueing
  // delay §7.4 attributes the baselines' slowdown to.
  const SimTime start = std::max(coordinator_free_at_, sim_->Now());
  coordinator_free_at_ = start + service_ms;
  // Charge in the same work-unit scale as client training (units per ms of compute).
  network_->metrics().ChargeWork(server_host_, WorkKind::kFlTask,
                                 service_ms * config_.compute.work_units_per_ms);
  sim_->ScheduleAt(coordinator_free_at_, std::move(fn));
}

void CentralizedEngine::StartRound(AppRuntime& app) {
  app.round += 1;
  app.pending_updates = app.clients.size();
  app.received.clear();
  const double kparams = static_cast<double>(app.global_weights.size()) / 1000.0;
  EnqueueCoordinatorWork(config_.setup_ms_const + config_.setup_ms_per_kparam * kparams,
                         [this, topic = app.topic]() {
                           auto it = apps_.find(topic);
                           if (it != apps_.end() && !it->second->done) {
                             BroadcastModel(*it->second);
                           }
                         });
}

void CentralizedEngine::BroadcastModel(AppRuntime& app) {
  // Hub-and-spoke: one unicast per client, all squeezed through the server uplink.
  for (size_t client : app.clients) {
    Message m;
    m.type = kCentralModel;
    m.src = server_host_;
    m.dst = static_cast<HostId>(client + 1);  // Clients registered after the server.
    m.size_bytes = app.global_weights.size() * sizeof(float);
    m.traffic = TrafficClass::kModel;
    m.transport = Transport::kTcp;
    CentralPayload payload;
    payload.topic = app.topic;
    payload.round = app.round;
    payload.weights = app.global_weights;
    m.SetPayload(std::move(payload));
    network_->Send(std::move(m));
  }
}

void CentralizedEngine::OnModelAtClient(size_t client_index, const Message& msg) {
  const auto& payload = msg.As<CentralPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  auto trainer_it = app.trainers.find(client_index);
  if (trainer_it == app.trainers.end()) {
    return;
  }
  LocalTrainer& trainer = *trainer_it->second;
  LocalUpdate update = trainer.Train(payload.weights, app.config.train, config_.compute,
                                     app.config.dp, app.config.compression);
  const HostId client_host = static_cast<HostId>(client_index + 1);
  network_->metrics().ChargeWork(
      client_host, WorkKind::kFlTask,
      static_cast<double>(trainer.model().NumParams()) *
          static_cast<double>(app.config.train.batch_size * app.config.train.local_steps));
  CentralPayload reply;
  reply.topic = app.topic;
  reply.round = payload.round;
  reply.weights = std::move(update.weights);
  reply.sample_weight = update.sample_weight;
  reply.client_index = client_index;
  const uint64_t wire_bytes = update.wire_bytes;
  sim_->Schedule(update.compute_time_ms,
                 [this, client_host, reply = std::move(reply), wire_bytes]() mutable {
                   Message m;
                   m.type = kCentralUpdate;
                   m.src = client_host;
                   m.dst = server_host_;
                   m.size_bytes = wire_bytes;
                   m.traffic = TrafficClass::kGradient;
                   m.transport = Transport::kTcp;
                   m.SetPayload(std::move(reply));
                   network_->Send(std::move(m));
                 });
}

void CentralizedEngine::OnClientUpdate(const Message& msg) {
  const auto& payload = msg.As<CentralPayload>();
  auto it = apps_.find(payload.topic);
  if (it == apps_.end() || it->second->done) {
    return;
  }
  AppRuntime& app = *it->second;
  if (payload.round != app.round) {
    return;  // Stale.
  }
  // Each update's aggregation is one serial coordinator task.
  const double kparams = static_cast<double>(app.global_weights.size()) / 1000.0;
  // Copy the pieces the coordinator needs; the message dies after this handler.
  WeightedUpdate update{payload.weights, payload.sample_weight};
  EnqueueCoordinatorWork(
      config_.aggregate_ms_const + config_.aggregate_ms_per_kparam * kparams,
      [this, topic = app.topic, update = std::move(update)]() mutable {
        auto it2 = apps_.find(topic);
        if (it2 == apps_.end() || it2->second->done) {
          return;
        }
        AppRuntime& app2 = *it2->second;
        app2.received.push_back(std::move(update));
        CHECK_GT(app2.pending_updates, 0u);
        app2.pending_updates -= 1;
        if (app2.pending_updates == 0) {
          FinishRound(app2);
        }
      });
}

void CentralizedEngine::FinishRound(AppRuntime& app) {
  app.global_weights = FederatedAverage(app.received);
  app.received.clear();
  app.global_model->SetWeights(app.global_weights);
  network_->metrics().ChargeWork(server_host_, WorkKind::kFlTask,
                                 static_cast<double>(app.global_model->NumParams()) *
                                     static_cast<double>(app.test_set.size()));
  const double accuracy = app.global_model->Accuracy(app.test_set);
  const double now = sim_->Now();
  app.result.curve.push_back(AccuracyPoint{now - app.launch_time_ms, app.round, accuracy});
  app.result.rounds_completed = app.round;
  app.result.final_accuracy = accuracy;
  TLOG_INFO("central app %s round %llu accuracy %.4f at t=%.1fms", app.config.name.c_str(),
            static_cast<unsigned long long>(app.round), accuracy, now);
  if (!app.result.reached_target && accuracy >= app.config.target_accuracy) {
    app.result.reached_target = true;
    app.result.time_to_target_ms = now - app.launch_time_ms;
  }
  if (app.result.reached_target || app.round >= app.config.max_rounds) {
    app.done = true;
    app.result.total_time_ms = now - app.launch_time_ms;
    return;
  }
  StartRound(app);
}

bool CentralizedEngine::AllDone() const {
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    if (!app->done) {
      return false;
    }
  }
  return true;
}

bool CentralizedEngine::RunToCompletion(double max_virtual_ms) {
  const double deadline = sim_->Now() + max_virtual_ms;
  while (!AllDone() && !sim_->Idle() && sim_->Now() < deadline) {
    sim_->Run(20000);
  }
  return AllDone();
}

std::vector<AppResult> CentralizedEngine::AllResults() const {
  std::vector<AppResult> out;
  out.reserve(apps_.size());
  for (const auto& [topic, app] : apps_) {
    (void)topic;
    out.push_back(app->result);
  }
  return out;
}

const AppResult& CentralizedEngine::result(const NodeId& topic) const {
  auto it = apps_.find(topic);
  CHECK(it != apps_.end());
  return it->second->result;
}

}  // namespace totoro
