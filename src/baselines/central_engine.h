// Centralized FL baseline modelled after OpenFL / FedScale's server-client design.
//
// One parameter-server host runs the Coordinator, Selector and Aggregators of Fig. 2.
// Every application shares that single server: model broadcast is k unicasts through the
// server's uplink, every client update crosses the server's downlink, and — the paper's
// key observation (§7.4) — the logically central coordinator serializes per-application
// work (round setup, each update's aggregation) on one queue, first-come first-served.
// With many concurrent applications that queue is what makes total training time grow,
// which Totoro's per-application masters avoid.
#ifndef SRC_BASELINES_CENTRAL_ENGINE_H_
#define SRC_BASELINES_CENTRAL_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/app.h"
#include "src/fl/aggregation.h"
#include "src/sim/network.h"

namespace totoro {

enum CentralMsgType : int {
  kCentralModel = 300,   // Server -> client: global weights for a round.
  kCentralUpdate = 301,  // Client -> server: local update.
};

struct CentralConfig {
  // Serial coordinator service times: a constant part (RPC handling, selection,
  // checkpointing — paid per operation regardless of model size) plus a per-1k-parameter
  // part (serialization and averaging work).
  double setup_ms_const = 30.0;           // Round setup / dissemination handling.
  double setup_ms_per_kparam = 0.4;
  double aggregate_ms_const = 5.0;        // Per client update folded in.
  double aggregate_ms_per_kparam = 0.15;
  // The server is provisioned better than an edge node but is still one box.
  double server_bandwidth_bytes_per_ms = 125000.0;  // 1 Gbit/s.
  double client_bandwidth_bytes_per_ms = 12500.0;   // 100 Mbit/s.
  double latency_lo_ms = 2.0;
  double latency_hi_ms = 40.0;
  ComputeModel compute;
};

class CentralizedEngine {
 public:
  CentralizedEngine(Simulator* sim, CentralConfig config, size_t num_clients, uint64_t seed);
  ~CentralizedEngine();

  // Launches an application on the given client indices (parallel to shards).
  NodeId LaunchApp(const FlAppConfig& config, const std::vector<size_t>& clients,
                   std::vector<Dataset> shards, Dataset test_set);

  void StartAll();
  bool RunToCompletion(double max_virtual_ms = 1e12);
  bool AllDone() const;
  std::vector<AppResult> AllResults() const;
  const AppResult& result(const NodeId& topic) const;

  Network& network() { return *network_; }

 private:
  class ServerHost;
  class ClientHost;
  struct AppRuntime;

  void StartRound(AppRuntime& app);
  void BroadcastModel(AppRuntime& app);
  void OnClientUpdate(const Message& msg);
  void OnModelAtClient(size_t client_index, const Message& msg);
  void FinishRound(AppRuntime& app);
  // Enqueues serial coordinator work; `fn` runs when the coordinator reaches it.
  void EnqueueCoordinatorWork(double service_ms, EventFn fn);

  Simulator* sim_;
  CentralConfig config_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<ServerHost> server_;
  std::vector<std::unique_ptr<ClientHost>> clients_;
  HostId server_host_ = kInvalidHost;
  SimTime coordinator_free_at_ = 0.0;
  // Ordered map: round scheduling iterates apps_, so walk order must be stable.
  std::map<U128, std::unique_ptr<AppRuntime>> apps_;
};

}  // namespace totoro

#endif  // SRC_BASELINES_CENTRAL_ENGINE_H_
