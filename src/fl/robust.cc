#include "src/fl/robust.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {
namespace {

// Sample-weighted mean with the exact accumulation order of FederatedAverage
// (aggregation.cc), so kNormClip with a generous budget reproduces FedAvg bit-for-bit.
std::vector<float> WeightedMean(const std::vector<WeightedUpdate>& updates) {
  const size_t dim = updates[0].weights.size();
  std::vector<double> acc(dim, 0.0);
  double total = 0.0;
  for (const auto& u : updates) {
    CHECK_EQ(u.weights.size(), dim);
    CHECK_GT(u.sample_weight, 0.0);
    for (size_t i = 0; i < dim; ++i) {
      acc[i] += u.sample_weight * static_cast<double>(u.weights[i]);
    }
    total += u.sample_weight;
  }
  std::vector<float> out(dim);
  for (size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<float>(acc[i] / total);
  }
  return out;
}

double DeltaNorm(std::span<const float> weights, std::span<const float> reference) {
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double d = static_cast<double>(weights[i]) - static_cast<double>(reference[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

const char* RobustAggregationName(RobustAggregation rule) {
  switch (rule) {
    case RobustAggregation::kNone:
      return "fedavg";
    case RobustAggregation::kCoordinateMedian:
      return "coordinate_median";
    case RobustAggregation::kTrimmedMean:
      return "trimmed_mean";
    case RobustAggregation::kNormClip:
      return "norm_clip";
  }
  return "unknown";
}

bool AllFinite(std::span<const float> weights) {
  for (const float w : weights) {
    if (!std::isfinite(w)) {
      return false;
    }
  }
  return true;
}

std::vector<float> CoordinateMedian(const std::vector<WeightedUpdate>& updates) {
  CHECK(!updates.empty());
  const size_t dim = updates[0].weights.size();
  const size_t n = updates.size();
  std::vector<float> out(dim);
  std::vector<float> column(n);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t u = 0; u < n; ++u) {
      CHECK_EQ(updates[u].weights.size(), dim);
      column[u] = updates[u].weights[i];
    }
    std::sort(column.begin(), column.end());
    if (n % 2 == 1) {
      out[i] = column[n / 2];
    } else {
      // Midpoint of the two central values, computed in double so the result does not
      // depend on which of the two came first.
      out[i] = static_cast<float>(
          (static_cast<double>(column[n / 2 - 1]) + static_cast<double>(column[n / 2])) /
          2.0);
    }
  }
  return out;
}

std::vector<float> TrimmedMean(const std::vector<WeightedUpdate>& updates,
                               double trim_fraction) {
  CHECK(!updates.empty());
  CHECK_GE(trim_fraction, 0.0);
  CHECK_LT(trim_fraction, 0.5);
  const size_t dim = updates[0].weights.size();
  const size_t n = updates.size();
  size_t trim = static_cast<size_t>(std::floor(trim_fraction * static_cast<double>(n)));
  if (2 * trim >= n) {
    trim = (n - 1) / 2;  // Keep at least one value per coordinate.
  }
  std::vector<float> out(dim);
  std::vector<float> column(n);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t u = 0; u < n; ++u) {
      CHECK_EQ(updates[u].weights.size(), dim);
      column[u] = updates[u].weights[i];
    }
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (size_t u = trim; u < n - trim; ++u) {
      acc += static_cast<double>(column[u]);
    }
    out[i] = static_cast<float>(acc / static_cast<double>(n - 2 * trim));
  }
  return out;
}

std::vector<float> NormClippedMean(const std::vector<WeightedUpdate>& updates,
                                   std::span<const float> reference, double clip_norm,
                                   size_t* clipped_out) {
  CHECK(!updates.empty());
  const size_t dim = updates[0].weights.size();
  CHECK_EQ(reference.size(), dim);
  std::vector<double> norms(updates.size());
  for (size_t u = 0; u < updates.size(); ++u) {
    CHECK_EQ(updates[u].weights.size(), dim);
    norms[u] = DeltaNorm(updates[u].weights, reference);
  }
  double budget = clip_norm;
  if (budget <= 0.0) {
    // Auto budget: median of the round's delta norms — a majority of honest
    // contributors keeps it at honest scale no matter how large the attackers go.
    std::vector<double> sorted = norms;
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();
    budget = n % 2 == 1 ? sorted[n / 2] : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
  }
  size_t clipped = 0;
  std::vector<WeightedUpdate> bounded;
  bounded.reserve(updates.size());
  for (size_t u = 0; u < updates.size(); ++u) {
    if (norms[u] <= budget || norms[u] == 0.0) {
      bounded.push_back(updates[u]);
      continue;
    }
    ++clipped;
    const double scale = budget / norms[u];
    WeightedUpdate shrunk;
    shrunk.sample_weight = updates[u].sample_weight;
    shrunk.weights.resize(dim);
    for (size_t i = 0; i < dim; ++i) {
      const double d =
          static_cast<double>(updates[u].weights[i]) - static_cast<double>(reference[i]);
      shrunk.weights[i] = static_cast<float>(static_cast<double>(reference[i]) + d * scale);
    }
    bounded.push_back(std::move(shrunk));
  }
  if (clipped_out != nullptr) {
    *clipped_out = clipped;
  }
  return WeightedMean(bounded);
}

}  // namespace totoro
