#include "src/fl/privacy.h"

#include <cmath>

#include "src/common/check.h"

namespace totoro {

std::vector<float> ApplyDp(std::span<const float> weights, std::span<const float> reference,
                           const DpConfig& config, Rng& rng) {
  CHECK_EQ(weights.size(), reference.size());
  CHECK_GT(config.clip_norm, 0.0);
  CHECK_GE(config.noise_multiplier, 0.0);
  const size_t n = weights.size();
  std::vector<float> delta(n);
  double norm_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    delta[i] = weights[i] - reference[i];
    norm_sq += static_cast<double>(delta[i]) * delta[i];
  }
  const double norm = std::sqrt(norm_sq);
  const double scale = norm > config.clip_norm ? config.clip_norm / norm : 1.0;
  const double sigma =
      config.noise_multiplier * config.clip_norm / std::sqrt(static_cast<double>(n));
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double noised = static_cast<double>(delta[i]) * scale + rng.Gaussian(0.0, sigma);
    out[i] = reference[i] + static_cast<float>(noised);
  }
  return out;
}

}  // namespace totoro
