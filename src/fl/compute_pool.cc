#include "src/fl/compute_pool.h"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/env.h"

namespace totoro {

struct ComputePool::Ticket::State {
  TrainFn fn;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  LocalUpdate result;
  std::exception_ptr error;

  void Run() {
    LocalUpdate update;
    std::exception_ptr err;
    // Accumulates into the RUNNING thread's profiler: the caller's tree in inline
    // mode (nested under the submitting phase), the worker's thread-local tree in
    // pooled mode (drained into the pool owner's tree at destruction).
    ProfileScope profile_task("compute_task");
    try {
      update = fn();
    } catch (...) {
      err = std::current_exception();
    }
    fn = nullptr;  // Release captured payloads promptly.
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(update);
      error = err;
      done = true;
    }
    cv.notify_all();
  }
};

void ComputePool::Ticket::Wait() const {
  CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) {
    std::rethrow_exception(state_->error);
  }
}

LocalUpdate ComputePool::Ticket::Take() {
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->result);
}

ComputePool::ComputePool(size_t threads) {
  if (threads <= 1) {
    return;  // Inline mode.
  }
  // Pre-sized before any thread starts, so workers store into their slot without
  // synchronization beyond the join in the destructor.
  worker_profilers_ = std::vector<Profiler>(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ComputePool::~ComputePool() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    // Fold worker-side phases into this (the owning) thread's profiler in worker-index
    // order: fixed fold order + name-ordered phase maps = deterministic merged tree.
    Profiler& profiler = GlobalProfiler();
    for (const Profiler& worker_tree : worker_profilers_) {
      profiler.MergeFrom(worker_tree);
    }
  }
  // Queued-but-unstarted tasks still owe their tickets a result (a rejoin event may
  // outlive the pool); run them inline.
  for (auto& state : queue_) {
    state->Run();
  }
  queue_.clear();
}

ComputePool::Ticket ComputePool::Submit(TrainFn fn) {
  CHECK(fn != nullptr);
  auto state = std::make_shared<Ticket::State>();
  state->fn = std::move(fn);
  ++tasks_submitted_;
  if (workers_.empty()) {
    state->Run();
    return Ticket(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(state);
  }
  cv_.notify_one();
  return Ticket(std::move(state));
}

void ComputePool::WorkerLoop(size_t index) {
  for (;;) {
    std::shared_ptr<Ticket::State> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        break;  // stopping_ with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task->Run();
  }
  // Snapshot this worker's thread-local profiler before it dies with the thread; the
  // destructor merges the slots after joining us, so the store is ordered by the join.
  worker_profilers_[index] = GlobalProfiler();
}

size_t ComputePool::ThreadsFromEnv() {
  return EnvThreadCount("TOTORO_COMPUTE_THREADS", 1);
}

}  // namespace totoro
