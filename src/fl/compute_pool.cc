#include "src/fl/compute_pool.h"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/env.h"

namespace totoro {

struct ComputePool::Ticket::State {
  TrainFn fn;

  Mutex mu;
  CondVar cv;
  bool done TOTORO_GUARDED_BY(mu) = false;
  LocalUpdate result TOTORO_GUARDED_BY(mu);
  std::exception_ptr error TOTORO_GUARDED_BY(mu);

  void Run() {
    LocalUpdate update;
    std::exception_ptr err;
    // Accumulates into the RUNNING thread's profiler: the caller's tree in inline
    // mode (nested under the submitting phase), the worker's thread-local tree in
    // pooled mode (drained into the pool owner's tree at destruction).
    ProfileScope profile_task("compute_task");
    try {
      update = fn();
    } catch (...) {
      err = std::current_exception();
    }
    fn = nullptr;  // Release captured payloads promptly.
    {
      MutexLock lock(&mu);
      result = std::move(update);
      error = err;
      done = true;
    }
    cv.NotifyAll();
  }
};

void ComputePool::Ticket::Wait() const {
  CHECK(state_ != nullptr);
  MutexLock lock(&state_->mu);
  while (!state_->done) {
    state_->cv.Wait(state_->mu);
  }
  if (state_->error) {
    std::rethrow_exception(state_->error);
  }
}

LocalUpdate ComputePool::Ticket::Take() {
  Wait();
  MutexLock lock(&state_->mu);
  return std::move(state_->result);
}

ComputePool::ComputePool(size_t threads) {
  if (threads <= 1) {
    return;  // Inline mode.
  }
  // Pre-sized before any thread starts, so workers store into their slot without
  // synchronization beyond the join in the destructor.
  worker_profilers_ = std::vector<Profiler>(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ComputePool::~ComputePool() {
  if (!workers_.empty()) {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    for (auto& worker : workers_) {
      worker.join();
    }
    // Fold worker-side phases into this (the owning) thread's profiler in worker-index
    // order: fixed fold order + name-ordered phase maps = deterministic merged tree.
    Profiler& profiler = GlobalProfiler();
    for (const Profiler& worker_tree : worker_profilers_) {
      profiler.MergeFrom(worker_tree);
    }
  }
  // Queued-but-unstarted tasks still owe their tickets a result (a rejoin event may
  // outlive the pool); run them inline. All workers are joined (or never existed), but
  // the lock keeps the guarded access provable and costs nothing uncontended.
  std::deque<std::shared_ptr<Ticket::State>> leftovers;
  {
    MutexLock lock(&mu_);
    leftovers.swap(queue_);
  }
  for (auto& state : leftovers) {
    state->Run();
  }
}

ComputePool::Ticket ComputePool::Submit(TrainFn fn) {
  CHECK(fn != nullptr);
  auto state = std::make_shared<Ticket::State>();
  state->fn = std::move(fn);
  ++tasks_submitted_;
  if (workers_.empty()) {
    state->Run();
    return Ticket(std::move(state));
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(state);
  }
  cv_.NotifyOne();
  return Ticket(std::move(state));
}

void ComputePool::WorkerLoop(size_t index) {
  for (;;) {
    std::shared_ptr<Ticket::State> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        break;  // stopping_ with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task->Run();
  }
  // Snapshot this worker's thread-local profiler before it dies with the thread; the
  // destructor merges the slots after joining us, so the store is ordered by the join.
  worker_profilers_[index] = GlobalProfiler();
}

size_t ComputePool::ThreadsFromEnv() {
  return EnvThreadCount("TOTORO_COMPUTE_THREADS", 1);
}

}  // namespace totoro
