// Differential-privacy primitives: L2 clipping + Gaussian noise on client updates.
//
// Matches §4.4: "if an application owner ... specifies the use of differential privacy
// with Gaussian noise to secure weights, ... the leaf nodes, serving as workers, will
// apply Gaussian noise to local training." Noise is applied to the weight *delta* so the
// magnitude is calibrated to the clip norm, the standard client-level DP-FedAvg recipe.
#ifndef SRC_FL_PRIVACY_H_
#define SRC_FL_PRIVACY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"

namespace totoro {

struct DpConfig {
  double clip_norm = 1.0;       // L2 bound on the update delta.
  double noise_multiplier = 0.5;  // Noise stddev = multiplier * clip_norm.
};

// Clips (weights - reference) to clip_norm, adds N(0, (multiplier*clip)^2 / dim) per
// coordinate, and returns reference + noised delta.
std::vector<float> ApplyDp(std::span<const float> weights, std::span<const float> reference,
                           const DpConfig& config, Rng& rng);

}  // namespace totoro

#endif  // SRC_FL_PRIVACY_H_
