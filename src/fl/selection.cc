#include "src/fl/selection.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

std::vector<size_t> RandomSelector::Select(const std::vector<ClientInfo>& clients, size_t count,
                                           Rng& rng) {
  CHECK_LE(count, clients.size());
  std::vector<size_t> indices(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    indices[i] = clients[i].index;
  }
  rng.Shuffle(indices);
  indices.resize(count);
  return indices;
}

OortLikeSelector::OortLikeSelector(double exploration_fraction, double speed_alpha)
    : exploration_fraction_(exploration_fraction), speed_alpha_(speed_alpha) {
  CHECK_GE(exploration_fraction_, 0.0);
  CHECK_LE(exploration_fraction_, 1.0);
}

std::vector<size_t> OortLikeSelector::Select(const std::vector<ClientInfo>& clients,
                                             size_t count, Rng& rng) {
  CHECK_LE(count, clients.size());
  const size_t explore = static_cast<size_t>(std::floor(exploration_fraction_ * count));
  const size_t exploit = count - explore;

  // Exploit: top clients by utility.
  std::vector<size_t> order(clients.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ua = clients[a].last_loss * std::pow(clients[a].speed_factor, speed_alpha_);
    const double ub = clients[b].last_loss * std::pow(clients[b].speed_factor, speed_alpha_);
    return ua > ub;
  });
  std::vector<size_t> chosen;
  std::vector<bool> taken(clients.size(), false);
  for (size_t i = 0; i < exploit; ++i) {
    chosen.push_back(clients[order[i]].index);
    taken[order[i]] = true;
  }
  // Explore: uniform over the rest.
  std::vector<size_t> rest;
  for (size_t i = 0; i < clients.size(); ++i) {
    if (!taken[i]) {
      rest.push_back(i);
    }
  }
  rng.Shuffle(rest);
  for (size_t i = 0; i < explore && i < rest.size(); ++i) {
    chosen.push_back(clients[rest[i]].index);
    taken[rest[i]] = true;
  }
  // The exploration pool can run short of the explore quota; a short cohort would
  // silently shrink the round (and, under secure aggregation, desynchronize the mask
  // group from the broadcast cohort). Top up deterministically from the remaining
  // exploit-ranked order.
  for (size_t i = exploit; i < order.size() && chosen.size() < count; ++i) {
    if (!taken[order[i]]) {
      chosen.push_back(clients[order[i]].index);
      taken[order[i]] = true;
    }
  }
  CHECK_EQ(chosen.size(), count);
  return chosen;
}

}  // namespace totoro
