#include "src/fl/selection.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace totoro {

std::vector<size_t> RandomSelector::Select(const std::vector<ClientInfo>& clients, size_t count,
                                           Rng& rng) {
  CHECK_LE(count, clients.size());
  std::vector<size_t> indices(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    indices[i] = clients[i].index;
  }
  rng.Shuffle(indices);
  indices.resize(count);
  return indices;
}

std::span<const DeviceClass> DefaultDeviceClasses() {
  // Fractions sum to 1; ordered rich-to-poor so class index doubles as a tier rank.
  static constexpr DeviceClass kClasses[] = {
      {"edge_server", 4.0, 4.0, 0.10},
      {"laptop", 2.0, 2.0, 0.25},
      {"phone", 1.0, 1.0, 0.45},
      {"sensor", 0.25, 0.25, 0.20},
  };
  return {kClasses, sizeof(kClasses) / sizeof(kClasses[0])};
}

std::vector<size_t> AssignDeviceClasses(size_t count,
                                        std::span<const DeviceClass> classes,
                                        uint64_t seed) {
  CHECK(!classes.empty());
  std::vector<double> fractions;
  fractions.reserve(classes.size());
  for (const DeviceClass& c : classes) {
    CHECK_GT(c.fleet_fraction, 0.0);
    fractions.push_back(c.fleet_fraction);
  }
  Rng rng(seed);
  std::vector<size_t> assignment(count);
  for (size_t i = 0; i < count; ++i) {
    assignment[i] = rng.WeightedIndex(fractions);
  }
  return assignment;
}

OortLikeSelector::OortLikeSelector(double exploration_fraction, double speed_alpha,
                                   double bandwidth_beta)
    : exploration_fraction_(exploration_fraction), speed_alpha_(speed_alpha),
      bandwidth_beta_(bandwidth_beta) {
  CHECK_GE(exploration_fraction_, 0.0);
  CHECK_LE(exploration_fraction_, 1.0);
}

std::vector<size_t> OortLikeSelector::Select(const std::vector<ClientInfo>& clients,
                                             size_t count, Rng& rng) {
  CHECK_LE(count, clients.size());
  const size_t explore = static_cast<size_t>(std::floor(exploration_fraction_ * count));
  const size_t exploit = count - explore;

  // Exploit: top clients by utility.
  std::vector<size_t> order(clients.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  // bandwidth^0 == 1.0 exactly, so the default beta reproduces the compute-only
  // utility bit-for-bit (existing golden runs must not move).
  const auto utility = [&](size_t i) {
    return clients[i].last_loss * std::pow(clients[i].speed_factor, speed_alpha_) *
           std::pow(clients[i].bandwidth_factor, bandwidth_beta_);
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return utility(a) > utility(b);
  });
  std::vector<size_t> chosen;
  std::vector<bool> taken(clients.size(), false);
  for (size_t i = 0; i < exploit; ++i) {
    chosen.push_back(clients[order[i]].index);
    taken[order[i]] = true;
  }
  // Explore: uniform over the rest.
  std::vector<size_t> rest;
  for (size_t i = 0; i < clients.size(); ++i) {
    if (!taken[i]) {
      rest.push_back(i);
    }
  }
  rng.Shuffle(rest);
  for (size_t i = 0; i < explore && i < rest.size(); ++i) {
    chosen.push_back(clients[rest[i]].index);
    taken[rest[i]] = true;
  }
  // The exploration pool can run short of the explore quota; a short cohort would
  // silently shrink the round (and, under secure aggregation, desynchronize the mask
  // group from the broadcast cohort). Top up deterministically from the remaining
  // exploit-ranked order.
  for (size_t i = exploit; i < order.size() && chosen.size() < count; ++i) {
    if (!taken[order[i]]) {
      chosen.push_back(clients[order[i]].index);
      taken[order[i]] = true;
    }
  }
  CHECK_EQ(chosen.size(), count);
  return chosen;
}

}  // namespace totoro
