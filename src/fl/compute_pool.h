// Deterministic parallel compute offload for local training.
//
// The simulator is single-threaded by contract; what dominates the TTA benches'
// wall-clock is not event dispatch but the real CPU work inside each event — the
// LocalTrainer::Train calls the engine runs when a round's broadcast reaches its
// workers. Those calls are mutually independent (per-trainer model, shard and RNG;
// no thread-local tracer/metrics/log access), so they can run on worker threads
// while virtual time stands still.
//
// Determinism contract (the same guarantee bench/parallel_runner gives whole trials,
// applied inside one engine): Submit() returns a Ticket immediately; the caller
// schedules a *rejoin* event at the client's virtual-time completion stamp, which
// Wait()s on the ticket and folds the result into the event stream. Everything the
// schedule depends on (the completion stamp, work accounting, trace spans) is computed
// from inputs available BEFORE training runs, so the sequence of Schedule() calls —
// and therefore event order, traces and metrics — is bit-identical for any thread
// count, including the inline (threads <= 1) mode that never spawns a thread.
//
// Thread count comes from TOTORO_COMPUTE_THREADS (default 1 = inline).
#ifndef SRC_FL_COMPUTE_POOL_H_
#define SRC_FL_COMPUTE_POOL_H_

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/fl/client.h"
#include "src/obs/profiler.h"

namespace totoro {

class ComputePool {
 public:
  using TrainFn = std::function<LocalUpdate()>;

  // Handle to one submitted training task. Copyable (shared state); empty tickets are
  // valid() == false. Wait() blocks the calling thread until the task ran (a no-op in
  // inline mode) and rethrows any exception the task threw.
  class Ticket {
   public:
    Ticket() = default;

    bool valid() const { return state_ != nullptr; }
    // Blocks until the result is ready; the result stays readable afterwards.
    void Wait() const;
    // Wait() and move the result out. Call at most once per ticket.
    LocalUpdate Take();

   private:
    friend class ComputePool;
    struct State;
    explicit Ticket(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  // threads <= 1 selects inline mode: Submit() runs the task on the calling thread and
  // no worker threads exist at all.
  explicit ComputePool(size_t threads);
  ~ComputePool();
  ComputePool(const ComputePool&) = delete;
  ComputePool& operator=(const ComputePool&) = delete;

  Ticket Submit(TrainFn fn);

  size_t threads() const { return workers_.empty() ? 1 : workers_.size(); }
  // Tasks accepted so far (deterministic: counted at Submit on the simulator thread).
  uint64_t tasks_submitted() const { return tasks_submitted_; }

  // Parses TOTORO_COMPUTE_THREADS (>= 1); 1 when unset or unparsable.
  static size_t ThreadsFromEnv();

 private:
  void WorkerLoop(size_t index);

  std::vector<std::thread> workers_;
  // One slot per worker: each worker copies its thread-local profiler (where any
  // ProfileScope inside a task accumulated) into its own slot just before its
  // GlobalProfiler dies with the thread. The destructor folds the slots into the
  // joining thread's profiler in worker-index order — phase maps are name-ordered and
  // the fold order is fixed, so the merged tree is deterministic for a given thread
  // count. Without this drain, worker-side phases land in orphan trees that vanish at
  // thread exit and never reach any export.
  std::vector<Profiler> worker_profilers_;
  uint64_t tasks_submitted_ = 0;

  Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<Ticket::State>> queue_ TOTORO_GUARDED_BY(mu_);
  bool stopping_ TOTORO_GUARDED_BY(mu_) = false;
};

}  // namespace totoro

#endif  // SRC_FL_COMPUTE_POOL_H_
