// Client (participant) selection policies (§2.2.1's "flexible designs of participant
// selection algorithms").
//
// Random selection is FedAvg's default. The Oort-style policy scores clients by
// statistical utility (recent training loss — higher loss means more informative data)
// blended with system utility (device speed), the trade-off Oort [OSDI'21] introduced.
#ifndef SRC_FL_SELECTION_H_
#define SRC_FL_SELECTION_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace totoro {

struct ClientInfo {
  size_t index = 0;
  double last_loss = 1.0;     // Statistical utility signal.
  double speed_factor = 1.0;  // System utility signal.
};

class ClientSelector {
 public:
  virtual ~ClientSelector() = default;
  // Picks `count` distinct clients out of `clients`.
  virtual std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                                     Rng& rng) = 0;
};

class RandomSelector : public ClientSelector {
 public:
  std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                             Rng& rng) override;
};

class OortLikeSelector : public ClientSelector {
 public:
  // exploration_fraction of the budget is sampled uniformly; the rest goes to the
  // highest utility = loss * speed^alpha clients.
  OortLikeSelector(double exploration_fraction = 0.2, double speed_alpha = 0.5);
  std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                             Rng& rng) override;

 private:
  double exploration_fraction_;
  double speed_alpha_;
};

}  // namespace totoro

#endif  // SRC_FL_SELECTION_H_
