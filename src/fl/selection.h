// Client (participant) selection policies (§2.2.1's "flexible designs of participant
// selection algorithms").
//
// Random selection is FedAvg's default. The Oort-style policy scores clients by
// statistical utility (recent training loss — higher loss means more informative data)
// blended with system utility (device speed), the trade-off Oort [OSDI'21] introduced.
#ifndef SRC_FL_SELECTION_H_
#define SRC_FL_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"

namespace totoro {

struct ClientInfo {
  size_t index = 0;
  double last_loss = 1.0;         // Statistical utility signal.
  double speed_factor = 1.0;      // System utility signal (compute).
  double bandwidth_factor = 1.0;  // System utility signal (link quality).
};

// A fleet device class: a named (compute, bandwidth) profile. Production edge fleets
// cluster into a handful of hardware tiers; modeling them as classes (instead of
// per-node continuous factors) gives the selector discrete populations to trade off.
struct DeviceClass {
  const char* name;
  double speed_factor;      // Relative local-training speed (1.0 = reference device).
  double bandwidth_factor;  // Relative link bandwidth (1.0 = reference link).
  double fleet_fraction;    // Share of the fleet in this class; fractions sum to 1.
};

// The built-in four-tier fleet mix (server-class edge box down to constrained sensor).
std::span<const DeviceClass> DefaultDeviceClasses();

// Deterministically assigns one of `classes` to each of `count` devices by seeded
// sampling of the fleet fractions. Returns per-device class indices; feed the factors
// to TotoroEngine::SetSpeedFactors / SetBandwidthFactors and ClientInfo.
std::vector<size_t> AssignDeviceClasses(size_t count,
                                        std::span<const DeviceClass> classes,
                                        uint64_t seed);

class ClientSelector {
 public:
  virtual ~ClientSelector() = default;
  // Picks `count` distinct clients out of `clients`.
  virtual std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                                     Rng& rng) = 0;
};

class RandomSelector : public ClientSelector {
 public:
  std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                             Rng& rng) override;
};

class OortLikeSelector : public ClientSelector {
 public:
  // exploration_fraction of the budget is sampled uniformly; the rest goes to the
  // highest utility = loss * speed^alpha * bandwidth^beta clients. The default beta of
  // 0 makes the bandwidth term exactly 1.0, reproducing the compute-only policy.
  OortLikeSelector(double exploration_fraction = 0.2, double speed_alpha = 0.5,
                   double bandwidth_beta = 0.0);
  std::vector<size_t> Select(const std::vector<ClientInfo>& clients, size_t count,
                             Rng& rng) override;

 private:
  double exploration_fraction_;
  double speed_alpha_;
  double bandwidth_beta_;
};

}  // namespace totoro

#endif  // SRC_FL_SELECTION_H_
