#include "src/fl/compression.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/ml/serialize.h"

namespace totoro {

CompressedUpdate CompressUpdate(std::span<const float> weights, std::span<const float> reference,
                                const CompressionConfig& config) {
  CompressedUpdate out;
  switch (config.kind) {
    case CompressionKind::kNone: {
      out.reconstructed.assign(weights.begin(), weights.end());
      out.wire_bytes = weights.size() * sizeof(float);
      return out;
    }
    case CompressionKind::kInt8: {
      const auto bytes = EncodeInt8(weights);
      out.reconstructed = DecodeInt8(bytes);
      out.wire_bytes = bytes.size();
      return out;
    }
    case CompressionKind::kTopK: {
      CHECK_EQ(weights.size(), reference.size());
      CHECK_GT(config.topk_fraction, 0.0);
      CHECK_LE(config.topk_fraction, 1.0);
      const size_t n = weights.size();
      const size_t k = std::max<size_t>(1, static_cast<size_t>(
                                               std::ceil(config.topk_fraction * n)));
      // Rank coordinates by |delta| and keep the top k.
      std::vector<float> delta(n);
      std::vector<size_t> order(n);
      for (size_t i = 0; i < n; ++i) {
        delta[i] = weights[i] - reference[i];
        order[i] = i;
      }
      std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1), order.end(),
                       [&](size_t a, size_t b) {
                         return std::abs(delta[a]) > std::abs(delta[b]);
                       });
      out.reconstructed.assign(reference.begin(), reference.end());
      for (size_t i = 0; i < k; ++i) {
        out.reconstructed[order[i]] += delta[order[i]];
      }
      // Wire format: k (index, value) pairs.
      out.wire_bytes = k * (sizeof(uint32_t) + sizeof(float));
      return out;
    }
  }
  CHECK(false);
  return out;
}

}  // namespace totoro
