#include "src/fl/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/ml/serialize.h"

namespace totoro {

void CompressedUpdate::ReconstructInto(std::span<const float> reference,
                                       std::span<float> out) const {
  CHECK_EQ(out.size(), num_params);
  switch (kind) {
    case CompressionKind::kNone: {
      CHECK_EQ(payload.size(), num_params * sizeof(float));
      std::memcpy(out.data(), payload.data(), payload.size());
      return;
    }
    case CompressionKind::kInt8: {
      CHECK_EQ(payload.size(), sizeof(float) + num_params);
      // Same math as DecodeInt8, written into the caller's buffer.
      float scale = 0.0f;
      std::memcpy(&scale, payload.data(), sizeof(float));
      const uint8_t* q = payload.data() + sizeof(float);
      for (size_t i = 0; i < num_params; ++i) {
        out[i] = static_cast<float>(static_cast<int8_t>(q[i])) * scale;
      }
      return;
    }
    case CompressionKind::kTopK: {
      CHECK_EQ(reference.size(), num_params);
      CHECK(out.data() != reference.data());
      std::copy(reference.begin(), reference.end(), out.begin());
      for (size_t i = 0; i < topk_indices.size(); ++i) {
        out[topk_indices[i]] += topk_deltas[i];
      }
      return;
    }
  }
  CHECK(false);
}

std::vector<float> CompressedUpdate::Reconstruct(std::span<const float> reference) const {
  std::vector<float> out(num_params);
  ReconstructInto(reference, out);
  return out;
}

CompressedUpdate CompressUpdate(std::span<const float> weights, std::span<const float> reference,
                                const CompressionConfig& config) {
  CompressedUpdate out;
  out.kind = config.kind;
  out.num_params = weights.size();
  switch (config.kind) {
    case CompressionKind::kNone: {
      out.payload = EncodeFloat32(weights);
      out.wire_bytes = weights.size() * sizeof(float);
      return out;
    }
    case CompressionKind::kInt8: {
      out.payload = EncodeInt8(weights);
      out.wire_bytes = out.payload.size();
      return out;
    }
    case CompressionKind::kTopK: {
      CHECK_EQ(weights.size(), reference.size());
      CHECK_GT(config.topk_fraction, 0.0);
      CHECK_LE(config.topk_fraction, 1.0);
      const size_t n = weights.size();
      const size_t k = std::max<size_t>(1, static_cast<size_t>(
                                               std::ceil(config.topk_fraction * n)));
      // Rank coordinates by |delta| and keep the top k.
      std::vector<float> delta(n);
      std::vector<size_t> order(n);
      for (size_t i = 0; i < n; ++i) {
        delta[i] = weights[i] - reference[i];
        order[i] = i;
      }
      std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1), order.end(),
                       [&](size_t a, size_t b) {
                         return std::abs(delta[a]) > std::abs(delta[b]);
                       });
      out.topk_indices.reserve(k);
      out.topk_deltas.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        out.topk_indices.push_back(static_cast<uint32_t>(order[i]));
        out.topk_deltas.push_back(delta[order[i]]);
      }
      // Wire format: k (index, value) pairs.
      out.wire_bytes = k * (sizeof(uint32_t) + sizeof(float));
      return out;
    }
  }
  CHECK(false);
  return out;
}

}  // namespace totoro
