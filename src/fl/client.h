// Client-side local training: one worker's contribution to one FL round.
//
// A LocalTrainer owns a worker's data shard and a private model replica. Each round it
// loads the broadcast global weights, runs local minibatch SGD (optionally with the
// FedProx proximal term, gradient clipping + Gaussian noise for differential privacy,
// and update compression), and emits the update plus the virtual compute time the work
// costs on this device.
#ifndef SRC_FL_CLIENT_H_
#define SRC_FL_CLIENT_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/fl/compression.h"
#include "src/fl/privacy.h"
#include "src/ml/model.h"

namespace totoro {

// Virtual-time cost model: training touches (params x examples) units of work; a
// device's speed factor converts work to milliseconds. Heterogeneous devices get
// different speed factors.
struct ComputeModel {
  // Work units (param-example products) processed per virtual ms at speed factor 1.0.
  double work_units_per_ms = 2.0e5;

  double TrainTimeMs(size_t params, size_t examples_processed, double speed_factor) const {
    return static_cast<double>(params) * static_cast<double>(examples_processed) /
           (work_units_per_ms * speed_factor);
  }
};

struct LocalUpdate {
  std::vector<float> weights;
  double sample_weight = 0.0;     // Shard size (FedAvg weighting).
  float train_loss = 0.0f;
  double compute_time_ms = 0.0;   // Virtual time the local round took.
  uint64_t wire_bytes = 0;        // After compression, if any.
};

class LocalTrainer {
 public:
  LocalTrainer(std::unique_ptr<Model> model, Dataset shard, double speed_factor,
               uint64_t seed);

  // Runs one local round starting from `global_weights`.
  LocalUpdate Train(std::span<const float> global_weights, const TrainConfig& config,
                    const ComputeModel& compute,
                    const std::optional<DpConfig>& dp = std::nullopt,
                    const std::optional<CompressionConfig>& compression = std::nullopt);

  const Dataset& shard() const { return shard_; }
  double speed_factor() const { return speed_factor_; }
  Model& model() { return *model_; }
  // Most recent local training loss; used by utility-based client selection.
  float last_loss() const { return last_loss_; }

 private:
  std::unique_ptr<Model> model_;
  Dataset shard_;
  double speed_factor_;
  Rng rng_;
  float last_loss_ = 0.0f;
};

}  // namespace totoro

#endif  // SRC_FL_CLIENT_H_
