// Federated aggregation rules (FedAvg / FedProx server side) and the adapter that plugs
// them into the pub/sub tree's CombineFn for in-network partial aggregation.
//
// Both rules reduce to sample-weighted averaging of weight vectors on the server side
// (FedProx changes the *client* objective); the weighted mean is associative, which is
// precisely why Totoro's trees can aggregate hop by hop without changing the result.
#ifndef SRC_FL_AGGREGATION_H_
#define SRC_FL_AGGREGATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/fl/robust.h"
#include "src/pubsub/scribe_node.h"

namespace totoro {

// Sample-weighted average of updates; all vectors must agree in dimension.
std::vector<float> FederatedAverage(const std::vector<WeightedUpdate>& updates);

// The weight payload carried through pub/sub trees.
struct WeightsPayload {
  std::vector<float> weights;
  // Participant ids behind this (partial) aggregate, sorted and unique. Leaves set
  // their own id; the secure-sum combiner merges them so the root knows the survivor
  // set and can run dropout correction. Empty for apps that never read it (FedAvg).
  std::vector<uint64_t> contributors;
};

// CombineFn performing weighted averaging on WeightsPayload pieces. Used as the
// application-supplied aggregation function of the Totoro API (§4.3: "owners can specify
// different aggregation functions in their trees").
CombineFn MakeFedAvgCombiner();

// The payload carried through pub/sub trees when a *non-associative* robust rule
// (src/fl/robust.h) is active: interior nodes cannot fold a median hop by hop, so they
// concatenate the individual contributions instead and the root applies the reduction
// once over the full list. `ids` and `updates` are parallel arrays kept sorted by id,
// which makes the merged list independent of arrival order (permutation invariance).
struct UpdateListPayload {
  std::vector<uint64_t> ids;
  std::vector<WeightedUpdate> updates;
};

// CombineFn that merges UpdateListPayload pieces by id-sorted concatenation. Installed
// per topic (ScribeNode::SetCombineFnForTopic) exactly like the secure-sum combiner.
// Null-data pieces (unselected workers' acks) are skipped. Duplicate ids are rejected
// with a CHECK — the closed-round guards upstream must prevent double submission.
CombineFn MakeCollectCombiner();

}  // namespace totoro

#endif  // SRC_FL_AGGREGATION_H_
