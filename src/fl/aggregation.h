// Federated aggregation rules (FedAvg / FedProx server side) and the adapter that plugs
// them into the pub/sub tree's CombineFn for in-network partial aggregation.
//
// Both rules reduce to sample-weighted averaging of weight vectors on the server side
// (FedProx changes the *client* objective); the weighted mean is associative, which is
// precisely why Totoro's trees can aggregate hop by hop without changing the result.
#ifndef SRC_FL_AGGREGATION_H_
#define SRC_FL_AGGREGATION_H_

#include <memory>
#include <span>
#include <vector>

#include "src/pubsub/scribe_node.h"

namespace totoro {

// A (weights, sample-count) contribution.
struct WeightedUpdate {
  std::vector<float> weights;
  double sample_weight = 1.0;
};

// Sample-weighted average of updates; all vectors must agree in dimension.
std::vector<float> FederatedAverage(const std::vector<WeightedUpdate>& updates);

// The weight payload carried through pub/sub trees.
struct WeightsPayload {
  std::vector<float> weights;
  // Participant ids behind this (partial) aggregate, sorted and unique. Leaves set
  // their own id; the secure-sum combiner merges them so the root knows the survivor
  // set and can run dropout correction. Empty for apps that never read it (FedAvg).
  std::vector<uint64_t> contributors;
};

// CombineFn performing weighted averaging on WeightsPayload pieces. Used as the
// application-supplied aggregation function of the Totoro API (§4.3: "owners can specify
// different aggregation functions in their trees").
CombineFn MakeFedAvgCombiner();

}  // namespace totoro

#endif  // SRC_FL_AGGREGATION_H_
