// Secure aggregation via pairwise additive masking (§4.4 lists it among the privacy
// techniques an application owner can select).
//
// Simplified Bonawitz-style scheme: every ordered pair (i, j) of the round's
// participants shares a PRG seed. Participant i uploads
//     masked_i = weight_i * w_i + sum_{j > i} PRG(s_ij) - sum_{j < i} PRG(s_ji)
// so any node summing ALL participants' vectors sees the masks cancel exactly, yet no
// individual update is ever visible to aggregators — including Totoro's interior tree
// nodes, which simply add masked vectors (MakeSecureSumCombiner). The root divides the
// cancelled sum by the total sample weight to recover the FedAvg result bit-for-bit.
//
// Key distribution is modelled with a trusted dealer (the group object derives all
// pairwise seeds from one group seed); the paper's deployment would run a key agreement
// instead. Dropouts are handled the way real deployments do: the dealer computes the
// correction term for the surviving set (DropoutCorrection), mirroring the mask-recovery
// round of the full protocol.
#ifndef SRC_FL_SECURE_AGG_H_
#define SRC_FL_SECURE_AGG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/pubsub/scribe_node.h"

namespace totoro {

class SecureAggregationGroup {
 public:
  // `participants` are stable opaque ids (e.g. worker node indices) of everyone expected
  // to contribute this round; `group_seed` seeds the pairwise PRGs.
  SecureAggregationGroup(std::vector<uint64_t> participants, uint64_t group_seed);

  size_t size() const { return participants_.size(); }
  // Sorted participant ids (the full expected cohort of the round).
  const std::vector<uint64_t>& participants() const { return participants_; }

  // The net mask participant `id` adds to its weighted update of dimension `dim`.
  // Summing MaskFor over all participants yields exactly zero.
  std::vector<double> MaskFor(uint64_t id, size_t dim) const;

  // Masks `weights` (scaled by `weight`) for participant `id`.
  std::vector<float> MaskUpdate(uint64_t id, std::span<const float> weights,
                                double weight) const;

  // Correction to SUBTRACT from a partial sum in which only `survivors` contributed:
  // the sum of the survivors' mask shares involving dropped participants.
  std::vector<double> DropoutCorrection(const std::vector<uint64_t>& survivors,
                                        size_t dim) const;

 private:
  // PRG stream for the ordered pair (lo, hi); both endpoints derive the same stream.
  std::vector<double> PairStream(uint64_t a, uint64_t b, size_t dim) const;

  std::vector<uint64_t> participants_;
  uint64_t group_seed_;
};

// Interior-node combiner for securely aggregated rounds: element-wise SUM of masked
// vectors (no averaging — masks only cancel under plain summation). Weights/counts
// accumulate as usual so the root can finalize.
CombineFn MakeSecureSumCombiner();

// Root-side finalization: masked sum (with masks cancelled) -> FedAvg average.
std::vector<float> FinalizeSecureAverage(std::span<const float> masked_sum,
                                         double total_weight);

}  // namespace totoro

#endif  // SRC_FL_SECURE_AGG_H_
