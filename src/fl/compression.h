// Update-compression techniques (§2.2.1 application-specific customization).
//
// Two standard schemes: top-k sparsification (keep the k largest-magnitude deltas) and
// int8 quantization. Compress() returns both the reconstructed dense update (what the
// aggregator uses) and the wire size (what the network charges), so experiments can
// trade accuracy against traffic.
#ifndef SRC_FL_COMPRESSION_H_
#define SRC_FL_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace totoro {

enum class CompressionKind { kNone, kTopK, kInt8 };

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  // For kTopK: fraction of coordinates kept (0 < fraction <= 1).
  double topk_fraction = 0.1;
};

struct CompressedUpdate {
  std::vector<float> reconstructed;  // Dense weights after a compress/decompress trip.
  uint64_t wire_bytes = 0;
};

// Compresses `weights` relative to `reference` (the broadcast global weights): top-k is
// applied to the delta, then the delta is re-applied to the reference.
CompressedUpdate CompressUpdate(std::span<const float> weights, std::span<const float> reference,
                                const CompressionConfig& config);

}  // namespace totoro

#endif  // SRC_FL_COMPRESSION_H_
