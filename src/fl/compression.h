// Update-compression techniques (§2.2.1 application-specific customization).
//
// Two standard schemes: top-k sparsification (keep the k largest-magnitude deltas) and
// int8 quantization. CompressUpdate() returns the COMPRESSED form only — the int8 wire
// blob or the (index, delta) pairs — plus the wire size the network charges.
// Reconstruction of the dense float update is lazy: callers that need it (the
// aggregation path) call ReconstructInto(), typically in place over the buffer they
// already own; callers that consume the quantized payload directly
// (QuantizedMlp::FromInt8Blob, src/ml/quantized.h) never pay for a dense decode at all.
#ifndef SRC_FL_COMPRESSION_H_
#define SRC_FL_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace totoro {

enum class CompressionKind { kNone, kTopK, kInt8 };

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  // For kTopK: fraction of coordinates kept (0 < fraction <= 1).
  double topk_fraction = 0.1;
};

struct CompressedUpdate {
  CompressionKind kind = CompressionKind::kNone;
  size_t num_params = 0;
  uint64_t wire_bytes = 0;

  // kInt8: the EncodeInt8 blob ([float32 scale][int8 ...]) exactly as it would travel
  // the wire; consumable without decode by QuantizedMlp::FromInt8Blob. kNone: the raw
  // float32 encoding. Empty for kTopK.
  std::vector<uint8_t> payload;
  // kTopK: the kept coordinates and their deltas vs the reference (the wire pairs).
  std::vector<uint32_t> topk_indices;
  std::vector<float> topk_deltas;

  // Materializes the dense reconstructed update into `out` (size num_params).
  //   kNone  — decodes the float payload (== the original weights).
  //   kInt8  — dequantizes the blob (reference unused; may be empty).
  //   kTopK  — copies `reference` then re-applies the kept deltas. `out` must not
  //            alias `reference`.
  // Float semantics are identical to the old eager path bit for bit.
  void ReconstructInto(std::span<const float> reference, std::span<float> out) const;

  // Allocating convenience wrapper around ReconstructInto (tests, one-shot callers).
  std::vector<float> Reconstruct(std::span<const float> reference) const;
};

// Compresses `weights` relative to `reference` (the broadcast global weights): top-k is
// applied to the delta; int8 quantizes the weights themselves. No dense reconstruction
// happens here — see CompressedUpdate::ReconstructInto.
CompressedUpdate CompressUpdate(std::span<const float> weights, std::span<const float> reference,
                                const CompressionConfig& config);

}  // namespace totoro

#endif  // SRC_FL_COMPRESSION_H_
