#include "src/fl/secure_agg.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/fl/aggregation.h"

namespace totoro {

SecureAggregationGroup::SecureAggregationGroup(std::vector<uint64_t> participants,
                                               uint64_t group_seed)
    : participants_(std::move(participants)), group_seed_(group_seed) {
  CHECK_GT(participants_.size(), 1u);
  std::sort(participants_.begin(), participants_.end());
  for (size_t i = 1; i < participants_.size(); ++i) {
    CHECK_NE(participants_[i - 1], participants_[i]);
  }
}

std::vector<double> SecureAggregationGroup::PairStream(uint64_t a, uint64_t b,
                                                       size_t dim) const {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  Rng rng(group_seed_ ^ (lo * 0x9E3779B97F4A7C15ull) ^ (hi * 0xC2B2AE3D27D4EB4Full));
  std::vector<double> stream(dim);
  for (auto& v : stream) {
    v = rng.Gaussian(0.0, 1.0);
  }
  return stream;
}

std::vector<double> SecureAggregationGroup::MaskFor(uint64_t id, size_t dim) const {
  std::vector<double> mask(dim, 0.0);
  bool found = false;
  for (uint64_t other : participants_) {
    if (other == id) {
      found = true;
      continue;
    }
    const std::vector<double> stream = PairStream(id, other, dim);
    // Antisymmetric sign convention: the lower id adds, the higher id subtracts, so the
    // pair's contributions cancel in the global sum.
    const double sign = id < other ? 1.0 : -1.0;
    for (size_t i = 0; i < dim; ++i) {
      mask[i] += sign * stream[i];
    }
  }
  CHECK(found);
  return mask;
}

std::vector<float> SecureAggregationGroup::MaskUpdate(uint64_t id,
                                                      std::span<const float> weights,
                                                      double weight) const {
  CHECK_GT(weight, 0.0);
  const std::vector<double> mask = MaskFor(id, weights.size());
  std::vector<float> out(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    out[i] = static_cast<float>(weight * static_cast<double>(weights[i]) + mask[i]);
  }
  return out;
}

std::vector<double> SecureAggregationGroup::DropoutCorrection(
    const std::vector<uint64_t>& survivors, size_t dim) const {
  std::vector<double> correction(dim, 0.0);
  auto is_survivor = [&](uint64_t id) {
    return std::find(survivors.begin(), survivors.end(), id) != survivors.end();
  };
  for (uint64_t alive_id : survivors) {
    for (uint64_t other : participants_) {
      if (other == alive_id || is_survivor(other)) {
        continue;  // Pairs among survivors cancel on their own.
      }
      const std::vector<double> stream = PairStream(alive_id, other, dim);
      const double sign = alive_id < other ? 1.0 : -1.0;
      for (size_t i = 0; i < dim; ++i) {
        correction[i] += sign * stream[i];
      }
    }
  }
  return correction;
}

CombineFn MakeSecureSumCombiner() {
  return [](const std::vector<AggregationPiece>& pieces) {
    CHECK(!pieces.empty());
    std::shared_ptr<WeightsPayload> merged;
    AggregationPiece out;
    out.weight = 0.0;
    out.count = 0;
    for (const auto& piece : pieces) {
      // Null-data pieces are the "nothing to contribute" acks of unselected workers
      // and straggler-deadline partial-round fallbacks; like MakeFedAvgCombiner, skip
      // them — they keep the tree barrier intact without entering the masked sum.
      if (piece.data == nullptr) {
        CHECK_EQ(piece.weight, 0.0);
        continue;
      }
      const auto* payload = static_cast<const WeightsPayload*>(piece.data.get());
      if (merged == nullptr) {
        merged = std::make_shared<WeightsPayload>();
        merged->weights.assign(payload->weights.size(), 0.0f);
      }
      CHECK_EQ(payload->weights.size(), merged->weights.size());
      for (size_t i = 0; i < merged->weights.size(); ++i) {
        merged->weights[i] += payload->weights[i];
      }
      merged->contributors.insert(merged->contributors.end(),
                                  payload->contributors.begin(),
                                  payload->contributors.end());
      out.weight += piece.weight;
      out.count += piece.count;
    }
    if (merged != nullptr) {
      std::sort(merged->contributors.begin(), merged->contributors.end());
      merged->contributors.erase(
          std::unique(merged->contributors.begin(), merged->contributors.end()),
          merged->contributors.end());
      out.data = std::move(merged);
    }
    return out;
  };
}

std::vector<float> FinalizeSecureAverage(std::span<const float> masked_sum,
                                         double total_weight) {
  CHECK_GT(total_weight, 0.0);
  std::vector<float> out(masked_sum.size());
  for (size_t i = 0; i < masked_sum.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(masked_sum[i]) / total_weight);
  }
  return out;
}

}  // namespace totoro
