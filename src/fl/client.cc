#include "src/fl/client.h"

#include "src/common/check.h"

namespace totoro {

LocalTrainer::LocalTrainer(std::unique_ptr<Model> model, Dataset shard, double speed_factor,
                           uint64_t seed)
    : model_(std::move(model)), shard_(std::move(shard)), speed_factor_(speed_factor),
      rng_(seed) {
  CHECK(model_ != nullptr);
  CHECK_GT(speed_factor_, 0.0);
}

LocalUpdate LocalTrainer::Train(std::span<const float> global_weights,
                                const TrainConfig& config, const ComputeModel& compute,
                                const std::optional<DpConfig>& dp,
                                const std::optional<CompressionConfig>& compression) {
  CHECK_GT(shard_.size(), 0u);
  model_->SetWeights(global_weights);
  last_loss_ = model_->TrainLocal(shard_, config, rng_, global_weights);

  LocalUpdate update;
  update.weights = model_->GetWeights();
  update.sample_weight = static_cast<double>(shard_.size());
  update.train_loss = last_loss_;
  update.compute_time_ms = compute.TrainTimeMs(
      model_->NumParams(), config.batch_size * config.local_steps, speed_factor_);
  update.wire_bytes = model_->WireBytes();

  if (dp.has_value()) {
    update.weights = ApplyDp(update.weights, global_weights, *dp, rng_);
  }
  if (compression.has_value() && compression->kind != CompressionKind::kNone) {
    CompressedUpdate compressed =
        CompressUpdate(update.weights, global_weights, *compression);
    // Reconstruct in place over the trained-weights buffer: the compressed form holds
    // everything needed, so no dense scratch vector is materialized on the send path.
    compressed.ReconstructInto(global_weights, update.weights);
    update.wire_bytes = compressed.wire_bytes;
  }
  return update;
}

}  // namespace totoro
