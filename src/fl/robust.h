// Byzantine-robust aggregation rules (the defenses next to secure-agg).
//
// Plain FedAvg is a sample-weighted mean, so a single adversarial contributor with a
// large (or sign-flipped, or noise-injected) update can move the global model
// arbitrarily far. The three classical defenses here bound that influence:
//
//  - Coordinate-median: per coordinate, take the median of the contributors' values.
//    Breaks down only past 50% attackers. Claimed sample weights are deliberately
//    ignored — an attacker lies about them for free.
//  - Trimmed-mean: per coordinate, sort the values, drop the `trim_fraction` extremes
//    on each side, average the rest. Robust to f < trim_fraction attackers.
//  - Norm-clipping: clip each contributor's *delta from the previous global weights*
//    to an L2 budget (by default the median of the round's delta norms — itself
//    robust), then sample-weighted FedAvg of the clipped updates. Removes the
//    amplification of gradient-scaling attacks while preserving FedAvg exactly when
//    nothing exceeds the clip.
//
// None of these rules is associative, so unlike FedAvg they cannot be folded hop by
// hop inside the aggregation tree: interior nodes instead *concatenate* individual
// updates (MakeCollectCombiner in aggregation.h) and the root applies one of these
// reductions to the full list. All three are permutation-invariant in the contributor
// order and deterministic (ties resolved by value ordering after an id-sorted merge),
// so runs stay bit-identical per seed at any thread count.
#ifndef SRC_FL_ROBUST_H_
#define SRC_FL_ROBUST_H_

#include <span>
#include <vector>

namespace totoro {

// A (weights, sample-count) contribution.
struct WeightedUpdate {
  std::vector<float> weights;
  double sample_weight = 1.0;
};

enum class RobustAggregation {
  kNone,              // Plain FedAvg (no defense).
  kCoordinateMedian,  // Per-coordinate median, sample weights ignored.
  kTrimmedMean,       // Per-coordinate mean after symmetric trimming.
  kNormClip,          // Per-update L2 delta clipping, then weighted FedAvg.
};

const char* RobustAggregationName(RobustAggregation rule);

// Per-application defense selection (FlAppConfig::robust).
struct RobustConfig {
  RobustAggregation rule = RobustAggregation::kNone;
  // kTrimmedMean: fraction of contributors trimmed from EACH side per coordinate
  // (floor(trim_fraction * n) values). Must be < 0.5; coordinates with nothing left
  // after trimming fall back to the untrimmed mean.
  double trim_fraction = 0.2;
  // kNormClip: L2 budget for each update's delta from the reference weights.
  // 0 = auto (median of the round's delta norms).
  double clip_norm = 0.0;
};

// True when every element of `weights` is finite. The engine drops non-finite updates
// before any reduction (a NaN in a single coordinate would otherwise poison sorts and
// means alike).
bool AllFinite(std::span<const float> weights);

// Per-coordinate median of the updates' weights; for an even count the midpoint of the
// two central values. Sample weights are ignored (see header comment). All updates
// must share a dimension; `updates` must be non-empty and finite.
std::vector<float> CoordinateMedian(const std::vector<WeightedUpdate>& updates);

// Per-coordinate mean after dropping floor(trim_fraction * n) values from each side.
std::vector<float> TrimmedMean(const std::vector<WeightedUpdate>& updates,
                               double trim_fraction);

// Clips each update's delta from `reference` to L2 norm <= clip_norm (0 = median of
// delta norms), then returns the sample-weighted FedAvg of the clipped updates.
// `clipped_out` (optional) receives how many updates were actually clipped.
std::vector<float> NormClippedMean(const std::vector<WeightedUpdate>& updates,
                                   std::span<const float> reference, double clip_norm,
                                   size_t* clipped_out = nullptr);

}  // namespace totoro

#endif  // SRC_FL_ROBUST_H_
