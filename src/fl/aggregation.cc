#include "src/fl/aggregation.h"

#include "src/common/check.h"

namespace totoro {

std::vector<float> FederatedAverage(const std::vector<WeightedUpdate>& updates) {
  CHECK(!updates.empty());
  const size_t dim = updates[0].weights.size();
  std::vector<double> acc(dim, 0.0);
  double total = 0.0;
  for (const auto& u : updates) {
    CHECK_EQ(u.weights.size(), dim);
    CHECK_GT(u.sample_weight, 0.0);
    for (size_t i = 0; i < dim; ++i) {
      acc[i] += u.sample_weight * static_cast<double>(u.weights[i]);
    }
    total += u.sample_weight;
  }
  std::vector<float> out(dim);
  for (size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<float>(acc[i] / total);
  }
  return out;
}

CombineFn MakeFedAvgCombiner() {
  return [](const std::vector<AggregationPiece>& pieces) {
    CHECK(!pieces.empty());
    std::vector<WeightedUpdate> updates;
    updates.reserve(pieces.size());
    double total_weight = 0.0;
    uint64_t total_count = 0;
    for (const auto& p : pieces) {
      // Null-data pieces are the "nothing to contribute" acks of unselected workers;
      // they keep the tree barrier intact without affecting the average.
      if (p.data == nullptr) {
        CHECK_EQ(p.weight, 0.0);
        continue;
      }
      const auto* payload = static_cast<const WeightsPayload*>(p.data.get());
      updates.push_back(WeightedUpdate{payload->weights, p.weight});
      total_weight += p.weight;
      total_count += p.count;
    }
    AggregationPiece out;
    if (!updates.empty()) {
      auto merged = std::make_shared<WeightsPayload>();
      merged->weights = FederatedAverage(updates);
      out.data = std::move(merged);
    }
    out.weight = total_weight;
    out.count = total_count;
    return out;
  };
}

CombineFn MakeCollectCombiner() {
  return [](const std::vector<AggregationPiece>& pieces) {
    CHECK(!pieces.empty());
    double total_weight = 0.0;
    uint64_t total_count = 0;
    auto merged = std::make_shared<UpdateListPayload>();
    for (const auto& p : pieces) {
      if (p.data == nullptr) {
        CHECK_EQ(p.weight, 0.0);
        continue;
      }
      const auto* payload = static_cast<const UpdateListPayload*>(p.data.get());
      CHECK_EQ(payload->ids.size(), payload->updates.size());
      for (size_t i = 0; i < payload->ids.size(); ++i) {
        // Insert keeping the id order; contributions arrive a handful at a time, so the
        // linear insertion stays cheap and the merged list is arrival-order independent.
        const uint64_t id = payload->ids[i];
        size_t pos = merged->ids.size();
        while (pos > 0 && merged->ids[pos - 1] > id) {
          --pos;
        }
        CHECK(pos == 0 || merged->ids[pos - 1] != id);  // No double submission.
        merged->ids.insert(merged->ids.begin() + static_cast<ptrdiff_t>(pos), id);
        merged->updates.insert(merged->updates.begin() + static_cast<ptrdiff_t>(pos),
                               payload->updates[i]);
      }
      total_weight += p.weight;
      total_count += p.count;
    }
    AggregationPiece out;
    if (!merged->ids.empty()) {
      out.data = std::move(merged);
    }
    out.weight = total_weight;
    out.count = total_count;
    return out;
  };
}

}  // namespace totoro
