// The "forest" abstraction: one ScribeNode per overlay node, many application trees.
//
// Forest owns the Scribe layer for a whole PastryNetwork and provides the global views
// the evaluation needs: which host roots which trees (Fig. 5b), per-level branch
// distribution (Fig. 5d), tree depth/connectivity (Fig. 6, Fig. 12). These global scans
// exist only in the harness — protocol nodes never use them.
#ifndef SRC_PUBSUB_FOREST_H_
#define SRC_PUBSUB_FOREST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dht/pastry_network.h"
#include "src/pubsub/scribe_node.h"

namespace totoro {

class Forest {
 public:
  Forest(PastryNetwork* pastry, ScribeConfig config);

  ScribeNode& scribe(size_t i) { return *scribes_[i]; }
  const ScribeNode& scribe(size_t i) const { return *scribes_[i]; }
  size_t size() const { return scribes_.size(); }
  PastryNetwork& pastry() { return *pastry_; }

  // Derives the AppId topic for an application name (uniform via SHA-1).
  NodeId CreateTopic(const std::string& app_name,
                     const std::string& creator_key = "creator-pk",
                     const std::string& salt = "salt-0") const;

  // Subscribes the given node indices to `topic` and runs the simulator until the JOIN
  // traffic quiesces. When periodic timers (keep-alives, maintenance) are active the
  // event queue never drains, so pass `settle_ms` > 0 to bound the settling run instead.
  void SubscribeAll(const NodeId& topic, const std::vector<size_t>& members,
                    double settle_ms = 0.0);

  // Starts periodic tree maintenance (parent heartbeats + rejoin) on every node.
  void StartMaintenance();

  // ----- Global inspection (harness-only) -----

  // Index of the root node of `topic`, or SIZE_MAX when no live root exists.
  size_t RootOf(const NodeId& topic) const;

  struct TreeStats {
    size_t num_members = 0;      // Nodes with tree state (root + forwarders + leaves).
    size_t num_subscribers = 0;  // Worker nodes.
    int depth = 0;               // Levels below the root reached by BFS.
    std::map<int, size_t> nodes_per_level;
    double mean_fanout = 0.0;    // Mean children count over internal nodes.
    size_t reachable_from_root = 0;
    bool all_subscribers_connected = false;
  };
  TreeStats ComputeStats(const NodeId& topic) const;

  // How many tree roots each host carries (Fig. 5b's masters-per-node distribution).
  std::map<HostId, size_t> RootsPerHost(const std::vector<NodeId>& topics) const;

  // True if every live subscriber of `topic` reaches a live root by parent pointers.
  bool IsFullyConnected(const NodeId& topic) const;

 private:
  PastryNetwork* pastry_;
  std::vector<std::unique_ptr<ScribeNode>> scribes_;
};

}  // namespace totoro

#endif  // SRC_PUBSUB_FOREST_H_
