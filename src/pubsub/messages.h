// Wire messages for the publish/subscribe forest (opcodes 100-199).
#ifndef SRC_PUBSUB_MESSAGES_H_
#define SRC_PUBSUB_MESSAGES_H_

#include <memory>
#include <vector>

#include "src/dht/node_id.h"
#include "src/sim/message.h"

namespace totoro {

enum PubSubMsgType : int {
  kScribeJoin = 100,           // Routed toward the topic (AppId).
  kScribeBroadcast = 101,      // Direct, parent -> children, down-tree.
  kScribeUpdate = 102,         // Direct, child -> parent, up-tree.
  kScribeParentHeartbeat = 103,  // Direct, parent -> children keep-alive.
  kScribeLeave = 104,          // Direct, child -> parent.
  kScribeBatch = 105,          // Direct: several coalesced messages in one envelope.
};

// JOIN toward the rendezvous node. `child_host` is rewritten at every hop that grafts
// itself into the tree, so each tree edge connects adjacent hops of the JOIN path —
// the "union of all JOIN messages' paths" of §4.3 step (c).
struct ScribeJoin {
  NodeId topic;
  HostId child_host = kInvalidHost;
  NodeId child_id;
  // When set, intermediate hops must not graft this JOIN — it grafts only at the
  // rendezvous. Used by a demoting ex-root whose whole subtree still hangs off it:
  // grafting at a forwarder could pick one of its own descendants and close a parent
  // cycle, leaving the subtree unreachable from any root.
  bool direct = false;
};

// Down-tree payload (model broadcast). `origin_time` stamps the root's send for
// dissemination-latency measurement; `depth` counts tree levels traversed.
struct ScribeBroadcast {
  NodeId topic;
  uint64_t round = 0;
  std::shared_ptr<const void> data;
  SimTime origin_time = 0.0;
  int depth = 0;
};

// Up-tree payload (gradient aggregation). `weight` carries FedAvg sample counts;
// `count` is how many leaf contributions are folded into this partial aggregate.
// `origin_time` is the earliest leaf submission folded in, carried up so the root can
// measure end-to-end aggregation latency.
struct ScribeUpdate {
  NodeId topic;
  uint64_t round = 0;
  std::shared_ptr<const void> data;
  double weight = 1.0;
  uint64_t count = 1;
  uint64_t size_bytes = 0;
  SimTime origin_time = 0.0;
};

struct ScribeParentHeartbeat {
  NodeId topic;
  NodeId parent_id;  // Lets children clean DHT state when they declare the parent dead.
};

struct ScribeLeave {
  NodeId topic;
  HostId child_host = kInvalidHost;
};

// Several scribe messages bound for the same (dst, transport, traffic class) within
// one virtual-time window, coalesced into a single wire envelope (boki-style
// appendable buffer): one per-message framing header is paid for the whole batch, each
// inner message costs only a small subheader. Items keep their original opcode, size
// and trace context so the receiver unpacks them as if they had arrived individually
// (src/pubsub/wire_batcher.h owns the flush rule and the byte accounting).
struct BatchEnvelope {
  struct Item {
    int type = 0;               // Inner opcode (kScribeBroadcast, kScribeUpdate, ...).
    uint64_t size_bytes = 0;    // Inner payload size (pre-framing).
    TraceContext trace;         // Causal context of the original send.
    std::shared_ptr<const void> payload;
  };
  std::vector<Item> items;  // In enqueue order — the order they would have been sent.
};

}  // namespace totoro

#endif  // SRC_PUBSUB_MESSAGES_H_
