// Scribe-style publish/subscribe node: per-topic dataflow-tree membership (§4.3).
//
// One ScribeNode rides on top of each PastryNode. For every topic (= FL application id)
// the node may simultaneously be the root (master), an internal forwarder
// (coordinator/aggregator/selector), and/or a subscriber (worker) — roles emerge from
// where JOIN paths happen to meet, never from static assignment.
//
// Tree construction: a subscriber routes a JOIN toward the topic id. Every hop grafts
// the previous hop into its children table; a hop already in the tree absorbs the JOIN,
// otherwise it re-issues the JOIN on its own behalf. The rendezvous node (numerically
// closest to the topic) becomes the root.
//
// Down-tree: Broadcast() fans a payload from the root along children tables.
// Up-tree: SubmitUpdate() starts a leaf contribution; every internal node combines its
// children's updates (plus its own, if subscribed) with an application-supplied
// CombineFn before forwarding one aggregate to its parent — the in-network partial
// aggregation that keeps the root's load O(fanout), not O(N).
//
// Repair (§4.5): parents send per-topic keep-alives to children; a child that misses
// them re-routes a JOIN toward the topic, which grafts it (and its subtree) onto a live
// branch.
#ifndef SRC_PUBSUB_SCRIBE_NODE_H_
#define SRC_PUBSUB_SCRIBE_NODE_H_

#include <functional>
#include <map>
#include <vector>

#include "src/dht/pastry_node.h"
#include "src/pubsub/messages.h"
#include "src/pubsub/wire_batcher.h"

namespace totoro {

// One child-to-parent or local update flowing up the tree.
struct AggregationPiece {
  std::shared_ptr<const void> data;
  double weight = 1.0;
  uint64_t count = 1;
};

// Combines child updates into one partial aggregate (e.g. weighted FedAvg merge).
using CombineFn = std::function<AggregationPiece(const std::vector<AggregationPiece>&)>;

struct ScribeConfig {
  // How long an internal node waits for missing children before forwarding a partial
  // aggregate (straggler cut-off). 0 disables the timeout (wait forever).
  double aggregation_timeout_ms = 0.0;
  // Parent keep-alive period / timeout for tree repair.
  double parent_heartbeat_ms = 200.0;
  double parent_timeout_ms = 650.0;
  bool enable_tree_repair = false;
  // JOIN retransmission with exponential backoff: a JOIN still pending after this long
  // is re-sent, doubling the wait up to `join_retry_max_ms`. 0 disables retries (a JOIN
  // lost to an unreliable link then strands the node until the next repair pass).
  // Requires enable_tree_repair (retries ride the maintenance tick).
  double join_retry_ms = 0.0;
  double join_retry_max_ms = 3200.0;
  // Wire batching for every direct send this node makes (kOff preserves the exact
  // pre-batching byte stream; see src/pubsub/wire_batcher.h).
  WireBatchConfig batch;
};

class ScribeNode {
 public:
  using BroadcastFn =
      std::function<void(const NodeId& topic, uint64_t round, const ScribeBroadcast& msg)>;
  using RootAggregateFn =
      std::function<void(const NodeId& topic, uint64_t round, const AggregationPiece& total)>;
  // Invoked when a round's straggler cut-off fires, with the children that had not
  // reported (Table 2's onTimer exposes straggler ids to the application owner).
  using StragglerFn = std::function<void(const NodeId& topic, uint64_t round,
                                         const std::vector<HostId>& missing_children)>;
  // Invoked at the root whenever a round's total is finalized, before the application
  // callback — the faultsim InvariantChecker audits contribution counts here.
  using AggregateAuditFn =
      std::function<void(const NodeId& topic, uint64_t round, const AggregationPiece& total)>;

  ScribeNode(PastryNode* pastry, ScribeConfig config);

  PastryNode& pastry() { return *pastry_; }
  const PastryNode& pastry() const { return *pastry_; }
  HostId host() const { return pastry_->host(); }

  // Subscribes this node (as a worker) to the topic's tree.
  void Subscribe(const NodeId& topic);
  // Detaches this node from the topic (children are re-parented via their own repair).
  void Unsubscribe(const NodeId& topic);

  // Called on the root: fans `data` down the tree. Payload bytes drive network cost.
  void Broadcast(const NodeId& topic, uint64_t round, std::shared_ptr<const void> data,
                 uint64_t size_bytes);

  // Called on a subscriber: submits this node's local update for `round` up the tree.
  void SubmitUpdate(const NodeId& topic, uint64_t round, AggregationPiece piece,
                    uint64_t size_bytes);

  // Application callbacks.
  void SetCombineFn(CombineFn fn) { combine_ = std::move(fn); }
  // Per-topic combiner override (§4.3: "owners can specify different aggregation
  // functions in their trees") — e.g. a secure-sum combiner for one application while
  // the default FedAvg merge serves every other topic on this node.
  void SetCombineFnForTopic(const NodeId& topic, CombineFn fn) {
    topic_combine_[topic] = std::move(fn);
  }
  void SetOnBroadcast(BroadcastFn fn) { on_broadcast_ = std::move(fn); }
  void SetOnRootAggregate(RootAggregateFn fn) { on_root_aggregate_ = std::move(fn); }
  void SetOnStragglers(StragglerFn fn) { on_stragglers_ = std::move(fn); }
  void SetAggregateAudit(AggregateAuditFn fn) { aggregate_audit_ = std::move(fn); }

  // Structure inspection (used by forest statistics and tests).
  bool InTree(const NodeId& topic) const;
  bool IsRoot(const NodeId& topic) const;
  bool IsSubscriber(const NodeId& topic) const;
  HostId ParentOf(const NodeId& topic) const;  // kInvalidHost when root/detached.
  std::vector<HostId> ChildrenOf(const NodeId& topic) const;
  size_t NumTopics() const { return topics_.size(); }
  std::vector<NodeId> Topics() const;

  // Tree repair driver; requires config.enable_tree_repair.
  void StartMaintenance();

 private:
  struct RoundState {
    std::vector<AggregationPiece> pieces;
    std::map<HostId, bool> received_from;  // children that have reported.
    bool own_submitted = false;
    bool forwarded = false;
    uint64_t max_piece_bytes = 0;
    // Earliest leaf submission folded into this round (virtual ms); < 0 until the first
    // piece arrives. Carried up-tree so the root can measure aggregation latency.
    SimTime earliest_submit_ms = -1.0;
    EventHandle timeout;
  };

  struct TopicState {
    NodeId topic;
    bool subscribed = false;
    bool is_root = false;
    HostId parent = kInvalidHost;
    NodeId parent_id;
    bool join_pending = false;
    bool join_direct = false;  // Pending JOIN must graft only at the rendezvous.
    std::map<HostId, NodeId> children;
    SimTime last_parent_heartbeat = 0.0;
    std::map<uint64_t, RoundState> rounds;
    // JOIN retry bookkeeping (config.join_retry_ms): when the pending JOIN was sent and
    // the current backoff before the next resend.
    SimTime join_sent_ms = 0.0;
    double join_backoff_ms = 0.0;
    // Straggler-drop bookkeeping: once a round's aggregate is forwarded (or handled at
    // the root), late pieces for it — stragglers past the cut-off, duplicates from a
    // rejoined child or a duplicating link — must not re-open it.
    uint64_t max_closed_round = 0;
    bool any_closed = false;
  };

  // Pastry handler plumbing.
  bool OnJoinForward(const NodeId& key, Message& inner, HostId next_hop);
  void OnJoinDeliver(const NodeId& key, const Message& inner, int hops);
  void OnDirectMessage(const Message& msg);

  void HandleBroadcast(const Message& msg);
  void HandleUpdate(const Message& msg);
  void HandleParentHeartbeat(const Message& msg);
  void HandleLeave(const Message& msg);

  TopicState& GetOrCreate(const NodeId& topic);
  void AddChild(TopicState& state, HostId child_host, const NodeId& child_id);
  // `direct` marks the JOIN as graft-at-rendezvous-only (demotion re-join; see
  // ScribeJoin::direct). Retries preserve the flag via TopicState::join_direct.
  void SendJoin(const NodeId& topic, bool direct = false);
  void ForwardBroadcastToChildren(const TopicState& state, const ScribeBroadcast& bc,
                                  uint64_t size_bytes);
  // Folds a piece into the round and forwards the partial aggregate if complete.
  // `origin_ms` is the submission time of the earliest leaf behind the piece.
  void AccumulateUpdate(TopicState& state, uint64_t round, AggregationPiece piece,
                        HostId from_child, uint64_t size_bytes, SimTime origin_ms);
  void MaybeForwardAggregate(TopicState& state, uint64_t round, bool timed_out);
  void MaintenanceTick();
  void ChargeState(int64_t delta);

  PastryNode* pastry_;
  ScribeConfig config_;
  WireBatcher batcher_;
  CombineFn combine_;
  std::map<U128, CombineFn> topic_combine_;
  BroadcastFn on_broadcast_;
  RootAggregateFn on_root_aggregate_;
  StragglerFn on_stragglers_;
  AggregateAuditFn aggregate_audit_;
  // Ordered map: MaintenanceTick walks every topic sending heartbeats and re-JOINs, so
  // the walk order feeds event scheduling and must not depend on a hash function.
  std::map<U128, TopicState> topics_;
  bool maintenance_running_ = false;
};

}  // namespace totoro

#endif  // SRC_PUBSUB_SCRIBE_NODE_H_
