#include "src/pubsub/forest.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace totoro {

Forest::Forest(PastryNetwork* pastry, ScribeConfig config) : pastry_(pastry) {
  scribes_.reserve(pastry_->size());
  for (size_t i = 0; i < pastry_->size(); ++i) {
    scribes_.push_back(std::make_unique<ScribeNode>(&pastry_->node(i), config));
  }
}

NodeId Forest::CreateTopic(const std::string& app_name, const std::string& creator_key,
                           const std::string& salt) const {
  return MakeAppId(app_name, creator_key, salt);
}

void Forest::SubscribeAll(const NodeId& topic, const std::vector<size_t>& members,
                          double settle_ms) {
  // Harness-level span (no single host): covers JOIN fan-out plus the settle window.
  TraceSpan span = GlobalTracer().Begin("pubsub.subscribe_all", "pubsub", UINT32_MAX);
  if (span.active()) {
    span.AddArg("members", std::to_string(members.size()));
  }
  Simulator* sim = pastry_->network()->sim();
  for (size_t i : members) {
    CHECK_LT(i, scribes_.size());
    // Establish the member as the scheduling identity so its JOIN (and any timers the
    // join path arms) lands on its own shard under the sharded engine.
    sim->RunAsHost(scribes_[i]->host(), [this, i, &topic] { scribes_[i]->Subscribe(topic); });
  }
  if (settle_ms > 0.0) {
    pastry_->network()->sim()->RunFor(settle_ms);
  } else {
    pastry_->network()->sim()->Run();
  }
}

void Forest::StartMaintenance() {
  for (auto& scribe : scribes_) {
    scribe->StartMaintenance();
  }
}

size_t Forest::RootOf(const NodeId& topic) const {
  for (size_t i = 0; i < scribes_.size(); ++i) {
    if (scribes_[i]->IsRoot(topic) && scribes_[i]->pastry().alive()) {
      return i;
    }
  }
  return SIZE_MAX;
}

Forest::TreeStats Forest::ComputeStats(const NodeId& topic) const {
  TreeStats stats;
  std::unordered_map<HostId, size_t> host_to_index;
  for (size_t i = 0; i < scribes_.size(); ++i) {
    host_to_index[scribes_[i]->host()] = i;
    if (scribes_[i]->InTree(topic)) {
      ++stats.num_members;
    }
    if (scribes_[i]->IsSubscriber(topic)) {
      ++stats.num_subscribers;
    }
  }
  const size_t root = RootOf(topic);
  if (root == SIZE_MAX) {
    return stats;
  }
  // BFS down children tables.
  std::deque<std::pair<size_t, int>> frontier;
  std::unordered_set<size_t> visited;
  frontier.emplace_back(root, 0);
  visited.insert(root);
  size_t internal_nodes = 0;
  size_t total_children = 0;
  while (!frontier.empty()) {
    auto [index, level] = frontier.front();
    frontier.pop_front();
    ++stats.nodes_per_level[level];
    ++stats.reachable_from_root;
    stats.depth = std::max(stats.depth, level);
    const auto children = scribes_[index]->ChildrenOf(topic);
    if (!children.empty()) {
      ++internal_nodes;
      total_children += children.size();
    }
    for (HostId child : children) {
      auto it = host_to_index.find(child);
      if (it == host_to_index.end()) {
        continue;
      }
      if (visited.insert(it->second).second) {
        frontier.emplace_back(it->second, level + 1);
      }
    }
  }
  stats.mean_fanout =
      internal_nodes == 0 ? 0.0 : static_cast<double>(total_children) / internal_nodes;
  stats.all_subscribers_connected = IsFullyConnected(topic);
  return stats;
}

std::map<HostId, size_t> Forest::RootsPerHost(const std::vector<NodeId>& topics) const {
  std::map<HostId, size_t> roots;
  // Every host appears in the map (zero-rooted hosts matter for the distribution).
  for (const auto& scribe : scribes_) {
    roots[scribe->host()] = 0;
  }
  for (const auto& topic : topics) {
    const size_t root = RootOf(topic);
    if (root != SIZE_MAX) {
      ++roots[scribes_[root]->host()];
    }
  }
  return roots;
}

bool Forest::IsFullyConnected(const NodeId& topic) const {
  std::unordered_map<HostId, size_t> host_to_index;
  for (size_t i = 0; i < scribes_.size(); ++i) {
    host_to_index[scribes_[i]->host()] = i;
  }
  for (size_t i = 0; i < scribes_.size(); ++i) {
    const ScribeNode& scribe = *scribes_[i];
    if (!scribe.IsSubscriber(topic) || !scribe.pastry().alive()) {
      continue;
    }
    // Walk parent pointers to a live root, bounded to forest size to stop cycles.
    size_t current = i;
    bool reached_root = false;
    for (size_t steps = 0; steps <= scribes_.size(); ++steps) {
      const ScribeNode& node = *scribes_[current];
      if (!node.pastry().alive()) {
        break;
      }
      if (node.IsRoot(topic)) {
        reached_root = true;
        break;
      }
      const HostId parent = node.ParentOf(topic);
      if (parent == kInvalidHost) {
        break;
      }
      auto it = host_to_index.find(parent);
      if (it == host_to_index.end()) {
        break;
      }
      current = it->second;
    }
    if (!reached_root) {
      return false;
    }
  }
  return true;
}

}  // namespace totoro
