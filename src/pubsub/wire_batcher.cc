#include "src/pubsub/wire_batcher.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

Counter& EnvelopesCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.batch.envelopes");
  return *c;
}

Counter& CoalescedCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("pubsub.batch.coalesced_msgs");
  return *c;
}

Counter& SinglesCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.batch.singles");
  return *c;
}

Counter& BytesSavedCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.batch.bytes_saved");
  return *c;
}

Counter& UnpackedCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("pubsub.batch.unpacked_msgs");
  return *c;
}

Counter& DeadBatchMsgsCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("pubsub.batch.dead_batch_msgs");
  return *c;
}

Counter& DeadBatchesCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.batch.dead_batches");
  return *c;
}

Histogram& MsgsPerEnvelopeHistogram() {
  static thread_local Histogram* h = &GlobalMetrics().GetHistogram(
      "pubsub.batch.msgs_per_envelope", Histogram::HopCountBounds());
  return *h;
}

}  // namespace

void WireBatcher::Send(HostId dst, Message msg) {
  switch (config_.mode) {
    case WireBatchConfig::Mode::kOff:
      pastry_->SendDirect(dst, std::move(msg));
      return;
    case WireBatchConfig::Mode::kAccountOnly:
      msg.size_bytes += config_.framing_bytes;
      pastry_->SendDirect(dst, std::move(msg));
      return;
    case WireBatchConfig::Mode::kCoalesce:
      break;
  }
  if (!pastry_->alive()) {
    // A dead sender must not open (or extend) a window: kAccountOnly would hand this
    // message straight to the network, which records the src-down drop and charges no
    // bytes. Mirror that exactly so the reconciliation law compares identical drops.
    msg.size_bytes += config_.framing_bytes;
    pastry_->SendDirect(dst, std::move(msg));
    return;
  }
  const EdgeKey key{dst, static_cast<uint8_t>(msg.transport),
                    static_cast<uint8_t>(msg.traffic)};
  std::vector<Message>& queue = pending_[key];
  queue.push_back(std::move(msg));
  if (queue.size() == 1) {
    // First message of the window: arm the flush. Later messages for the same edge
    // ride the already-armed event.
    pastry_->net()->sim()->Schedule(config_.window_ms, [this, key]() { Flush(key); });
  }
}

void WireBatcher::Flush(const EdgeKey& key) {
  auto it = pending_.find(key);
  if (it == pending_.end() || it->second.empty()) {
    return;
  }
  std::vector<Message> batch = std::move(it->second);
  pending_.erase(it);
  if (!pastry_->alive()) {
    // The sender died mid-window and the batch dies with it — but not silently. The
    // kAccountOnly arm already put each of these messages on the wire (size + framing)
    // back when the sender was alive, so the batched arm must book the whole batch as
    // saved bytes to keep the reconciliation law
    //   bytes(kCoalesce) == bytes(kAccountOnly) - bytes_saved
    // exact across the crash. Before this accounting, a mid-window crash made the two
    // arms silently drift by the dead batch's bytes.
    uint64_t dead_bytes = 0;
    for (const Message& m : batch) {
      dead_bytes += m.size_bytes + config_.framing_bytes;
    }
    DeadBatchesCounter().Increment();
    DeadBatchMsgsCounter().Increment(batch.size());
    BytesSavedCounter().Increment(dead_bytes);
    return;
  }
  const HostId dst = std::get<0>(key);
  if (batch.size() == 1) {
    // A lone message gains nothing from an envelope (the subheader would be pure
    // overhead); it leaves exactly as the kAccountOnly arm would send it.
    SinglesCounter().Increment();
    Message single = std::move(batch.front());
    single.size_bytes += config_.framing_bytes;
    pastry_->SendDirect(dst, std::move(single));
    return;
  }
  BatchEnvelope env;
  env.items.reserve(batch.size());
  uint64_t inner_bytes = 0;
  for (Message& m : batch) {
    inner_bytes += m.size_bytes + config_.subheader_bytes;
    env.items.push_back(BatchEnvelope::Item{m.type, m.size_bytes, m.trace,
                                            std::move(m.payload)});
  }
  const uint64_t k = batch.size();
  // k messages would have paid k framings; the envelope pays one framing plus k
  // subheaders. Both sides of this identity are asserted by the reconciliation test.
  // framing >= 2*subheader guarantees every k >= 2 envelope is a net win.
  CHECK_GE(config_.framing_bytes, 2 * config_.subheader_bytes);
  const uint64_t saved =
      (k - 1) * config_.framing_bytes - k * config_.subheader_bytes;
  EnvelopesCounter().Increment();
  CoalescedCounter().Increment(k);
  BytesSavedCounter().Increment(saved);
  MsgsPerEnvelopeHistogram().Observe(static_cast<double>(k));
  Message wrapper;
  wrapper.type = kScribeBatch;
  wrapper.size_bytes = config_.framing_bytes + inner_bytes;
  wrapper.transport = static_cast<Transport>(std::get<1>(key));
  wrapper.traffic = static_cast<TrafficClass>(std::get<2>(key));
  wrapper.SetPayload(std::move(env));
  pastry_->SendDirect(dst, std::move(wrapper));
}

void WireBatcher::Unpack(const Message& envelope,
                         const std::function<void(const Message&)>& deliver) {
  CHECK_EQ(envelope.type, kScribeBatch);
  const auto& env = envelope.As<BatchEnvelope>();
  UnpackedCounter().Increment(env.items.size());
  for (const BatchEnvelope::Item& item : env.items) {
    // Reconstruct the message the sender would have sent individually. It is handed
    // straight to the deliver path — never back into Network::Send — so the wire is
    // charged exactly once, by the envelope.
    Message inner;
    inner.type = item.type;
    inner.src = envelope.src;
    inner.dst = envelope.dst;
    inner.size_bytes = item.size_bytes;
    inner.traffic = envelope.traffic;
    inner.transport = envelope.transport;
    inner.trace = item.trace;
    inner.payload = item.payload;
    deliver(inner);
  }
}

}  // namespace totoro
