#include "src/pubsub/scribe_node.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace totoro {
namespace {

constexpr int64_t kChildEntryBytes = 40;
constexpr int64_t kTopicStateBytes = 96;
constexpr uint64_t kControlMsgBytes = 48;

// Time from root send to each subscriber's delivery (Fig. 6a's dissemination time is
// this histogram's max over one broadcast).
Histogram& BroadcastLatencyHistogram() {
  static thread_local Histogram* h = &GlobalMetrics().GetHistogram("pubsub.broadcast.latency_ms",
                                                      Histogram::DefaultLatencyBoundsMs());
  return *h;
}

// Time from the earliest leaf submission to the root total landing (Fig. 6b).
Histogram& AggregateLatencyHistogram() {
  static thread_local Histogram* h = &GlobalMetrics().GetHistogram("pubsub.aggregate.latency_ms",
                                                      Histogram::DefaultLatencyBoundsMs());
  return *h;
}

// Resilience accounting: JOIN retransmissions, duplicate child reports dropped, late
// pieces for already-closed rounds dropped, and stale roots demoted after a heal.
Counter& JoinRetriesCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.join.retries");
  return *c;
}

Counter& DuplicateDropCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("pubsub.update.duplicates_dropped");
  return *c;
}

Counter& ClosedRoundDropCounter() {
  static thread_local Counter* c =
      &GlobalMetrics().GetCounter("pubsub.update.closed_round_dropped");
  return *c;
}

Counter& RootDemotionsCounter() {
  static thread_local Counter* c = &GlobalMetrics().GetCounter("pubsub.root.demotions");
  return *c;
}

AggregationPiece DefaultCombine(const std::vector<AggregationPiece>& pieces) {
  // Weight/count bookkeeping with pass-through data; timing-only experiments use this.
  AggregationPiece out;
  for (const auto& p : pieces) {
    out.weight += p.weight;
    out.count += p.count;
    if (p.data != nullptr) {
      out.data = p.data;
    }
  }
  out.weight -= 1.0;  // Undo default-initialized weight.
  out.count -= 1;
  return out;
}

}  // namespace

ScribeNode::ScribeNode(PastryNode* pastry, ScribeConfig config)
    : pastry_(pastry), config_(config), batcher_(pastry, config.batch),
      combine_(DefaultCombine) {
  pastry_->SetForwardHandler(kScribeJoin, [this](const NodeId& key, Message& inner,
                                                 HostId next_hop) {
    return OnJoinForward(key, inner, next_hop);
  });
  pastry_->SetDeliverHandler(kScribeJoin, [this](const NodeId& key, const Message& inner,
                                                 int hops) { OnJoinDeliver(key, inner, hops); });
  for (int type : {kScribeBroadcast, kScribeUpdate, kScribeParentHeartbeat, kScribeLeave}) {
    pastry_->SetDeliverHandler(
        type, [this](const NodeId&, const Message& msg, int) { OnDirectMessage(msg); });
  }
  pastry_->SetDeliverHandler(kScribeBatch, [this](const NodeId&, const Message& msg, int) {
    batcher_.Unpack(msg, [this](const Message& inner) { OnDirectMessage(inner); });
  });
}

ScribeNode::TopicState& ScribeNode::GetOrCreate(const NodeId& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    it = topics_.emplace(topic, TopicState{}).first;
    it->second.topic = topic;
    ChargeState(kTopicStateBytes);
  }
  return it->second;
}

void ScribeNode::ChargeState(int64_t delta) {
  pastry_->net()->metrics().AdjustStateBytes(host(), delta);
}

void ScribeNode::AddChild(TopicState& state, HostId child_host, const NodeId& child_id) {
  if (child_host == host()) {
    return;
  }
  auto [it, inserted] = state.children.emplace(child_host, child_id);
  (void)it;
  if (inserted) {
    ChargeState(kChildEntryBytes);
  }
  // Tell the child who its parent is (also serves as the initial keep-alive).
  Message m;
  m.type = kScribeParentHeartbeat;
  m.size_bytes = kControlMsgBytes;
  m.traffic = TrafficClass::kTreeControl;
  m.transport = Transport::kUdp;
  m.SetPayload(ScribeParentHeartbeat{state.topic, pastry_->id()});
  batcher_.Send(child_host, std::move(m));
}

void ScribeNode::SendJoin(const NodeId& topic, bool direct) {
  TopicState& state = GetOrCreate(topic);
  state.join_pending = true;
  state.join_direct = direct;
  state.join_sent_ms = pastry_->net()->sim()->Now();
  if (state.join_backoff_ms <= 0.0) {
    state.join_backoff_ms = config_.join_retry_ms;
  }
  Message inner;
  inner.type = kScribeJoin;
  inner.size_bytes = kControlMsgBytes;
  inner.traffic = TrafficClass::kTreeControl;
  inner.transport = Transport::kTcp;
  inner.SetPayload(ScribeJoin{topic, host(), pastry_->id(), direct});
  pastry_->Route(topic, std::move(inner));
}

void ScribeNode::Subscribe(const NodeId& topic) {
  TopicState& state = GetOrCreate(topic);
  state.subscribed = true;
  if (state.is_root || state.parent != kInvalidHost) {
    return;  // Already attached as forwarder; just flip the subscriber bit.
  }
  SendJoin(topic);
}

void ScribeNode::Unsubscribe(const NodeId& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return;
  }
  TopicState& state = it->second;
  state.subscribed = false;
  if (!state.children.empty() || state.is_root) {
    return;  // Still needed as forwarder/root.
  }
  if (state.parent != kInvalidHost) {
    Message m;
    m.type = kScribeLeave;
    m.size_bytes = kControlMsgBytes;
    m.traffic = TrafficClass::kTreeControl;
    m.transport = Transport::kUdp;
    m.SetPayload(ScribeLeave{topic, host()});
    batcher_.Send(state.parent, std::move(m));
  }
  ChargeState(-kTopicStateBytes -
              kChildEntryBytes * static_cast<int64_t>(state.children.size()));
  topics_.erase(it);
}

bool ScribeNode::OnJoinForward(const NodeId& key, Message& inner, HostId next_hop) {
  (void)key;  // The payload's topic is authoritative; the key only steered routing.
  ScribeJoin join = inner.As<ScribeJoin>();
  if (join.child_host == host()) {
    return true;  // We originated this JOIN; nothing to graft here.
  }
  if (next_hop == host()) {
    return true;  // We are the rendezvous; the deliver handler grafts and roots.
  }
  if (join.direct) {
    return true;  // Demotion re-join: graft only at the rendezvous (see ScribeJoin).
  }
  TopicState& state = GetOrCreate(join.topic);
  const bool was_in_tree = state.is_root || state.parent != kInvalidHost ||
                           state.join_pending;
  AddChild(state, join.child_host, join.child_id);
  if (was_in_tree) {
    return false;  // Already on a path to the root: absorb the JOIN.
  }
  // Graft ourselves: continue the JOIN toward the root on our own behalf.
  state.join_pending = true;
  state.join_direct = false;
  state.join_sent_ms = pastry_->net()->sim()->Now();
  if (state.join_backoff_ms <= 0.0) {
    state.join_backoff_ms = config_.join_retry_ms;
  }
  join.child_host = host();
  join.child_id = pastry_->id();
  inner.SetPayload(join);
  return true;
}

void ScribeNode::OnJoinDeliver(const NodeId& key, const Message& inner, int hops) {
  (void)hops;
  const auto& join = inner.As<ScribeJoin>();
  TopicState& state = GetOrCreate(join.topic);
  (void)key;
  state.is_root = true;
  state.join_pending = false;
  state.join_direct = false;
  state.join_backoff_ms = 0.0;
  state.parent = kInvalidHost;
  if (join.child_host != host()) {
    AddChild(state, join.child_host, join.child_id);
  }
}

void ScribeNode::Broadcast(const NodeId& topic, uint64_t round,
                           std::shared_ptr<const void> data, uint64_t size_bytes) {
  TraceSpan span = GlobalTracer().Begin("pubsub.broadcast", "pubsub", host());
  if (span.active()) {
    span.AddArg("round", std::to_string(round));
  }
  TopicState& state = GetOrCreate(topic);
  ScribeBroadcast bc;
  bc.topic = topic;
  bc.round = round;
  bc.data = std::move(data);
  bc.origin_time = pastry_->net()->sim()->Now();
  bc.depth = 0;
  if (state.subscribed) {
    BroadcastLatencyHistogram().Observe(0.0);  // The root delivers to itself instantly.
    if (on_broadcast_) {
      on_broadcast_(topic, round, bc);
    }
  }
  ForwardBroadcastToChildren(state, bc, size_bytes);
}

void ScribeNode::ForwardBroadcastToChildren(const TopicState& state, const ScribeBroadcast& bc,
                                            uint64_t size_bytes) {
  for (const auto& [child_host, child_id] : state.children) {
    (void)child_id;
    Message m;
    m.type = kScribeBroadcast;
    m.size_bytes = size_bytes;
    m.traffic = TrafficClass::kModel;
    m.transport = Transport::kTcp;
    ScribeBroadcast next = bc;
    next.depth = bc.depth + 1;
    m.SetPayload(std::move(next));
    batcher_.Send(child_host, std::move(m));
  }
}

void ScribeNode::HandleBroadcast(const Message& msg) {
  const auto& bc = msg.As<ScribeBroadcast>();
  TraceSpan span =
      GlobalTracer().BeginWithParent("pubsub.broadcast.hop", "pubsub", host(), msg.trace);
  if (span.active()) {
    span.AddArg("depth", std::to_string(bc.depth));
  }
  auto it = topics_.find(bc.topic);
  if (it == topics_.end()) {
    return;  // Stale edge; we already left this tree.
  }
  TopicState& state = it->second;
  if (state.subscribed) {
    BroadcastLatencyHistogram().Observe(pastry_->net()->sim()->Now() - bc.origin_time);
    if (on_broadcast_) {
      on_broadcast_(bc.topic, bc.round, bc);
    }
  }
  ForwardBroadcastToChildren(state, bc, msg.size_bytes);
}

void ScribeNode::SubmitUpdate(const NodeId& topic, uint64_t round, AggregationPiece piece,
                              uint64_t size_bytes) {
  TraceSpan span = GlobalTracer().Begin("pubsub.update.submit", "pubsub", host());
  if (span.active()) {
    span.AddArg("round", std::to_string(round));
  }
  TopicState& state = GetOrCreate(topic);
  AccumulateUpdate(state, round, std::move(piece), /*from_child=*/kInvalidHost, size_bytes,
                   pastry_->net()->sim()->Now());
}

void ScribeNode::AccumulateUpdate(TopicState& state, uint64_t round, AggregationPiece piece,
                                  HostId from_child, uint64_t size_bytes, SimTime origin_ms) {
  // A round whose aggregate already left this node is closed: stragglers past the
  // cut-off and duplicates arriving after the forward must not resurrect it (the old
  // code erased the RoundState on forward, so a late piece re-created the round fresh
  // and could re-fire a root aggregate).
  if (state.any_closed && round <= state.max_closed_round) {
    ClosedRoundDropCounter().Increment();
    return;
  }
  RoundState& rs = state.rounds[round];
  if (rs.forwarded) {
    return;  // Straggler past the cut-off; drop.
  }
  if (from_child == kInvalidHost) {
    rs.own_submitted = true;
  } else {
    // One contribution per child per round: a duplicated message (faulty link) or a
    // child resubmitting after a rejoin must not be double-counted.
    if (auto seen = rs.received_from.find(from_child); seen != rs.received_from.end()) {
      DuplicateDropCounter().Increment();
      return;
    }
    rs.received_from[from_child] = true;
  }
  rs.pieces.push_back(std::move(piece));
  rs.max_piece_bytes = std::max(rs.max_piece_bytes, size_bytes);
  if (rs.earliest_submit_ms < 0.0 || origin_ms < rs.earliest_submit_ms) {
    rs.earliest_submit_ms = origin_ms;
  }
  // Arm the straggler cut-off on first activity.
  if (config_.aggregation_timeout_ms > 0.0 && rs.pieces.size() == 1) {
    const NodeId topic = state.topic;
    rs.timeout = pastry_->net()->sim()->Schedule(
        config_.aggregation_timeout_ms, [this, topic, round]() {
          auto it = topics_.find(topic);
          if (it != topics_.end()) {
            MaybeForwardAggregate(it->second, round, /*timed_out=*/true);
          }
        });
  }
  MaybeForwardAggregate(state, round, /*timed_out=*/false);
}

void ScribeNode::MaybeForwardAggregate(TopicState& state, uint64_t round, bool timed_out) {
  auto round_it = state.rounds.find(round);
  if (round_it == state.rounds.end()) {
    return;
  }
  RoundState& rs = round_it->second;
  if (rs.forwarded) {
    return;
  }
  if (!timed_out) {
    // Completion requires every current child plus the local contribution (if we are a
    // subscriber) to have reported.
    if (state.subscribed && !rs.own_submitted) {
      return;
    }
    for (const auto& [child_host, child_id] : state.children) {
      (void)child_id;
      if (rs.received_from.find(child_host) == rs.received_from.end()) {
        return;
      }
    }
  }
  if (rs.pieces.empty()) {
    return;
  }
  if (timed_out && on_stragglers_) {
    std::vector<HostId> missing;
    for (const auto& [child_host, child_id] : state.children) {
      (void)child_id;
      if (rs.received_from.find(child_host) == rs.received_from.end()) {
        missing.push_back(child_host);
      }
    }
    if (!missing.empty()) {
      on_stragglers_(state.topic, round, missing);
    }
  }
  rs.forwarded = true;
  rs.timeout.Cancel();
  // FL-side cost of merging updates grows with the number of pieces.
  pastry_->net()->metrics().ChargeWork(host(), WorkKind::kFlTask,
                                       static_cast<double>(rs.pieces.size()));
  const auto combine_it = topic_combine_.find(state.topic);
  AggregationPiece total =
      combine_it != topic_combine_.end() ? combine_it->second(rs.pieces) : combine_(rs.pieces);
  const uint64_t size_bytes = rs.max_piece_bytes;
  const SimTime now = pastry_->net()->sim()->Now();
  const SimTime origin = rs.earliest_submit_ms >= 0.0 ? rs.earliest_submit_ms : now;
  state.rounds.erase(round_it);

  if (state.is_root) {
    state.any_closed = true;
    state.max_closed_round = std::max(state.max_closed_round, round);
    AggregateLatencyHistogram().Observe(now - origin);
    if (aggregate_audit_) {
      aggregate_audit_(state.topic, round, total);
    }
    if (on_root_aggregate_) {
      on_root_aggregate_(state.topic, round, total);
    }
    return;
  }
  if (state.parent == kInvalidHost) {
    // Detached (mid-repair): hold the aggregate as our own submission for this round so
    // it flows up once a parent heartbeat re-attaches us.
    RoundState& fresh = state.rounds[round];
    fresh.own_submitted = true;
    fresh.pieces.push_back(std::move(total));
    fresh.max_piece_bytes = size_bytes;
    fresh.earliest_submit_ms = origin;
    fresh.forwarded = false;
    return;
  }
  state.any_closed = true;
  state.max_closed_round = std::max(state.max_closed_round, round);
  Message m;
  m.type = kScribeUpdate;
  m.size_bytes = size_bytes;
  m.traffic = TrafficClass::kGradient;
  m.transport = Transport::kTcp;
  ScribeUpdate upd;
  upd.topic = state.topic;
  upd.round = round;
  upd.data = total.data;
  upd.weight = total.weight;
  upd.count = total.count;
  upd.size_bytes = size_bytes;
  upd.origin_time = origin;
  m.SetPayload(std::move(upd));
  batcher_.Send(state.parent, std::move(m));
}

void ScribeNode::HandleUpdate(const Message& msg) {
  const auto& upd = msg.As<ScribeUpdate>();
  TraceSpan span =
      GlobalTracer().BeginWithParent("pubsub.update.hop", "pubsub", host(), msg.trace);
  if (span.active()) {
    span.AddArg("round", std::to_string(upd.round));
    span.AddArg("count", std::to_string(upd.count));
  }
  auto it = topics_.find(upd.topic);
  if (it == topics_.end()) {
    return;
  }
  AggregationPiece piece;
  piece.data = upd.data;
  piece.weight = upd.weight;
  piece.count = upd.count;
  AccumulateUpdate(it->second, upd.round, std::move(piece), msg.src, upd.size_bytes,
                   upd.origin_time);
}

void ScribeNode::HandleParentHeartbeat(const Message& msg) {
  const auto& hb = msg.As<ScribeParentHeartbeat>();
  auto send_leave_to = [this, &hb](HostId target) {
    Message leave;
    leave.type = kScribeLeave;
    leave.size_bytes = kControlMsgBytes;
    leave.traffic = TrafficClass::kTreeControl;
    leave.transport = Transport::kUdp;
    leave.SetPayload(ScribeLeave{hb.topic, host()});
    batcher_.Send(target, std::move(leave));
  };
  auto it = topics_.find(hb.topic);
  if (it == topics_.end()) {
    // We already pruned this topic; a stale in-flight heartbeat must not resurrect the
    // state — tell the sender to drop the edge instead.
    send_leave_to(msg.src);
    return;
  }
  TopicState& state = it->second;
  if (state.is_root) {
    send_leave_to(msg.src);  // Roots have no parents; stale edge from a JOIN race.
    return;
  }
  const SimTime now = pastry_->net()->sim()->Now();
  if (state.parent == msg.src) {
    state.parent_id = hb.parent_id;
    state.last_parent_heartbeat = now;
    state.join_pending = false;
    state.join_direct = false;
    state.join_backoff_ms = 0.0;
    return;
  }
  // A different node claims to be our parent. Only adopt it if our current parent is
  // unknown or silent past the timeout; otherwise stale heartbeats from pruned parents
  // would flap the tree edge back and forth and strand subtrees.
  const bool current_parent_live =
      state.parent != kInvalidHost &&
      now - state.last_parent_heartbeat <= config_.parent_timeout_ms;
  if (current_parent_live) {
    send_leave_to(msg.src);
    return;
  }
  if (state.parent != kInvalidHost) {
    send_leave_to(state.parent);
  }
  state.parent = msg.src;
  state.parent_id = hb.parent_id;
  state.join_pending = false;
  state.join_direct = false;
  state.join_backoff_ms = 0.0;
  state.last_parent_heartbeat = now;
}

void ScribeNode::HandleLeave(const Message& msg) {
  const auto& leave = msg.As<ScribeLeave>();
  auto it = topics_.find(leave.topic);
  if (it == topics_.end()) {
    return;
  }
  TopicState& state = it->second;
  if (state.children.erase(leave.child_host) > 0) {
    ChargeState(-kChildEntryBytes);
  }
  // Prune: a childless, unsubscribed, non-root forwarder serves no one.
  if (state.children.empty() && !state.subscribed && !state.is_root) {
    Unsubscribe(leave.topic);
  }
}

void ScribeNode::OnDirectMessage(const Message& msg) {
  switch (msg.type) {
    case kScribeBroadcast:
      HandleBroadcast(msg);
      return;
    case kScribeUpdate:
      HandleUpdate(msg);
      return;
    case kScribeParentHeartbeat:
      HandleParentHeartbeat(msg);
      return;
    case kScribeLeave:
      HandleLeave(msg);
      return;
    default:
      TLOG_WARN("scribe host %u: unexpected direct message type %d", host(), msg.type);
  }
}

void ScribeNode::StartMaintenance() {
  if (!config_.enable_tree_repair || maintenance_running_) {
    return;
  }
  maintenance_running_ = true;
  // Failure detection starts now: parent-heartbeat stamps predating this moment come
  // from graft time, not from a live keep-alive exchange. Left stale, the first tick
  // would mass-declare every long-established parent dead (ReportDead on live nodes
  // erodes leaf sets ring-wide) purely because tree construction took longer than the
  // timeout.
  const SimTime now = pastry_->net()->sim()->Now();
  for (auto& [topic_key, state] : topics_) {
    (void)topic_key;
    if (state.parent != kInvalidHost) {
      state.last_parent_heartbeat = std::max(state.last_parent_heartbeat, now);
    }
  }
  // As in PastryNode::StartKeepAlive: pin the timer to this host's shard.
  pastry_->net()->sim()->RunAsHost(host(), [this] {
    pastry_->net()->sim()->Schedule(config_.parent_heartbeat_ms,
                                    [this]() { MaintenanceTick(); });
  });
}

void ScribeNode::MaintenanceTick() {
  if (!pastry_->alive()) {
    maintenance_running_ = false;
    return;
  }
  const SimTime now = pastry_->net()->sim()->Now();
  for (auto& [topic_key, state] : topics_) {
    (void)topic_key;
    // Root self-check: after a partition heals (or a crashed rendezvous rejoins), two
    // roots can coexist — one per former side. A root that can see a live node
    // numerically closer to the topic key demotes itself and grafts onto the true
    // root, merging the split trees. The test is deliberately the ownership question
    // (leaf-set numeric closeness), not the routing one: mid-repair a leaf set can
    // stop covering the key, which makes ComputeNextHop defer to a longer-prefix node
    // even though this node is still the closest id on the ring, and demoting on that
    // transient would leave the tree rootless.
    if (state.is_root && !pastry_->IsClosestKnownToKey(state.topic)) {
      TLOG_DEBUG("scribe host %u: no longer rendezvous for topic %s; demoting root",
                 host(), state.topic.ToHex().c_str());
      state.is_root = false;
      state.parent = kInvalidHost;
      RootDemotionsCounter().Increment();
      // The whole former subtree still hangs off this node, so the re-join must not
      // graft at a forwarder: picking one of our own descendants as parent would close
      // a parent cycle with no root in it.
      SendJoin(state.topic, /*direct=*/true);
    }
    // Parent side: refresh children.
    for (const auto& [child_host, child_id] : state.children) {
      (void)child_id;
      Message m;
      m.type = kScribeParentHeartbeat;
      m.size_bytes = kControlMsgBytes;
      m.traffic = TrafficClass::kTreeControl;
      m.transport = Transport::kUdp;
      m.SetPayload(ScribeParentHeartbeat{state.topic, pastry_->id()});
      batcher_.Send(child_host, std::move(m));
    }
    // Child side: detect a dead parent and re-route a JOIN toward the topic (§4.5).
    if (!state.is_root && state.parent != kInvalidHost &&
        now - state.last_parent_heartbeat > config_.parent_timeout_ms) {
      TLOG_DEBUG("scribe host %u: parent %u of topic %s timed out; rejoining", host(),
                 state.parent, state.topic.ToHex().c_str());
      pastry_->ReportDead(state.parent_id, state.parent);  // Clean DHT-level state too.
      state.parent = kInvalidHost;
      SendJoin(state.topic);
    } else if (!state.is_root && state.parent == kInvalidHost && !state.join_pending &&
               (state.subscribed || !state.children.empty())) {
      SendJoin(state.topic);
    } else if (config_.join_retry_ms > 0.0 && state.join_pending &&
               now - state.join_sent_ms >= state.join_backoff_ms) {
      // The pending JOIN (or its graft reply) was lost; retransmit with exponential
      // backoff so a flapping link does not amplify into a JOIN storm.
      state.join_backoff_ms =
          std::min(state.join_backoff_ms * 2.0, config_.join_retry_max_ms);
      JoinRetriesCounter().Increment();
      const double backoff = state.join_backoff_ms;
      SendJoin(state.topic, state.join_direct);
      state.join_backoff_ms = backoff;  // SendJoin must not reset the doubled value.
    }
  }
  pastry_->net()->sim()->Schedule(config_.parent_heartbeat_ms, [this]() { MaintenanceTick(); });
}

bool ScribeNode::InTree(const NodeId& topic) const {
  auto it = topics_.find(topic);
  return it != topics_.end() &&
         (it->second.is_root || it->second.parent != kInvalidHost || it->second.join_pending);
}

bool ScribeNode::IsRoot(const NodeId& topic) const {
  auto it = topics_.find(topic);
  return it != topics_.end() && it->second.is_root;
}

bool ScribeNode::IsSubscriber(const NodeId& topic) const {
  auto it = topics_.find(topic);
  return it != topics_.end() && it->second.subscribed;
}

HostId ScribeNode::ParentOf(const NodeId& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? kInvalidHost : it->second.parent;
}

std::vector<HostId> ScribeNode::ChildrenOf(const NodeId& topic) const {
  std::vector<HostId> out;
  auto it = topics_.find(topic);
  if (it != topics_.end()) {
    for (const auto& [child_host, child_id] : it->second.children) {
      (void)child_id;
      out.push_back(child_host);
    }
  }
  return out;
}

std::vector<NodeId> ScribeNode::Topics() const {
  std::vector<NodeId> out;
  out.reserve(topics_.size());
  for (const auto& [key, state] : topics_) {
    (void)state;
    out.push_back(key);
  }
  return out;
}

}  // namespace totoro
