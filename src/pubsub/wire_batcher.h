// Wire batching for the pub/sub trees: coalesce messages sharing a tree edge.
//
// Per-message overhead on shared edges is one of the two hot paths the round trip
// pays (the other is model math, src/ml/kernels.h). Every direct scribe send — model
// broadcasts, gradient aggregates, heartbeats, leaves — models a framing cost per
// message on the real wire; when several messages traverse the same (dst, transport,
// traffic class) edge inside one virtual-time window, a BatchEnvelope pays that
// framing once and a small subheader per inner message instead.
//
// Modes:
//   kOff         — passthrough, byte-for-byte the pre-batching behavior (default; the
//                  committed bench baselines are recorded in this mode).
//   kAccountOnly — every message still sent individually, but charged
//                  size + framing_bytes. The fair "unbatched" arm for comparisons:
//                  same framing model, no coalescing.
//   kCoalesce    — messages are held per edge key; the event queue fires a flush
//                  window_ms after the first enqueue for that key. A flush with one
//                  message sends it as-is (size + framing, identical to kAccountOnly);
//                  k > 1 messages leave as one kScribeBatch envelope of
//                  framing + sum(size_i + subheader) bytes. Bytes saved per envelope:
//                  (k-1)*framing - k*subheader.
//
// Determinism: flushes are ordinary simulator events — scheduled when a key's queue
// goes empty -> non-empty, draining that key in enqueue order — so batching decisions
// are a pure function of the event sequence and runs stay bit-identical per seed.
// window_ms = 0 still batches: messages enqueued at the same virtual instant (e.g. a
// maintenance tick's heartbeats for many topics sharing a child) coalesce before the
// zero-delay flush event runs.
//
// Accounting (obs registry): pubsub.batch.{envelopes,coalesced_msgs,singles,
// bytes_saved,unpacked_msgs} counters and a msgs-per-envelope histogram. The
// reconciliation law — bytes(kCoalesce run) == bytes(kAccountOnly run) - bytes_saved —
// is enforced exactly by tests/wire_batch_test.cc — including across a sender crash
// mid-window: a flush that finds its node dead books the whole batch (size + framing
// per message) into bytes_saved and bumps pubsub.batch.{dead_batches,dead_batch_msgs},
// since the unbatched arm had already charged those messages to the wire before the
// crash; and a Send() on an already-dead node bypasses the window entirely, taking the
// kAccountOnly path so both arms record the identical src-down drop.
// Inner messages are delivered via
// Unpack() on the receiver and never re-enter Network::Send, so nothing double-counts
// through Message::hops or the traffic metrics.
#ifndef SRC_PUBSUB_WIRE_BATCHER_H_
#define SRC_PUBSUB_WIRE_BATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "src/dht/pastry_node.h"
#include "src/pubsub/messages.h"

namespace totoro {

struct WireBatchConfig {
  enum class Mode { kOff, kAccountOnly, kCoalesce };
  Mode mode = Mode::kOff;
  // Coalesce window: how long the first message of a batch waits for companions.
  double window_ms = 0.0;
  // Modeled per-message wire framing (link header + per-datagram cost).
  uint64_t framing_bytes = 28;
  // Per-inner-message subheader inside an envelope (opcode + length).
  uint64_t subheader_bytes = 4;
};

class WireBatcher {
 public:
  WireBatcher(PastryNode* pastry, WireBatchConfig config)
      : pastry_(pastry), config_(config) {}

  // Sends (or enqueues) a direct message according to the mode. `msg.dst`/`src` are
  // stamped by PastryNode::SendDirect at actual send time.
  void Send(HostId dst, Message msg);

  // Unpacks a kScribeBatch envelope on the receiver, invoking `deliver` for each inner
  // message reconstructed with the envelope's src/dst. Inner messages do not pass
  // through Network::Send again.
  void Unpack(const Message& envelope,
              const std::function<void(const Message&)>& deliver);

  const WireBatchConfig& config() const { return config_; }

 private:
  // One queue per tree edge + wire path: batching across transports or traffic
  // classes would merge flows the accounting (and the real wire) keeps separate.
  using EdgeKey = std::tuple<HostId, uint8_t /*Transport*/, uint8_t /*TrafficClass*/>;

  void Flush(const EdgeKey& key);

  PastryNode* pastry_;
  WireBatchConfig config_;
  // Ordered map: drained per-key by flush events; ordered so any future whole-map walk
  // is schedule-safe (totoro_lint R2).
  std::map<EdgeKey, std::vector<Message>> pending_;
};

}  // namespace totoro

#endif  // SRC_PUBSUB_WIRE_BATCHER_H_
