// Wire batching tests: exact byte reconciliation between the batched and unbatched
// arms, determinism of batched runs, no double-counting through the traffic metrics,
// and batches dying cleanly when a fault lands mid-window.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/faultsim/fault_injector.h"
#include "src/obs/export.h"
#include "src/pubsub/forest.h"
#include "src/pubsub/wire_batcher.h"
#include "src/sim/sharded_sim.h"

namespace totoro {
namespace {

// Same overlay harness as pubsub_test.cc: fixed seeds end to end.
struct World {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  Rng rng{777};

  explicit World(size_t n, ScribeConfig scribe = {}) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(
        &sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 3), net_config);
    pastry = std::make_unique<PastryNetwork>(net.get(), PastryConfig{});
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe);
  }

  std::vector<size_t> AllNodes() const {
    std::vector<size_t> out(pastry->size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = i;
    }
    return out;
  }
};

uint64_t CounterValue(const std::string& name) {
  const Counter* c = GlobalMetrics().FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

Message MakeControlMsg(uint64_t size_bytes,
                       TrafficClass traffic = TrafficClass::kTreeControl) {
  Message msg;
  msg.type = kScribeParentHeartbeat;
  msg.size_bytes = size_bytes;
  msg.traffic = traffic;
  msg.transport = Transport::kUdp;
  return msg;
}

// --- Unit level: a standalone WireBatcher between two pastry nodes. ---------------

struct BatcherRunResult {
  uint64_t wire_bytes = 0;       // Network-accounted bytes for the run.
  uint64_t wire_messages = 0;    // Network-level sends (envelopes count once).
  uint64_t delivered = 0;        // Inner messages handed to the deliver handler.
  uint64_t delivered_bytes = 0;  // Sum of delivered inner size_bytes.
  uint64_t bytes_saved = 0;      // pubsub.batch.bytes_saved delta.
  uint64_t envelopes = 0;
  uint64_t coalesced = 0;
  uint64_t singles = 0;
};

// Sends a fixed message schedule from node 0 to node 1 through a WireBatcher in the
// given mode: a burst of 4 at t=0, a lone message at t=50, a second burst of 3 spread
// across t=100..100+2 inside one 5 ms window, and a cross-class pair at t=200.
BatcherRunResult RunBatcherSchedule(WireBatchConfig config) {
  World world(10);
  PastryNode& sender = world.pastry->node(0);
  PastryNode& receiver = world.pastry->node(1);
  const HostId dst = receiver.host();

  const uint64_t saved_before = CounterValue("pubsub.batch.bytes_saved");
  const uint64_t envelopes_before = CounterValue("pubsub.batch.envelopes");
  const uint64_t coalesced_before = CounterValue("pubsub.batch.coalesced_msgs");
  const uint64_t singles_before = CounterValue("pubsub.batch.singles");
  const uint64_t bytes_before = world.net->metrics().total_bytes();
  const uint64_t msgs_before = world.net->metrics().total_messages();

  WireBatcher batcher(&sender, config);
  WireBatcher unbatcher(&receiver, config);
  BatcherRunResult result;
  auto deliver = [&result](const NodeId&, const Message& inner, int) {
    EXPECT_EQ(inner.hops, 0) << "inner messages must never re-enter routing";
    ++result.delivered;
    result.delivered_bytes += inner.size_bytes;
  };
  receiver.SetDeliverHandler(kScribeParentHeartbeat, deliver);
  receiver.SetDeliverHandler(
      kScribeBatch, [&unbatcher, deliver](const NodeId& id, const Message& msg, int) {
        unbatcher.Unpack(msg, [&](const Message& inner) { deliver(id, inner, 0); });
      });

  world.sim.Schedule(0.0, [&] {
    for (int i = 0; i < 4; ++i) {
      batcher.Send(dst, MakeControlMsg(48 + static_cast<uint64_t>(i)));
    }
  });
  world.sim.Schedule(50.0, [&] { batcher.Send(dst, MakeControlMsg(64)); });
  for (int i = 0; i < 3; ++i) {
    world.sim.Schedule(100.0 + i, [&] { batcher.Send(dst, MakeControlMsg(32)); });
  }
  // Same instant, different traffic classes: separate edges, must not merge.
  world.sim.Schedule(200.0, [&] {
    batcher.Send(dst, MakeControlMsg(40, TrafficClass::kTreeControl));
    batcher.Send(dst, MakeControlMsg(40, TrafficClass::kGradient));
  });
  world.sim.Run();

  result.wire_bytes = world.net->metrics().total_bytes() - bytes_before;
  result.wire_messages = world.net->metrics().total_messages() - msgs_before;
  result.bytes_saved = CounterValue("pubsub.batch.bytes_saved") - saved_before;
  result.envelopes = CounterValue("pubsub.batch.envelopes") - envelopes_before;
  result.coalesced = CounterValue("pubsub.batch.coalesced_msgs") - coalesced_before;
  result.singles = CounterValue("pubsub.batch.singles") - singles_before;
  return result;
}

constexpr uint64_t kScheduleMsgs = 10;
constexpr uint64_t kSchedulePayloadBytes =
    (48 + 49 + 50 + 51) + 64 + 3 * 32 + 2 * 40;

TEST(WireBatcherTest, AccountOnlyChargesFramingPerMessage) {
  WireBatchConfig config;
  config.mode = WireBatchConfig::Mode::kAccountOnly;
  const auto r = RunBatcherSchedule(config);
  EXPECT_EQ(r.wire_messages, kScheduleMsgs);
  EXPECT_EQ(r.delivered, kScheduleMsgs);
  EXPECT_EQ(r.wire_bytes, kSchedulePayloadBytes + kScheduleMsgs * config.framing_bytes);
  EXPECT_EQ(r.bytes_saved, 0u);
  EXPECT_EQ(r.envelopes, 0u);
}

TEST(WireBatcherTest, CoalesceReconciliationIsExact) {
  WireBatchConfig account;
  account.mode = WireBatchConfig::Mode::kAccountOnly;
  WireBatchConfig coalesce;
  coalesce.mode = WireBatchConfig::Mode::kCoalesce;
  coalesce.window_ms = 5.0;

  const auto a = RunBatcherSchedule(account);
  const auto c = RunBatcherSchedule(coalesce);

  // Every inner message arrives in both arms. kAccountOnly inflates each delivered
  // size by its framing; coalesced inner messages arrive at their original size (only
  // the three singles carry framing).
  EXPECT_EQ(a.delivered, kScheduleMsgs);
  EXPECT_EQ(c.delivered, kScheduleMsgs);
  EXPECT_EQ(a.delivered_bytes,
            kSchedulePayloadBytes + kScheduleMsgs * account.framing_bytes);
  EXPECT_EQ(c.delivered_bytes, kSchedulePayloadBytes + 3 * coalesce.framing_bytes);
  // The schedule coalesces the burst of 4 and the burst of 3; the lone message and the
  // two cross-class messages go out as framed singles.
  EXPECT_EQ(c.envelopes, 2u);
  EXPECT_EQ(c.coalesced, 7u);
  EXPECT_EQ(c.singles, 3u);
  EXPECT_EQ(c.wire_messages, c.envelopes + c.singles);
  // The reconciliation law, exactly: batched bytes == unbatched bytes - bytes_saved.
  EXPECT_EQ(c.wire_bytes, a.wire_bytes - c.bytes_saved);
  // And bytes_saved matches the closed form (k-1)*framing - k*subheader per envelope.
  const uint64_t expected_saved =
      (3 * coalesce.framing_bytes - 4 * coalesce.subheader_bytes) +
      (2 * coalesce.framing_bytes - 3 * coalesce.subheader_bytes);
  EXPECT_EQ(c.bytes_saved, expected_saved);
}

TEST(WireBatcherTest, ZeroWindowStillBatchesSameInstantMessages) {
  // window_ms = 0 coalesces a maintenance tick's same-instant sends: the flush event
  // runs after the enqueues at the same virtual time.
  WireBatchConfig config;
  config.mode = WireBatchConfig::Mode::kCoalesce;
  config.window_ms = 0.0;
  const auto r = RunBatcherSchedule(config);
  EXPECT_EQ(r.delivered, kScheduleMsgs);
  // Only the t=0 burst shares an instant; the t=100..102 burst spreads over 3 instants.
  EXPECT_EQ(r.envelopes, 1u);
  EXPECT_EQ(r.coalesced, 4u);
  EXPECT_EQ(r.singles, 6u);
}

TEST(WireBatcherTest, SenderCrashMidWindowDropsPendingBatch) {
  WireBatchConfig config;
  config.mode = WireBatchConfig::Mode::kCoalesce;
  config.window_ms = 10.0;

  World world(10);
  PastryNode& sender = world.pastry->node(0);
  PastryNode& receiver = world.pastry->node(1);
  WireBatcher batcher(&sender, config);
  uint64_t delivered = 0;
  receiver.SetDeliverHandler(kScribeBatch,
                             [&](const NodeId&, const Message&, int) { ++delivered; });
  receiver.SetDeliverHandler(kScribeParentHeartbeat,
                             [&](const NodeId&, const Message&, int) { ++delivered; });

  const uint64_t envelopes_before = CounterValue("pubsub.batch.envelopes");
  const uint64_t saved_before = CounterValue("pubsub.batch.bytes_saved");
  const uint64_t dead_batches_before = CounterValue("pubsub.batch.dead_batches");
  const uint64_t dead_msgs_before = CounterValue("pubsub.batch.dead_batch_msgs");
  const uint64_t bytes_before = world.net->metrics().total_bytes();
  world.sim.Schedule(0.0, [&] {
    batcher.Send(receiver.host(), MakeControlMsg(48));
    batcher.Send(receiver.host(), MakeControlMsg(48));
  });
  // The sender dies inside the window; the armed flush finds it dead and the batch
  // dies with it — nothing reaches the wire, but the batch's would-have-been bytes
  // (size + framing each, what the unbatched arm already charged) are booked as saved
  // so the reconciliation law survives the crash.
  world.sim.Schedule(5.0, [&] { world.net->SetHostUp(sender.host(), false); });
  world.sim.Run();

  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(world.net->metrics().total_bytes(), bytes_before);
  EXPECT_EQ(CounterValue("pubsub.batch.envelopes"), envelopes_before);
  const WireBatchConfig defaults;
  EXPECT_EQ(CounterValue("pubsub.batch.bytes_saved") - saved_before,
            2 * (48 + defaults.framing_bytes));
  EXPECT_EQ(CounterValue("pubsub.batch.dead_batches") - dead_batches_before, 1u);
  EXPECT_EQ(CounterValue("pubsub.batch.dead_batch_msgs") - dead_msgs_before, 2u);
}

// faultsim scenario: the reconciliation law must stay exact when the flush target died
// mid-window. Both arms run the identical schedule — a 3-message burst, a crash inside
// the open window, then a post-crash send attempt — and the law
// bytes(kCoalesce) == bytes(kAccountOnly) - bytes_saved is asserted across the crash.
TEST(WireBatcherTest, SenderCrashReconciliationLawHolds) {
  struct ArmResult {
    uint64_t wire_bytes = 0;
    uint64_t saved = 0;
    uint64_t src_drops = 0;
  };
  auto run_arm = [](WireBatchConfig::Mode mode) {
    WireBatchConfig config;
    config.mode = mode;
    config.window_ms = 10.0;
    World world(10);
    PastryNode& sender = world.pastry->node(0);
    PastryNode& receiver = world.pastry->node(1);
    FaultInjector injector(world.pastry.get(), nullptr, /*seed=*/7);
    WireBatcher batcher(&sender, config);
    receiver.SetDeliverHandler(kScribeParentHeartbeat,
                               [](const NodeId&, const Message&, int) {});
    receiver.SetDeliverHandler(kScribeBatch, [](const NodeId&, const Message&, int) {});
    FaultScript script;
    script.CrashAt(5.0, sender.host());
    injector.Schedule(script);

    const uint64_t bytes_before = world.net->metrics().total_bytes();
    const uint64_t saved_before = CounterValue("pubsub.batch.bytes_saved");
    const uint64_t drops_before = world.net->metrics().dropped_messages();
    world.sim.Schedule(0.0, [&] {
      for (int i = 0; i < 3; ++i) {
        batcher.Send(receiver.host(), MakeControlMsg(48));
      }
    });
    // Post-crash send attempt: must take the same path (and record the same src-down
    // drop) in both arms instead of opening a fresh window on a dead node.
    world.sim.Schedule(7.0, [&] { batcher.Send(receiver.host(), MakeControlMsg(32)); });
    world.sim.Run();

    ArmResult result;
    result.wire_bytes = world.net->metrics().total_bytes() - bytes_before;
    result.saved = CounterValue("pubsub.batch.bytes_saved") - saved_before;
    result.src_drops = world.net->metrics().dropped_messages() - drops_before;
    return result;
  };

  const ArmResult account = run_arm(WireBatchConfig::Mode::kAccountOnly);
  const ArmResult coalesce = run_arm(WireBatchConfig::Mode::kCoalesce);
  EXPECT_EQ(account.saved, 0u);
  EXPECT_GT(coalesce.saved, 0u);
  EXPECT_EQ(coalesce.wire_bytes, account.wire_bytes - coalesce.saved);
  EXPECT_EQ(coalesce.src_drops, account.src_drops);  // The post-crash send, once each.
}

TEST(WireBatcherTest, PartitionMidWindowDropsEnvelopeOnceNotPerInnerMessage) {
  // faultsim scenario: the edge partitions while a batch is accumulating. The flush
  // still runs (the sender is alive), the envelope hits the partition, and the network
  // charges exactly ONE drop — the envelope — not one per inner message.
  WireBatchConfig config;
  config.mode = WireBatchConfig::Mode::kCoalesce;
  config.window_ms = 10.0;

  World world(10);
  PastryNode& sender = world.pastry->node(0);
  PastryNode& receiver = world.pastry->node(1);
  FaultInjector injector(world.pastry.get(), nullptr, /*seed=*/42);
  WireBatcher batcher(&sender, config);
  uint64_t delivered = 0;
  receiver.SetDeliverHandler(kScribeBatch,
                             [&](const NodeId&, const Message&, int) { ++delivered; });

  FaultScript script;
  script.PartitionAt(5.0, {sender.host()}, {receiver.host()});
  injector.Schedule(script);

  const uint64_t dropped_before = world.net->metrics().dropped_messages();
  world.sim.Schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      batcher.Send(receiver.host(), MakeControlMsg(48));
    }
  });
  world.sim.Run();

  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(injector.stats().partition_drops, 1u);
  EXPECT_EQ(world.net->metrics().dropped_messages() - dropped_before, 1u);
  // The envelope was still built and accounted: the bytes were saved, then lost.
  EXPECT_GE(CounterValue("pubsub.batch.envelopes"), 1u);
}

// --- End to end: a Forest with batching in the ScribeConfig. ----------------------

struct ForestRunResult {
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t broadcasts_delivered = 0;
  uint64_t root_totals = 0;
  uint64_t bytes_saved = 0;
  uint64_t envelopes = 0;
  std::string metrics_json;
};

// Maintenance heartbeats across several same-membership topics are the coalescable
// traffic: each tick a parent sends one heartbeat per (child, topic), and topics
// sharing the (parent, child) edge merge into one envelope.
ForestRunResult RunForestScenario(WireBatchConfig batch) {
  GlobalMetrics().ResetValues();
  ScribeConfig scribe;
  scribe.enable_tree_repair = true;
  scribe.parent_heartbeat_ms = 100.0;
  scribe.parent_timeout_ms = 350.0;
  scribe.batch = batch;
  World world(60, scribe);

  std::vector<NodeId> topics;
  for (int t = 0; t < 6; ++t) {
    topics.push_back(world.forest->CreateTopic("batch-app-" + std::to_string(t)));
    world.forest->SubscribeAll(topics.back(), world.AllNodes());
  }

  ForestRunResult result;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetOnBroadcast(
        [&result](const NodeId&, uint64_t, const ScribeBroadcast&) {
          ++result.broadcasts_delivered;
        });
    world.forest->scribe(i).SetOnRootAggregate(
        [&result](const NodeId&, uint64_t, const AggregationPiece&) {
          ++result.root_totals;
        });
  }
  world.forest->StartMaintenance();

  // Two app rounds over the first topic while heartbeats tick underneath.
  for (uint64_t round = 1; round <= 2; ++round) {
    world.sim.Schedule(150.0 * static_cast<double>(round), [&world, &topics, round] {
      const size_t root = world.forest->RootOf(topics[0]);
      world.forest->scribe(root).Broadcast(topics[0], round,
                                           std::make_shared<int>(7), 2048);
    });
    world.sim.Schedule(150.0 * static_cast<double>(round) + 60.0,
                       [&world, &topics, round] {
                         for (size_t i = 0; i < world.forest->size(); ++i) {
                           AggregationPiece piece;
                           world.forest->scribe(i).SubmitUpdate(topics[0], round,
                                                                std::move(piece), 512);
                         }
                       });
  }
  world.sim.RunFor(1000.0);

  result.total_bytes = world.net->metrics().total_bytes();
  result.total_messages = world.net->metrics().total_messages();
  result.bytes_saved = CounterValue("pubsub.batch.bytes_saved");
  result.envelopes = CounterValue("pubsub.batch.envelopes");
  world.net->metrics().PublishTo(GlobalMetrics());
  result.metrics_json = MetricsToJson(GlobalMetrics());
  return result;
}

TEST(WireBatchForestTest, CoalescedRunIsDeterministicByteEqualExports) {
  WireBatchConfig batch;
  batch.mode = WireBatchConfig::Mode::kCoalesce;
  batch.window_ms = 0.0;
  const auto r1 = RunForestScenario(batch);
  const auto r2 = RunForestScenario(batch);
  EXPECT_GT(r1.envelopes, 0u) << "scenario must actually exercise coalescing";
  EXPECT_EQ(r1.total_bytes, r2.total_bytes);
  EXPECT_EQ(r1.total_messages, r2.total_messages);
  EXPECT_EQ(r1.bytes_saved, r2.bytes_saved);
  EXPECT_EQ(r1.metrics_json, r2.metrics_json) << "same seed must export byte-equal";
}

TEST(WireBatchForestTest, EndToEndReconciliationAndNoDoubleCount) {
  WireBatchConfig account;
  account.mode = WireBatchConfig::Mode::kAccountOnly;
  WireBatchConfig coalesce;
  coalesce.mode = WireBatchConfig::Mode::kCoalesce;
  coalesce.window_ms = 0.0;  // Zero window: identical timings, so identical app traffic.

  const auto a = RunForestScenario(account);
  const auto c = RunForestScenario(coalesce);

  // The application outcome is unchanged by batching.
  EXPECT_EQ(c.broadcasts_delivered, a.broadcasts_delivered);
  EXPECT_EQ(c.root_totals, a.root_totals);
  EXPECT_GT(c.broadcasts_delivered, 0u);

  // Coalescing happened (heartbeats across the 6 same-membership topics share edges)
  // and the byte ledger reconciles exactly: nothing double-counted, nothing lost.
  EXPECT_GT(c.envelopes, 0u);
  EXPECT_GT(c.bytes_saved, 0u);
  EXPECT_EQ(c.total_bytes, a.total_bytes - c.bytes_saved);
  EXPECT_LT(c.total_messages, a.total_messages);
}

struct ShardedForestResult {
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t envelopes = 0;
  uint64_t bytes_saved = 0;
  std::string metrics_json;
};

// Coalescing heartbeat traffic on the sharded engine: batchers execute on shard
// worker threads (their flush timers join each host's canonical stream), so this is
// the batching path the TSan job watches — and K must stay a pure performance knob.
// Runs on a fresh thread so each K sees pristine thread-local metric sinks.
ShardedForestResult RunShardedForestScenario(size_t shards) {
  ShardedForestResult out;
  std::thread runner([&out, shards] {
    ShardedSimulator sim(shards);
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 3),
                net_config);
    PastryNetwork pastry(&net, PastryConfig{});
    Rng rng(777);
    constexpr size_t kNodes = 60;
    pastry.Reserve(kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    ScribeConfig scribe;
    scribe.enable_tree_repair = true;
    scribe.parent_heartbeat_ms = 100.0;
    scribe.batch.mode = WireBatchConfig::Mode::kCoalesce;
    scribe.batch.window_ms = 0.0;
    Forest forest(&pastry, scribe);
    sim.SetLookaheadMs(net.latency_model().MinLatencyMs());

    std::vector<size_t> members(pastry.size());
    for (size_t i = 0; i < members.size(); ++i) {
      members[i] = i;
    }
    // No settle stagger: same-membership topics subscribe at the same instant, so
    // their heartbeat phases align and the zero-width window has edges to merge
    // (6 trees over 60 hosts overlap enough (parent, child) edges to coalesce).
    for (int t = 0; t < 6; ++t) {
      forest.SubscribeAll(forest.CreateTopic("batch-shard-" + std::to_string(t)),
                          members);
    }
    forest.StartMaintenance();
    sim.RunUntil(800.0);

    out.total_bytes = net.metrics().total_bytes();
    out.total_messages = net.metrics().total_messages();
    out.envelopes = CounterValue("pubsub.batch.envelopes");
    out.bytes_saved = CounterValue("pubsub.batch.bytes_saved");
    net.metrics().PublishTo(GlobalMetrics());
    out.metrics_json = MetricsToJson(GlobalMetrics());
  });
  runner.join();
  return out;
}

TEST(WireBatchForestTest, CoalescedRunBitIdenticalAcrossShardCounts) {
  const ShardedForestResult base = RunShardedForestScenario(1);
  EXPECT_GT(base.envelopes, 0u) << "scenario must actually exercise coalescing";
  EXPECT_GT(base.bytes_saved, 0u);
  for (const size_t k : {size_t{2}, size_t{4}}) {
    const ShardedForestResult run = RunShardedForestScenario(k);
    EXPECT_EQ(run.total_bytes, base.total_bytes) << "K=" << k;
    EXPECT_EQ(run.total_messages, base.total_messages) << "K=" << k;
    EXPECT_EQ(run.envelopes, base.envelopes) << "K=" << k;
    EXPECT_EQ(run.bytes_saved, base.bytes_saved) << "K=" << k;
    EXPECT_EQ(run.metrics_json, base.metrics_json) << "K=" << k;
  }
}

TEST(WireBatchForestTest, OffModeTouchesNothing) {
  const auto off = RunForestScenario(WireBatchConfig{});
  EXPECT_EQ(off.bytes_saved, 0u);
  EXPECT_EQ(off.envelopes, 0u);
  EXPECT_GT(off.broadcasts_delivered, 0u);
  // kOff is a pure passthrough: no batch series ever moves.
  EXPECT_EQ(CounterValue("pubsub.batch.singles"), 0u);
  EXPECT_EQ(CounterValue("pubsub.batch.coalesced_msgs"), 0u);
  EXPECT_EQ(CounterValue("pubsub.batch.unpacked_msgs"), 0u);
}

}  // namespace
}  // namespace totoro
