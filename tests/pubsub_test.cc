#include <gtest/gtest.h>

#include <set>

#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct World {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  Rng rng{777};

  explicit World(size_t n, ScribeConfig scribe = {}, PastryConfig pastry_config = {}) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 3),
                                    net_config);
    pastry = std::make_unique<PastryNetwork>(net.get(), pastry_config);
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe);
  }

  std::vector<size_t> AllNodes() const {
    std::vector<size_t> out(pastry->size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = i;
    }
    return out;
  }
};

TEST(ScribeTest, SubscribeBuildsTreeRootedAtRendezvous) {
  World world(100);
  const NodeId topic = world.forest->CreateTopic("app-1");
  world.forest->SubscribeAll(topic, world.AllNodes());

  const size_t root = world.forest->RootOf(topic);
  ASSERT_NE(root, SIZE_MAX);
  // The root is the rendezvous: numerically closest node to the topic.
  EXPECT_EQ(world.pastry->ClosestLiveNode(topic)->id(),
            world.pastry->node(root).id());
  // Exactly one root.
  size_t roots = 0;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    roots += world.forest->scribe(i).IsRoot(topic) ? 1 : 0;
  }
  EXPECT_EQ(roots, 1u);
}

TEST(ScribeTest, AllSubscribersReachableFromRoot) {
  World world(150);
  const NodeId topic = world.forest->CreateTopic("app-2");
  world.forest->SubscribeAll(topic, world.AllNodes());
  const auto stats = world.forest->ComputeStats(topic);
  EXPECT_EQ(stats.num_subscribers, world.forest->size());
  EXPECT_EQ(stats.reachable_from_root, stats.num_members);
  EXPECT_TRUE(stats.all_subscribers_connected);
}

TEST(ScribeTest, TreeDepthLogarithmic) {
  World world(300);
  const NodeId topic = world.forest->CreateTopic("depth-app");
  world.forest->SubscribeAll(topic, world.AllNodes());
  const auto stats = world.forest->ComputeStats(topic);
  // Tree paths follow Pastry routes: depth is O(log_16 N) + slack, never linear.
  EXPECT_LE(stats.depth, 8);
  EXPECT_GE(stats.depth, 1);
}

TEST(ScribeTest, PartialSubscriptionOnlyMembersInTree) {
  World world(100);
  const NodeId topic = world.forest->CreateTopic("partial-app");
  std::vector<size_t> members = {1, 5, 9, 33, 77};
  world.forest->SubscribeAll(topic, members);
  const auto stats = world.forest->ComputeStats(topic);
  EXPECT_EQ(stats.num_subscribers, members.size());
  // Forwarders may be non-subscribers, but membership stays moderate.
  EXPECT_GE(stats.num_members, members.size());
  EXPECT_LE(stats.num_members, 40u);
  EXPECT_TRUE(stats.all_subscribers_connected);
}

TEST(ScribeTest, BroadcastReachesEverySubscriber) {
  World world(120);
  const NodeId topic = world.forest->CreateTopic("bcast-app");
  world.forest->SubscribeAll(topic, world.AllNodes());

  std::set<size_t> received;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetOnBroadcast(
        [&received, i](const NodeId&, uint64_t round, const ScribeBroadcast&) {
          EXPECT_EQ(round, 1u);
          received.insert(i);
        });
  }
  const size_t root = world.forest->RootOf(topic);
  world.forest->scribe(root).Broadcast(topic, 1, std::make_shared<int>(42), 1000);
  world.sim.Run();
  EXPECT_EQ(received.size(), world.forest->size());
}

TEST(ScribeTest, BroadcastPayloadSharedPointerVisible) {
  World world(30);
  const NodeId topic = world.forest->CreateTopic("payload-app");
  world.forest->SubscribeAll(topic, world.AllNodes());
  int seen = 0;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetOnBroadcast(
        [&seen](const NodeId&, uint64_t, const ScribeBroadcast& bc) {
          EXPECT_EQ(*static_cast<const int*>(bc.data.get()), 1234);
          ++seen;
        });
  }
  const size_t root = world.forest->RootOf(topic);
  world.forest->scribe(root).Broadcast(topic, 1, std::make_shared<int>(1234), 64);
  world.sim.Run();
  EXPECT_EQ(seen, static_cast<int>(world.forest->size()));
}

TEST(ScribeTest, AggregationCountsEveryContribution) {
  World world(80);
  const NodeId topic = world.forest->CreateTopic("agg-app");
  world.forest->SubscribeAll(topic, world.AllNodes());

  const size_t root = world.forest->RootOf(topic);
  bool root_got_total = false;
  world.forest->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t round, const AggregationPiece& total) {
        EXPECT_EQ(round, 7u);
        EXPECT_EQ(total.count, world.forest->size());
        EXPECT_DOUBLE_EQ(total.weight, static_cast<double>(world.forest->size()) * 2.0);
        root_got_total = true;
      });
  for (size_t i = 0; i < world.forest->size(); ++i) {
    AggregationPiece piece;
    piece.weight = 2.0;
    piece.count = 1;
    world.forest->scribe(i).SubmitUpdate(topic, 7, std::move(piece), 512);
  }
  world.sim.Run();
  EXPECT_TRUE(root_got_total);
}

TEST(ScribeTest, AggregationCombinerSeesWeights) {
  // Weighted-sum combiner: the root total equals the sum of (weight * value) regardless
  // of the tree shape — associativity of the combine.
  World world(60);
  const NodeId topic = world.forest->CreateTopic("wsum-app");
  world.forest->SubscribeAll(topic, world.AllNodes());

  struct Value {
    double weighted_sum = 0.0;
  };
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetCombineFn([](const std::vector<AggregationPiece>& pieces) {
      auto merged = std::make_shared<Value>();
      AggregationPiece out;
      for (const auto& p : pieces) {
        merged->weighted_sum += static_cast<const Value*>(p.data.get())->weighted_sum;
        out.weight += p.weight;
        out.count += p.count;
      }
      out.weight -= 1.0;
      out.count -= 1;
      out.data = std::move(merged);
      return out;
    });
  }
  const size_t root = world.forest->RootOf(topic);
  double root_sum = -1.0;
  world.forest->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        root_sum = static_cast<const Value*>(total.data.get())->weighted_sum;
      });
  double expected = 0.0;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    auto v = std::make_shared<Value>();
    v->weighted_sum = static_cast<double>(i) * 1.5;
    expected += v->weighted_sum;
    AggregationPiece piece;
    piece.data = std::move(v);
    piece.weight = 1.0;
    world.forest->scribe(i).SubmitUpdate(topic, 1, std::move(piece), 256);
  }
  world.sim.Run();
  EXPECT_NEAR(root_sum, expected, 1e-9);
}

TEST(ScribeTest, StragglerTimeoutForwardsPartialAggregate) {
  ScribeConfig scribe;
  scribe.aggregation_timeout_ms = 50.0;
  World world(40, scribe);
  const NodeId topic = world.forest->CreateTopic("straggle-app");
  world.forest->SubscribeAll(topic, world.AllNodes());

  const size_t root = world.forest->RootOf(topic);
  uint64_t total_count = 0;
  world.forest->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        total_count = total.count;
      });
  // Only half the subscribers ever submit; the timeout must still drive a root total.
  for (size_t i = 0; i < world.forest->size(); i += 2) {
    AggregationPiece piece;
    world.forest->scribe(i).SubmitUpdate(topic, 1, std::move(piece), 64);
  }
  world.sim.Run();
  EXPECT_GT(total_count, 0u);
  EXPECT_LE(total_count, world.forest->size() / 2 + 1);
}

TEST(ScribeTest, StragglerCallbackNamesTheMissingChildren) {
  ScribeConfig scribe;
  scribe.aggregation_timeout_ms = 50.0;
  World world(30, scribe);
  const NodeId topic = world.forest->CreateTopic("straggler-names");
  world.forest->SubscribeAll(topic, world.AllNodes());

  // Pick one leaf subscriber that will never submit; its parent must report it.
  size_t silent = SIZE_MAX;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    if (world.forest->scribe(i).ChildrenOf(topic).empty() &&
        !world.forest->scribe(i).IsRoot(topic)) {
      silent = i;
      break;
    }
  }
  ASSERT_NE(silent, SIZE_MAX);
  const HostId silent_host = world.forest->scribe(silent).host();
  bool reported = false;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetOnStragglers(
        [&](const NodeId&, uint64_t round, const std::vector<HostId>& missing) {
          EXPECT_EQ(round, 1u);
          for (HostId h : missing) {
            if (h == silent_host) {
              reported = true;
            }
          }
        });
  }
  for (size_t i = 0; i < world.forest->size(); ++i) {
    if (i == silent) {
      continue;
    }
    AggregationPiece piece;
    world.forest->scribe(i).SubmitUpdate(topic, 1, std::move(piece), 64);
  }
  world.sim.Run();
  EXPECT_TRUE(reported);
}

TEST(ScribeTest, MultipleTopicsHaveDistinctRootsAndState) {
  World world(200);
  std::vector<NodeId> topics;
  for (int t = 0; t < 20; ++t) {
    topics.push_back(world.forest->CreateTopic("app-" + std::to_string(t)));
    world.forest->SubscribeAll(topics.back(), world.AllNodes());
  }
  std::set<size_t> roots;
  for (const auto& topic : topics) {
    roots.insert(world.forest->RootOf(topic));
  }
  // Hashed topics land on many distinct rendezvous nodes.
  EXPECT_GE(roots.size(), 15u);
  const auto per_host = world.forest->RootsPerHost(topics);
  size_t max_roots = 0;
  for (const auto& [host, count] : per_host) {
    (void)host;
    max_roots = std::max(max_roots, count);
  }
  EXPECT_LE(max_roots, 3u);  // Load balance: no node roots more than a few trees.
}

TEST(ScribeTest, UnsubscribeLeafPrunesEdge) {
  World world(50);
  const NodeId topic = world.forest->CreateTopic("prune-app");
  std::vector<size_t> members = {2, 3};
  world.forest->SubscribeAll(topic, members);
  // Find a leaf subscriber and its parent.
  const size_t leaf = 2;
  const HostId parent = world.forest->scribe(leaf).ParentOf(topic);
  if (parent == kInvalidHost) {
    GTEST_SKIP() << "node happened to be the root";
  }
  world.forest->scribe(leaf).Unsubscribe(topic);
  world.sim.Run();
  PastryNode* parent_node = world.pastry->FindByHost(parent);
  ASSERT_NE(parent_node, nullptr);
  // The parent no longer lists the leaf as a child.
  for (size_t i = 0; i < world.forest->size(); ++i) {
    if (world.forest->scribe(i).host() == parent) {
      const auto children = world.forest->scribe(i).ChildrenOf(topic);
      for (HostId c : children) {
        EXPECT_NE(c, world.forest->scribe(leaf).host());
      }
    }
  }
}

TEST(ScribeTest, TreeRepairReattachesOrphansAfterParentFailure) {
  ScribeConfig scribe;
  scribe.enable_tree_repair = true;
  scribe.parent_heartbeat_ms = 50.0;
  scribe.parent_timeout_ms = 160.0;
  World world(120, scribe);
  const NodeId topic = world.forest->CreateTopic("repair-app");
  world.forest->SubscribeAll(topic, world.AllNodes());
  world.forest->StartMaintenance();
  world.sim.RunFor(200.0);
  ASSERT_TRUE(world.forest->IsFullyConnected(topic));

  // Kill ~10 internal (non-root) tree members — nodes with children, so their subtrees
  // are actually orphaned.
  const size_t root = world.forest->RootOf(topic);
  size_t killed = 0;
  for (size_t i = 0; i < world.forest->size() && killed < 10; ++i) {
    if (i != root && !world.forest->scribe(i).ChildrenOf(topic).empty()) {
      world.net->SetHostUp(world.forest->scribe(i).host(), false);
      ++killed;
    }
  }
  ASSERT_GT(killed, 0u);
  EXPECT_FALSE(world.forest->IsFullyConnected(topic));
  // Maintenance heartbeats detect dead parents and rejoin within a few periods.
  world.sim.RunFor(5000.0);
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
}

TEST(ScribeTest, RootFailureElectsNewRendezvous) {
  ScribeConfig scribe;
  scribe.enable_tree_repair = true;
  scribe.parent_heartbeat_ms = 50.0;
  scribe.parent_timeout_ms = 160.0;
  World world(100, scribe);
  const NodeId topic = world.forest->CreateTopic("root-fail-app");
  world.forest->SubscribeAll(topic, world.AllNodes());
  world.forest->StartMaintenance();
  const size_t old_root = world.forest->RootOf(topic);
  world.net->SetHostUp(world.forest->scribe(old_root).host(), false);
  world.sim.RunFor(8000.0);
  const size_t new_root = world.forest->RootOf(topic);
  ASSERT_NE(new_root, SIZE_MAX);
  EXPECT_NE(new_root, old_root);
  // The new root is the rendezvous among live nodes.
  EXPECT_EQ(world.pastry->ClosestLiveNode(topic)->id(), world.pastry->node(new_root).id());
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
}

TEST(ForestTest, StatsFanoutBoundedByRoutingBase) {
  PastryConfig pastry_config;
  pastry_config.bits_per_digit = 3;  // Fanout 8 trees.
  World world(250, {}, pastry_config);
  const NodeId topic = world.forest->CreateTopic("fanout-app");
  world.forest->SubscribeAll(topic, world.AllNodes());
  const auto stats = world.forest->ComputeStats(topic);
  EXPECT_GT(stats.mean_fanout, 1.0);
  // Children arrive via distinct routing digits plus leaf-set edges; the mean stays in
  // the same ballpark as 2^b.
  EXPECT_LE(stats.mean_fanout, 16.0);
}

}  // namespace
}  // namespace totoro
