#include <gtest/gtest.h>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace totoro {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  SimTime t = 0;
  while (q.PopAndRun(&t)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(1.0, [&order, i] { order.push_back(i); });
  }
  SimTime t = 0;
  while (q.PopAndRun(&t)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelledEventsSkipped) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Push(1.0, [&] { ++fired; });
  q.Push(2.0, [&] { ++fired; });
  h.Cancel();
  SimTime t = 0;
  while (q.PopAndRun(&t)) {
  }
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1;
  sim.Schedule(5.0, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(1.0, [&] {
    times.push_back(sim.Now());
    sim.Schedule(1.0, [&] { times.push_back(sim.Now()); });
  });
  sim.Schedule(1.5, [&] { times.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

class RecordingHost : public Host {
 public:
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
    receive_times.push_back(-1.0);  // Placeholder, overwritten by tests with sim access.
  }
  std::vector<Message> received;
  std::vector<double> receive_times;
};

class TimestampHost : public Host {
 public:
  explicit TimestampHost(Simulator* sim) : sim_(sim) {}
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
    times.push_back(sim_->Now());
  }
  std::vector<Message> received;
  std::vector<double> times;

 private:
  Simulator* sim_;
};

TEST(NetworkTest, DeliversWithPropagationLatency) {
  Simulator sim;
  NetworkConfig config;
  config.model_bandwidth = false;
  Network net(&sim, std::make_unique<ConstantLatency>(7.0), config);
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  Message m;
  m.type = 1;
  m.src = ha;
  m.dst = hb;
  m.size_bytes = 100;
  net.Send(m);
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_DOUBLE_EQ(b.times[0], 7.0);
}

TEST(NetworkTest, BandwidthSerializesTransmissions) {
  Simulator sim;
  NetworkConfig config;
  config.default_bandwidth_bytes_per_ms = 100.0;  // 1000-byte msg = 10ms tx.
  Network net(&sim, std::make_unique<ConstantLatency>(1.0), config);
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.type = 1;
    m.src = ha;
    m.dst = hb;
    m.size_bytes = 1000;
    net.Send(m);
  }
  sim.Run();
  ASSERT_EQ(b.times.size(), 3u);
  // tx: 10, 20, 30; +1 latency; +10 rx each, serialized: 21, 31, 41.
  EXPECT_DOUBLE_EQ(b.times[0], 21.0);
  EXPECT_DOUBLE_EQ(b.times[1], 31.0);
  EXPECT_DOUBLE_EQ(b.times[2], 41.0);
}

TEST(NetworkTest, ReceiverDownlinkIsABottleneck) {
  // Many senders to one receiver: deliveries serialize at the receiver NIC — the star
  // topology effect that penalizes centralized parameter servers.
  Simulator sim;
  NetworkConfig config;
  config.default_bandwidth_bytes_per_ms = 100.0;
  Network net(&sim, std::make_unique<ConstantLatency>(0.5), config);
  TimestampHost server(&sim);
  const HostId hs = net.AddHost(&server);
  std::vector<std::unique_ptr<TimestampHost>> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(std::make_unique<TimestampHost>(&sim));
    const HostId hc = net.AddHost(clients.back().get());
    Message m;
    m.type = 1;
    m.src = hc;
    m.dst = hs;
    m.size_bytes = 1000;
    net.Send(m);
  }
  sim.Run();
  ASSERT_EQ(server.times.size(), 5u);
  // Each reception takes 10ms on the shared downlink: ~50ms total, not ~10.
  EXPECT_GT(server.times.back(), 45.0);
}

TEST(NetworkTest, MessagesToDownHostsAreDropped) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  net.SetHostUp(hb, false);
  Message m;
  m.type = 1;
  m.src = ha;
  m.dst = hb;
  net.Send(m);
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.metrics().dropped_messages(), 1u);
}

TEST(NetworkTest, HostDyingMidFlightDropsDelivery) {
  Simulator sim;
  NetworkConfig config;
  config.model_bandwidth = false;
  Network net(&sim, std::make_unique<ConstantLatency>(10.0), config);
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  Message m;
  m.type = 1;
  m.src = ha;
  m.dst = hb;
  net.Send(m);
  sim.Schedule(5.0, [&] { net.SetHostUp(hb, false); });
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.metrics().dropped_messages(), 1u);
}

TEST(NetworkTest, MetricsAccounting) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  Message m;
  m.type = 1;
  m.src = ha;
  m.dst = hb;
  m.size_bytes = 500;
  m.transport = Transport::kTcp;
  m.traffic = TrafficClass::kModel;
  net.Send(m);
  m.transport = Transport::kUdp;
  m.traffic = TrafficClass::kDhtMaintenance;
  m.size_bytes = 50;
  net.Send(m);
  sim.Run();
  const auto& t = net.metrics().traffic(ha);
  EXPECT_EQ(t.msgs_sent, 2u);
  EXPECT_EQ(t.bytes_sent, 550u);
  EXPECT_EQ(t.bytes_sent_tcp, 500u);
  EXPECT_EQ(t.bytes_sent_udp, 50u);
  EXPECT_EQ(net.metrics().traffic(hb).bytes_recv, 550u);
  EXPECT_EQ(net.metrics().TotalBytesByClass(TrafficClass::kModel), 500u);
}

TEST(NetworkTest, LossFunctionDropsMessages) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  TimestampHost a(&sim);
  TimestampHost b(&sim);
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);
  net.SetLossFn([](const Message&) { return true; });
  Message m;
  m.type = 1;
  m.src = ha;
  m.dst = hb;
  net.Send(m);
  sim.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST(NetworkTest, PairwiseLatencyIsSymmetricAndStable) {
  PairwiseUniformLatency lat(5.0, 50.0, 99);
  for (HostId a = 0; a < 10; ++a) {
    for (HostId b = 0; b < 10; ++b) {
      if (a == b) {
        continue;
      }
      const double l1 = lat.LatencyMs(a, b);
      EXPECT_DOUBLE_EQ(l1, lat.LatencyMs(b, a));
      EXPECT_DOUBLE_EQ(l1, lat.LatencyMs(a, b));
      EXPECT_GE(l1, 5.0);
      EXPECT_LE(l1, 50.0);
    }
  }
}

TEST(MetricsTest, WorkAndStateAccounting) {
  NetworkMetrics metrics;
  metrics.EnsureHosts(2);
  metrics.ChargeWork(0, WorkKind::kFlTask, 10.0);
  metrics.ChargeWork(0, WorkKind::kDhtTask, 3.0);
  metrics.ChargeWork(1, WorkKind::kDhtTask, 2.0);
  metrics.AdjustStateBytes(0, 100);
  metrics.AdjustStateBytes(0, -40);
  EXPECT_DOUBLE_EQ(metrics.TotalWork(WorkKind::kFlTask), 10.0);
  EXPECT_DOUBLE_EQ(metrics.TotalWork(WorkKind::kDhtTask), 5.0);
  EXPECT_EQ(metrics.TotalStateBytes(), 60);
  EXPECT_EQ(metrics.work(0).state_bytes, 60);
}

}  // namespace
}  // namespace totoro
