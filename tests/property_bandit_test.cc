// Property-style tests of the bandit path planner, swept over graph shapes and seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/bandit/kl_ucb.h"
#include "src/bandit/planner.h"

namespace totoro {
namespace {

// ---------- KL-UCB analytic properties ----------

class KlUcbSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KlUcbSweepTest, BoundMonotoneInBudgetAndAntitoneInTrials) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const double theta = rng.Uniform(0.01, 0.99);
    const uint64_t trials = 1 + rng.NextBelow(10000);
    const double budget = rng.Uniform(0.1, 20.0);
    const double u = KlUcbUpperBound(theta, trials, budget);
    EXPECT_GE(u, theta);
    EXPECT_LE(u, 1.0);
    // More exploration budget never shrinks the bound.
    EXPECT_GE(KlUcbUpperBound(theta, trials, budget * 2) + 1e-9, u);
    // More observations never widen it.
    EXPECT_LE(KlUcbUpperBound(theta, trials * 4, budget), u + 1e-9);
  }
}

TEST_P(KlUcbSweepTest, CostIsAtLeastOneSlot) {
  Rng rng(GetParam() ^ 0xC0);
  for (int i = 0; i < 50; ++i) {
    const double theta = rng.Uniform(0.0, 1.0);
    const uint64_t trials = rng.NextBelow(1000);
    const double tau = 1.0 + rng.Uniform(0.0, 1e6);
    EXPECT_GE(KlUcbLinkCost(theta, trials, tau), 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlUcbSweepTest, ::testing::Range<uint64_t>(90, 96));

// ---------- Path validity across policies and graphs ----------

struct BanditSweepParams {
  int layers;
  int width;
  uint64_t seed;
};

void PrintTo(const BanditSweepParams& p, std::ostream* os) {
  *os << "layers=" << p.layers << " width=" << p.width << " seed=" << p.seed;
}

class PolicySweepTest : public ::testing::TestWithParam<BanditSweepParams> {};

bool IsValidPath(const LinkGraph& g, const std::vector<LinkId>& path, BanditNode s,
                 BanditNode d) {
  if (path.empty()) {
    return false;
  }
  BanditNode at = s;
  std::set<BanditNode> visited = {s};
  for (LinkId id : path) {
    const auto& link = g.link(id);
    if (link.from != at) {
      return false;
    }
    at = link.to;
    if (!visited.insert(at).second) {
      return false;  // Loop.
    }
  }
  return at == d;
}

TEST_P(PolicySweepTest, EveryPolicyAlwaysEmitsValidLoopFreePaths) {
  const auto p = GetParam();
  Rng graph_rng(p.seed);
  const LinkGraph g = LinkGraph::MakeLayered(p.layers, p.width, 0.1, 0.95, graph_rng);
  const BanditNode s = 0;
  const BanditNode d = g.num_nodes() - 1;
  std::vector<std::unique_ptr<PathPolicy>> policies;
  policies.push_back(MakeTotoroHopByHop(&g, s, d));
  policies.push_back(MakeNextHopGreedy(&g, s, d));
  policies.push_back(MakeEndToEndLcb(&g, s, d));
  policies.push_back(MakeUcb1HopByHop(&g, s, d));
  policies.push_back(MakeEpsGreedyHopByHop(&g, s, d, 0.1, p.seed));
  for (auto& policy : policies) {
    Rng rng(p.seed + 1);
    for (uint64_t k = 1; k <= 200; ++k) {
      const auto path = policy->ChoosePath(k);
      ASSERT_TRUE(IsValidPath(g, path, s, d)) << policy->name() << " packet " << k;
      PacketFeedback feedback;
      feedback.path = path;
      for (LinkId id : path) {
        const uint64_t attempts = rng.Geometric(g.link(id).theta);
        feedback.attempts.push_back(attempts);
        feedback.total_delay += static_cast<double>(attempts);
      }
      policy->Observe(feedback);
    }
  }
}

TEST_P(PolicySweepTest, RegretNonNegativeInExpectationAndBounded) {
  const auto p = GetParam();
  Rng graph_rng(p.seed);
  const LinkGraph g = LinkGraph::MakeLayered(p.layers, p.width, 0.1, 0.95, graph_rng);
  const BanditNode d = g.num_nodes() - 1;
  auto policy = MakeTotoroHopByHop(&g, 0, d);
  Rng rng(p.seed + 2);
  const auto result = RunEpisode(g, 0, d, *policy, 2000, rng);
  // Worst loop-free path has at most num_links links of mean delay <= 1/0.1.
  const double worst = static_cast<double>(g.num_links()) * 10.0 * 2000.0;
  EXPECT_LT(result.FinalRegret(), worst);
  // A learning policy can beat the expectation by luck but not by much.
  EXPECT_GT(result.FinalRegret(), -0.5 * result.optimal_expected_delay * 2000.0);
}

TEST_P(PolicySweepTest, TotoroBeatsNextHopOnAverage) {
  const auto p = GetParam();
  double totoro_sum = 0.0;
  double next_hop_sum = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Rng graph_rng(p.seed + static_cast<uint64_t>(rep) * 101);
    const LinkGraph g = LinkGraph::MakeLayered(p.layers, p.width, 0.1, 0.95, graph_rng);
    const BanditNode d = g.num_nodes() - 1;
    {
      auto policy = MakeTotoroHopByHop(&g, 0, d);
      Rng rng(p.seed + 3);
      totoro_sum += RunEpisode(g, 0, d, *policy, 3000, rng).FinalRegret();
    }
    {
      auto policy = MakeNextHopGreedy(&g, 0, d);
      Rng rng(p.seed + 3);
      next_hop_sum += RunEpisode(g, 0, d, *policy, 3000, rng).FinalRegret();
    }
  }
  EXPECT_LT(totoro_sum, next_hop_sum);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PolicySweepTest,
                         ::testing::Values(BanditSweepParams{1, 2, 1},
                                           BanditSweepParams{2, 3, 2},
                                           BanditSweepParams{3, 3, 3},
                                           BanditSweepParams{4, 2, 4},
                                           BanditSweepParams{2, 5, 5}));

// ---------- Episode accounting ----------

class EpisodeAccountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpisodeAccountingTest, CumulativeRegretMatchesPerPacketDelays) {
  Rng graph_rng(GetParam());
  const LinkGraph g = LinkGraph::MakeLayered(2, 2, 0.3, 0.9, graph_rng);
  const BanditNode d = g.num_nodes() - 1;
  auto policy = MakeTotoroHopByHop(&g, 0, d);
  Rng rng(GetParam() + 1);
  const auto result = RunEpisode(g, 0, d, *policy, 500, rng);
  ASSERT_EQ(result.per_packet_delay.size(), 500u);
  ASSERT_EQ(result.cumulative_regret.size(), 500u);
  double acc = 0.0;
  for (size_t k = 0; k < 500; ++k) {
    acc += result.per_packet_delay[k] - result.optimal_expected_delay;
    EXPECT_NEAR(result.cumulative_regret[k], acc, 1e-9);
    EXPECT_GE(result.per_packet_delay[k], 1.0);  // At least one slot per link.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpisodeAccountingTest, ::testing::Range<uint64_t>(110, 116));

}  // namespace
}  // namespace totoro
