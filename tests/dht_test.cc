#include <gtest/gtest.h>

#include <cmath>

#include "src/dht/pastry_network.h"

namespace totoro {
namespace {

RouteEntry Entry(const std::string& hex, HostId host, double prox = 1.0) {
  return RouteEntry{U128::FromHex(hex), host, prox};
}

TEST(RoutingTableTest, PlacesEntryByPrefixRowAndDigitColumn) {
  RoutingTable rt(U128::FromHex("ab000000000000000000000000000000"), 4);
  EXPECT_TRUE(rt.Consider(Entry("cd000000000000000000000000000000", 1)));
  // Shares 0 digits; row 0, column 0xc.
  auto e = rt.Get(0, 0xc);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->host, 1u);
  // Shares 1 digit (a); row 1, column 0x1.
  EXPECT_TRUE(rt.Consider(Entry("a1000000000000000000000000000000", 2)));
  e = rt.Get(1, 0x1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->host, 2u);
}

TEST(RoutingTableTest, IgnoresSelf) {
  const U128 self = U128::FromHex("ab000000000000000000000000000000");
  RoutingTable rt(self, 4);
  EXPECT_FALSE(rt.Consider(RouteEntry{self, 9, 0.0}));
  EXPECT_EQ(rt.NumEntries(), 0u);
}

TEST(RoutingTableTest, PrefersCloserProximityOnConflict) {
  RoutingTable rt(U128::FromHex("ab000000000000000000000000000000"), 4);
  EXPECT_TRUE(rt.Consider(Entry("cd000000000000000000000000000000", 1, 10.0)));
  // Same slot (row 0, col c), farther: rejected.
  EXPECT_FALSE(rt.Consider(Entry("cc000000000000000000000000000000", 2, 20.0)));
  // Same slot, closer: replaces.
  EXPECT_TRUE(rt.Consider(Entry("ce000000000000000000000000000000", 3, 5.0)));
  EXPECT_EQ(rt.Get(0, 0xc)->host, 3u);
}

TEST(RoutingTableTest, NextHopMatchesKeyDigit) {
  RoutingTable rt(U128::FromHex("ab000000000000000000000000000000"), 4);
  rt.Consider(Entry("a1234500000000000000000000000000", 7));
  const auto hop = rt.NextHop(U128::FromHex("a1999999999999999999999999999999"));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->host, 7u);
}

TEST(RoutingTableTest, RemoveClearsSlot) {
  RoutingTable rt(U128::FromHex("ab000000000000000000000000000000"), 4);
  const auto e = Entry("cd000000000000000000000000000000", 1);
  rt.Consider(e);
  EXPECT_TRUE(rt.Remove(e.id));
  EXPECT_FALSE(rt.Get(0, 0xc).has_value());
  EXPECT_FALSE(rt.Remove(e.id));
}

TEST(LeafSetTest, KeepsNearestPerSide) {
  const U128 self(0, 100);
  LeafSet ls(self, 4);  // 2 per side.
  for (uint64_t v : {110ull, 120ull, 130ull, 90ull, 80ull, 70ull}) {
    ls.Consider(RouteEntry{U128(0, v), static_cast<HostId>(v), 0.0});
  }
  const auto cw = ls.clockwise();
  ASSERT_EQ(cw.size(), 2u);
  EXPECT_EQ(cw[0].id, U128(0, 110));
  EXPECT_EQ(cw[1].id, U128(0, 120));
  const auto ccw = ls.counter_clockwise();
  ASSERT_EQ(ccw.size(), 2u);
  EXPECT_EQ(ccw[0].id, U128(0, 90));
  EXPECT_EQ(ccw[1].id, U128(0, 80));
}

TEST(LeafSetTest, CoversWithinRangeOnly) {
  const U128 self(0, 100);
  LeafSet ls(self, 4);
  for (uint64_t v : {110ull, 120ull, 90ull, 80ull}) {
    ls.Consider(RouteEntry{U128(0, v), static_cast<HostId>(v), 0.0});
  }
  EXPECT_TRUE(ls.Full());
  EXPECT_TRUE(ls.Covers(U128(0, 100)));
  EXPECT_TRUE(ls.Covers(U128(0, 85)));
  EXPECT_TRUE(ls.Covers(U128(0, 120)));
  EXPECT_FALSE(ls.Covers(U128(0, 200)));
  EXPECT_FALSE(ls.Covers(U128(0, 10)));
}

TEST(LeafSetTest, NotFullCoversEverything) {
  LeafSet ls(U128(0, 100), 8);
  ls.Consider(RouteEntry{U128(0, 110), 1, 0.0});
  EXPECT_FALSE(ls.Full());
  EXPECT_TRUE(ls.Covers(U128(0xFFFF, 0)));
}

TEST(LeafSetTest, ClosestPicksNumericallyNearest) {
  const U128 self(0, 100);
  LeafSet ls(self, 4);
  ls.Consider(RouteEntry{U128(0, 110), 1, 0.0});
  ls.Consider(RouteEntry{U128(0, 90), 2, 0.0});
  EXPECT_EQ(ls.Closest(U128(0, 108), 0).host, 1u);
  EXPECT_EQ(ls.Closest(U128(0, 93), 0).host, 2u);
  EXPECT_EQ(ls.Closest(U128(0, 101), 0).host, 0u);  // Self.
}

TEST(LeafSetTest, ClosestSkipsDeadWithPredicate) {
  const U128 self(0, 100);
  LeafSet ls(self, 4);
  ls.Consider(RouteEntry{U128(0, 110), 1, 0.0});
  ls.Consider(RouteEntry{U128(0, 112), 2, 0.0});
  const AliveFn alive{[](const void*, const RouteEntry& e) { return e.host != 1; },
                      nullptr};
  EXPECT_EQ(ls.Closest(U128(0, 110), 0, alive).host, 2u);
}

TEST(LeafSetTest, ClosestMatchesBruteForceOnRandomRings) {
  // Closest takes a binary-search fast path when the two sides form disjoint arcs and
  // an exhaustive scan otherwise; both must implement min by (ring distance, id) over
  // {self} u members. Cross-check against a brute-force reference on random rings of
  // varying density (sparse rings exercise the overlapping-sides fallback).
  Rng rng(97531);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId self = RandomNodeId(rng);
    LeafSet ls(self, 8);
    const int members = 1 + static_cast<int>(rng.NextBelow(12));
    for (int i = 0; i < members; ++i) {
      ls.Consider(RouteEntry{RandomNodeId(rng), static_cast<HostId>(i + 1), 0.0});
    }
    for (int probe = 0; probe < 20; ++probe) {
      const NodeId key = RandomNodeId(rng);
      RouteEntry expect{self, 0, 0.0};
      U128 best = U128::RingDistance(self, key);
      for (const auto& e : ls.All()) {
        const U128 d = U128::RingDistance(e.id, key);
        if (d < best || (d == best && e.id < expect.id)) {
          best = d;
          expect = e;
        }
      }
      const RouteEntry got = ls.Closest(key, 0);
      EXPECT_EQ(got.id, expect.id);
      EXPECT_EQ(got.host, expect.host);
    }
  }
}

TEST(NeighborhoodSetTest, KeepsClosestByProximity) {
  NeighborhoodSet ns(U128(0, 1), 2);
  ns.Consider(RouteEntry{U128(0, 2), 2, 30.0});
  ns.Consider(RouteEntry{U128(0, 3), 3, 10.0});
  ns.Consider(RouteEntry{U128(0, 4), 4, 20.0});
  ASSERT_EQ(ns.NumEntries(), 2u);
  EXPECT_EQ(ns.entries()[0].host, 3u);
  EXPECT_EQ(ns.entries()[1].host, 4u);
}

// ---------- Overlay-level tests ----------

struct Overlay {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  Rng rng{12345};

  explicit Overlay(size_t n, PastryConfig config = {}, bool oracle = true) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 20.0, 7),
                                    net_config);
    pastry = std::make_unique<PastryNetwork>(net.get(), config);
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    if (oracle) {
      pastry->BuildOracle(rng);
    }
  }
};

TEST(PastryOverlayTest, OracleRoutingReachesNumericallyClosestNode) {
  Overlay overlay(200);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId key = RandomNodeId(rng);
    PastryNode& origin = overlay.pastry->node(rng.NextBelow(overlay.pastry->size()));
    PastryNode* expected = overlay.pastry->ClosestLiveNode(key);

    NodeId delivered_at;
    int delivered_hops = -1;
    for (size_t i = 0; i < overlay.pastry->size(); ++i) {
      overlay.pastry->node(i).SetDeliverHandler(
          500, [&, i](const NodeId&, const Message&, int hops) {
            delivered_at = overlay.pastry->node(i).id();
            delivered_hops = hops;
          });
    }
    Message m;
    m.type = 500;
    origin.Route(key, std::move(m));
    overlay.sim.Run();
    ASSERT_GE(delivered_hops, 0) << "message was never delivered";
    EXPECT_EQ(delivered_at, expected->id());
  }
}

TEST(PastryOverlayTest, HopCountIsLogarithmic) {
  PastryConfig config;
  config.bits_per_digit = 4;
  Overlay overlay(1000, config);
  Rng rng(5);
  double total_hops = 0;
  int delivered = 0;
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    overlay.pastry->node(i).SetDeliverHandler(500,
                                              [&](const NodeId&, const Message&, int hops) {
                                                total_hops += hops;
                                                ++delivered;
                                              });
  }
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const NodeId key = RandomNodeId(rng);
    PastryNode& origin = overlay.pastry->node(rng.NextBelow(overlay.pastry->size()));
    Message m;
    m.type = 500;
    origin.Route(key, std::move(m));
  }
  overlay.sim.Run();
  EXPECT_EQ(delivered, trials);
  const double mean_hops = total_hops / delivered;
  // ceil(log_16 1000) = 3; allow slack but forbid linear scaling.
  EXPECT_LE(mean_hops, 5.0);
  EXPECT_GE(mean_hops, 1.0);
}

TEST(PastryOverlayTest, SelfRouteDeliversLocally) {
  Overlay overlay(50);
  PastryNode& node = overlay.pastry->node(0);
  bool delivered = false;
  node.SetDeliverHandler(500, [&](const NodeId&, const Message&, int hops) {
    delivered = true;
    EXPECT_EQ(hops, 0);
  });
  Message m;
  m.type = 500;
  node.Route(node.id(), std::move(m));
  overlay.sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(PastryOverlayTest, RoutingSkipsDeadHosts) {
  Overlay overlay(100);
  Rng rng(17);
  // Kill 20% of nodes without repairing any tables.
  overlay.pastry->FailRandomNodes(20, rng);
  int delivered = 0;
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    overlay.pastry->node(i).SetDeliverHandler(
        500, [&](const NodeId&, const Message&, int) { ++delivered; });
  }
  int sent = 0;
  for (int t = 0; t < 50; ++t) {
    PastryNode& origin = overlay.pastry->node(rng.NextBelow(overlay.pastry->size()));
    if (!origin.alive()) {
      continue;
    }
    Message m;
    m.type = 500;
    origin.Route(RandomNodeId(rng), std::move(m));
    ++sent;
  }
  overlay.sim.Run();
  EXPECT_EQ(delivered, sent);
}

TEST(PastryOverlayTest, ProtocolJoinConvergesToWorkingOverlay) {
  PastryConfig config;
  config.leaf_set_size = 8;
  Overlay overlay(40, config, /*oracle=*/false);
  overlay.pastry->JoinAll();
  // After joining, routing from anywhere must reach the numerically closest node.
  Rng rng(3);
  int correct = 0;
  const int trials = 30;
  NodeId delivered_at;
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    overlay.pastry->node(i).SetDeliverHandler(
        500, [&, i](const NodeId&, const Message&, int) {
          delivered_at = overlay.pastry->node(i).id();
        });
  }
  for (int t = 0; t < trials; ++t) {
    const NodeId key = RandomNodeId(rng);
    PastryNode& origin = overlay.pastry->node(rng.NextBelow(overlay.pastry->size()));
    PastryNode* expected = overlay.pastry->ClosestLiveNode(key);
    delivered_at = NodeId(0, 0);
    Message m;
    m.type = 500;
    origin.Route(key, std::move(m));
    overlay.sim.Run();
    if (delivered_at == expected->id()) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, trials);
}

TEST(PastryOverlayTest, JoinPopulatesLeafSets) {
  PastryConfig config;
  config.leaf_set_size = 8;
  Overlay overlay(30, config, /*oracle=*/false);
  overlay.pastry->JoinAll();
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    EXPECT_TRUE(overlay.pastry->node(i).leaf_set().Full())
        << "node " << i << " has underfull leaf set";
  }
}

TEST(PastryOverlayTest, ReportDeadRemovesFromAllState) {
  Overlay overlay(100);
  PastryNode& node = overlay.pastry->node(0);
  // Find some node present in its leaf set.
  const auto leaves = node.leaf_set().All();
  ASSERT_FALSE(leaves.empty());
  const RouteEntry victim = leaves[0];
  bool failure_reported = false;
  node.SetFailureHandler([&](const NodeId& id, HostId host) {
    EXPECT_EQ(id, victim.id);
    EXPECT_EQ(host, victim.host);
    failure_reported = true;
  });
  node.ReportDead(victim.id, victim.host);
  EXPECT_FALSE(node.leaf_set().Contains(victim.id));
  EXPECT_TRUE(failure_reported);
}

TEST(PastryOverlayTest, KeepAliveDetectsFailedLeafNeighbor) {
  PastryConfig config;
  config.enable_keepalive = true;
  config.keepalive_interval_ms = 100.0;
  config.keepalive_timeout_ms = 350.0;
  Overlay overlay(30, config);
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    overlay.pastry->node(i).StartKeepAlive();
  }
  overlay.sim.RunFor(500.0);  // Let acks establish.
  PastryNode& observer = overlay.pastry->node(0);
  const auto leaves = observer.leaf_set().All();
  ASSERT_FALSE(leaves.empty());
  const RouteEntry victim = leaves[0];
  overlay.net->SetHostUp(victim.host, false);
  overlay.sim.RunFor(2000.0);
  EXPECT_FALSE(observer.leaf_set().Contains(victim.id));
}

TEST(PastryNetworkTest, FailRandomNodesMarksThemDown) {
  Overlay overlay(50);
  Rng rng(1);
  const auto failed = overlay.pastry->FailRandomNodes(10, rng);
  EXPECT_EQ(failed.size(), 10u);
  size_t down = 0;
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    if (!overlay.pastry->node(i).alive()) {
      ++down;
    }
  }
  EXPECT_EQ(down, 10u);
  overlay.pastry->Heal(*failed[0]);
  EXPECT_TRUE(failed[0]->alive());
}

TEST(PastryNetworkTest, ClosestLiveNodeGroundTruth) {
  Overlay overlay(20);
  // Closest to a node's own id is that node.
  for (size_t i = 0; i < overlay.pastry->size(); ++i) {
    EXPECT_EQ(overlay.pastry->ClosestLiveNode(overlay.pastry->node(i).id()),
              &overlay.pastry->node(i));
  }
}

TEST(PastryNodeTest, ComputeNextHopDeliversSelfForOwnId) {
  Overlay overlay(50);
  PastryNode& node = overlay.pastry->node(3);
  const RouteEntry hop = node.ComputeNextHop(node.id());
  EXPECT_EQ(hop.host, node.host());
}

TEST(MakeAppIdTest, DeterministicAndSpread) {
  const NodeId a1 = MakeAppId("app", "key", "salt");
  const NodeId a2 = MakeAppId("app", "key", "salt");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(MakeAppId("app", "key", "salt2"), a1);
  EXPECT_NE(MakeAppId("app2", "key", "salt"), a1);
}

}  // namespace
}  // namespace totoro
