// Kernel-parity property tests: every SIMD dispatch level must be bit-identical to
// the scalar reference on every kernel (the contract in src/ml/kernels.h), plus the
// int8-inference accuracy-delta check on the fig8 (Speech-like) workload.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/dataset.h"
#include "src/ml/kernels.h"
#include "src/ml/model.h"
#include "src/ml/quantized.h"
#include "src/ml/serialize.h"

namespace totoro {
namespace {

// Restores the startup dispatch level when a test scope ends.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(ActiveSimdLevel()) {}
  ~SimdLevelGuard() { SetSimdLevelForTest(saved_); }

 private:
  SimdLevel saved_;
};

// Bitwise equality — EXPECT_EQ on floats would treat -0.0 == +0.0 and NaN != NaN.
bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Random vector salted with the edge cases the kernels must pass through unchanged:
// -0.0, denormals, and (when allowed) NaN.
std::vector<float> RandomVector(Rng& rng, size_t n, bool with_nan) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }
  if (n >= 4) {
    v[n / 4] = -0.0f;
    v[n / 2] = 1e-41f;  // Denormal.
    if (with_nan) {
      v[3 * n / 4] = std::numeric_limits<float>::quiet_NaN();
    }
  }
  return v;
}

// Sizes straddling every vector width and tail combination (4/8-wide + remainders).
const size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100};

TEST(KernelParityTest, SupportedLevelsAlwaysIncludePortableOnes) {
  const auto levels = SupportedSimdLevels();
  ASSERT_GE(levels.size(), 2u);
  EXPECT_EQ(levels[0], SimdLevel::kScalar);
  EXPECT_EQ(levels[1], SimdLevel::kUnrolled);
  for (SimdLevel level : levels) {
    EXPECT_STRNE(SimdLevelName(level), "unknown");
  }
}

TEST(KernelParityTest, SetSimdLevelForTestInstallsAndReports) {
  SimdLevelGuard guard;
  for (SimdLevel level : SupportedSimdLevels()) {
    EXPECT_EQ(SetSimdLevelForTest(level), level);
    EXPECT_EQ(ActiveSimdLevel(), level);
  }
}

TEST(KernelParityTest, AxpyBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(101);
  for (size_t n : kSizes) {
    const auto x = RandomVector(rng, n, /*with_nan=*/true);
    const auto y0 = RandomVector(rng, n, /*with_nan=*/false);
    const float alpha = static_cast<float>(rng.Gaussian(0.0, 1.5));
    SetSimdLevelForTest(SimdLevel::kScalar);
    auto want = y0;
    KAxpy(alpha, x.data(), want.data(), n);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      auto got = y0;
      KAxpy(alpha, x.data(), got.data(), n);
      EXPECT_TRUE(BitEqual(got, want))
          << "KAxpy diverges at level " << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelParityTest, Axpy4MatchesFourSequentialAxpysAtEveryLevel) {
  // The KAxpy4 contract: exactly the op sequence of four consecutive KAxpy calls
  // (per element: four mul+add pairs in alpha order), just one y pass. Reference is
  // scalar KAxpy called four times; every level's KAxpy4 must match it bit for bit.
  SimdLevelGuard guard;
  Rng rng(109);
  for (size_t n : kSizes) {
    const auto x0 = RandomVector(rng, n, /*with_nan=*/true);
    const auto x1 = RandomVector(rng, n, /*with_nan=*/false);
    const auto x2 = RandomVector(rng, n, /*with_nan=*/false);
    const auto x3 = RandomVector(rng, n, /*with_nan=*/true);
    const auto y0 = RandomVector(rng, n, /*with_nan=*/false);
    const float al[4] = {static_cast<float>(rng.Gaussian(0.0, 1.5)),
                         static_cast<float>(rng.Gaussian(0.0, 1.5)), 0.0f,
                         static_cast<float>(rng.Gaussian(0.0, 1.5))};
    SetSimdLevelForTest(SimdLevel::kScalar);
    auto want = y0;
    KAxpy(al[0], x0.data(), want.data(), n);
    KAxpy(al[1], x1.data(), want.data(), n);
    KAxpy(al[2], x2.data(), want.data(), n);
    KAxpy(al[3], x3.data(), want.data(), n);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      auto got = y0;
      KAxpy4(al, x0.data(), x1.data(), x2.data(), x3.data(), got.data(), n);
      EXPECT_TRUE(BitEqual(got, want))
          << "KAxpy4 diverges at level " << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelParityTest, AxpyI8BitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(102);
  for (size_t n : kSizes) {
    std::vector<int8_t> q(n);
    for (size_t i = 0; i < n; ++i) {
      q[i] = static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
    }
    const auto y0 = RandomVector(rng, n, /*with_nan=*/false);
    const float alpha = static_cast<float>(rng.Gaussian(0.0, 0.1));
    SetSimdLevelForTest(SimdLevel::kScalar);
    auto want = y0;
    KAxpyI8(alpha, q.data(), want.data(), n);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      auto got = y0;
      KAxpyI8(alpha, q.data(), got.data(), n);
      EXPECT_TRUE(BitEqual(got, want))
          << "KAxpyI8 diverges at level " << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelParityTest, ScaleReluLerpDivBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(103);
  for (size_t n : kSizes) {
    const auto base = RandomVector(rng, n, /*with_nan=*/true);
    const auto other = RandomVector(rng, n, /*with_nan=*/false);
    const float alpha = static_cast<float>(rng.Gaussian(0.0, 1.0));
    const float denom = 1.5f + std::abs(static_cast<float>(rng.Gaussian(0.0, 1.0)));

    SetSimdLevelForTest(SimdLevel::kScalar);
    auto want_scale = base;
    KScale(want_scale.data(), alpha, n);
    auto want_relu = base;
    KRelu(want_relu.data(), n);
    auto want_lerp = base;
    KLerp(want_lerp.data(), other.data(), alpha, n);
    auto want_div = base;
    KDiv(want_div.data(), denom, n);

    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      auto got = base;
      KScale(got.data(), alpha, n);
      EXPECT_TRUE(BitEqual(got, want_scale)) << "KScale " << SimdLevelName(level);
      got = base;
      KRelu(got.data(), n);
      EXPECT_TRUE(BitEqual(got, want_relu)) << "KRelu " << SimdLevelName(level);
      got = base;
      KLerp(got.data(), other.data(), alpha, n);
      EXPECT_TRUE(BitEqual(got, want_lerp)) << "KLerp " << SimdLevelName(level);
      got = base;
      KDiv(got.data(), denom, n);
      EXPECT_TRUE(BitEqual(got, want_div)) << "KDiv " << SimdLevelName(level);
    }
  }
}

TEST(KernelParityTest, ReluSemanticsMatchStdMax) {
  SimdLevelGuard guard;
  // -0.0 passes through (std::max(v, 0.0f) returns the first operand on ties) and NaN
  // propagates, at every level including the intrinsic ones.
  const std::vector<float> in = {-1.0f, -0.0f, 0.0f, 2.5f,
                                 std::numeric_limits<float>::quiet_NaN(),
                                 -3.0f, 1e-41f, -1e-41f};
  for (SimdLevel level : SupportedSimdLevels()) {
    SetSimdLevelForTest(level);
    auto v = in;
    KRelu(v.data(), v.size());
    EXPECT_TRUE(std::signbit(v[1])) << SimdLevelName(level) << ": -0.0 must survive";
    EXPECT_FALSE(std::signbit(v[2])) << SimdLevelName(level);
    EXPECT_TRUE(std::isnan(v[4])) << SimdLevelName(level) << ": NaN must propagate";
    EXPECT_EQ(v[5], 0.0f) << SimdLevelName(level);
    EXPECT_EQ(v[7], 0.0f) << SimdLevelName(level) << ": negative denormal clamps";
  }
}

TEST(KernelParityTest, ReluMaskBitIdenticalAndNaNKeepsGrad) {
  SimdLevelGuard guard;
  Rng rng(104);
  for (size_t n : kSizes) {
    const auto act = RandomVector(rng, n, /*with_nan=*/true);
    const auto grad0 = RandomVector(rng, n, /*with_nan=*/false);
    SetSimdLevelForTest(SimdLevel::kScalar);
    auto want = grad0;
    KReluMask(act.data(), want.data(), n);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      auto got = grad0;
      KReluMask(act.data(), got.data(), n);
      EXPECT_TRUE(BitEqual(got, want))
          << "KReluMask diverges at level " << SimdLevelName(level) << " n=" << n;
    }
  }
  // A NaN activation fails `act <= 0` and must keep its gradient.
  const std::vector<float> act = {std::numeric_limits<float>::quiet_NaN(), -1.0f};
  for (SimdLevel level : SupportedSimdLevels()) {
    SetSimdLevelForTest(level);
    std::vector<float> grad = {5.0f, 5.0f};
    KReluMask(act.data(), grad.data(), grad.size());
    EXPECT_EQ(grad[0], 5.0f) << SimdLevelName(level);
    EXPECT_EQ(grad[1], 0.0f) << SimdLevelName(level);
  }
}

TEST(KernelParityTest, MaxAndSoftmaxBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(105);
  for (size_t n : kSizes) {
    const auto x = RandomVector(rng, n, /*with_nan=*/false);
    SetSimdLevelForTest(SimdLevel::kScalar);
    const float want_max = KMax(x.data(), n);
    auto want_soft = x;
    KSoftmax(want_soft.data(), n);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevelForTest(level);
      const float got_max = KMax(x.data(), n);
      EXPECT_EQ(std::memcmp(&got_max, &want_max, sizeof(float)), 0)
          << "KMax diverges at level " << SimdLevelName(level) << " n=" << n;
      auto got_soft = x;
      KSoftmax(got_soft.data(), n);
      EXPECT_TRUE(BitEqual(got_soft, want_soft))
          << "KSoftmax diverges at level " << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelParityTest, TrainedModelWeightsBitIdenticalAcrossLevels) {
  // End-to-end: a short local-training run reaches byte-identical weights at every
  // dispatch level — the property the committed bench fingerprints rely on.
  SimdLevelGuard guard;
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(7));
  Rng data_rng(8);
  const Dataset shard = task.Generate(120, data_rng);
  TrainConfig config;
  config.local_steps = 5;
  std::vector<float> reference;
  for (SimdLevel level : SupportedSimdLevels()) {
    SetSimdLevelForTest(level);
    auto model = MakeResNet34Proxy(task.spec().dim, task.spec().num_classes, 21);
    Rng train_rng(22);
    model->TrainLocal(shard, config, train_rng);
    const auto weights = model->GetWeights();
    if (reference.empty()) {
      reference = weights;
      continue;
    }
    EXPECT_TRUE(BitEqual(weights, reference))
        << "training diverges at level " << SimdLevelName(level);
  }
}

TEST(QuantizedMlpTest, Int8AccuracyDeltaOnFig8Workload) {
  // The fig8 (Speech-like) workload: train the ResNet-34 proxy briefly, then compare
  // float accuracy against both int8 paths. Quantization noise must cost at most a few
  // points of accuracy on the held-out set.
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(7));
  Rng data_rng(9);
  const Dataset train = task.Generate(400, data_rng);
  const Dataset test = task.Generate(400, data_rng);
  auto model = MakeResNet34Proxy(task.spec().dim, task.spec().num_classes, 31);
  TrainConfig config;
  config.learning_rate = 0.1f;
  config.local_steps = 200;
  Rng train_rng(32);
  model->TrainLocal(train, config, train_rng);

  const double float_acc = model->Accuracy(test);
  // 35 classes: chance is ~2.9%; a briefly-trained model well clear of that makes the
  // quantization delta meaningful.
  ASSERT_GT(float_acc, 0.25) << "workload must be learnable for the delta to mean much";

  const auto weights = model->GetWeights();
  const QuantizedMlp::Layout layout{task.spec().dim, 256, task.spec().num_classes};
  ASSERT_EQ(layout.NumParams(), weights.size());

  // Rowwise quantization (higher fidelity).
  const auto rowwise = QuantizedMlp::FromWeights(weights, layout);
  const double rowwise_acc = rowwise.Accuracy(test);
  EXPECT_NEAR(rowwise_acc, float_acc, 0.03);

  // Per-tensor wire blob consumed without decode.
  const auto blob = EncodeInt8(weights);
  const auto from_blob = QuantizedMlp::FromInt8Blob(blob, layout);
  const double blob_acc = from_blob.Accuracy(test);
  EXPECT_NEAR(blob_acc, float_acc, 0.05);

  // The int8 representation must actually be ~4x smaller than float32 on the wire.
  EXPECT_LT(rowwise.WireBytes(), weights.size() * sizeof(float) / 3);
}

TEST(QuantizedMlpTest, PredictionsBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(11));
  Rng data_rng(12);
  const Dataset data = task.Generate(50, data_rng);
  auto model = MakeShuffleNetV2Proxy(task.spec().dim, task.spec().num_classes, 13);
  const auto weights = model->GetWeights();
  const QuantizedMlp::Layout layout{task.spec().dim, 96, task.spec().num_classes};
  const auto q = QuantizedMlp::FromWeights(weights, layout);

  std::vector<std::vector<float>> reference;
  for (SimdLevel level : SupportedSimdLevels()) {
    SetSimdLevelForTest(level);
    std::vector<std::vector<float>> probs;
    probs.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      probs.push_back(q.Predict(data.example(i).x));
    }
    if (reference.empty()) {
      reference = std::move(probs);
      continue;
    }
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(BitEqual(probs[i], reference[i]))
          << "int8 predict diverges at level " << SimdLevelName(level);
    }
  }
}

TEST(QuantizedMlpTest, FromInt8BlobMatchesDecodedWeights) {
  // Consuming the blob directly must predict the same classes as decoding the blob to
  // float and predicting with the dense model (the two paths differ only in summation
  // of identical quantized values scaled identically).
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(17));
  Rng data_rng(18);
  const Dataset data = task.Generate(100, data_rng);
  auto model = MakeTextClassifierProxy(task.spec().dim, task.spec().num_classes, 19);
  const auto weights = model->GetWeights();
  const auto blob = EncodeInt8(weights);
  const QuantizedMlp::Layout layout{task.spec().dim, 32, task.spec().num_classes};
  const auto q = QuantizedMlp::FromInt8Blob(blob, layout);

  auto decoded_model =
      MakeMlp("decoded", task.spec().dim, 32, task.spec().num_classes, 19);
  decoded_model->SetWeights(DecodeInt8(blob));
  // The paths sum the same scaled int8 values in a different association; only
  // near-tie argmaxes can flip, so the accuracies track each other closely.
  EXPECT_NEAR(q.Accuracy(data), decoded_model->Accuracy(data), 0.05);
}

}  // namespace
}  // namespace totoro
