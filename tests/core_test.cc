#include <gtest/gtest.h>

#include "src/baselines/central_engine.h"
#include "src/core/engine.h"
#include "src/core/totoro_api.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

FlAppConfig SmallApp(const std::string& name, double target = 2.0, size_t max_rounds = 5) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeSoftmaxRegression("sr", 16, 4, seed);
  };
  config.train.learning_rate = 0.15f;
  config.train.batch_size = 20;
  config.train.local_steps = 5;
  config.target_accuracy = target;
  config.max_rounds = max_rounds;
  return config;
}

SyntheticSpec SmallTask(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.class_separation = 2.5;
  spec.noise_stddev = 0.8;
  spec.seed = seed;
  return spec;
}

struct EngineWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  std::unique_ptr<TotoroEngine> engine;
  Rng rng{100};

  explicit EngineWorld(size_t n) {
    NetworkConfig config;  // Bandwidth modelling on: training traffic is sized.
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 5),
                                    config);
    pastry = std::make_unique<PastryNetwork>(net.get(), PastryConfig{});
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), ScribeConfig{});
    engine = std::make_unique<TotoroEngine>(forest.get(), ComputeModel{}, 101);
  }

  // Generates shards + test set for `workers` and launches the app.
  NodeId Launch(const FlAppConfig& config, const std::vector<size_t>& workers, uint64_t seed) {
    SyntheticTask task(SmallTask(seed));
    Rng data_rng(seed + 1);
    const Dataset full = task.Generate(120 * workers.size(), data_rng);
    auto shards = PartitionDirichlet(full, workers.size(), 1.0, data_rng);
    // Guarantee non-empty shards (tiny probability of an empty one).
    for (auto& s : shards) {
      if (s.size() == 0) {
        s.Add(full.example(0));
      }
    }
    const Dataset test = task.Generate(200, data_rng);
    return engine->LaunchApp(config, workers, std::move(shards), test);
  }
};

TEST(VirtualNodeCountTest, MatchesPaperMapping) {
  EXPECT_EQ(VirtualNodeCount(1), 1);
  EXPECT_EQ(VirtualNodeCount(2), 1);
  EXPECT_EQ(VirtualNodeCount(4), 2);
  EXPECT_EQ(VirtualNodeCount(8), 3);
  EXPECT_EQ(VirtualNodeCount(16), 4);
}

// Regression for the former function-scope `static thread_local` metric caches in
// engine.cc: those bound each series to whichever engine first executed the site on
// this thread. Per-engine caching must (a) keep attributing into the registry's series
// after ResetValues() zeroes them, and (b) give a later engine on the same thread its
// own correctly-counted deltas.
TEST(TotoroEngineTest, MetricSeriesSurviveRegistryValueReset) {
  std::vector<size_t> workers{1, 2, 3, 4, 5, 6};
  const Counter& tasks = GlobalMetrics().GetCounter("engine.compute.train_tasks");
  const uint64_t before = tasks.value();
  {
    EngineWorld world(12);
    world.Launch(SmallApp("reset-a", 2.0, 2), workers, 7);
    world.engine->StartAll();
    ASSERT_TRUE(world.engine->RunToCompletion());
  }
  const uint64_t delta = tasks.value() - before;
  EXPECT_GT(delta, 0u);
  GlobalMetrics().ResetValues();
  EXPECT_EQ(tasks.value(), 0u);
  {
    // Identical workload on a fresh engine: the new engine's cached pointers must hit
    // the same zeroed series, reproducing the first run's delta exactly.
    EngineWorld world(12);
    world.Launch(SmallApp("reset-a", 2.0, 2), workers, 7);
    world.engine->StartAll();
    ASSERT_TRUE(world.engine->RunToCompletion());
  }
  EXPECT_EQ(tasks.value(), delta);
}

TEST(TotoroEngineTest, SingleAppCompletesAllRounds) {
  EngineWorld world(60);
  std::vector<size_t> workers;
  for (size_t i = 0; i < 20; ++i) {
    workers.push_back(i);
  }
  const NodeId topic = world.Launch(SmallApp("app-a"), workers, 1);
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 5u);
  EXPECT_EQ(result.curve.size(), 5u);
  EXPECT_GT(result.total_time_ms, 0.0);
  // Curve times strictly increase.
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GT(result.curve[i].time_ms, result.curve[i - 1].time_ms);
  }
}

TEST(TotoroEngineTest, AccuracyImprovesOverRounds) {
  EngineWorld world(60);
  std::vector<size_t> workers;
  for (size_t i = 0; i < 20; ++i) {
    workers.push_back(i);
  }
  auto config = SmallApp("app-acc", /*target=*/2.0, /*max_rounds=*/10);
  // A hard task with a gentle learning rate so the curve actually rises over rounds
  // instead of saturating in round 1.
  config.train.learning_rate = 0.02f;
  config.train.local_steps = 2;
  SyntheticSpec hard;
  hard.dim = 16;
  hard.num_classes = 4;
  hard.class_separation = 1.0;
  hard.noise_stddev = 1.8;
  hard.seed = 2;
  SyntheticTask task(hard);
  Rng data_rng(3);
  const Dataset full = task.Generate(120 * workers.size(), data_rng);
  auto shards = PartitionDirichlet(full, workers.size(), 1.0, data_rng);
  for (auto& s : shards) {
    if (s.size() == 0) {
      s.Add(full.example(0));
    }
  }
  const NodeId topic =
      world.engine->LaunchApp(config, workers, std::move(shards), task.Generate(300, data_rng));
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_GT(result.final_accuracy, 0.45);
  EXPECT_GT(result.final_accuracy, result.curve.front().accuracy);
}

TEST(TotoroEngineTest, TargetAccuracyStopsEarly) {
  EngineWorld world(60);
  std::vector<size_t> workers;
  for (size_t i = 0; i < 15; ++i) {
    workers.push_back(i);
  }
  auto config = SmallApp("app-early", /*target=*/0.5, /*max_rounds=*/30);
  const NodeId topic = world.Launch(config, workers, 3);
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.rounds_completed, 30u);
  EXPECT_GT(result.time_to_target_ms, 0.0);
  EXPECT_LE(result.time_to_target_ms, result.total_time_ms);
}

TEST(TotoroEngineTest, ConcurrentAppsAllComplete) {
  EngineWorld world(100);
  std::vector<NodeId> topics;
  Rng pick(5);
  for (int a = 0; a < 5; ++a) {
    std::vector<size_t> workers;
    std::set<size_t> used;
    while (used.size() < 12) {
      used.insert(pick.NextBelow(world.pastry->size()));
    }
    workers.assign(used.begin(), used.end());
    topics.push_back(
        world.Launch(SmallApp("multi-" + std::to_string(a), 2.0, 3), workers, 10 + a));
  }
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  for (const auto& topic : topics) {
    EXPECT_EQ(world.engine->result(topic).rounds_completed, 3u);
  }
  // Different apps have different masters (with high probability over 5 hashed ids).
  std::set<size_t> masters;
  for (const auto& topic : topics) {
    masters.insert(world.forest->RootOf(topic));
  }
  EXPECT_GE(masters.size(), 3u);
}

TEST(TotoroEngineTest, SlowNodesDelayRounds) {
  // Two identical apps; one whose workers are 10x slower finishes later.
  EngineWorld fast_world(50);
  EngineWorld slow_world(50);
  std::vector<size_t> workers;
  for (size_t i = 0; i < 10; ++i) {
    workers.push_back(i);
  }
  std::vector<double> slow(50, 0.1);
  slow_world.engine->SetSpeedFactors(slow);

  const NodeId t1 = fast_world.Launch(SmallApp("speed", 2.0, 3), workers, 21);
  const NodeId t2 = slow_world.Launch(SmallApp("speed", 2.0, 3), workers, 21);
  fast_world.engine->StartAll();
  slow_world.engine->StartAll();
  ASSERT_TRUE(fast_world.engine->RunToCompletion());
  ASSERT_TRUE(slow_world.engine->RunToCompletion());
  EXPECT_LT(fast_world.engine->result(t1).total_time_ms,
            slow_world.engine->result(t2).total_time_ms);
}

TEST(TotoroEngineTest, DpAppStillTrains) {
  EngineWorld world(50);
  std::vector<size_t> workers;
  for (size_t i = 0; i < 15; ++i) {
    workers.push_back(i);
  }
  auto config = SmallApp("dp-app", 2.0, 8);
  config.dp = DpConfig{5.0, 0.05};
  const NodeId topic = world.Launch(config, workers, 31);
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  EXPECT_GT(world.engine->result(topic).final_accuracy, 0.4);
}

TEST(TotoroEngineTest, FlWorkChargedToWorkers) {
  EngineWorld world(40);
  std::vector<size_t> workers = {0, 1, 2, 3, 4};
  world.Launch(SmallApp("work-app", 2.0, 2), workers, 41);
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  EXPECT_GT(world.net->metrics().TotalWork(WorkKind::kFlTask), 0.0);
  EXPECT_GT(world.net->metrics().TotalWork(WorkKind::kDhtTask), 0.0);
}

// ---------- Centralized baseline ----------

TEST(CentralizedEngineTest, SingleAppTrains) {
  Simulator sim;
  CentralizedEngine central(&sim, CentralConfig{}, 30, 51);
  SyntheticTask task(SmallTask(52));
  Rng rng(53);
  std::vector<size_t> clients;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 15; ++i) {
    clients.push_back(i);
    shards.push_back(task.Generate(100, rng));
  }
  const Dataset test = task.Generate(200, rng);
  const NodeId topic = central.LaunchApp(SmallApp("central-a", 2.0, 6), clients,
                                         std::move(shards), test);
  central.StartAll();
  ASSERT_TRUE(central.RunToCompletion());
  const auto& result = central.result(topic);
  EXPECT_EQ(result.rounds_completed, 6u);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST(CentralizedEngineTest, TotalTimeGrowsWithConcurrentApps) {
  auto run_many = [](int num_apps) {
    Simulator sim;
    CentralizedEngine central(&sim, CentralConfig{}, 64, 61);
    SyntheticTask task(SmallTask(62));
    Rng rng(63);
    std::vector<NodeId> topics;
    for (int a = 0; a < num_apps; ++a) {
      std::vector<size_t> clients;
      std::vector<Dataset> shards;
      for (size_t i = 0; i < 10; ++i) {
        clients.push_back((a * 10 + i) % 64);
        shards.push_back(task.Generate(80, rng));
      }
      topics.push_back(central.LaunchApp(SmallApp("q-" + std::to_string(a), 2.0, 3),
                                         clients, std::move(shards), task.Generate(100, rng)));
    }
    central.StartAll();
    EXPECT_TRUE(central.RunToCompletion());
    double max_time = 0;
    for (const auto& t : topics) {
      max_time = std::max(max_time, central.result(t).total_time_ms);
    }
    return max_time;
  };
  const double one = run_many(1);
  const double eight = run_many(8);
  // The serial coordinator + shared NIC makes 8 concurrent apps much slower than 1.
  EXPECT_GT(eight, one * 2.0);
}

// ---------- Table 2 API facade ----------

TEST(TotoroApiTest, JoinCreateSubscribeBroadcastAggregate) {
  Totoro::Options options;
  options.seed = 71;
  Totoro api(options);
  for (int i = 0; i < 40; ++i) {
    api.Join(/*site=*/i % 2);
  }
  api.BuildOverlay();
  const NodeId app = api.CreateTree("table2-app");
  for (size_t i = 0; i < api.NumNodes(); ++i) {
    api.Subscribe(i, app);
  }
  api.Run();

  int broadcasts_seen = 0;
  api.SetOnBroadcast([&](Totoro::NodeHandle, const NodeId&, uint64_t,
                         const Totoro::ObjectPtr& object) {
    EXPECT_EQ(*static_cast<const int*>(object.get()), 77);
    ++broadcasts_seen;
  });
  double aggregate_weight = 0;
  api.SetOnAggregate([&](const NodeId&, uint64_t, const Totoro::ObjectPtr&, double weight) {
    aggregate_weight = weight;
  });
  api.Broadcast(app, 1, std::make_shared<int>(77), 512);
  api.Run();
  EXPECT_EQ(broadcasts_seen, 40);

  for (size_t i = 0; i < api.NumNodes(); ++i) {
    api.Aggregate(i, app, 1, std::make_shared<int>(1), 2.5, 64);
  }
  api.Run();
  EXPECT_DOUBLE_EQ(aggregate_weight, 2.5 * 40);
}

TEST(TotoroApiTest, MasterIsRendezvousNode) {
  Totoro::Options options;
  options.seed = 81;
  Totoro api(options);
  for (int i = 0; i < 30; ++i) {
    api.Join();
  }
  api.BuildOverlay();
  const NodeId app = api.CreateTree("master-app");
  for (size_t i = 0; i < api.NumNodes(); ++i) {
    api.Subscribe(i, app);
  }
  api.Run();
  const auto master = api.MasterOf(app);
  ASSERT_NE(master, SIZE_MAX);
  EXPECT_TRUE(api.forest().scribe(master).IsRoot(app));
}

TEST(TotoroEngineTest, SecureAggregationRoundSurvivesStragglerDeadline) {
  // Regression for the secure-sum combiner crashing on null "nothing to contribute"
  // pieces: a secure app with participant selection (unselected workers ack with null
  // pieces) and a straggler cut off every round by the tree timeout, backstopped by
  // Engine::SetRoundDeadline. The root must close rounds via dropout correction.
  NetworkConfig net_config;
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 5), net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(100);
  for (size_t i = 0; i < 50; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  ScribeConfig scribe_config;
  scribe_config.aggregation_timeout_ms = 250.0;  // Interior nodes forward partials.
  Forest forest(&pastry, scribe_config);
  TotoroEngine engine(&forest, ComputeModel{}, 101);
  engine.SetRoundDeadline(4000.0);
  std::vector<double> speeds(50, 1.0);
  speeds[2] = 1e-6;  // Never finishes within a round.
  engine.SetSpeedFactors(speeds);

  FlAppConfig config = SmallApp("secure-straggler", 2.0, 4);
  config.secure_aggregation = true;
  config.participants_per_round = 7;
  config.selection = SelectionPolicy::kRandom;
  std::vector<size_t> workers{0, 1, 2, 3, 4, 5, 6, 7};
  SyntheticTask task(SmallTask(11));
  Rng data_rng(12);
  std::vector<Dataset> shards;
  for (size_t i = 0; i < workers.size(); ++i) {
    shards.push_back(task.Generate(100, data_rng));
  }
  const uint64_t corrections_before =
      GlobalMetrics().GetCounter("engine.secure.dropout_corrections").value();
  const NodeId topic = engine.LaunchApp(config, workers, std::move(shards),
                                        task.Generate(200, data_rng));
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion());
  const auto& result = engine.result(topic);
  EXPECT_EQ(result.rounds_completed, 4u);
  EXPECT_GT(result.final_accuracy, 0.3);  // The unmasked model actually learned.
  // Worker 2 was selected in at least one round (random selection of 7 of 8 over 4
  // rounds makes a miss astronomically unlikely with this seed) and cut off, so the
  // root ran the mask-recovery correction.
  const uint64_t corrections_after =
      GlobalMetrics().GetCounter("engine.secure.dropout_corrections").value();
  EXPECT_GT(corrections_after, corrections_before);
}

TEST(TotoroEngineTest, SecureAggregationMatchesPlainFedAvgWithoutDropouts) {
  // With the full cohort contributing, masks cancel and the secure path must land on
  // (numerically almost exactly) the plain FedAvg model.
  auto run = [](bool secure) {
    EngineWorld world(40);
    FlAppConfig config = SmallApp(secure ? "sec" : "plain", 2.0, 3);
    config.secure_aggregation = secure;
    std::vector<size_t> workers{0, 1, 2, 3, 4, 5};
    const NodeId topic = world.Launch(config, workers, 21);
    world.engine->StartAll();
    EXPECT_TRUE(world.engine->RunToCompletion());
    return world.engine->result(topic).final_accuracy;
  };
  const double plain = run(false);
  const double secure = run(true);
  EXPECT_NEAR(secure, plain, 0.05);
}

TEST(TotoroEngineTest, AsyncStalenessDiscountConvergesAndRecordsHistogram) {
  EngineWorld world(50);
  // Heterogeneous speeds so some updates arrive stale (trained against an older
  // re-broadcast than the master's current model).
  std::vector<double> speeds(50, 1.0);
  for (size_t i = 0; i < speeds.size(); ++i) {
    speeds[i] = (i % 3 == 0) ? 0.2 : 1.0;
  }
  world.engine->SetSpeedFactors(speeds);
  FlAppConfig config = SmallApp("async-stale", 2.0, 6);
  config.async = AsyncConfig{};
  config.async->staleness_exponent = 1.0;
  std::vector<size_t> workers{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Histogram& staleness = GlobalMetrics().GetHistogram(
      "engine.async.staleness_rounds", Histogram::HopCountBounds());
  const uint64_t observed_before = staleness.count();
  const NodeId topic = world.Launch(config, workers, 31);
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 6u);
  EXPECT_FALSE(result.curve.empty());
  EXPECT_GT(staleness.count(), observed_before);
}

TEST(TotoroApiTest, OnTimerFiresPeriodically) {
  Totoro::Options options;
  options.seed = 91;
  Totoro api(options);
  api.Join();
  api.BuildOverlay();
  const NodeId app = api.CreateTree("timer-app");
  int fires = 0;
  api.SetOnTimer(app, 100.0, [&](const NodeId& id) {
    EXPECT_EQ(id, app);
    ++fires;
  });
  api.sim().RunUntil(1000.0);
  EXPECT_EQ(fires, 10);
}

}  // namespace
}  // namespace totoro
