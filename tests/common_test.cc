#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/geo.h"
#include "src/common/rng.h"
#include "src/common/sha1.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/u128.h"

namespace totoro {
namespace {

TEST(U128Test, ComparisonOrdersByHighThenLow) {
  EXPECT_LT(U128(0, 5), U128(0, 6));
  EXPECT_LT(U128(0, ~0ull), U128(1, 0));
  EXPECT_GT(U128(2, 0), U128(1, ~0ull));
  EXPECT_EQ(U128(3, 4), U128(3, 4));
  EXPECT_NE(U128(3, 4), U128(4, 3));
}

TEST(U128Test, AdditionCarriesAcrossWords) {
  const U128 a(0, ~0ull);
  const U128 b(0, 1);
  EXPECT_EQ(a + b, U128(1, 0));
}

TEST(U128Test, SubtractionBorrowsAcrossWords) {
  const U128 a(1, 0);
  const U128 b(0, 1);
  EXPECT_EQ(a - b, U128(0, ~0ull));
}

TEST(U128Test, AdditionWrapsModulo2To128) {
  EXPECT_EQ(U128::Max() + U128(0, 1), U128(0, 0));
  EXPECT_EQ(U128(0, 0) - U128(0, 1), U128::Max());
}

TEST(U128Test, ShiftLeftAcrossBoundary) {
  EXPECT_EQ(U128(0, 1) << 64, U128(1, 0));
  EXPECT_EQ(U128(0, 1) << 127, U128(1ull << 63, 0));
  EXPECT_EQ(U128(0, 1) << 128, U128(0, 0));
  EXPECT_EQ(U128(0, 0b11) << 63, U128(1, 1ull << 63));
}

TEST(U128Test, ShiftRightAcrossBoundary) {
  EXPECT_EQ(U128(1, 0) >> 64, U128(0, 1));
  EXPECT_EQ(U128(1ull << 63, 0) >> 127, U128(0, 1));
  EXPECT_EQ(U128(5, 0) >> 128, U128(0, 0));
}

TEST(U128Test, DigitExtractionBase16) {
  // id = 0xA000...0 : first hex digit is 0xA, rest 0.
  const U128 id(0xA000000000000000ull, 0);
  EXPECT_EQ(id.Digit(0, 4), 0xAu);
  EXPECT_EQ(id.Digit(1, 4), 0x0u);
  EXPECT_EQ(id.Digit(31, 4), 0x0u);
}

TEST(U128Test, DigitExtractionLastDigit) {
  const U128 id(0, 0xB);
  EXPECT_EQ(id.Digit(31, 4), 0xBu);
  EXPECT_EQ(id.Digit(30, 4), 0x0u);
}

TEST(U128Test, CommonPrefixDigits) {
  const U128 a = U128::FromHex("ab000000000000000000000000000000");
  const U128 b = U128::FromHex("ab100000000000000000000000000000");
  EXPECT_EQ(a.CommonPrefixDigits(b, 4), 2);
  EXPECT_EQ(a.CommonPrefixDigits(a, 4), 32);
  const U128 c = U128::FromHex("cb000000000000000000000000000000");
  EXPECT_EQ(a.CommonPrefixDigits(c, 4), 0);
}

TEST(U128Test, RingDistanceTakesShorterArc) {
  const U128 a(0, 10);
  const U128 b = U128::Max();  // Distance 11 going down, huge going up.
  EXPECT_EQ(U128::RingDistance(a, b), U128(0, 11));
  EXPECT_EQ(U128::RingDistance(b, a), U128(0, 11));
  EXPECT_EQ(U128::RingDistance(a, a), U128(0, 0));
}

TEST(U128Test, HexRoundTrip) {
  const U128 v(0x0123456789ABCDEFull, 0xFEDCBA9876543210ull);
  EXPECT_EQ(U128::FromHex(v.ToHex()), v);
  EXPECT_EQ(v.ToHex(), "0123456789abcdeffedcba9876543210");
}

TEST(Sha1Test, KnownVectors) {
  // FIPS 180-1 test vectors.
  auto hex = [](const std::array<uint8_t, 20>& d) {
    std::string s;
    char buf[3];
    for (uint8_t b : d) {
      std::snprintf(buf, sizeof(buf), "%02x", b);
      s += buf;
    }
    return s;
  };
  EXPECT_EQ(hex(Sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(Sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex(Sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, LongInputCrossesBlockBoundaries) {
  const std::string a(1000000, 'a');
  auto digest = Sha1(a);
  char buf[3];
  std::string s;
  for (uint8_t b : digest) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    s += buf;
  }
  EXPECT_EQ(s, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, To128DiffersAcrossInputs) {
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(Sha1To128("app-" + std::to_string(i)).ToHex());
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(RngTest, GeometricMeanMatchesOneOverP) {
  Rng rng(13);
  const double p = 0.25;
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Geometric(p);
    EXPECT_GE(v, 1u);
    total += static_cast<double>(v);
  }
  EXPECT_NEAR(total / n, 1.0 / p, 0.15);
}

TEST(RngTest, GeometricWithPOneAlwaysOne) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Geometric(1.0), 1u);
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(17);
  for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
    const auto v = rng.Dirichlet(alpha, 8);
    ASSERT_EQ(v.size(), 8u);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, LowAlphaDirichletIsSkewed) {
  Rng rng(19);
  double max_sum = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto v = rng.Dirichlet(0.1, 10);
    max_sum += *std::max_element(v.begin(), v.end());
  }
  // With alpha=0.1 the max component dominates; with uniform it would be ~0.1.
  EXPECT_GT(max_sum / trials, 0.5);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) {
    ++counts[rng.WeightedIndex(w)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 10.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  AsciiHistogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(9.99);
  h.Add(10.0);
  h.Add(5.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(IntCounterTest, CumulativeFraction) {
  IntCounter c;
  for (int i = 0; i < 99; ++i) {
    c.Add(1);
  }
  c.Add(10);
  EXPECT_DOUBLE_EQ(c.CumulativeFraction(3), 0.99);
  EXPECT_DOUBLE_EQ(c.CumulativeFraction(10), 1.0);
  EXPECT_DOUBLE_EQ(c.CumulativeFraction(0), 0.0);
}

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.50"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Every line has the same width.
  size_t first_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(GeoTest, HaversineKnownDistance) {
  // Sydney to Melbourne is roughly 714 km.
  const GeoPoint sydney{-33.87, 151.21};
  const GeoPoint melbourne{-37.81, 144.96};
  EXPECT_NEAR(HaversineKm(sydney, melbourne), 714.0, 20.0);
}

TEST(GeoTest, RttGrowsWithDistance) {
  EXPECT_LT(EstimateRttMs(10.0), EstimateRttMs(1000.0));
  EXPECT_GT(EstimateRttMs(0.0), 0.0);  // Base latency applies even locally.
}

}  // namespace
}  // namespace totoro
