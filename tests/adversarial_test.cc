// Adversarial scenario suite: Byzantine attacker roles (faultsim DSL) against the
// robust aggregation defenses (src/fl/robust.h), plus trace-driven diurnal churn.
//
// The golden scenarios pin the headline claim: under f = 30% sign-flip poisoning,
// plain FedAvg collapses while every robust combiner keeps final accuracy within a
// few points of the attack-free baseline — and every attacked run replays
// bit-identically per seed at any compute-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eua_topology.h"
#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/fl/aggregation.h"
#include "src/fl/robust.h"
#include "src/fl/selection.h"
#include "src/obs/metrics_registry.h"
#include "src/pubsub/forest.h"
#include "src/sim/latency_model.h"

namespace totoro {
namespace {

// ---------------------------------------------------------------------------
// Robust aggregation rules: unit and property tests.
// ---------------------------------------------------------------------------

std::vector<WeightedUpdate> RandomUpdates(size_t n, size_t dim, Rng& rng) {
  std::vector<WeightedUpdate> updates(n);
  for (auto& u : updates) {
    u.weights.resize(dim);
    for (float& w : u.weights) {
      w = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    u.sample_weight = rng.Uniform(1.0, 100.0);
  }
  return updates;
}

TEST(RobustRulesTest, CoordinateMedianOddAndEvenCounts) {
  std::vector<WeightedUpdate> odd = {{{1.0f, 10.0f}, 1.0},
                                     {{3.0f, -5.0f}, 50.0},
                                     {{2.0f, 0.0f}, 1.0}};
  EXPECT_EQ(CoordinateMedian(odd), (std::vector<float>{2.0f, 0.0f}));
  std::vector<WeightedUpdate> even = {{{1.0f}, 1.0}, {{3.0f}, 1.0},
                                      {{100.0f}, 1.0}, {{2.0f}, 1.0}};
  EXPECT_EQ(CoordinateMedian(even), (std::vector<float>{2.5f}));
}

TEST(RobustRulesTest, TrimmedMeanDropsTheExtremes) {
  std::vector<WeightedUpdate> updates = {{{-100.0f}, 1.0}, {{1.0f}, 1.0},
                                         {{2.0f}, 1.0},    {{3.0f}, 1.0},
                                         {{100.0f}, 1.0}};
  // floor(0.2 * 5) = 1 trimmed per side: mean of {1, 2, 3}.
  EXPECT_EQ(TrimmedMean(updates, 0.2), (std::vector<float>{2.0f}));
  // trim = 0 is the plain unweighted per-coordinate mean.
  std::vector<WeightedUpdate> plain = {{{1.0f, 2.0f}, 1.0}, {{3.0f, 4.0f}, 9.0},
                                       {{5.0f, 6.0f}, 1.0}, {{7.0f, 8.0f}, 1.0}};
  EXPECT_EQ(TrimmedMean(plain, 0.0), (std::vector<float>{4.0f, 5.0f}));
}

TEST(RobustRulesTest, MedianAndTrimmedMeanArePermutationInvariantBitwise) {
  Rng rng(42);
  std::vector<WeightedUpdate> updates = RandomUpdates(9, 33, rng);
  const std::vector<float> median = CoordinateMedian(updates);
  const std::vector<float> trimmed = TrimmedMean(updates, 0.25);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(updates);
    const std::vector<float> m = CoordinateMedian(updates);
    const std::vector<float> t = TrimmedMean(updates, 0.25);
    ASSERT_EQ(m.size(), median.size());
    ASSERT_EQ(t.size(), trimmed.size());
    EXPECT_EQ(0, std::memcmp(m.data(), median.data(), m.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(t.data(), trimmed.data(), t.size() * sizeof(float)));
  }
}

TEST(RobustRulesTest, NormClipWithGenerousBudgetIsExactlyFedAvg) {
  Rng rng(43);
  const std::vector<WeightedUpdate> updates = RandomUpdates(7, 24, rng);
  std::vector<float> reference(24, 0.5f);
  size_t clipped = SIZE_MAX;
  const std::vector<float> clipped_mean =
      NormClippedMean(updates, reference, /*clip_norm=*/1e9, &clipped);
  const std::vector<float> fedavg = FederatedAverage(updates);
  EXPECT_EQ(clipped, 0u);
  ASSERT_EQ(clipped_mean.size(), fedavg.size());
  EXPECT_EQ(0, std::memcmp(clipped_mean.data(), fedavg.data(),
                           fedavg.size() * sizeof(float)));
}

TEST(RobustRulesTest, NormClipAutoBudgetBoundsAttackerInfluence) {
  // Nine honest updates with delta norm ~1, one attacker scaled 50x. The auto budget
  // (median of delta norms) caps the attacker at an honest-sized step, so the mean
  // lands within the budget of the reference no matter how hard the attacker pushes.
  Rng rng(44);
  const size_t dim = 16;
  std::vector<float> reference(dim, 0.0f);
  std::vector<WeightedUpdate> updates;
  for (int i = 0; i < 9; ++i) {
    WeightedUpdate u;
    u.weights.resize(dim);
    double norm2 = 0.0;
    for (float& w : u.weights) {
      w = static_cast<float>(rng.Uniform(-1.0, 1.0));
      norm2 += static_cast<double>(w) * w;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (float& w : u.weights) {
      w *= inv;  // Unit-norm delta.
    }
    u.sample_weight = 10.0;
    updates.push_back(std::move(u));
  }
  WeightedUpdate attacker;
  attacker.weights.assign(dim, 50.0f / std::sqrt(static_cast<float>(dim)) * 1.0f);
  attacker.sample_weight = 10.0;
  updates.push_back(attacker);

  size_t clipped = 0;
  const std::vector<float> result =
      NormClippedMean(updates, reference, /*clip_norm=*/0.0, &clipped);
  EXPECT_GE(clipped, 1u);  // At least the attacker got clipped.
  double result_norm = 0.0;
  for (float v : result) {
    result_norm += static_cast<double>(v) * v;
  }
  // Every clipped delta has norm <= budget (~1), so their weighted mean does too.
  EXPECT_LE(std::sqrt(result_norm), 1.0 + 1e-6);
}

TEST(RobustRulesTest, AllFiniteRejectsNaNAndInf) {
  std::vector<float> ok = {1.0f, -2.0f, 0.0f};
  EXPECT_TRUE(AllFinite(ok));
  std::vector<float> nan = ok;
  nan[1] = std::nanf("");
  EXPECT_FALSE(AllFinite(nan));
  std::vector<float> inf = ok;
  inf[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(AllFinite(inf));
}

// ---------------------------------------------------------------------------
// Collect combiner: id-sorted concatenation is arrival-order independent.
// ---------------------------------------------------------------------------

AggregationPiece ListPiece(uint64_t id, std::vector<float> weights, double sw) {
  auto list = std::make_shared<UpdateListPayload>();
  list->ids = {id};
  list->updates.push_back(WeightedUpdate{std::move(weights), sw});
  AggregationPiece piece;
  piece.data = list;
  piece.weight = sw;
  piece.count = 1;
  return piece;
}

AggregationPiece NullPiece() {
  AggregationPiece piece;
  piece.data = nullptr;
  piece.weight = 0.0;
  piece.count = 0;
  return piece;
}

TEST(CollectCombinerTest, MergesSortedByIdRegardlessOfArrivalOrder) {
  CombineFn combine = MakeCollectCombiner();
  const std::vector<AggregationPiece> forward = {
      ListPiece(3, {3.0f}, 30.0), ListPiece(1, {1.0f}, 10.0),
      NullPiece(), ListPiece(7, {7.0f}, 70.0)};
  std::vector<AggregationPiece> reversed(forward.rbegin(), forward.rend());

  const AggregationPiece a = combine(forward);
  const AggregationPiece b = combine(reversed);
  ASSERT_NE(a.data, nullptr);
  ASSERT_NE(b.data, nullptr);
  const auto* la = static_cast<const UpdateListPayload*>(a.data.get());
  const auto* lb = static_cast<const UpdateListPayload*>(b.data.get());
  EXPECT_EQ(la->ids, (std::vector<uint64_t>{1, 3, 7}));
  EXPECT_EQ(la->ids, lb->ids);
  ASSERT_EQ(la->updates.size(), 3u);
  for (size_t i = 0; i < la->updates.size(); ++i) {
    EXPECT_EQ(la->updates[i].weights, lb->updates[i].weights);
    EXPECT_EQ(la->updates[i].sample_weight, lb->updates[i].sample_weight);
  }
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(b.count, 3u);
}

TEST(CollectCombinerTest, AllNullPiecesYieldEmptyAggregate) {
  CombineFn combine = MakeCollectCombiner();
  const AggregationPiece total = combine({NullPiece(), NullPiece()});
  EXPECT_EQ(total.data, nullptr);
  EXPECT_EQ(total.count, 0u);
}

// ---------------------------------------------------------------------------
// Device classes and bandwidth-aware selection.
// ---------------------------------------------------------------------------

TEST(DeviceClassTest, DefaultClassesCoverTheFleet) {
  const auto classes = DefaultDeviceClasses();
  ASSERT_EQ(classes.size(), 4u);
  double total = 0.0;
  for (const DeviceClass& c : classes) {
    EXPECT_GT(c.speed_factor, 0.0);
    EXPECT_GT(c.bandwidth_factor, 0.0);
    total += c.fleet_fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DeviceClassTest, AssignmentIsDeterministicAndMatchesFractions) {
  const auto classes = DefaultDeviceClasses();
  const size_t n = 4000;
  const std::vector<size_t> a = AssignDeviceClasses(n, classes, 77);
  const std::vector<size_t> b = AssignDeviceClasses(n, classes, 77);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, AssignDeviceClasses(n, classes, 78));
  std::vector<size_t> counts(classes.size(), 0);
  for (size_t cls : a) {
    ASSERT_LT(cls, classes.size());
    ++counts[cls];
  }
  for (size_t i = 0; i < classes.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, classes[i].fleet_fraction, 0.04)
        << classes[i].name;
  }
}

TEST(SelectionSweepTest, BandwidthBetaZeroReproducesComputeOnlyPolicy) {
  std::vector<ClientInfo> clients;
  Rng gen(55);
  for (size_t i = 0; i < 20; ++i) {
    clients.push_back({i, gen.Uniform(0.1, 2.0), gen.Uniform(0.25, 4.0),
                       gen.Uniform(0.25, 4.0)});
  }
  OortLikeSelector compute_only(0.2, 0.5);
  OortLikeSelector beta_zero(0.2, 0.5, 0.0);
  Rng rng_a(9);
  Rng rng_b(9);
  for (size_t count : {4u, 8u, 12u}) {
    EXPECT_EQ(compute_only.Select(clients, count, rng_a),
              beta_zero.Select(clients, count, rng_b));
  }
}

TEST(SelectionSweepTest, BandwidthAwareExploitPrefersWellConnectedDevices) {
  // Equal loss and speed, strictly increasing bandwidth: a pure-exploit
  // bandwidth-aware selector must pick exactly the best-connected clients.
  std::vector<ClientInfo> clients;
  for (size_t i = 0; i < 10; ++i) {
    clients.push_back({i, 1.0, 1.0, 0.5 + 0.25 * static_cast<double>(i)});
  }
  OortLikeSelector selector(/*exploration_fraction=*/0.0, /*speed_alpha=*/0.5,
                            /*bandwidth_beta=*/1.0);
  Rng rng(3);
  std::vector<size_t> picked = selector.Select(clients, 3, rng);
  std::sort(picked.begin(), picked.end());
  EXPECT_EQ(picked, (std::vector<size_t>{7, 8, 9}));
}

TEST(SelectionSweepTest, DeviceClassSweepIsDeterministic) {
  // Full pipeline: class assignment feeds per-client factors, the bandwidth-aware
  // selector sweeps over budgets. Two identically seeded sweeps agree exactly.
  const auto classes = DefaultDeviceClasses();
  const std::vector<size_t> assignment = AssignDeviceClasses(40, classes, 91);
  std::vector<ClientInfo> clients;
  Rng loss_gen(92);
  for (size_t i = 0; i < assignment.size(); ++i) {
    const DeviceClass& c = classes[assignment[i]];
    clients.push_back({i, loss_gen.Uniform(0.2, 1.5), c.speed_factor,
                       c.bandwidth_factor});
  }
  OortLikeSelector selector(0.25, 0.5, 0.5);
  Rng rng_a(17);
  Rng rng_b(17);
  for (size_t count = 2; count <= 20; count += 3) {
    const std::vector<size_t> pick_a = selector.Select(clients, count, rng_a);
    const std::vector<size_t> pick_b = selector.Select(clients, count, rng_b);
    EXPECT_EQ(pick_a, pick_b) << "count " << count;
    EXPECT_EQ(pick_a.size(), count);
  }
}

// ---------------------------------------------------------------------------
// Golden attack scenarios: full engine runs under scripted Byzantine roles.
// ---------------------------------------------------------------------------

constexpr size_t kHosts = 40;
constexpr size_t kWorkers = 10;
constexpr size_t kRounds = 12;

struct AdvWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  std::unique_ptr<TotoroEngine> engine;
  std::unique_ptr<FaultInjector> injector;
  Rng rng{1200};

  AdvWorld() {
    ScribeConfig scribe_config;
    scribe_config.aggregation_timeout_ms = 600.0;
    net = std::make_unique<Network>(
        &sim, std::make_unique<PairwiseUniformLatency>(1.0, 15.0, 13), NetworkConfig{});
    pastry = std::make_unique<PastryNetwork>(net.get(), PastryConfig{});
    for (size_t i = 0; i < kHosts; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
    engine = std::make_unique<TotoroEngine>(forest.get(), ComputeModel{}, 1201);
    injector = std::make_unique<FaultInjector>(pastry.get(), forest.get(), 1300);
    // Wire the faultsim attacker roles into the engine's generic adversary hooks.
    engine->SetUpdateInterceptor(
        [this](const NodeId&, uint64_t round, size_t node_index,
               std::span<const float> reference, std::vector<float>& weights,
               double& sample_weight) {
          return injector->PoisonUpdate(round, forest->scribe(node_index).host(),
                                        reference, weights, sample_weight);
        });
    engine->SetSybilProvider(
        [this](const NodeId& topic, uint64_t round, size_t node_index,
               std::span<const float> reference, std::vector<float>& weights,
               double& sample_weight) {
          return injector->ForgeSybilUpdate(topic, round,
                                            forest->scribe(node_index).host(),
                                            reference, weights, sample_weight);
        });
  }

  NodeId LaunchApp(RobustConfig robust, uint64_t seed) {
    SyntheticSpec spec;
    spec.dim = 16;
    spec.num_classes = 4;
    spec.seed = seed;
    SyntheticTask task(spec);
    Rng data_rng(seed + 1);
    FlAppConfig config;
    config.name = "adv-app";
    config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
    config.train.learning_rate = 0.1f;
    config.target_accuracy = 2.0;
    config.max_rounds = kRounds;
    config.robust = robust;
    std::vector<size_t> nodes;
    std::vector<Dataset> shards;
    for (size_t i = 0; i < kWorkers; ++i) {
      nodes.push_back(i);
      shards.push_back(task.Generate(80, data_rng));
    }
    return engine->LaunchApp(config, nodes, std::move(shards), task.Generate(200, data_rng));
  }

  std::vector<HostId> WorkerHosts(size_t first, size_t count) const {
    std::vector<HostId> hosts;
    for (size_t i = first; i < first + count; ++i) {
      hosts.push_back(forest->scribe(i).host());
    }
    return hosts;
  }
};

struct Outcome {
  AppResult result;
  FaultInjector::Stats stats;
  uint64_t defended_rounds = 0;
  uint64_t rejected_updates = 0;
  uint64_t clipped_updates = 0;
};

// Builds one attack script over the first `attackers` workers.
FaultScript MakeAttackScript(const AdvWorld& world, AttackKind kind, size_t attackers,
                             double magnitude) {
  FaultScript script;
  if (attackers == 0) {
    return script;
  }
  const std::vector<HostId> hosts = world.WorkerHosts(0, attackers);
  switch (kind) {
    case AttackKind::kSignFlip:
      script.SignFlipAt(0.0, 1e9, hosts, magnitude);
      break;
    case AttackKind::kGaussianNoise:
      script.GaussianNoiseAt(0.0, 1e9, hosts, magnitude);
      break;
    case AttackKind::kGradientScale:
      script.GradientScaleAt(0.0, 1e9, hosts, magnitude);
      break;
  }
  return script;
}

Outcome RunAttackScenario(RobustConfig robust, AttackKind kind, size_t attackers,
                          double magnitude, size_t compute_threads = 1) {
  GlobalMetrics().ResetValues();
  AdvWorld world;
  const NodeId topic = world.LaunchApp(robust, 1400);
  world.injector->Schedule(MakeAttackScript(world, kind, attackers, magnitude));
  if (compute_threads > 1) {
    world.engine->SetComputeThreads(compute_threads);
  }
  world.engine->StartAll();
  EXPECT_TRUE(world.engine->RunToCompletion(1e8));
  Outcome out;
  out.result = world.engine->result(topic);
  out.stats = world.injector->stats();
  out.defended_rounds = GlobalMetrics().GetCounter("engine.defense.rounds_defended").value();
  out.rejected_updates = GlobalMetrics().GetCounter("engine.defense.updates_rejected").value();
  out.clipped_updates = GlobalMetrics().GetCounter("engine.defense.updates_clipped").value();
  return out;
}

RobustConfig Defense(RobustAggregation rule) {
  RobustConfig config;
  config.rule = rule;
  config.trim_fraction = 0.3;
  return config;
}

void ExpectSameCurve(const AppResult& a, const AppResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time_ms, b.curve[i].time_ms) << "point " << i;
    EXPECT_EQ(a.curve[i].round, b.curve[i].round) << "point " << i;
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy) << "point " << i;
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
}

TEST(AdversarialGoldenTest, SignFlip30PercentFedAvgCollapsesDefensesHold) {
  // Attack-free baseline (plain FedAvg).
  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  ASSERT_EQ(baseline.result.rounds_completed, kRounds);
  ASSERT_GT(baseline.result.final_accuracy, 0.6);

  // f = 30% sign-flip, scale 4: undefended FedAvg loses >= 20 accuracy points.
  const Outcome fedavg = RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 3, 4.0);
  EXPECT_EQ(fedavg.result.rounds_completed, kRounds);
  EXPECT_GT(fedavg.stats.poisoned_updates, 0u);
  EXPECT_LE(fedavg.result.final_accuracy, baseline.result.final_accuracy - 0.20);

  // Every robust combiner stays within 5 points of the attack-free baseline.
  for (RobustAggregation rule :
       {RobustAggregation::kCoordinateMedian, RobustAggregation::kTrimmedMean,
        RobustAggregation::kNormClip}) {
    const Outcome defended =
        RunAttackScenario(Defense(rule), AttackKind::kSignFlip, 3, 4.0);
    EXPECT_EQ(defended.result.rounds_completed, kRounds)
        << RobustAggregationName(rule);
    EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05)
        << RobustAggregationName(rule);
    EXPECT_EQ(defended.defended_rounds, kRounds) << RobustAggregationName(rule);
    EXPECT_GT(defended.stats.poisoned_updates, 0u) << RobustAggregationName(rule);
  }
}

TEST(AdversarialGoldenTest, SignFlip10PercentMedianMatchesBaselineClosely) {
  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  const Outcome defended = RunAttackScenario(
      Defense(RobustAggregation::kCoordinateMedian), AttackKind::kSignFlip, 1, 4.0);
  EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05);
}

TEST(AdversarialGoldenTest, GradientScalingAttackIsClippedAway) {
  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  const Outcome defended = RunAttackScenario(Defense(RobustAggregation::kNormClip),
                                             AttackKind::kGradientScale, 2, 400.0);
  EXPECT_EQ(defended.result.rounds_completed, kRounds);
  EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05);
  // The scaled deltas blow past the auto budget every round they fire.
  EXPECT_GT(defended.clipped_updates, 0u);
  // Undefended, the amplified updates act as a ~40x learning-rate blowup and training
  // overshoots instead of converging.
  const Outcome fedavg =
      RunAttackScenario(RobustConfig{}, AttackKind::kGradientScale, 2, 400.0);
  EXPECT_LT(fedavg.result.final_accuracy, defended.result.final_accuracy);
}

TEST(AdversarialGoldenTest, GaussianNoisePoisoningIsTrimmedAway) {
  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  const Outcome defended = RunAttackScenario(Defense(RobustAggregation::kTrimmedMean),
                                             AttackKind::kGaussianNoise, 3, 2.0);
  EXPECT_EQ(defended.result.rounds_completed, kRounds);
  EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05);
  EXPECT_GT(defended.stats.poisoned_updates, 0u);
}

TEST(AdversarialGoldenTest, AttackedRunsReplayBitIdenticallyAcrossThreadCounts) {
  // The acceptance bar: the same attacked scenario, rerun from scratch and rerun at a
  // different TOTORO_COMPUTE_THREADS, reproduces the whole accuracy curve and the
  // injector's bookkeeping byte for byte.
  const RobustConfig defense = Defense(RobustAggregation::kCoordinateMedian);
  const Outcome run1 = RunAttackScenario(defense, AttackKind::kSignFlip, 3, 4.0);
  const Outcome run2 = RunAttackScenario(defense, AttackKind::kSignFlip, 3, 4.0);
  const Outcome run4t =
      RunAttackScenario(defense, AttackKind::kSignFlip, 3, 4.0, /*compute_threads=*/4);
  ExpectSameCurve(run1.result, run2.result);
  ExpectSameCurve(run1.result, run4t.result);
  EXPECT_EQ(run1.stats.poisoned_updates, run2.stats.poisoned_updates);
  EXPECT_EQ(run1.stats.poisoned_updates, run4t.stats.poisoned_updates);
  EXPECT_EQ(run1.defended_rounds, run4t.defended_rounds);
  EXPECT_EQ(run1.rejected_updates, run4t.rejected_updates);
}

TEST(AdversarialGoldenTest, SybilBurstForgesUpdatesButMedianHolds) {
  // Four sybils (non-worker hosts) graft into the application tree through the real
  // JOIN protocol and submit forged reference+noise updates with inflated claimed
  // weights. FedAvg swallows the claimed weights; the median ignores them.
  AttackParams payload;
  payload.kind = AttackKind::kGaussianNoise;
  payload.noise_stddev = 2.0;
  payload.claimed_weight = 800.0;

  auto run_sybil = [&](RobustConfig robust) {
    GlobalMetrics().ResetValues();
    AdvWorld world;
    const NodeId topic = world.LaunchApp(robust, 1400);
    FaultScript script;
    std::vector<HostId> sybils;
    for (size_t i = 20; i < 24; ++i) {
      sybils.push_back(world.forest->scribe(i).host());
    }
    script.SybilJoinAt(10.0, topic, sybils, payload);
    world.injector->Schedule(script);
    world.sim.RunFor(300.0);  // Let the forged JOINs graft before training starts.
    world.engine->StartAll();
    EXPECT_TRUE(world.engine->RunToCompletion(1e8));
    Outcome out;
    out.result = world.engine->result(topic);
    out.stats = world.injector->stats();
    return out;
  };

  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  const Outcome fedavg = run_sybil(RobustConfig{});
  EXPECT_EQ(fedavg.stats.sybil_joins, 4u);
  EXPECT_GT(fedavg.stats.forged_updates, 0u);
  const Outcome defended = run_sybil(Defense(RobustAggregation::kCoordinateMedian));
  EXPECT_EQ(defended.stats.sybil_joins, 4u);
  EXPECT_GT(defended.stats.forged_updates, 0u);
  EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05);
  // The defense strictly beats swallowing the forged weight-inflated updates.
  EXPECT_GE(defended.result.final_accuracy, fedavg.result.final_accuracy);
}

TEST(AdversarialGoldenTest, NoAttackerRobustRulesAgreeWithFedAvgWithinTolerance) {
  // With nobody attacking, a defense must not cost accuracy: all rules land near the
  // plain FedAvg baseline (they are not bit-identical — a median is not a mean).
  const Outcome baseline =
      RunAttackScenario(RobustConfig{}, AttackKind::kSignFlip, 0, 0.0);
  for (RobustAggregation rule :
       {RobustAggregation::kCoordinateMedian, RobustAggregation::kTrimmedMean,
        RobustAggregation::kNormClip}) {
    const Outcome defended = RunAttackScenario(Defense(rule), AttackKind::kSignFlip, 0, 0.0);
    EXPECT_EQ(defended.result.rounds_completed, kRounds) << RobustAggregationName(rule);
    EXPECT_GE(defended.result.final_accuracy, baseline.result.final_accuracy - 0.05)
        << RobustAggregationName(rule);
    EXPECT_EQ(defended.stats.poisoned_updates, 0u);
    EXPECT_EQ(defended.rejected_updates, 0u) << RobustAggregationName(rule);
  }
}

// ---------------------------------------------------------------------------
// Trace-driven diurnal churn over the EUA topology.
// ---------------------------------------------------------------------------

TEST(DiurnalChurnTest, ScriptGenerationIsDeterministic) {
  Rng rng_a(501);
  Rng rng_b(501);
  const FaultScript a = GenerateDiurnalChurnScript(rng_a, 64, 30000.0);
  const FaultScript b = GenerateDiurnalChurnScript(rng_b, 64, 30000.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << "event " << i;
    EXPECT_EQ(a.events()[i].at, b.events()[i].at) << "event " << i;
    EXPECT_EQ(a.events()[i].host, b.events()[i].host) << "event " << i;
  }
}

TEST(DiurnalChurnTest, EveryCrashIsPairedAndBounded) {
  Rng rng(502);
  const double duration = 40000.0;
  DiurnalChurnOptions opts;
  opts.peak_churn_prob = 0.08;
  opts.protected_hosts = {0, 1};
  const FaultScript script = GenerateDiurnalChurnScript(rng, 48, duration, opts);
  ASSERT_FALSE(script.empty());
  std::map<HostId, int> open;  // host -> outstanding crashes awaiting rejoin.
  size_t crashes = 0;
  for (const FaultEvent& ev : script.events()) {
    EXPECT_GE(ev.at, 0.05 * duration);
    EXPECT_LE(ev.at, 0.90 * duration);
    EXPECT_NE(ev.host, HostId{0});
    EXPECT_NE(ev.host, HostId{1});
    if (ev.kind == FaultKind::kCrash) {
      EXPECT_EQ(open[ev.host], 0) << "host crashed while already down";
      ++open[ev.host];
      ++crashes;
    } else {
      ASSERT_EQ(ev.kind, FaultKind::kRejoin);
      EXPECT_EQ(open[ev.host], 1) << "rejoin without a preceding crash";
      --open[ev.host];
    }
  }
  EXPECT_GT(crashes, 5u);
  for (const auto& [host, outstanding] : open) {
    EXPECT_EQ(outstanding, 0) << "host " << host << " never rejoined";
  }
}

TEST(DiurnalChurnTest, RegionalWavesAreSlotDiscretizedAndPhaseShifted) {
  // With a high peak probability and slots aligned to the period, crashes cluster
  // around each region's peak rather than spreading uniformly: the first region's
  // events concentrate in a different half-period than a region half a day away.
  Rng rng(503);
  const size_t hosts = 80;
  const double duration = 44000.0;
  DiurnalChurnOptions opts;
  opts.period_ms = 20000.0;
  opts.regions = 4;
  opts.base_churn_prob = 0.0;  // Crashes only near the peaks.
  opts.peak_churn_prob = 0.10;
  const FaultScript script = GenerateDiurnalChurnScript(rng, hosts, duration, opts);
  ASSERT_FALSE(script.empty());
  // Slot discretization: every event time is a multiple of slot_ms (crashes) or a
  // crash time plus a bounded outage.
  size_t crashes_region0 = 0;
  size_t crashes_region2 = 0;
  std::vector<double> phase0;
  std::vector<double> phase2;
  for (const FaultEvent& ev : script.events()) {
    if (ev.kind != FaultKind::kCrash) {
      continue;
    }
    // Slots are laid out from the start of the churn window (5% of the run).
    const double slot = (ev.at - 0.05 * duration) / opts.slot_ms;
    EXPECT_EQ(slot, std::floor(slot)) << "crash not slot-aligned";
    const size_t region = ev.host * opts.regions / hosts;
    const double phase = std::fmod(ev.at, opts.period_ms) / opts.period_ms;
    if (region == 0) {
      ++crashes_region0;
      phase0.push_back(phase);
    } else if (region == 2) {
      ++crashes_region2;
      phase2.push_back(phase);
    }
  }
  ASSERT_GT(crashes_region0, 3u);
  ASSERT_GT(crashes_region2, 3u);
  // Circular mean phase of each region's crash times; regions 0 and 2 are half a
  // period apart, so their mean phases must differ by roughly 0.5.
  auto mean_phase = [](const std::vector<double>& phases) {
    double s = 0.0;
    double c = 0.0;
    for (double p : phases) {
      s += std::sin(2.0 * M_PI * p);
      c += std::cos(2.0 * M_PI * p);
    }
    double m = std::atan2(s, c) / (2.0 * M_PI);
    return m < 0.0 ? m + 1.0 : m;
  };
  double gap = std::fabs(mean_phase(phase0) - mean_phase(phase2));
  gap = std::min(gap, 1.0 - gap);  // Circular distance.
  EXPECT_GT(gap, 0.3);
}

TEST(DiurnalChurnTest, ChurnWavesOverEuaTopologyPreserveInvariants) {
  // End-to-end: a geo-realistic EUA substrate under sweeping diurnal churn while an
  // application trains with tree repair on. The run must finish every round and the
  // invariant checker must observe zero violations.
  Rng topo_rng(601);
  const std::vector<EuaNode> eua = GenerateEuaTopology(48, topo_rng);
  std::vector<GeoPoint> positions;
  for (const EuaNode& n : eua) {
    positions.push_back(n.location);
  }
  const size_t hosts = positions.size();

  Simulator sim;
  Network net(&sim, std::make_unique<GeoLatency>(std::move(positions)), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(602);
  for (size_t i = 0; i < hosts; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.join_retry_ms = 300.0;
  scribe_config.aggregation_timeout_ms = 500.0;
  Forest forest(&pastry, scribe_config);
  TotoroEngine engine(&forest, ComputeModel{}, 603);

  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 604;
  SyntheticTask task(spec);
  Rng data_rng(605);
  FlAppConfig config;
  config.name = "diurnal-app";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 8;
  std::vector<size_t> nodes;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 10; ++i) {
    nodes.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, nodes, std::move(shards), task.Generate(200, data_rng));

  FaultInjector injector(&pastry, &forest, 606);
  const size_t master = forest.RootOf(topic);
  ASSERT_NE(master, SIZE_MAX);
  DiurnalChurnOptions churn;
  churn.period_ms = 8000.0;
  churn.peak_churn_prob = 0.03;
  // Regions follow the contiguous host blocks of the EUA generator (nodes are emitted
  // region-major), so the waves sweep metro by metro.
  churn.regions = 4;
  churn.protected_hosts = {forest.scribe(master).host()};
  Rng churn_rng(607);
  const FaultScript script = GenerateDiurnalChurnScript(churn_rng, hosts, 20000.0, churn);
  ASSERT_FALSE(script.empty());
  injector.Schedule(script);

  InvariantChecker checker(&pastry, &forest);
  checker.WatchTopic(topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  forest.StartMaintenance();
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion(3e5));
  // Training can outrun the churn script; drain the remaining scripted rejoins (and a
  // grace period for repair) with the invariant checker still ticking.
  sim.RunFor(script.EndTime() + 5000.0);
  checker.Stop();
  const AppResult& result = engine.result(topic);
  EXPECT_EQ(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.3);  // Partial rounds still learn.
  EXPECT_EQ(injector.stats().crashes, injector.stats().rejoins);
  EXPECT_GT(checker.checks_run(), 0u);
  for (const InvariantViolation& v : checker.violations()) {
    ADD_FAILURE() << v.invariant << " at " << v.at << ": " << v.detail;
  }
}

}  // namespace
}  // namespace totoro
