// ComputePool unit tests plus the tentpole determinism guarantee: a TotoroEngine run
// with a 4-thread compute pool produces byte-identical observability exports (and
// results) to the sequential run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/fl/compute_pool.h"
#include "src/ml/dataset.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

LocalUpdate MakeUpdate(float value) {
  LocalUpdate update;
  update.weights = {value};
  update.sample_weight = static_cast<double>(value);
  return update;
}

TEST(ComputePoolTest, InlineModeRunsOnSubmitWithoutThreads) {
  ComputePool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::atomic<bool> ran{false};
  ComputePool::Ticket ticket = pool.Submit([&] {
    ran = true;
    return MakeUpdate(7.0f);
  });
  // Inline mode runs the task inside Submit — before Wait is ever called.
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(ticket.Take().weights[0], 7.0f);
  EXPECT_EQ(pool.tasks_submitted(), 1u);
}

// Regression for the orphan-tree bug: ProfileScopes inside offloaded tasks accumulate
// into the WORKER's thread-local profiler, which used to die with the thread — a
// profiled run under TOTORO_COMPUTE_THREADS>1 silently lost every task phase. The pool
// now drains each worker's tree into the owner's profiler at destruction, so worker
// phases appear in the export.
TEST(ComputePoolTest, WorkerProfilerPhasesDrainIntoOwnersTree) {
  // The env var must be visible before the pool's worker threads first touch their
  // thread-local profilers; a fresh owner thread gives this test a clean tree too.
  ::setenv("TOTORO_PROFILE", "1", 1);
  uint64_t calls = 0;
  std::string json;
  std::thread owner([&calls, &json] {
    GlobalProfiler().SetEnabled(true);
    {
      ComputePool pool(4);
      std::vector<ComputePool::Ticket> tickets;
      for (int i = 0; i < 16; ++i) {
        tickets.push_back(pool.Submit([i] { return MakeUpdate(static_cast<float>(i)); }));
      }
      for (ComputePool::Ticket& ticket : tickets) {
        ticket.Wait();
      }
    }  // Pool destruction joins the workers and folds their trees, worker-index order.
    const Profiler::PhaseNode* node = GlobalProfiler().Find("compute_task");
    if (node != nullptr) {
      calls = node->stats.calls;
    }
    json = GlobalProfiler().ToJson();
  });
  owner.join();
  ::unsetenv("TOTORO_PROFILE");
  EXPECT_EQ(calls, 16u);
  EXPECT_NE(json.find("compute_task"), std::string::npos);
}

TEST(ComputePoolTest, ThreadedPoolCompletesAllTasksWithCorrectResults) {
  ComputePool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<ComputePool::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(pool.Submit([i] { return MakeUpdate(static_cast<float>(i)); }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(tickets[static_cast<size_t>(i)].Take().weights[0], static_cast<float>(i));
  }
  EXPECT_EQ(pool.tasks_submitted(), 64u);
}

TEST(ComputePoolTest, WaitIsIdempotentAndResultSurvivesUntilTake) {
  ComputePool pool(2);
  ComputePool::Ticket ticket = pool.Submit([] { return MakeUpdate(3.0f); });
  ticket.Wait();
  ticket.Wait();
  ComputePool::Ticket copy = ticket;  // Shared state.
  EXPECT_EQ(copy.Take().weights[0], 3.0f);
}

TEST(ComputePoolTest, ExceptionsPropagateToWait) {
  ComputePool pool(2);
  ComputePool::Ticket ticket =
      pool.Submit([]() -> LocalUpdate { throw std::runtime_error("boom"); });
  EXPECT_THROW(ticket.Wait(), std::runtime_error);
}

TEST(ComputePoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<ComputePool::Ticket> tickets;
  {
    ComputePool pool(2);
    for (int i = 0; i < 32; ++i) {
      tickets.push_back(pool.Submit([&ran, i] {
        ++ran;
        return MakeUpdate(static_cast<float>(i));
      }));
    }
  }
  EXPECT_EQ(ran.load(), 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(tickets[static_cast<size_t>(i)].Take().weights[0], static_cast<float>(i));
  }
}

TEST(ComputePoolTest, ThreadsFromEnvParsesAndDefaults) {
  ::setenv("TOTORO_COMPUTE_THREADS", "6", 1);
  EXPECT_EQ(ComputePool::ThreadsFromEnv(), 6u);
  ::setenv("TOTORO_COMPUTE_THREADS", "0", 1);
  EXPECT_EQ(ComputePool::ThreadsFromEnv(), 1u);
  ::setenv("TOTORO_COMPUTE_THREADS", "junk", 1);
  EXPECT_EQ(ComputePool::ThreadsFromEnv(), 1u);
  ::unsetenv("TOTORO_COMPUTE_THREADS");
  EXPECT_EQ(ComputePool::ThreadsFromEnv(), 1u);
}

// --- Engine-level determinism -------------------------------------------------------

FlAppConfig ProbeApp(const std::string& name) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeSoftmaxRegression("sr", 16, 4, seed);
  };
  config.train.learning_rate = 0.15f;
  config.train.batch_size = 20;
  config.train.local_steps = 5;
  config.max_rounds = 4;
  return config;
}

struct EngineArtifacts {
  std::string trace;
  std::string metrics;
  std::vector<AppResult> results;
  uint64_t rejoins = 0;
};

// One world exercising every offloaded path: a secure-aggregation app with Oort-like
// selection, a straggler cut by the tree timeout, a round deadline, and an async app
// with staleness discounting — run at `threads` compute threads.
EngineArtifacts RunEngineWorld(size_t threads) {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  GlobalMetrics().ResetValues();
  EngineArtifacts out;
  {
    Simulator sim;
    NetworkConfig net_config;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 5), net_config);
    PastryNetwork pastry(&net, PastryConfig{});
    Rng rng(100);
    for (size_t i = 0; i < 50; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    ScribeConfig scribe_config;
    scribe_config.aggregation_timeout_ms = 200.0;
    Forest forest(&pastry, scribe_config);
    TotoroEngine engine(&forest, ComputeModel{}, 101);
    engine.SetComputeThreads(threads);
    engine.SetRoundDeadline(5000.0);
    // Worker 3 is ~5 orders of magnitude slower: every round cuts it off.
    std::vector<double> speeds(50, 1.0);
    speeds[3] = 1e-5;
    engine.SetSpeedFactors(speeds);

    SyntheticSpec spec;
    spec.dim = 16;
    spec.num_classes = 4;
    spec.class_separation = 2.5;
    spec.noise_stddev = 0.8;
    spec.seed = 7;
    SyntheticTask task(spec);
    Rng data_rng(8);
    auto make_shards = [&](size_t n) {
      std::vector<Dataset> shards;
      for (size_t i = 0; i < n; ++i) {
        shards.push_back(task.Generate(100, data_rng));
      }
      return shards;
    };
    std::vector<size_t> workers{0, 1, 2, 3, 4, 5, 6, 7};

    FlAppConfig secure = ProbeApp("secure-app");
    secure.secure_aggregation = true;
    secure.participants_per_round = 5;
    secure.selection = SelectionPolicy::kOortLike;
    const NodeId secure_topic =
        engine.LaunchApp(secure, workers, make_shards(8), task.Generate(150, data_rng));

    FlAppConfig async_app = ProbeApp("async-app");
    async_app.async = AsyncConfig{};
    async_app.async->staleness_exponent = 0.5;
    std::vector<size_t> async_workers{10, 11, 12, 13, 14, 15};
    const NodeId async_topic = engine.LaunchApp(async_app, async_workers, make_shards(6),
                                                task.Generate(150, data_rng));

    engine.StartAll();
    EXPECT_TRUE(engine.RunToCompletion());
    out.results.push_back(engine.result(secure_topic));
    out.results.push_back(engine.result(async_topic));
    out.rejoins = sim.rejoins_scheduled();
  }
  out.trace = TraceToChromeJson(GlobalTracer());
  out.metrics = MetricsToJson(GlobalMetrics());
  GlobalTracer().SetEnabled(false);
  GlobalTracer().Clear();
  GlobalMetrics().ResetValues();
  return out;
}

TEST(ComputePoolDeterminismTest, FourThreadEngineRunIsByteIdenticalToSequential) {
  const EngineArtifacts sequential = RunEngineWorld(1);
  const EngineArtifacts parallel = RunEngineWorld(4);

  // Training actually went through the offload path in both runs.
  EXPECT_GT(sequential.rejoins, 0u);
  EXPECT_EQ(sequential.rejoins, parallel.rejoins);

  EXPECT_EQ(sequential.trace, parallel.trace) << "trace export depends on thread count";
  EXPECT_EQ(sequential.metrics, parallel.metrics)
      << "metrics export depends on thread count";
  EXPECT_EQ(FingerprintBytes(sequential.trace), FingerprintBytes(parallel.trace));

  ASSERT_EQ(sequential.results.size(), parallel.results.size());
  for (size_t i = 0; i < sequential.results.size(); ++i) {
    const AppResult& a = sequential.results[i];
    const AppResult& b = parallel.results[i];
    EXPECT_EQ(a.rounds_completed, b.rounds_completed);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);  // Bit-identical, not just close.
    EXPECT_EQ(a.total_time_ms, b.total_time_ms);
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (size_t p = 0; p < a.curve.size(); ++p) {
      EXPECT_EQ(a.curve[p].accuracy, b.curve[p].accuracy);
      EXPECT_EQ(a.curve[p].time_ms, b.curve[p].time_ms);
    }
  }
}

TEST(ComputePoolDeterminismTest, EightThreadRunMatchesToo) {
  const EngineArtifacts a = RunEngineWorld(1);
  const EngineArtifacts b = RunEngineWorld(8);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace totoro
