// Property-style tests of the ML substrate: numerical gradient checking of backprop,
// serialization fuzzing, aggregation algebra, and partitioner invariants, swept over
// parameter grids with TEST_P.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/fl/aggregation.h"
#include "src/ml/model.h"
#include "src/ml/serialize.h"

namespace totoro {
namespace {

// ---------- Numerical gradient check ----------
//
// With a one-example shard, batch_size 1 and a single local step, SGD computes
// w' = w - lr * g, so g = (w - w') / lr recovers the analytic gradient of the
// cross-entropy loss on that example — which must match the numerical gradient.

struct GradCheckParams {
  int input_dim;
  int hidden_dim;
  int num_classes;
  uint64_t seed;
};

class GradientCheckTest : public ::testing::TestWithParam<GradCheckParams> {};

TEST_P(GradientCheckTest, BackpropMatchesNumericalGradient) {
  const auto p = GetParam();
  Rng rng(p.seed);
  Dataset shard(p.input_dim, p.num_classes);
  Example example;
  example.label = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(p.num_classes)));
  example.x.resize(static_cast<size_t>(p.input_dim));
  for (auto& v : example.x) {
    v = static_cast<float>(rng.Gaussian());
  }
  shard.Add(example);

  auto model = p.hidden_dim > 0
                   ? MakeMlp("m", p.input_dim, p.hidden_dim, p.num_classes, p.seed)
                   : MakeSoftmaxRegression("m", p.input_dim, p.num_classes, p.seed);
  const std::vector<float> w0 = model->GetWeights();

  TrainConfig config;
  config.learning_rate = 1e-3f;
  config.batch_size = 1;
  config.local_steps = 1;
  Rng train_rng(p.seed + 1);
  model->TrainLocal(shard, config, train_rng);
  const std::vector<float> w1 = model->GetWeights();

  // Analytic gradient recovered from the SGD step.
  std::vector<double> analytic(w0.size());
  for (size_t i = 0; i < w0.size(); ++i) {
    analytic[i] = (static_cast<double>(w0[i]) - w1[i]) / config.learning_rate;
  }

  // Numerical gradient via central differences on a sample of coordinates (checking
  // every coordinate of the larger nets is slow and adds nothing).
  auto loss_at = [&](const std::vector<float>& w) {
    model->SetWeights(w);
    return model->Loss(shard);
  };
  Rng pick(p.seed + 2);
  const size_t checks = std::min<size_t>(w0.size(), 40);
  double max_rel_err = 0.0;
  for (size_t c = 0; c < checks; ++c) {
    const size_t i = static_cast<size_t>(pick.NextBelow(w0.size()));
    const double eps = 1e-3;
    std::vector<float> wp = w0;
    wp[i] += static_cast<float>(eps);
    const double lp = loss_at(wp);
    wp[i] = w0[i] - static_cast<float>(eps);
    const double lm = loss_at(wp);
    const double numeric = (lp - lm) / (2 * eps);
    const double denom = std::max(1.0, std::abs(numeric) + std::abs(analytic[i]));
    max_rel_err = std::max(max_rel_err, std::abs(numeric - analytic[i]) / denom);
  }
  // float32 weights + finite differences: ~1e-2 relative agreement is the right bar.
  EXPECT_LT(max_rel_err, 2e-2) << "input=" << p.input_dim << " hidden=" << p.hidden_dim
                               << " classes=" << p.num_classes;
}

INSTANTIATE_TEST_SUITE_P(Architectures, GradientCheckTest,
                         ::testing::Values(GradCheckParams{8, 0, 3, 1},
                                           GradCheckParams{8, 16, 3, 2},
                                           GradCheckParams{16, 8, 5, 3},
                                           GradCheckParams{24, 32, 10, 4},
                                           GradCheckParams{4, 4, 2, 5}));

// The conv model goes through the same recovered-gradient-vs-numerical check.
struct ConvGradParams {
  int input_len;
  int filters;
  int kernel;
  int num_classes;
  uint64_t seed;
};

class ConvGradientCheckTest : public ::testing::TestWithParam<ConvGradParams> {};

TEST_P(ConvGradientCheckTest, Conv1dBackpropMatchesNumericalGradient) {
  const auto p = GetParam();
  Rng rng(p.seed);
  Dataset shard(p.input_len, p.num_classes);
  Example example;
  example.label = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(p.num_classes)));
  example.x.resize(static_cast<size_t>(p.input_len));
  for (auto& v : example.x) {
    v = static_cast<float>(rng.Gaussian());
  }
  shard.Add(example);

  auto model = MakeConv1d("conv", p.input_len, p.filters, p.kernel, p.num_classes, p.seed);
  const std::vector<float> w0 = model->GetWeights();
  TrainConfig config;
  config.learning_rate = 1e-3f;
  config.batch_size = 1;
  config.local_steps = 1;
  Rng train_rng(p.seed + 1);
  model->TrainLocal(shard, config, train_rng);
  const std::vector<float> w1 = model->GetWeights();

  auto loss_at = [&](const std::vector<float>& w) {
    model->SetWeights(w);
    return model->Loss(shard);
  };
  Rng pick(p.seed + 2);
  double max_rel_err = 0.0;
  for (size_t c = 0; c < std::min<size_t>(w0.size(), 40); ++c) {
    const size_t i = static_cast<size_t>(pick.NextBelow(w0.size()));
    const double analytic = (static_cast<double>(w0[i]) - w1[i]) / config.learning_rate;
    const double eps = 1e-3;
    std::vector<float> wp = w0;
    wp[i] += static_cast<float>(eps);
    const double lp = loss_at(wp);
    wp[i] = w0[i] - static_cast<float>(eps);
    const double lm = loss_at(wp);
    const double numeric = (lp - lm) / (2 * eps);
    const double denom = std::max(1.0, std::abs(numeric) + std::abs(analytic));
    max_rel_err = std::max(max_rel_err, std::abs(numeric - analytic) / denom);
  }
  EXPECT_LT(max_rel_err, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGradientCheckTest,
                         ::testing::Values(ConvGradParams{16, 4, 3, 3, 11},
                                           ConvGradParams{24, 8, 5, 5, 12},
                                           ConvGradParams{32, 6, 7, 10, 13},
                                           ConvGradParams{12, 2, 3, 2, 14}));

TEST(Conv1dTest, TrainsAboveChanceOnSyntheticAudio) {
  SyntheticSpec spec;
  spec.dim = 32;
  spec.num_classes = 6;
  spec.class_separation = 2.0;
  spec.noise_stddev = 1.0;
  spec.seed = 15;
  SyntheticTask task(spec);
  Rng rng(16);
  const Dataset train = task.Generate(400, rng);
  const Dataset test = task.Generate(200, rng);
  auto model = MakeConv1d("conv", 32, 12, 5, 6, 17);
  TrainConfig config;
  config.learning_rate = 0.05f;
  config.local_steps = 300;
  Rng train_rng(18);
  model->TrainLocal(train, config, train_rng);
  EXPECT_GT(model->Accuracy(test), 0.5);  // Chance is ~0.17.
}

// ---------- Serialization fuzz ----------

class SerializeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeFuzzTest, Float32RoundTripsExactly) {
  Rng rng(GetParam());
  const size_t n = 1 + rng.NextBelow(5000);
  std::vector<float> w(n);
  for (auto& v : w) {
    // Mix of scales including subnormals-ish and huge values.
    const int kind = static_cast<int>(rng.NextBelow(4));
    switch (kind) {
      case 0:
        v = static_cast<float>(rng.Gaussian());
        break;
      case 1:
        v = static_cast<float>(rng.Gaussian() * 1e20);
        break;
      case 2:
        v = static_cast<float>(rng.Gaussian() * 1e-20);
        break;
      default:
        v = 0.0f;
    }
  }
  EXPECT_EQ(DecodeFloat32(EncodeFloat32(w)), w);
}

TEST_P(SerializeFuzzTest, Int8ErrorBoundedByQuantizationStep) {
  Rng rng(GetParam() ^ 0xABCD);
  const size_t n = 1 + rng.NextBelow(2000);
  std::vector<float> w(n);
  float max_abs = 0.0f;
  for (auto& v : w) {
    v = static_cast<float>(rng.Gaussian(0.0, rng.Uniform(0.1, 10.0)));
    max_abs = std::max(max_abs, std::abs(v));
  }
  const auto decoded = DecodeInt8(EncodeInt8(w));
  ASSERT_EQ(decoded.size(), n);
  const float step = max_abs > 0 ? max_abs / 127.0f : 1.0f;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(decoded[i], w[i], step * 0.51f);
  }
}

TEST_P(SerializeFuzzTest, Int8SurvivesNonFiniteInputsWithBoundedError) {
  // NaN/Inf must not poison the quantization scale: scale derives from finite values
  // only, NaN decodes to 0, +/-Inf saturates to +/-127 steps, and every finite value
  // keeps the usual half-step error bound.
  Rng rng(GetParam() ^ 0x7E57);
  const size_t n = 8 + rng.NextBelow(1000);
  std::vector<float> w(n);
  float max_abs = 0.0f;
  for (auto& v : w) {
    v = static_cast<float>(rng.Gaussian(0.0, rng.Uniform(0.1, 5.0)));
    max_abs = std::max(max_abs, std::abs(v));
  }
  // Inject non-finite values at random positions (keeping at least one finite).
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<size_t> poison;
  for (size_t k = 0; k < 1 + rng.NextBelow(n / 4); ++k) {
    poison.push_back(rng.NextBelow(n - 1));  // Index n-1 stays finite.
  }
  for (size_t idx : poison) {
    switch (rng.NextBelow(3)) {
      case 0: w[idx] = nan; break;
      case 1: w[idx] = inf; break;
      default: w[idx] = -inf;
    }
  }
  max_abs = 0.0f;
  for (float v : w) {
    if (std::isfinite(v)) {
      max_abs = std::max(max_abs, std::abs(v));
    }
  }

  const auto decoded = DecodeInt8(EncodeInt8(w));
  ASSERT_EQ(decoded.size(), n);
  const float step = max_abs > 0 ? max_abs / 127.0f : 1.0f;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(std::isfinite(decoded[i])) << "non-finite leak at " << i;
    if (std::isnan(w[i])) {
      EXPECT_EQ(decoded[i], 0.0f);
    } else if (std::isinf(w[i])) {
      EXPECT_EQ(decoded[i], (w[i] > 0 ? 1.0f : -1.0f) * step * 127.0f);
    } else {
      EXPECT_NEAR(decoded[i], w[i], step * 0.51f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzzTest, ::testing::Range<uint64_t>(100, 110));

// ---------- Aggregation algebra ----------

class FedAvgAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<WeightedUpdate> RandomUpdates(Rng& rng, size_t count, size_t dim) {
  std::vector<WeightedUpdate> updates(count);
  for (auto& u : updates) {
    u.weights.resize(dim);
    for (auto& v : u.weights) {
      v = static_cast<float>(rng.Gaussian());
    }
    u.sample_weight = rng.Uniform(0.5, 20.0);
  }
  return updates;
}

TEST_P(FedAvgAlgebraTest, PermutationInvariant) {
  Rng rng(GetParam());
  auto updates = RandomUpdates(rng, 2 + rng.NextBelow(20), 16);
  const auto base = FederatedAverage(updates);
  rng.Shuffle(updates);
  const auto shuffled = FederatedAverage(updates);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i], shuffled[i], 1e-5f);
  }
}

TEST_P(FedAvgAlgebraTest, ArbitraryGroupingEqualsFlat) {
  // Split the update set into random groups; average each group (weighted) and then
  // average the group results carrying group weights — must equal the flat average.
  // This is exactly the invariant that makes in-network tree aggregation correct for
  // ANY tree shape.
  Rng rng(GetParam() ^ 0x5A5A);
  const auto updates = RandomUpdates(rng, 3 + rng.NextBelow(24), 12);
  const auto flat = FederatedAverage(updates);

  std::vector<WeightedUpdate> group_results;
  size_t start = 0;
  while (start < updates.size()) {
    const size_t len = 1 + rng.NextBelow(4);
    std::vector<WeightedUpdate> group(
        updates.begin() + static_cast<long>(start),
        updates.begin() + static_cast<long>(std::min(start + len, updates.size())));
    WeightedUpdate merged;
    merged.weights = FederatedAverage(group);
    merged.sample_weight = 0.0;
    for (const auto& u : group) {
      merged.sample_weight += u.sample_weight;
    }
    group_results.push_back(std::move(merged));
    start += len;
  }
  const auto grouped = FederatedAverage(group_results);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(flat[i], grouped[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgAlgebraTest, ::testing::Range<uint64_t>(200, 215));

// ---------- Partitioner invariants ----------

struct PartitionParams {
  size_t clients;
  double alpha;
  uint64_t seed;
};

class PartitionPropertyTest : public ::testing::TestWithParam<PartitionParams> {};

TEST_P(PartitionPropertyTest, ConservesExamplesAndDimensions) {
  const auto p = GetParam();
  SyntheticSpec spec;
  spec.dim = 12;
  spec.num_classes = 8;
  spec.seed = p.seed;
  SyntheticTask task(spec);
  Rng rng(p.seed + 1);
  const Dataset full = task.Generate(600, rng);
  const auto shards = PartitionDirichlet(full, p.clients, p.alpha, rng);
  ASSERT_EQ(shards.size(), p.clients);
  size_t total = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.dim(), full.dim());
    EXPECT_EQ(shard.num_classes(), full.num_classes());
    total += shard.size();
  }
  EXPECT_EQ(total, full.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionPropertyTest,
    ::testing::Values(PartitionParams{2, 0.05, 1}, PartitionParams{10, 0.05, 2},
                      PartitionParams{10, 1.0, 3}, PartitionParams{50, 0.5, 4},
                      PartitionParams{100, 10.0, 5}, PartitionParams{1, 1.0, 6}));

// ---------- Model weight-space properties ----------

class ModelRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelRoundTripTest, SetGetWeightsIsIdentityForRandomVectors) {
  Rng rng(GetParam());
  auto model = MakeMlp("m", 8, 8, 4, GetParam());
  std::vector<float> w(model->NumParams());
  for (auto& v : w) {
    v = static_cast<float>(rng.Gaussian());
  }
  model->SetWeights(w);
  EXPECT_EQ(model->GetWeights(), w);
  // Weights fully determine predictions: two models with the same weights agree.
  auto other = MakeMlp("o", 8, 8, 4, GetParam() + 1);
  other->SetWeights(w);
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_classes = 4;
  spec.seed = GetParam();
  SyntheticTask task(spec);
  Rng data_rng(GetParam() + 2);
  const Dataset data = task.Generate(50, data_rng);
  EXPECT_DOUBLE_EQ(model->Loss(data), other->Loss(data));
  EXPECT_DOUBLE_EQ(model->Accuracy(data), other->Accuracy(data));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripTest, ::testing::Range<uint64_t>(300, 308));

}  // namespace
}  // namespace totoro
