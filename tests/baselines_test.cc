// Tests for the baseline FL engines (centralized star + hierarchical client-edge-cloud).
#include <gtest/gtest.h>

#include "src/baselines/central_engine.h"
#include "src/baselines/hierarchical_engine.h"

namespace totoro {
namespace {

SyntheticSpec Task(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = seed;
  return spec;
}

FlAppConfig App(const std::string& name, size_t rounds) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeSoftmaxRegression("sr", 16, 4, seed);
  };
  config.train.learning_rate = 0.1f;
  config.train.local_steps = 4;
  config.target_accuracy = 2.0;
  config.max_rounds = rounds;
  return config;
}

template <typename Engine>
NodeId Launch(Engine& engine, const std::string& name, size_t num_clients, size_t rounds,
              uint64_t seed) {
  SyntheticTask task(Task(seed));
  Rng rng(seed + 1);
  std::vector<size_t> clients;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < num_clients; ++i) {
    clients.push_back(i);
    shards.push_back(task.Generate(80, rng));
  }
  return engine.LaunchApp(App(name, rounds), clients, std::move(shards),
                          task.Generate(200, rng));
}

TEST(HierarchicalEngineTest, SingleAppTrainsToGoodAccuracy) {
  Simulator sim;
  HierarchicalEngine engine(&sim, HierarchicalConfig{}, 20, 801);
  const NodeId topic = Launch(engine, "hier-a", 16, 8, 802);
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion());
  const auto& result = engine.result(topic);
  EXPECT_EQ(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(HierarchicalEngineTest, MatchesCentralizedAccuracy) {
  // The hierarchy changes where averaging happens, not its result: nested weighted
  // averages equal the flat average.
  Simulator sim1;
  HierarchicalEngine hier(&sim1, HierarchicalConfig{}, 20, 811);
  Simulator sim2;
  CentralizedEngine central(&sim2, CentralConfig{}, 20, 811);
  const NodeId t1 = Launch(hier, "match", 12, 6, 812);
  const NodeId t2 = Launch(central, "match", 12, 6, 812);
  hier.StartAll();
  central.StartAll();
  ASSERT_TRUE(hier.RunToCompletion());
  ASSERT_TRUE(central.RunToCompletion());
  // Same seeds => identical shards and model inits => identical accuracy trajectories.
  const auto& r1 = hier.result(t1);
  const auto& r2 = central.result(t2);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_NEAR(r1.curve[i].accuracy, r2.curve[i].accuracy, 1e-9);
  }
}

TEST(HierarchicalEngineTest, EdgeLayerOffloadsCloudDownlink) {
  // The cloud receives one update per edge server instead of one per client.
  Simulator sim;
  HierarchicalConfig config;
  config.num_edge_servers = 4;
  HierarchicalEngine engine(&sim, config, 24, 821);
  Launch(engine, "offload", 24, 2, 822);
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion());
  const auto& cloud = engine.network().metrics().traffic(0);
  // 2 rounds x 4 edge updates received = 8 gradient messages at the cloud (clients'
  // updates stop at the edges).
  EXPECT_EQ(cloud.msgs_recv, 8u);
}

TEST(HierarchicalEngineTest, EdgeServerFailureStallsItsGroup) {
  // The paper's critique of the hierarchical class: an aggregator is a static point of
  // failure — its clients are cut off and the round never completes.
  Simulator sim;
  HierarchicalEngine engine(&sim, HierarchicalConfig{}, 16, 831);
  const NodeId topic = Launch(engine, "spof", 16, 4, 832);
  engine.FailEdgeServer(1);
  engine.StartAll();
  EXPECT_FALSE(engine.RunToCompletion(/*max_virtual_ms=*/60000.0));
  EXPECT_EQ(engine.result(topic).rounds_completed, 0u);
}

TEST(CentralizedEngineTest, SelectionAndCompressionPoliciesApply) {
  Simulator sim;
  CentralizedEngine engine(&sim, CentralConfig{}, 20, 841);
  auto config = App("policy", 3);
  config.compression = CompressionConfig{CompressionKind::kTopK, 0.1};
  SyntheticTask task(Task(842));
  Rng rng(843);
  std::vector<size_t> clients;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 10; ++i) {
    clients.push_back(i);
    shards.push_back(task.Generate(80, rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, clients, std::move(shards), task.Generate(200, rng));
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion());
  EXPECT_EQ(engine.result(topic).rounds_completed, 3u);
  // Compressed gradient traffic: server received far fewer bytes than float32 updates
  // would cost (10 clients x 3 rounds x 68 params x 4B = 8160B uncompressed).
  const auto& server = engine.network().metrics().traffic(0);
  EXPECT_LT(server.bytes_recv, 4000u);
}

}  // namespace
}  // namespace totoro
