// Tests for the scoped hierarchical phase profiler (src/obs/profiler.h): nesting and
// accumulation, disabled-mode inertness, deterministic virtual-time/event deltas from
// registered sources, sampling hooks, metric publication naming, and Reset semantics.
#include "src/obs/profiler.h"

#include <string>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

// GlobalProfiler() is thread-local and persists across TESTs in this binary; every test
// starts from a clean, enabled profiler and leaves it disabled again.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler& p = GlobalProfiler();
    p.SetEnabled(true);
    p.SetClockSource(nullptr);
    p.SetEventCountSource(nullptr);
    p.Reset();
  }
  void TearDown() override {
    Profiler& p = GlobalProfiler();
    p.Reset();
    p.SetEnabled(false);
    p.SetClockSource(nullptr);
    p.SetEventCountSource(nullptr);
  }
};

TEST_F(ProfilerTest, NestedScopesBuildOnePathPerParentChain) {
  {
    ProfileScope outer("round");
    {
      ProfileScope inner("train");
    }
    {
      ProfileScope inner("train");
    }
    {
      ProfileScope inner("aggregate");
    }
  }
  {
    ProfileScope outer("round");
  }
  const Profiler& p = GlobalProfiler();
  const Profiler::PhaseNode* round = p.Find("round");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->stats.calls, 2u);
  EXPECT_EQ(round->depth, 1);
  const Profiler::PhaseNode* train = p.Find("round.train");
  ASSERT_NE(train, nullptr);
  EXPECT_EQ(train->stats.calls, 2u);
  EXPECT_EQ(train->depth, 2);
  const Profiler::PhaseNode* aggregate = p.Find("round.aggregate");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->stats.calls, 1u);
  // The same name outside the parent is a different node.
  EXPECT_EQ(p.Find("train"), nullptr);
  EXPECT_EQ(p.open_scopes(), 0u);
}

TEST_F(ProfilerTest, PathOfRoundTripsWithFind) {
  {
    ProfileScope a("alpha");
    ProfileScope b("beta");
  }
  const Profiler& p = GlobalProfiler();
  // Root path is "", and every non-root node's PathOf resolves back through Find.
  EXPECT_EQ(p.PathOf(0), "");
  for (size_t i = 1; i < p.nodes().size(); ++i) {
    const std::string path = p.PathOf(i);
    const Profiler::PhaseNode* node = p.Find(path);
    ASSERT_NE(node, nullptr) << path;
    EXPECT_EQ(node, &p.nodes()[i]);
  }
}

TEST_F(ProfilerTest, DisabledModeCreatesNoNodesAndNoSamples) {
  Profiler& p = GlobalProfiler();
  p.SetEnabled(false);
  {
    ProfileScope scope("ghost");
    ProfileScope nested("ghost_child");
  }
  p.RecordSample("ghost_series", 1.0);
  p.Sample();
  EXPECT_EQ(p.nodes().size(), 1u);  // Only the synthetic root.
  EXPECT_TRUE(p.samples().empty());
  EXPECT_EQ(p.open_scopes(), 0u);
}

TEST_F(ProfilerTest, ScopeOpenedWhileDisabledStaysInertAcrossEnable) {
  Profiler& p = GlobalProfiler();
  p.SetEnabled(false);
  {
    ProfileScope scope("ghost");
    // Enabling mid-scope must not make the destructor pop a frame it never pushed.
    p.SetEnabled(true);
  }
  EXPECT_EQ(p.open_scopes(), 0u);
  EXPECT_EQ(p.Find("ghost"), nullptr);
}

TEST_F(ProfilerTest, VirtualTimeAndEventDeltasFoldDeterministically) {
  Profiler& p = GlobalProfiler();
  double now_ms = 100.0;
  uint64_t events = 7;
  p.SetClockSource(&now_ms);
  p.SetEventCountSource(&events);
  {
    ProfileScope outer("run");
    now_ms = 150.0;
    events = 10;
    {
      ProfileScope inner("step");
      now_ms = 175.0;
      events = 16;
    }
    now_ms = 200.0;
    events = 20;
  }
  const Profiler::PhaseNode* run = p.Find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_DOUBLE_EQ(run->stats.virtual_ms, 100.0);  // 200 - 100, inclusive of the child.
  EXPECT_EQ(run->stats.events, 13u);               // 20 - 7.
  const Profiler::PhaseNode* step = p.Find("run.step");
  ASSERT_NE(step, nullptr);
  EXPECT_DOUBLE_EQ(step->stats.virtual_ms, 25.0);
  EXPECT_EQ(step->stats.events, 6u);
  p.SetClockSource(nullptr);
  p.SetEventCountSource(nullptr);
}

TEST_F(ProfilerTest, RepeatedRunsAccumulateExactDeltas) {
  Profiler& p = GlobalProfiler();
  double now_ms = 0.0;
  p.SetClockSource(&now_ms);
  for (int i = 0; i < 3; ++i) {
    ProfileScope scope("tick");
    now_ms += 10.0;
  }
  const Profiler::PhaseNode* tick = p.Find("tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->stats.calls, 3u);
  EXPECT_DOUBLE_EQ(tick->stats.virtual_ms, 30.0);
  p.SetClockSource(nullptr);
}

TEST_F(ProfilerTest, SamplersAndDirectSamplesAggregate) {
  Profiler& p = GlobalProfiler();
  double depth = 4.0;
  p.AddSampler("queue_depth", [&depth]() { return depth; });
  p.Sample();
  depth = 10.0;
  p.Sample();
  p.RecordSample("direct", 2.5);
  p.RecordSample("direct", 7.5);
  const auto& samples = p.samples();
  ASSERT_TRUE(samples.count("queue_depth"));
  EXPECT_EQ(samples.at("queue_depth").count, 2u);
  EXPECT_DOUBLE_EQ(samples.at("queue_depth").min, 4.0);
  EXPECT_DOUBLE_EQ(samples.at("queue_depth").max, 10.0);
  EXPECT_DOUBLE_EQ(samples.at("queue_depth").last, 10.0);
  ASSERT_TRUE(samples.count("direct"));
  EXPECT_DOUBLE_EQ(samples.at("direct").mean(), 5.0);
  p.RemoveSampler("queue_depth");
  p.Sample();
  EXPECT_EQ(samples.at("queue_depth").count, 2u);  // Removed sampler no longer fires.
}

TEST_F(ProfilerTest, PublishToMetricsEmitsOnlyDeterministicFields) {
  Profiler& p = GlobalProfiler();
  double now_ms = 0.0;
  p.SetClockSource(&now_ms);
  {
    ProfileScope outer("publish_run");
    now_ms = 40.0;
    ProfileScope inner("fold");
    now_ms = 50.0;
  }
  MetricsRegistry registry;
  p.PublishToMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("profile.publish_run.calls").value(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("profile.publish_run.virtual_ms").value(), 50.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("profile.publish_run.fold.virtual_ms").value(),
                   10.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("profile.publish_run.events").value(), 0.0);
  // Wall-clock must never reach the registry: the export is fully described by the
  // three deterministic series per phase.
  const std::string text = MetricsToJson(registry);
  EXPECT_EQ(text.find("wall"), std::string::npos);
  p.SetClockSource(nullptr);
}

TEST_F(ProfilerTest, ReportTextAndJsonListPhasesInDeterministicOrder) {
  {
    ProfileScope b("zeta");
  }
  {
    ProfileScope a("alpha");
  }
  const Profiler& p = GlobalProfiler();
  const std::string text = p.ReportText();
  EXPECT_LT(text.find("alpha"), text.find("zeta"));  // Name-ordered, not entry-ordered.
  const std::string json = p.ToJson();
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
}

TEST_F(ProfilerTest, ResetDropsPhasesKeepsConfiguration) {
  Profiler& p = GlobalProfiler();
  double now_ms = 0.0;
  p.SetClockSource(&now_ms);
  p.AddSampler("kept", []() { return 1.0; });
  {
    ProfileScope scope("dropped");
  }
  p.Sample();
  p.Reset();
  EXPECT_TRUE(p.enabled());
  EXPECT_EQ(p.nodes().size(), 1u);
  EXPECT_TRUE(p.samples().empty());
  EXPECT_EQ(p.clock_source(), &now_ms);
  p.Sample();  // Samplers survive Reset.
  EXPECT_EQ(p.samples().count("kept"), 1u);
  p.RemoveSampler("kept");
  p.SetClockSource(nullptr);
}

}  // namespace
}  // namespace totoro
