// Shard-determinism suite: the full overlay stack (Pastry keep-alives, Scribe tree
// maintenance, multi-topic subscription traffic — the fig7 workload shape) must
// produce BYTE-EQUAL trace/metrics exports and fingerprints for any shard count K,
// including through a faultsim partition-heal script. This is the acceptance gate for
// the sharded engine: K is a pure performance knob, never a semantics knob.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/faultsim/fault_injector.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"
#include "src/sim/sharded_sim.h"

namespace totoro {
namespace {

constexpr size_t kNodes = 48;

// Which fault script (if any) the workload runs against.
enum class Fault {
  kNone,
  kPartition,  // Group cut + heal: deterministic set lookups on the message path.
  kPerturb,    // Probabilistic drop/duplicate/delay-spike: per-(src,dst,seq) Rng draws.
};

struct RunOutput {
  uint64_t events = 0;
  uint64_t total_bytes = 0;
  uint64_t partition_drops = 0;
  uint64_t perturb_drops = 0;
  uint64_t duplicates = 0;
  uint64_t delay_spikes = 0;
  uint64_t connected_topics = 0;
  std::string metrics_json;
  std::string trace_json;
  uint64_t metrics_fp = 0;
  uint64_t trace_fp = 0;
};

// Runs the workload on a FRESH thread so each configuration sees pristine
// thread-local tracer/metrics sinks, exactly like independent processes would.
RunOutput RunWorkload(size_t shards, Fault fault) {
  RunOutput out;
  std::thread runner([&out, shards, fault] {
    GlobalTracer().SetEnabled(true);
    ShardedSimulator sim(shards);
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 3), net_config);
    PastryConfig pastry_config;
    pastry_config.enable_keepalive = true;
    pastry_config.keepalive_interval_ms = 200.0;
    PastryNetwork pastry(&net, pastry_config);
    Rng rng(777);
    pastry.Reserve(kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    ScribeConfig scribe_config;
    scribe_config.enable_tree_repair = true;
    scribe_config.parent_heartbeat_ms = 250.0;
    Forest forest(&pastry, scribe_config);
    sim.SetLookaheadMs(net.latency_model().MinLatencyMs());
    FaultInjector injector(&pastry, &forest, /*seed=*/42);

    for (size_t i = 0; i < pastry.size(); ++i) {
      pastry.node(i).StartKeepAlive();
    }
    forest.StartMaintenance();

    // Three topics, fig7-style: JOIN fan-out plus steady-state per-tree heartbeats.
    Rng pick(71);
    std::vector<NodeId> topics;
    for (int t = 0; t < 3; ++t) {
      const NodeId topic = forest.CreateTopic("det-" + std::to_string(t));
      std::vector<size_t> members(pastry.size());
      for (size_t i = 0; i < members.size(); ++i) {
        members[i] = i;
      }
      pick.Shuffle(members);
      members.resize(16);
      forest.SubscribeAll(topic, members, /*settle_ms=*/100.0);
      topics.push_back(topic);
    }

    if (fault == Fault::kPartition) {
      // Split the host space down the middle, let keep-alives burn against the cut for
      // a while, then heal and give the repair machinery time to reconverge.
      std::vector<HostId> left;
      std::vector<HostId> right;
      for (HostId h = 0; h < static_cast<HostId>(net.num_hosts()); ++h) {
        (h < net.num_hosts() / 2 ? left : right).push_back(h);
      }
      FaultScript script;
      script.PartitionAt(400.0, left, right).HealAt(1100.0);
      injector.Schedule(script);
    } else if (fault == Fault::kPerturb) {
      // Wildcard probabilistic rule: every message in the window draws drop/duplicate/
      // delay-spike Bernoullis from an Rng keyed by (src, dst, src's send sequence).
      // The spikes reorder traffic, so this exercises the derived-Rng path hard: any
      // draw consumed from a shared stream would diverge the moment K changes.
      LinkPerturbation rule;
      rule.drop_prob = 0.04;
      rule.duplicate_prob = 0.06;
      rule.delay_spike_prob = 0.05;
      rule.delay_spike_ms = 40.0;
      FaultScript script;
      script.PerturbLinksAt(300.0, /*duration_ms=*/1500.0, rule);
      injector.Schedule(script);
    }

    sim.RunUntil(2500.0);

    out.events = sim.events_fired();
    out.total_bytes = net.metrics().total_bytes();
    const FaultInjector::Stats stats = injector.stats();
    out.partition_drops = stats.partition_drops;
    out.perturb_drops = stats.perturb_drops;
    out.duplicates = stats.duplicates;
    out.delay_spikes = stats.delay_spikes;
    for (const NodeId& topic : topics) {
      if (forest.IsFullyConnected(topic)) {
        ++out.connected_topics;
      }
    }
    net.metrics().PublishTo(GlobalMetrics());
    out.metrics_json = MetricsToJson(GlobalMetrics());
    out.trace_json = TraceToChromeJson(GlobalTracer());
    out.metrics_fp = MetricsFingerprint(GlobalMetrics());
    out.trace_fp = TraceFingerprint(GlobalTracer());
  });
  runner.join();
  return out;
}

void ExpectIdentical(const RunOutput& base, const RunOutput& run, size_t k) {
  EXPECT_EQ(run.events, base.events) << "K=" << k;
  EXPECT_EQ(run.total_bytes, base.total_bytes) << "K=" << k;
  EXPECT_EQ(run.partition_drops, base.partition_drops) << "K=" << k;
  EXPECT_EQ(run.perturb_drops, base.perturb_drops) << "K=" << k;
  EXPECT_EQ(run.duplicates, base.duplicates) << "K=" << k;
  EXPECT_EQ(run.delay_spikes, base.delay_spikes) << "K=" << k;
  EXPECT_EQ(run.connected_topics, base.connected_topics) << "K=" << k;
  EXPECT_EQ(run.metrics_fp, base.metrics_fp) << "K=" << k;
  EXPECT_EQ(run.trace_fp, base.trace_fp) << "K=" << k;
  // Fingerprints already imply this, but byte-equality failures print the first
  // diverging region, which is what you want when debugging a determinism break.
  EXPECT_EQ(run.metrics_json, base.metrics_json) << "K=" << k;
  EXPECT_EQ(run.trace_json, base.trace_json) << "K=" << k;
}

TEST(ShardDeterminism, Fig7WorkloadBitIdenticalAtK148) {
  const RunOutput base = RunWorkload(1, Fault::kNone);
  EXPECT_GT(base.events, 1000u);
  EXPECT_GT(base.total_bytes, 0u);
  EXPECT_EQ(base.connected_topics, 3u);
  for (const size_t k : {size_t{4}, size_t{8}}) {
    ExpectIdentical(base, RunWorkload(k, Fault::kNone), k);
  }
}

TEST(ShardDeterminism, PartitionHealScriptBitIdenticalAtK148) {
  const RunOutput base = RunWorkload(1, Fault::kPartition);
  EXPECT_GT(base.partition_drops, 0u) << "the partition never cut anything";
  for (const size_t k : {size_t{4}, size_t{8}}) {
    ExpectIdentical(base, RunWorkload(k, Fault::kPartition), k);
  }
}

TEST(ShardDeterminism, LinkPerturbationScriptBitIdenticalAtK148) {
  const RunOutput base = RunWorkload(1, Fault::kPerturb);
  // The rule must have actually fired on all three probabilistic paths, or the
  // byte-equality below proves nothing about the derived-Rng message path.
  EXPECT_GT(base.perturb_drops, 0u) << "the rule never dropped anything";
  EXPECT_GT(base.duplicates, 0u) << "the rule never duplicated anything";
  EXPECT_GT(base.delay_spikes, 0u) << "the rule never spiked anything";
  for (const size_t k : {size_t{4}, size_t{8}}) {
    ExpectIdentical(base, RunWorkload(k, Fault::kPerturb), k);
  }
}

}  // namespace
}  // namespace totoro
