// Failure-injection tests: message loss, mid-training churn, master failure, and
// combined fault loads. The engine must either keep converging or degrade gracefully —
// never wedge or corrupt results.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/core/engine.h"
#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/obs/metrics_registry.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct FaultWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  std::unique_ptr<TotoroEngine> engine;
  Rng rng{900};

  explicit FaultWorld(size_t n, ScribeConfig scribe_config) {
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 15.0, 13),
                                    NetworkConfig{});
    pastry = std::make_unique<PastryNetwork>(net.get(), PastryConfig{});
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
    engine = std::make_unique<TotoroEngine>(forest.get(), ComputeModel{}, 901);
  }

  NodeId LaunchApp(size_t workers, size_t rounds, uint64_t seed) {
    SyntheticSpec spec;
    spec.dim = 16;
    spec.num_classes = 4;
    spec.seed = seed;
    SyntheticTask task(spec);
    Rng data_rng(seed + 1);
    FlAppConfig config;
    config.name = "fault-app-" + std::to_string(seed);
    config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
    config.train.learning_rate = 0.1f;
    config.target_accuracy = 2.0;
    config.max_rounds = rounds;
    std::vector<size_t> nodes;
    std::vector<Dataset> shards;
    for (size_t i = 0; i < workers; ++i) {
      nodes.push_back(i);
      shards.push_back(task.Generate(80, data_rng));
    }
    return engine->LaunchApp(config, nodes, std::move(shards), task.Generate(200, data_rng));
  }
};

TEST(FaultInjectionTest, RandomMessageLossWithTimeoutsStillFinishes) {
  // 10% of all messages vanish; the straggler cut-off turns losses into partial rounds
  // instead of deadlocks.
  ScribeConfig scribe_config;
  scribe_config.aggregation_timeout_ms = 300.0;
  FaultWorld world(60, scribe_config);
  const NodeId topic = world.LaunchApp(15, 5, 910);
  Rng loss_rng(911);
  world.net->SetLossFn([&loss_rng](const Message&) { return loss_rng.Bernoulli(0.10); });
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion(1e8));
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 5u);
  EXPECT_GT(result.final_accuracy, 0.3);  // Still learns from partial rounds.
}

TEST(FaultInjectionTest, HeavyLossDegradesButNeverWedges) {
  ScribeConfig scribe_config;
  scribe_config.aggregation_timeout_ms = 200.0;
  FaultWorld world(50, scribe_config);
  world.LaunchApp(12, 4, 920);
  Rng loss_rng(921);
  world.net->SetLossFn([&loss_rng](const Message&) { return loss_rng.Bernoulli(0.35); });
  world.engine->StartAll();
  // Completion is not guaranteed at 35% loss (a whole round's broadcast can die), but
  // the simulation must terminate rather than spin.
  world.engine->RunToCompletion(1e8);
  SUCCEED();
}

TEST(FaultInjectionTest, WorkerChurnMidTrainingWithRepairConverges) {
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.aggregation_timeout_ms = 400.0;
  FaultWorld world(80, scribe_config);
  const NodeId topic = world.LaunchApp(20, 8, 930);
  world.forest->StartMaintenance();
  world.engine->StartAll();
  // Kill 6 random non-master nodes after some progress.
  world.sim.RunFor(1500.0);
  const size_t master = world.forest->RootOf(topic);
  Rng fail_rng(931);
  size_t killed = 0;
  while (killed < 6) {
    const size_t victim = fail_rng.NextBelow(world.pastry->size());
    if (victim != master && world.pastry->node(victim).alive()) {
      world.net->SetHostUp(world.pastry->node(victim).host(), false);
      ++killed;
    }
  }
  ASSERT_TRUE(world.engine->RunToCompletion(1e8));
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.5);
  // Training can outrun repair (partial rounds close on the timeout); give the
  // maintenance loop a moment to finish re-attaching the last orphans.
  world.sim.RunFor(5000.0);
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
}

TEST(FaultInjectionTest, MasterFailureFailsOverAndTrainingCompletes) {
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.aggregation_timeout_ms = 500.0;
  FaultWorld world(80, scribe_config);
  const NodeId topic = world.LaunchApp(20, 10, 940);
  world.forest->StartMaintenance();
  TotoroEngine::FailoverConfig failover;
  failover.watchdog_interval_ms = 200.0;
  failover.stall_timeout_ms = 1500.0;
  world.engine->EnableFailover(failover);
  world.engine->StartAll();
  world.sim.RunFor(1000.0);
  const size_t old_master = world.forest->RootOf(topic);
  world.net->SetHostUp(world.forest->scribe(old_master).host(), false);
  world.sim.RunFor(8000.0);
  // The overlay elects the next rendezvous node as the new tree root...
  const size_t new_master = world.forest->RootOf(topic);
  ASSERT_NE(new_master, SIZE_MAX);
  EXPECT_NE(new_master, old_master);
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
  // ...and the watchdog resumes training there from the replicated checkpoint, all the
  // way to completion.
  ASSERT_TRUE(world.engine->RunToCompletion(1e8));
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, result.curve.back().round);
  EXPECT_GE(result.rounds_completed, 10u);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST(FaultInjectionTest, CrashDuringJoinStillBuildsTheTree) {
  // The rendezvous node dies while JOINs toward it are still in flight. JOIN retries
  // plus tree repair must land every subscriber in the successor's tree.
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.join_retry_ms = 300.0;
  FaultWorld world(60, scribe_config);
  const NodeId topic = world.forest->CreateTopic("crash-during-join");
  const HostId doomed = world.pastry->ClosestLiveNode(topic)->host();
  for (size_t i = 0; i < 20; ++i) {
    world.forest->scribe(i).Subscribe(topic);
  }
  world.sim.RunFor(5.0);  // JOINs are mid-route; many have not reached the rendezvous.
  world.net->SetHostUp(doomed, false);
  world.forest->StartMaintenance();
  world.sim.RunFor(10000.0);
  const size_t root = world.forest->RootOf(topic);
  ASSERT_NE(root, SIZE_MAX);
  EXPECT_NE(world.forest->scribe(root).host(), doomed);
  EXPECT_EQ(world.forest->scribe(root).pastry().id(),
            world.pastry->ClosestLiveNode(topic)->id());
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
}

TEST(FaultInjectionTest, GracefulLeaveOfInternalParentRehomesItsSubtree) {
  // A node that is the parent of a non-empty subtree leaves gracefully (Scribe detach
  // first, then host down). Its children must re-graft and keep receiving broadcasts.
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.join_retry_ms = 300.0;
  FaultWorld world(80, scribe_config);
  const NodeId topic = world.forest->CreateTopic("leave-internal");
  std::vector<size_t> members(world.forest->size());
  for (size_t i = 0; i < members.size(); ++i) {
    members[i] = i;
  }
  world.forest->SubscribeAll(topic, members);
  world.forest->StartMaintenance();
  world.sim.RunFor(300.0);
  const size_t root = world.forest->RootOf(topic);
  size_t leaver = SIZE_MAX;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    if (i != root && !world.forest->scribe(i).ChildrenOf(topic).empty()) {
      leaver = i;
      break;
    }
  }
  ASSERT_NE(leaver, SIZE_MAX) << "no internal non-root node to leave";
  ASSERT_FALSE(world.forest->scribe(leaver).ChildrenOf(topic).empty());

  FaultInjector injector(world.pastry.get(), world.forest.get(), 960);
  FaultEvent leave;
  leave.kind = FaultKind::kGracefulLeave;
  leave.host = world.forest->scribe(leaver).host();
  injector.ApplyNow(leave);
  world.sim.RunFor(6000.0);
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));

  // Every live subscriber still receives broadcasts exactly once.
  std::unordered_map<size_t, int> deliveries;
  for (size_t i = 0; i < world.forest->size(); ++i) {
    world.forest->scribe(i).SetOnBroadcast(
        [&deliveries, i](const NodeId&, uint64_t, const ScribeBroadcast&) {
          ++deliveries[i];
        });
  }
  world.forest->scribe(world.forest->RootOf(topic)).Broadcast(topic, 1, nullptr, 64);
  world.sim.RunFor(2000.0);
  for (size_t member : members) {
    if (member == leaver) {
      continue;
    }
    EXPECT_EQ(deliveries[member], 1) << "member " << member;
  }
  EXPECT_EQ(deliveries.count(leaver), 0u) << "the departed node still got the broadcast";
}

TEST(FaultInjectionTest, SimultaneousRootAndChildFailureRecovers) {
  // The root and one of its direct children die in the same instant: the tree loses
  // both its rendezvous and an internal branch at once. Repair must elect the new
  // rendezvous and re-home the dead child's subtree in one pass.
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.join_retry_ms = 300.0;
  FaultWorld world(80, scribe_config);
  const NodeId topic = world.forest->CreateTopic("root-and-child");
  std::vector<size_t> members(world.forest->size());
  for (size_t i = 0; i < members.size(); ++i) {
    members[i] = i;
  }
  world.forest->SubscribeAll(topic, members);
  world.forest->StartMaintenance();
  world.sim.RunFor(300.0);
  const size_t root = world.forest->RootOf(topic);
  const auto root_children = world.forest->scribe(root).ChildrenOf(topic);
  ASSERT_FALSE(root_children.empty());
  // Prefer a child that itself has children, so a whole subtree gets orphaned.
  HostId child_host = root_children.front();
  for (size_t i = 0; i < world.forest->size(); ++i) {
    const ScribeNode& s = world.forest->scribe(i);
    if (s.ParentOf(topic) == world.forest->scribe(root).host() &&
        !s.ChildrenOf(topic).empty()) {
      child_host = s.host();
      break;
    }
  }

  FaultInjector injector(world.pastry.get(), world.forest.get(), 970);
  FaultScript script;
  script.CrashAt(0.0, world.forest->scribe(root).host()).CrashAt(0.0, child_host);
  injector.Schedule(script);
  world.sim.RunFor(10000.0);
  EXPECT_EQ(injector.stats().crashes, 2u);

  const size_t new_root = world.forest->RootOf(topic);
  ASSERT_NE(new_root, SIZE_MAX);
  EXPECT_NE(new_root, root);
  EXPECT_EQ(world.forest->scribe(new_root).pastry().id(),
            world.pastry->ClosestLiveNode(topic)->id());
  EXPECT_TRUE(world.forest->IsFullyConnected(topic));
}

TEST(FaultInjectionTest, AttackerCrashMidRoundUnderSecureAggDropoutCorrects) {
  // A scripted attacker host crashes mid-round inside a secure-aggregation app. Two
  // things must hold: the poisoning interceptor never fires (rewriting a pairwise-
  // masked update would corrupt mask cancellation, so the engine skips it for secure
  // apps), and the root's dropout correction absorbs the dead cohort member without
  // double-counting — audited by the invariant checker on every root aggregate.
  GlobalMetrics().ResetValues();
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.aggregation_timeout_ms = 400.0;
  FaultWorld world(60, scribe_config);
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 980;
  SyntheticTask task(spec);
  Rng data_rng(981);
  FlAppConfig config;
  config.name = "secure-under-attack";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 8;
  config.secure_aggregation = true;
  std::vector<size_t> nodes;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 12; ++i) {
    nodes.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      world.engine->LaunchApp(config, nodes, std::move(shards), task.Generate(200, data_rng));

  FaultInjector injector(world.pastry.get(), world.forest.get(), 982);
  world.engine->SetUpdateInterceptor(
      [&](const NodeId&, uint64_t round, size_t node_index, std::span<const float> reference,
          std::vector<float>& weights, double& sample_weight) {
        return injector.PoisonUpdate(round, world.forest->scribe(node_index).host(),
                                     reference, weights, sample_weight);
      });
  const HostId attacker = world.forest->scribe(3).host();
  FaultScript script;
  script.SignFlipAt(0.0, 1e9, {attacker}, 4.0);
  // Rounds on this substrate take ~30 virtual ms; 100 ms lands mid-training with the
  // attacker's submission for the current round potentially already in flight.
  script.CrashAt(100.0, attacker);
  injector.Schedule(script);

  InvariantChecker checker(world.pastry.get(), world.forest.get());
  checker.WatchTopic(topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  world.forest->StartMaintenance();
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion(1e8));
  checker.Stop();
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_EQ(injector.stats().crashes, 1u);
  // Secure apps bypass the interceptor entirely.
  EXPECT_EQ(injector.stats().poisoned_updates, 0u);
  // The crashed cohort member was corrected out at the root at least once.
  EXPECT_GT(GlobalMetrics().GetCounter("engine.secure.dropout_corrections").value(), 0u);
  for (const InvariantViolation& v : checker.violations()) {
    ADD_FAILURE() << v.invariant << " at " << v.at << ": " << v.detail;
  }
}

TEST(FaultInjectionTest, ConcurrentAppsIsolateFaults) {
  // Killing one app's master must not disturb a disjoint app's training.
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  scribe_config.aggregation_timeout_ms = 400.0;
  FaultWorld world(100, scribe_config);
  const NodeId victim_topic = world.LaunchApp(10, 40, 950);
  // The healthy app uses a different worker range so the two cohorts are disjoint.
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 951;
  SyntheticTask task(spec);
  Rng data_rng(952);
  FlAppConfig config;
  config.name = "healthy-app";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 6;
  std::vector<size_t> nodes;
  std::vector<Dataset> shards;
  for (size_t i = 40; i < 52; ++i) {
    nodes.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId healthy_topic =
      world.engine->LaunchApp(config, nodes, std::move(shards), task.Generate(200, data_rng));

  world.forest->StartMaintenance();
  world.engine->StartAll();
  world.sim.RunFor(500.0);
  const size_t victim_master = world.forest->RootOf(victim_topic);
  const size_t healthy_master = world.forest->RootOf(healthy_topic);
  if (victim_master == healthy_master) {
    GTEST_SKIP() << "hashed rendezvous nodes collided; nothing to isolate";
  }
  world.net->SetHostUp(world.forest->scribe(victim_master).host(), false);
  world.sim.RunFor(200000.0);
  const auto& healthy = world.engine->result(healthy_topic);
  EXPECT_EQ(healthy.rounds_completed, 6u);
  EXPECT_GT(healthy.final_accuracy, 0.5);
}

}  // namespace
}  // namespace totoro
