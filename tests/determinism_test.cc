// End-to-end determinism: identical seeds must reproduce identical results bit-for-bit
// across independently constructed worlds — the property that makes every bench in this
// repository reproducible.
#include <gtest/gtest.h>

#include "bench/parallel_runner.h"
#include "src/bandit/planner.h"
#include "src/core/engine.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct RunOutput {
  std::vector<AccuracyPoint> curve;
  double total_time_ms = 0.0;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
};

RunOutput RunOnce(uint64_t seed) {
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 30.0, seed), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, seed + 1);

  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = seed + 2;
  SyntheticTask task(spec);
  Rng data_rng(seed + 3);
  FlAppConfig config;
  config.name = "determinism";
  config.model_factory = [](uint64_t s) { return MakeMlp("m", 16, 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 6;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 12; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(200, data_rng));
  engine.StartAll();
  EXPECT_TRUE(engine.RunToCompletion());

  RunOutput out;
  out.curve = engine.result(topic).curve;
  out.total_time_ms = engine.result(topic).total_time_ms;
  out.total_messages = net.metrics().total_messages();
  out.total_bytes = net.metrics().total_bytes();
  return out;
}

TEST(DeterminismTest, FullFlRunIsBitForBitReproducible) {
  const RunOutput a = RunOnce(4242);
  const RunOutput b = RunOnce(4242);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time_ms, b.curve[i].time_ms);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].round, b.curve[i].round);
  }
  EXPECT_EQ(a.total_time_ms, b.total_time_ms);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Message COUNTS can coincide (the protocol structure is the same); continuous
  // quantities — virtual time and learned accuracy — cannot.
  const RunOutput a = RunOnce(4242);
  const RunOutput b = RunOnce(9999);
  EXPECT_NE(a.total_time_ms, b.total_time_ms);
}

TEST(DeterminismTest, BanditEpisodesReproduce) {
  auto run = [](uint64_t seed) {
    Rng graph_rng(seed);
    const LinkGraph g = LinkGraph::MakeLayered(3, 3, 0.2, 0.9, graph_rng);
    auto policy = MakeTotoroHopByHop(&g, 0, g.num_nodes() - 1);
    Rng rng(seed + 1);
    return RunEpisode(g, 0, g.num_nodes() - 1, *policy, 2000, rng);
  };
  const auto a = run(77);
  const auto b = run(77);
  EXPECT_EQ(a.per_packet_delay, b.per_packet_delay);
  EXPECT_EQ(a.cumulative_regret.back(), b.cumulative_regret.back());
}

TEST(DeterminismTest, EventFiringOrderReproduces) {
  // The event queue must fire equal-time events FIFO and reproduce the exact firing
  // sequence across independently built simulators — the heap layout is an
  // implementation detail, the order is a contract.
  auto firing_order = [](uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      // Coarse times force plenty of exact ties.
      const double t = static_cast<double>(rng.NextBelow(50));
      sim.Schedule(t, [&order, i]() { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(firing_order(123), firing_order(123));
  EXPECT_NE(firing_order(123), firing_order(124));
}

TEST(DeterminismTest, TraceAndMetricsExportsReproduce) {
  // Same seed => byte-identical observability artifacts (Chrome trace JSON and metrics
  // JSON), not just equal headline numbers. Wall-clock-dependent series (events/sec)
  // are only published explicitly, so they cannot leak in here.
  auto artifacts = [](uint64_t seed) {
    GlobalTracer().Clear();
    GlobalTracer().SetEnabled(true);
    GlobalMetrics().ResetValues();
    {
      Simulator sim;
      Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 30.0, seed),
                  NetworkConfig{});
      PastryNetwork pastry(&net, PastryConfig{});
      Rng rng(seed);
      for (int i = 0; i < 40; ++i) {
        pastry.AddRandomNode(rng);
      }
      pastry.BuildOracle(rng);
      for (int i = 0; i < 50; ++i) {
        Message msg;
        msg.type = 777;
        pastry.node(rng.NextBelow(40)).Route(RandomNodeId(rng), msg);
        sim.Run();
      }
    }
    std::pair<std::string, std::string> out{TraceToChromeJson(GlobalTracer()),
                                            MetricsToJson(GlobalMetrics())};
    GlobalTracer().SetEnabled(false);
    GlobalTracer().Clear();
    GlobalMetrics().ResetValues();
    return out;
  };
  const auto a = artifacts(2024);
  const auto b = artifacts(2024);
  EXPECT_EQ(a.first, b.first) << "trace export not reproducible";
  EXPECT_EQ(a.second, b.second) << "metrics export not reproducible";
}

TEST(DeterminismTest, ParallelTrialsMatchSequential) {
  // The bench thread pool must be invisible in results: trials seed their own worlds
  // and all observability sinks are thread-local, so a 4-thread run of the same trial
  // grid is bit-identical to the inline 1-thread run.
  auto trial = [](size_t i) {
    const RunOutput out = RunOnce(5000 + static_cast<uint64_t>(i));
    return std::tuple<double, uint64_t, uint64_t>(out.total_time_ms, out.total_messages,
                                                  out.total_bytes);
  };
  using Result = std::tuple<double, uint64_t, uint64_t>;
  const auto sequential = bench::RunTrials<Result>(4, trial, /*threads=*/1);
  const auto parallel = bench::RunTrials<Result>(4, trial, /*threads=*/4);
  EXPECT_EQ(sequential, parallel);
}

TEST(DeterminismTest, OverlayConstructionReproduces) {
  auto fingerprint = [](uint64_t seed) {
    Simulator sim;
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed), net_config);
    PastryNetwork pastry(&net, PastryConfig{});
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    // Fold every node's routing state into one hash.
    uint64_t h = 0;
    for (size_t i = 0; i < pastry.size(); ++i) {
      pastry.node(i).routing_table().ForEach(
          [&](const RouteEntry& e) { h = h * 1099511628211ull + e.id.Hash64(); });
      for (const auto& e : pastry.node(i).leaf_set().All()) {
        h = h * 1099511628211ull + e.id.Hash64() + 1;
      }
    }
    return h;
  };
  EXPECT_EQ(fingerprint(31337), fingerprint(31337));
  EXPECT_NE(fingerprint(31337), fingerprint(31338));
}

}  // namespace
}  // namespace totoro
