// Property-style tests of the locality layer: zoned-id algebra fuzzing, two-level
// routing sweeps over (zone_bits, suffix_bits, population), and binning invariants.
#include <gtest/gtest.h>

#include "src/rings/binning.h"
#include "src/rings/two_level_table.h"

namespace totoro {
namespace {

// ---------- Zoned-id algebra ----------

class ZonedIdFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZonedIdFuzzTest, ZoneRoundTripsForAllWidths) {
  Rng rng(GetParam());
  for (int zone_bits = 1; zone_bits <= 24; ++zone_bits) {
    for (int i = 0; i < 40; ++i) {
      const ZoneId zone = static_cast<ZoneId>(rng.NextBelow(1ull << zone_bits));
      const U128 suffix(rng.Next(), rng.Next());
      const NodeId id = MakeZonedId(zone, suffix, zone_bits);
      EXPECT_EQ(ZoneOf(id, zone_bits), zone) << "zone_bits=" << zone_bits;
    }
  }
}

TEST_P(ZonedIdFuzzTest, ZonePrefixOrdersIds) {
  // All ids of zone z are numerically below all ids of zone z+1 — the property that
  // makes prefix routing converge inside zones.
  Rng rng(GetParam() ^ 0x7);
  const int zone_bits = 4;
  for (int i = 0; i < 200; ++i) {
    const ZoneId z = static_cast<ZoneId>(rng.NextBelow(15));
    const NodeId low = RandomZonedId(z, zone_bits, rng);
    const NodeId high = RandomZonedId(z + 1, zone_bits, rng);
    EXPECT_LT(low, high);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZonedIdFuzzTest, ::testing::Range<uint64_t>(600, 605));

// ---------- Two-level table sweeps ----------

struct TwoLevelParams {
  int zone_bits;
  int suffix_bits;
  size_t nodes_per_zone;
  uint64_t seed;
};

void PrintTo(const TwoLevelParams& p, std::ostream* os) {
  *os << "m=" << p.zone_bits << " n=" << p.suffix_bits << " pop=" << p.nodes_per_zone
      << " seed=" << p.seed;
}

class TwoLevelSweepTest : public ::testing::TestWithParam<TwoLevelParams> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    Rng rng(p.seed);
    const uint32_t zones = 1u << p.zone_bits;
    for (ZoneId z = 0; z < zones; ++z) {
      for (size_t i = 0; i < p.nodes_per_zone; ++i) {
        const uint64_t suffix = rng.NextBelow(1ull << p.suffix_bits);
        const U128 suffix_bits = U128(0, suffix)
                                 << (128 - p.zone_bits - p.suffix_bits);
        const NodeId id = MakeZonedId(z, suffix_bits, p.zone_bits);
        // Skip duplicate suffixes within a zone.
        bool dup = false;
        for (const NodeId& existing : ids_) {
          if (existing == id) {
            dup = true;
          }
        }
        if (!dup) {
          ids_.push_back(id);
        }
      }
    }
    for (const NodeId& id : ids_) {
      tables_.emplace_back(id, p.zone_bits, p.suffix_bits);
    }
    for (auto& table : tables_) {
      for (size_t i = 0; i < ids_.size(); ++i) {
        table.Consider(RouteEntry{ids_[i], static_cast<HostId>(i), 1.0});
      }
    }
  }

  size_t IndexOf(const NodeId& id) const {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) {
        return i;
      }
    }
    return SIZE_MAX;
  }

  std::vector<NodeId> ids_;
  std::vector<TwoLevelTable> tables_;
};

TEST_P(TwoLevelSweepTest, IntraZoneRoutesNeverLeaveTheZone) {
  const auto p = GetParam();
  Rng rng(p.seed + 1);
  for (int t = 0; t < 30; ++t) {
    const size_t start = rng.NextBelow(ids_.size());
    const ZoneId zone = ZoneOf(ids_[start], p.zone_bits);
    const NodeId key = MakeZonedId(
        zone, U128(0, rng.NextBelow(1ull << p.suffix_bits))
                  << (128 - p.zone_bits - p.suffix_bits),
        p.zone_bits);
    size_t current = start;
    int hops = 0;
    while (hops < 2 * p.suffix_bits + 4) {
      EXPECT_EQ(ZoneOf(ids_[current], p.zone_bits), zone)
          << "route left the zone at hop " << hops;
      const auto next = tables_[current].NextHop(key);
      if (!next.has_value()) {
        break;
      }
      current = IndexOf(next->id);
      ASSERT_NE(current, SIZE_MAX);
      ++hops;
    }
    EXPECT_LT(hops, 2 * p.suffix_bits + 4) << "route did not terminate";
  }
}

TEST_P(TwoLevelSweepTest, Level1EntriesMatchTheFormula) {
  const auto p = GetParam();
  for (const auto& table : tables_) {
    ASSERT_EQ(table.level1().size(), static_cast<size_t>(p.zone_bits));
    for (int i = 1; i <= p.zone_bits; ++i) {
      const ZoneId expected = static_cast<ZoneId>(
          (table.zone() + (1ull << (i - 1))) & ((1ull << p.zone_bits) - 1));
      EXPECT_EQ(ZoneOf(table.level1()[static_cast<size_t>(i - 1)].target, p.zone_bits),
                expected);
    }
  }
}

TEST_P(TwoLevelSweepTest, ResolvedEntriesPointToRealNodes) {
  for (const auto& table : tables_) {
    for (const auto& level : {table.level1(), table.level2()}) {
      for (const auto& slot : level) {
        if (slot.node.has_value()) {
          EXPECT_NE(IndexOf(slot.node->id), SIZE_MAX);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TwoLevelSweepTest,
                         ::testing::Values(TwoLevelParams{2, 6, 10, 1},
                                           TwoLevelParams{3, 8, 20, 2},
                                           TwoLevelParams{4, 8, 12, 3},
                                           TwoLevelParams{2, 10, 40, 4},
                                           TwoLevelParams{1, 6, 15, 5}));

// ---------- Binning invariants ----------

class BinningSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinningSweepTest, BinningIsDeterministicAndTotal) {
  Rng rng(GetParam());
  std::vector<GeoPoint> landmarks;
  const size_t k = 2 + rng.NextBelow(6);
  for (size_t i = 0; i < k; ++i) {
    landmarks.push_back({rng.Uniform(-60, 60), rng.Uniform(-180, 180)});
  }
  DistributedBinning binning(landmarks);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p{rng.Uniform(-60, 60), rng.Uniform(-180, 180)};
    const uint32_t bin = binning.BinOf(p);
    EXPECT_EQ(binning.BinOf(p), bin);  // Deterministic.
    EXPECT_LT(binning.NearestLandmark(p), k);
    // With nearest-landmark signatures, at most k bins exist.
    EXPECT_LE(binning.num_bins(), k * 4);  // k landmarks x <=4 RTT levels.
  }
}

TEST_P(BinningSweepTest, NodesBinToTheirNearestLandmarkVoronoi) {
  Rng rng(GetParam() ^ 0x88);
  std::vector<GeoPoint> landmarks = {{0, 0}, {0, 90}, {45, -90}};
  DistributedBinning binning(landmarks);
  for (int i = 0; i < 100; ++i) {
    const GeoPoint p{rng.Uniform(-60, 60), rng.Uniform(-180, 180)};
    const uint32_t nearest = binning.NearestLandmark(p);
    double best = 1e18;
    uint32_t expected = 0;
    for (uint32_t l = 0; l < landmarks.size(); ++l) {
      const double d = HaversineKm(p, landmarks[l]);
      if (d < best) {
        best = d;
        expected = l;
      }
    }
    EXPECT_EQ(nearest, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinningSweepTest, ::testing::Range<uint64_t>(700, 706));

}  // namespace
}  // namespace totoro
