#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/model.h"
#include "src/ml/serialize.h"
#include "src/ml/tensor.h"

namespace totoro {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  std::copy(std::begin(bv), std::end(bv), b.data().begin());
  Matrix out(2, 2);
  MatMul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154);
}

TEST(MatrixTest, MatTMulAddAccumulates) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;  // Identity.
  b.at(0, 0) = 3;
  b.at(0, 1) = 4;
  b.at(1, 0) = 5;
  b.at(1, 1) = 6;
  Matrix out(2, 2);
  out.at(0, 0) = 1.0;  // Pre-existing value must be accumulated onto.
  MatTMulAdd(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4.0);  // 1 + 3.
  EXPECT_FLOAT_EQ(out.at(1, 1), 6.0);
}

TEST(MatrixTest, MulMatTTransposesSecond) {
  Matrix a(1, 2);
  Matrix b(3, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  for (size_t r = 0; r < 3; ++r) {
    b.at(r, 0) = static_cast<float>(r + 1);
    b.at(r, 1) = static_cast<float>(r + 1);
  }
  Matrix out(1, 3);
  MulMatT(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3);   // 1*1+2*1.
  EXPECT_FLOAT_EQ(out.at(0, 1), 6);   // 1*2+2*2.
  EXPECT_FLOAT_EQ(out.at(0, 2), 9);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Matrix m(2, 4);
  for (size_t i = 0; i < m.data().size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.5f;
  }
  SoftmaxRows(m);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GT(m.at(r, c), 0.0f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(MatrixTest, ReluMasksNegatives) {
  Matrix m(1, 3);
  m.at(0, 0) = -1;
  m.at(0, 1) = 0;
  m.at(0, 2) = 2;
  Matrix g(1, 3);
  g.Fill(1.0f);
  Matrix act = m;
  ReluInPlace(act);
  EXPECT_FLOAT_EQ(act.at(0, 0), 0);
  EXPECT_FLOAT_EQ(act.at(0, 2), 2);
  ReluBackward(act, g);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0);
  EXPECT_FLOAT_EQ(g.at(0, 2), 1);
}

TEST(DatasetTest, SyntheticTaskIsLearnableStructure) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.class_separation = 3.0;
  spec.noise_stddev = 0.5;
  spec.seed = 1;
  SyntheticTask task(spec);
  Rng rng(2);
  const Dataset ds = task.Generate(200, rng);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.dim(), 16);
  // Same-class examples are closer to each other than cross-class on average.
  double intra = 0.0;
  double inter = 0.0;
  size_t intra_n = 0;
  size_t inter_n = 0;
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = i + 1; j < 50; ++j) {
      double d2 = 0;
      for (int k = 0; k < 16; ++k) {
        const double diff = ds.example(i).x[static_cast<size_t>(k)] -
                            ds.example(j).x[static_cast<size_t>(k)];
        d2 += diff * diff;
      }
      if (ds.example(i).label == ds.example(j).label) {
        intra += d2;
        ++intra_n;
      } else {
        inter += d2;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

TEST(DatasetTest, GeneratorIsSeedConsistent) {
  const auto spec = SyntheticTask::FemnistLike(7);
  SyntheticTask t1(spec);
  SyntheticTask t2(spec);
  Rng r1(9);
  Rng r2(9);
  const Dataset d1 = t1.Generate(20, r1);
  const Dataset d2 = t2.Generate(20, r2);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(d1.example(i).label, d2.example(i).label);
    EXPECT_EQ(d1.example(i).x, d2.example(i).x);
  }
}

TEST(DatasetTest, DirichletPartitionConservesExamples) {
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(3));
  Rng rng(4);
  const Dataset full = task.Generate(1000, rng);
  const auto shards = PartitionDirichlet(full, 10, 0.5, rng);
  ASSERT_EQ(shards.size(), 10u);
  size_t total = 0;
  for (const auto& s : shards) {
    total += s.size();
  }
  EXPECT_EQ(total, full.size());
}

TEST(DatasetTest, LowAlphaPartitionIsSkewed) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_classes = 10;
  spec.seed = 5;
  SyntheticTask task(spec);
  Rng rng(6);
  const Dataset full = task.Generate(2000, rng);
  const auto skewed = PartitionDirichlet(full, 10, 0.05, rng);
  // A client's shard should be dominated by few classes.
  double max_frac_sum = 0.0;
  int counted = 0;
  for (const auto& shard : skewed) {
    if (shard.size() < 20) {
      continue;
    }
    std::vector<size_t> counts(10, 0);
    for (size_t i = 0; i < shard.size(); ++i) {
      ++counts[static_cast<size_t>(shard.example(i).label)];
    }
    max_frac_sum += static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
                    static_cast<double>(shard.size());
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GT(max_frac_sum / counted, 0.4);  // IID would give ~0.1.
}

TEST(ModelTest, WeightsRoundTrip) {
  auto model = MakeMlp("m", 8, 16, 4, 1);
  const auto w = model->GetWeights();
  EXPECT_EQ(w.size(), model->NumParams());
  EXPECT_EQ(model->NumParams(), 8u * 16 + 16 + 16 * 4 + 4);
  auto other = MakeMlp("m2", 8, 16, 4, 2);
  other->SetWeights(w);
  EXPECT_EQ(other->GetWeights(), w);
}

TEST(ModelTest, CloneIsIndependent) {
  auto model = MakeSoftmaxRegression("m", 4, 3, 1);
  auto clone = model->Clone();
  auto w = model->GetWeights();
  w[0] += 10.0f;
  model->SetWeights(w);
  EXPECT_NE(model->GetWeights(), clone->GetWeights());
}

TEST(ModelTest, TrainingImprovesAccuracy) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 5;
  spec.class_separation = 2.5;
  spec.noise_stddev = 1.0;
  spec.seed = 11;
  SyntheticTask task(spec);
  Rng rng(12);
  const Dataset train = task.Generate(600, rng);
  const Dataset test = task.Generate(300, rng);
  auto model = MakeMlp("m", 16, 32, 5, 13);
  const double before = model->Accuracy(test);
  TrainConfig config;
  config.learning_rate = 0.1f;
  config.batch_size = 20;
  config.local_steps = 200;
  Rng train_rng(14);
  model->TrainLocal(train, config, train_rng);
  const double after = model->Accuracy(test);
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.6);
}

TEST(ModelTest, TrainingReducesLoss) {
  SyntheticTask task(SyntheticTask::TextClassificationLike(21));
  Rng rng(22);
  const Dataset train = task.Generate(400, rng);
  auto model = MakeTextClassifierProxy(32, 4, 23);
  const double before = model->Loss(train);
  TrainConfig config;
  config.learning_rate = 0.1f;
  config.local_steps = 100;
  Rng train_rng(24);
  model->TrainLocal(train, config, train_rng);
  EXPECT_LT(model->Loss(train), before);
}

TEST(ModelTest, SoftmaxRegressionTrainsToo) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_classes = 3;
  spec.class_separation = 3.0;
  spec.noise_stddev = 0.6;
  spec.seed = 31;
  SyntheticTask task(spec);
  Rng rng(32);
  const Dataset train = task.Generate(300, rng);
  auto model = MakeSoftmaxRegression("sr", 8, 3, 33);
  TrainConfig config;
  config.learning_rate = 0.2f;
  config.local_steps = 150;
  Rng train_rng(34);
  model->TrainLocal(train, config, train_rng);
  EXPECT_GT(model->Accuracy(train), 0.85);
}

TEST(ModelTest, FedProxPullsTowardAnchor) {
  SyntheticTask task(SyntheticTask::TextClassificationLike(41));
  Rng rng(42);
  const Dataset train = task.Generate(200, rng);

  auto free_model = MakeSoftmaxRegression("free", 32, 4, 43);
  auto prox_model = MakeSoftmaxRegression("prox", 32, 4, 43);
  const auto anchor = free_model->GetWeights();

  TrainConfig free_config;
  free_config.learning_rate = 0.2f;
  free_config.local_steps = 100;
  TrainConfig prox_config = free_config;
  prox_config.fedprox_mu = 1.0f;

  Rng r1(44);
  Rng r2(44);
  free_model->TrainLocal(train, free_config, r1);
  prox_model->TrainLocal(train, prox_config, r2, anchor);

  auto drift = [&](const Model& m) {
    const auto w = m.GetWeights();
    double d = 0;
    for (size_t i = 0; i < w.size(); ++i) {
      d += static_cast<double>(w[i] - anchor[i]) * (w[i] - anchor[i]);
    }
    return std::sqrt(d);
  };
  EXPECT_LT(drift(*prox_model), drift(*free_model));
}

TEST(ModelTest, ProxyModelSizeOrdering) {
  auto resnet = MakeResNet34Proxy(64, 35, 1);
  auto shuffle = MakeShuffleNetV2Proxy(64, 62, 1);
  auto text = MakeTextClassifierProxy(32, 4, 1);
  EXPECT_GT(resnet->NumParams(), shuffle->NumParams());
  EXPECT_GT(shuffle->NumParams(), text->NumParams());
}

TEST(SerializeTest, Float32RoundTripExact) {
  std::vector<float> w = {0.0f, -1.5f, 3.14159f, 1e-20f, -1e20f};
  const auto bytes = EncodeFloat32(w);
  EXPECT_EQ(bytes.size(), w.size() * 4);
  EXPECT_EQ(DecodeFloat32(bytes), w);
}

TEST(SerializeTest, Int8RoundTripWithinQuantizationError) {
  Rng rng(51);
  std::vector<float> w(1000);
  for (auto& v : w) {
    v = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }
  const auto bytes = EncodeInt8(w);
  EXPECT_EQ(bytes.size(), 4 + w.size());
  const auto decoded = DecodeInt8(bytes);
  ASSERT_EQ(decoded.size(), w.size());
  float max_abs = 0;
  for (float v : w) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  const float step = max_abs / 127.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(decoded[i], w[i], step * 0.51f);
  }
}

TEST(SerializeTest, Int8AllZeros) {
  std::vector<float> w(10, 0.0f);
  const auto decoded = DecodeInt8(EncodeInt8(w));
  for (float v : decoded) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace totoro
