// Observability subsystem: trace propagation, histogram math, exporter output, and the
// guarantee that tracing never perturbs the simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/core/engine.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: the exporters promise syntactically valid
// JSON, so parse what they emit rather than spot-checking substrings.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters are illegal inside JSON strings.
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalTracer().SetEnabled(false);
    GlobalTracer().Clear();
    GlobalMetrics().ResetValues();
  }
  void TearDown() override {
    GlobalTracer().SetEnabled(false);
    GlobalTracer().Clear();
    GlobalMetrics().ResetValues();
  }
};

// --------------------------- tracer basics ---------------------------------

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = GlobalTracer();
  {
    TraceSpan span = tracer.Begin("x", "test", 0);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());
  }
  tracer.Instant("i", "test", 0, TraceContext{});
  EXPECT_EQ(tracer.RecordComplete("c", "test", 0, 0.0, 1.0, TraceContext{}).valid(), false);
  EXPECT_FALSE(tracer.AllocateContext().valid());
  EXPECT_EQ(tracer.num_spans(), 0u);
}

TEST_F(ObsTest, NestedSpansParentImplicitly) {
  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);
  TraceContext outer_ctx;
  {
    TraceSpan outer = tracer.Begin("outer", "test", 1);
    outer_ctx = outer.context();
    {
      TraceSpan inner = tracer.Begin("inner", "test", 1);
      EXPECT_EQ(inner.context().trace_id, outer_ctx.trace_id);
    }
  }
  ASSERT_EQ(tracer.num_spans(), 2u);
  // Inner closes first; records append in close order.
  EXPECT_EQ(tracer.spans()[0].name, "inner");
  EXPECT_EQ(tracer.spans()[0].parent_span_id, outer_ctx.span_id);
  EXPECT_EQ(tracer.spans()[1].name, "outer");
  EXPECT_EQ(tracer.spans()[1].parent_span_id, 0u);
}

TEST_F(ObsTest, ScopedTraceContextReentersParent) {
  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);
  const TraceContext ctx = tracer.AllocateContext();
  {
    ScopedTraceContext scope(ctx);
    TraceSpan child = tracer.Begin("child", "test", 2);
    EXPECT_EQ(child.context().trace_id, ctx.trace_id);
  }
  ASSERT_EQ(tracer.num_spans(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent_span_id, ctx.span_id);
  EXPECT_FALSE(tracer.current().valid());
}

// ------------------------ trace-id propagation ------------------------------

TEST_F(ObsTest, TraceIdPropagatesAcrossMultiHopRoute) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 99), net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);

  constexpr int kProbe = 500;
  int delivered_hops = -1;
  for (size_t i = 0; i < pastry.size(); ++i) {
    pastry.node(i).SetDeliverHandler(
        kProbe, [&](const NodeId&, const Message&, int hops) { delivered_hops = hops; });
  }

  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);
  tracer.Clear();

  // Route from node 0 toward successive node ids until the overlay needs >= 2 hops, so
  // the chain test exercises real multi-hop forwarding.
  for (size_t target = 1; target < pastry.size(); ++target) {
    tracer.Clear();
    delivered_hops = -1;
    Message probe;
    probe.type = kProbe;
    probe.size_bytes = 64;
    pastry.node(0).Route(pastry.node(target).id(), std::move(probe));
    sim.Run();
    ASSERT_GE(delivered_hops, 0) << "probe not delivered";
    if (delivered_hops >= 2) {
      break;
    }
  }
  ASSERT_GE(delivered_hops, 2) << "overlay too small to produce a multi-hop route";

  // Every span of the route shares the origin's trace id.
  std::unordered_map<uint64_t, const SpanRecord*> by_span_id;
  const SpanRecord* origin = nullptr;
  for (const auto& span : tracer.spans()) {
    by_span_id[span.span_id] = &span;
    if (span.name == "dht.route") {
      origin = &span;
    }
  }
  ASSERT_NE(origin, nullptr);
  size_t hop_spans = 0;
  for (const auto& span : tracer.spans()) {
    EXPECT_EQ(span.trace_id, origin->trace_id) << span.name;
    hop_spans += span.name == "dht.route.hop" ? 1 : 0;
  }
  EXPECT_EQ(hop_spans, static_cast<size_t>(delivered_hops));

  // The last hop's parent chain must reach the origin span: hop -> net.msg -> previous
  // hop -> ... -> dht.route.
  const SpanRecord* last_hop = nullptr;
  for (const auto& span : tracer.spans()) {
    if (span.name == "dht.route.hop" &&
        (last_hop == nullptr || span.start_ms > last_hop->start_ms)) {
      last_hop = &span;
    }
  }
  ASSERT_NE(last_hop, nullptr);
  const SpanRecord* cursor = last_hop;
  int steps = 0;
  while (cursor != origin) {
    ASSERT_NE(cursor->parent_span_id, 0u) << "chain broke at " << cursor->name;
    auto it = by_span_id.find(cursor->parent_span_id);
    ASSERT_NE(it, by_span_id.end());
    cursor = it->second;
    ASSERT_LT(++steps, 100) << "parent cycle";
  }
  // Chain alternates hop and transmission spans: 2 per overlay hop.
  EXPECT_EQ(steps, 2 * delivered_hops);
}

TEST_F(ObsTest, FederatedRoundExportsAsConnectedTree) {
  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);

  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 20.0, 7), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(7);
  for (int i = 0; i < 24; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, 8);

  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_classes = 3;
  spec.seed = 9;
  SyntheticTask task(spec);
  Rng data_rng(10);
  FlAppConfig config;
  config.name = "trace-app";
  config.model_factory = [](uint64_t s) { return MakeMlp("m", 8, 8, 3, s); };
  config.target_accuracy = 2.0;  // Unreachable: run exactly max_rounds.
  config.max_rounds = 2;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 8; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(40, data_rng));
  }
  engine.LaunchApp(config, workers, std::move(shards), task.Generate(60, data_rng));
  engine.StartAll();
  ASSERT_TRUE(engine.RunToCompletion());

  std::unordered_map<uint64_t, const SpanRecord*> by_span_id;
  for (const auto& span : tracer.spans()) {
    by_span_id[span.span_id] = &span;
  }
  size_t rounds = 0, broadcasts = 0, trains = 0, update_hops = 0;
  for (const auto& span : tracer.spans()) {
    if (span.name == "engine.round") {
      ++rounds;
      EXPECT_EQ(span.parent_span_id, 0u);  // Rounds are trace roots.
      EXPECT_GT(span.end_ms, span.start_ms);
    } else if (span.name == "pubsub.broadcast") {
      ++broadcasts;
      // The broadcast parents directly to its round span.
      auto it = by_span_id.find(span.parent_span_id);
      ASSERT_NE(it, by_span_id.end());
      EXPECT_EQ(it->second->name, "engine.round");
      EXPECT_EQ(it->second->trace_id, span.trace_id);
    } else if (span.name == "engine.local_train") {
      ++trains;
      EXPECT_GT(span.end_ms, span.start_ms);  // Covers the compute delay.
    } else if (span.name == "pubsub.update.hop") {
      ++update_hops;
    }
  }
  EXPECT_EQ(rounds, 2u);
  EXPECT_EQ(broadcasts, 2u);
  EXPECT_EQ(trains, 16u);  // 8 workers x 2 rounds.
  EXPECT_GT(update_hops, 0u);

  // Every local-train span walks up to its round span within the same trace, and its
  // interval nests inside the round's interval (virtual-time timestamps agree).
  for (const auto& span : tracer.spans()) {
    if (span.name != "engine.local_train") {
      continue;
    }
    const SpanRecord* cursor = &span;
    int steps = 0;
    while (cursor->name != "engine.round") {
      auto it = by_span_id.find(cursor->parent_span_id);
      ASSERT_NE(it, by_span_id.end()) << "orphaned " << cursor->name;
      cursor = it->second;
      ASSERT_LT(++steps, 100);
    }
    EXPECT_EQ(cursor->trace_id, span.trace_id);
    EXPECT_GE(span.start_ms, cursor->start_ms);
    EXPECT_LE(span.end_ms, cursor->end_ms);
  }
}

// --------------------------- histogram math ---------------------------------

TEST_F(ObsTest, HistogramBucketBoundaries) {
  Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow.
  h.Observe(1.0);        // Exactly on a bound: belongs to that bucket (le semantics).
  h.Observe(1.0000001);  // Just above: next bucket.
  h.Observe(2.0);
  h.Observe(5.0);
  h.Observe(5.1);  // Overflow.
  h.Observe(-3.0);  // Below every bound: first bucket.
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.1);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.0000001 + 2.0 + 5.0 + 5.1 - 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(2), 5.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper_bound(3)));

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST_F(ObsTest, HistogramQuantilesAreOrderedAndClamped) {
  Histogram h(Histogram::DefaultLatencyBoundsMs());
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i) * 0.1);  // 0.1 .. 100.0
  }
  const double p50 = h.ApproxQuantile(0.5);
  const double p99 = h.ApproxQuantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max());
  // The estimate lands near the true median despite coarse buckets.
  EXPECT_NEAR(p50, 50.0, 15.0);
}

TEST_F(ObsTest, RegistryReferencesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  Histogram& h = registry.GetHistogram("test.hist", {1.0, 2.0});
  c.Increment(5);
  h.Observe(1.5);
  registry.ResetValues();
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c);
  EXPECT_EQ(&registry.GetHistogram("test.hist"), &h);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

// ------------------------------ exporters -----------------------------------

TEST_F(ObsTest, ExportedJsonIsWellFormed) {
  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);
  {
    TraceSpan span = tracer.Begin("outer\"quoted\\name", "test", 3);
    span.AddArg("newline\nkey", "tab\tvalue");
    tracer.Instant("point", "test", 4, span.context(), {{"k", "v"}});
  }
  MetricsRegistry registry;
  registry.GetCounter("a.counter").Increment(7);
  registry.GetGauge("a.gauge").Set(-2.5);
  Histogram& h = registry.GetHistogram("a.hist", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(100.0);

  const std::string trace_json = TraceToChromeJson(tracer);
  EXPECT_TRUE(JsonValidator(trace_json).Valid()) << trace_json;
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\":\"i\""), std::string::npos);

  const std::string metrics_json = MetricsToJson(registry);
  EXPECT_TRUE(JsonValidator(metrics_json).Valid()) << metrics_json;
  EXPECT_NE(metrics_json.find("\"a.counter\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"+Inf\""), std::string::npos);

  const std::string csv = MetricsToCsv(registry);
  EXPECT_NE(csv.find("counter,a.counter,value,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,a.hist,count,2"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceTimestampsAreVirtualMicroseconds) {
  Tracer& tracer = GlobalTracer();
  tracer.SetEnabled(true);
  tracer.RecordComplete("fixed", "test", 5, 1.5, 3.5, TraceContext{});
  const std::string json = TraceToChromeJson(tracer);
  // 1.5 virtual ms -> ts 1500 us; 2 ms duration -> dur 2000 us.
  EXPECT_NE(json.find("\"ts\":1500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":5"), std::string::npos) << json;
}

// ------------------------- determinism guarantee ----------------------------

struct RunOutput {
  std::vector<AccuracyPoint> curve;
  double total_time_ms = 0.0;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
};

RunOutput RunFlOnce(uint64_t seed) {
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 30.0, seed), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, seed + 1);

  SyntheticSpec spec;
  spec.dim = 12;
  spec.num_classes = 3;
  spec.seed = seed + 2;
  SyntheticTask task(spec);
  Rng data_rng(seed + 3);
  FlAppConfig config;
  config.name = "obs-determinism";
  config.model_factory = [](uint64_t s) { return MakeMlp("m", 12, 12, 3, s); };
  config.target_accuracy = 2.0;
  config.max_rounds = 4;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 10; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(50, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(100, data_rng));
  engine.StartAll();
  EXPECT_TRUE(engine.RunToCompletion());

  RunOutput out;
  out.curve = engine.result(topic).curve;
  out.total_time_ms = engine.result(topic).total_time_ms;
  out.total_messages = net.metrics().total_messages();
  out.total_bytes = net.metrics().total_bytes();
  return out;
}

TEST_F(ObsTest, TracingDoesNotPerturbSimulation) {
  GlobalTracer().SetEnabled(false);
  const RunOutput off = RunFlOnce(1234);
  GlobalTracer().SetEnabled(true);
  const RunOutput on = RunFlOnce(1234);
  EXPECT_GT(GlobalTracer().num_spans(), 0u);  // Tracing actually ran.
  GlobalTracer().SetEnabled(false);

  ASSERT_EQ(off.curve.size(), on.curve.size());
  for (size_t i = 0; i < off.curve.size(); ++i) {
    EXPECT_EQ(off.curve[i].time_ms, on.curve[i].time_ms);
    EXPECT_EQ(off.curve[i].accuracy, on.curve[i].accuracy);
    EXPECT_EQ(off.curve[i].round, on.curve[i].round);
  }
  EXPECT_EQ(off.total_time_ms, on.total_time_ms);
  EXPECT_EQ(off.total_messages, on.total_messages);
  EXPECT_EQ(off.total_bytes, on.total_bytes);
}

// --------------------------- drop attribution -------------------------------

TEST_F(ObsTest, RecordDropAttributesHostAndClass) {
  NetworkMetrics metrics;
  metrics.EnsureHosts(3);
  metrics.RecordDrop(1, TrafficClass::kModel);
  metrics.RecordDrop(1, TrafficClass::kGradient);
  metrics.RecordDrop(2, TrafficClass::kModel);
  EXPECT_EQ(metrics.traffic(0).msgs_dropped, 0u);
  EXPECT_EQ(metrics.traffic(1).msgs_dropped, 2u);
  EXPECT_EQ(metrics.traffic(2).msgs_dropped, 1u);
  EXPECT_EQ(metrics.DroppedByClass(TrafficClass::kModel), 2u);
  EXPECT_EQ(metrics.DroppedByClass(TrafficClass::kGradient), 1u);
  EXPECT_EQ(metrics.DroppedByClass(TrafficClass::kControl), 0u);
  EXPECT_EQ(metrics.dropped_messages(), 3u);

  MetricsRegistry registry;
  metrics.PublishTo(registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("net.drops.class.model").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("net.hosts.with_drops").value(), 2.0);

  metrics.Reset();
  EXPECT_EQ(metrics.DroppedByClass(TrafficClass::kModel), 0u);
  EXPECT_EQ(metrics.traffic(1).msgs_dropped, 0u);
}

TEST_F(ObsTest, NetworkAttributesDropsToTheRightEndpoint) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 1.0, 1), net_config);
  struct Sink : Host {
    void HandleMessage(const Message&) override {}
  };
  Sink a, b;
  const HostId ha = net.AddHost(&a);
  const HostId hb = net.AddHost(&b);

  // Down sender: drop on the source.
  net.SetHostUp(ha, false);
  Message m1;
  m1.src = ha;
  m1.dst = hb;
  m1.traffic = TrafficClass::kModel;
  net.Send(m1);
  EXPECT_EQ(net.metrics().traffic(ha).msgs_dropped, 1u);

  // Down receiver at delivery time: drop on the destination.
  net.SetHostUp(ha, true);
  Message m2;
  m2.src = ha;
  m2.dst = hb;
  m2.traffic = TrafficClass::kGradient;
  net.Send(m2);
  net.SetHostUp(hb, false);
  sim.Run();
  EXPECT_EQ(net.metrics().traffic(hb).msgs_dropped, 1u);
  EXPECT_EQ(net.metrics().DroppedByClass(TrafficClass::kModel), 1u);
  EXPECT_EQ(net.metrics().DroppedByClass(TrafficClass::kGradient), 1u);
}

// ------------------------------ log level -----------------------------------

TEST_F(ObsTest, LogLevelEnvOverrideWinsOverProgrammatic) {
  const LogLevel original = GetLogLevel();

  ::setenv("TOTORO_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(InitLogLevelFromEnv());
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);  // Env wins.

  ::setenv("TOTORO_LOG_LEVEL", "3", 1);  // Numeric form.
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ::setenv("TOTORO_LOG_LEVEL", "bogus", 1);
  EXPECT_FALSE(InitLogLevelFromEnv());  // Invalid value: fall back to programmatic.
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  ::unsetenv("TOTORO_LOG_LEVEL");
  EXPECT_FALSE(InitLogLevelFromEnv());
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace totoro
