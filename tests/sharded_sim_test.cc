// Unit tests for the sharded simulator: control-stream ordering, window/barrier
// semantics over a real Network, and the headline contract — bit-identical metric and
// trace exports for any shard count K.
#include "src/sim/sharded_sim.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/network.h"

namespace totoro {
namespace {

TEST(ShardedSimulator, ControlEventsRunInTimeOrder) {
  ShardedSimulator sim(2);
  sim.SetLookaheadMs(1.0);
  std::vector<int> order;
  sim.Schedule(5.0, [&order] { order.push_back(2); });
  sim.Schedule(1.0, [&order] { order.push_back(1); });
  sim.Schedule(9.0, [&order] { order.push_back(3); });
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 9.0);
  EXPECT_TRUE(sim.Idle());
  EXPECT_EQ(sim.events_fired(), 3u);
}

TEST(ShardedSimulator, RunUntilIsInclusiveAndAdvancesClock) {
  ShardedSimulator sim(4);
  sim.SetLookaheadMs(0.5);
  int fired = 0;
  sim.ScheduleAt(10.0, [&fired] { ++fired; });
  sim.ScheduleAt(10.5, [&fired] { ++fired; });
  EXPECT_EQ(sim.RunUntil(10.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
  EXPECT_EQ(sim.RunUntil(20.0), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 20.0);
}

TEST(ShardedSimulator, CancelledHostEventsDoNotFire) {
  ShardedSimulator sim(2);
  sim.SetLookaheadMs(1.0);

  class Silent : public Host {
   public:
    void HandleMessage(const Message&) override {}
  };
  Silent a;
  Silent b;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0), NetworkConfig{});
  net.AddHost(&a);
  net.AddHost(&b);

  int fired = 0;
  EventHandle handle;
  sim.RunAsHost(1, [&] { handle = sim.Schedule(3.0, [&fired] { ++fired; }); });
  EXPECT_TRUE(handle.Cancel());
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

// A host that replies to every ping until the hop budget runs out, so traffic bounces
// across shard boundaries many times.
class PingHost : public Host {
 public:
  Network* net = nullptr;
  HostId id = 0;
  int received = 0;

  void HandleMessage(const Message& msg) override {
    ++received;
    if (msg.hops < 6) {
      Message reply;
      reply.src = id;
      reply.dst = msg.src;
      reply.hops = static_cast<uint8_t>(msg.hops + 1);
      reply.size_bytes = 200;
      net->Send(reply);
    }
  }
};

struct ScenarioResult {
  std::vector<int> received;
  uint64_t events = 0;
  std::string metrics_json;
  std::string trace_json;
};

// Runs the ping-pong scenario (16 hosts, all-to-all-ish pings, one mid-run churn event
// through the control stream) on a FRESH thread so every run gets pristine
// thread-local tracer/metrics sinks.
ScenarioResult RunPingScenario(size_t shards, bool model_bandwidth) {
  ScenarioResult out;
  std::thread runner([&out, shards, model_bandwidth] {
    GlobalTracer().SetEnabled(true);
    ShardedSimulator sim(shards);
    NetworkConfig cfg;
    cfg.model_bandwidth = model_bandwidth;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 20.0, 1234), cfg);
    constexpr size_t kHosts = 16;
    std::vector<PingHost> hosts(kHosts);
    for (size_t i = 0; i < kHosts; ++i) {
      hosts[i].net = &net;
      hosts[i].id = net.AddHost(&hosts[i]);
    }
    sim.SetLookaheadMs(net.latency_model().MinLatencyMs());
    for (size_t i = 0; i < kHosts; ++i) {
      sim.RunAsHost(static_cast<HostId>(i), [&net, i] {
        Message m;
        m.src = static_cast<HostId>(i);
        m.dst = static_cast<HostId>((i * 5 + 3) % kHosts);
        m.size_bytes = 120;
        net.Send(m);
      });
    }
    // Mid-run churn through the control stream: host 3 dies, later heals. Control runs
    // at window boundaries with every worker parked, so the flip is race-free and
    // lands at the same virtual instant for every K.
    sim.Schedule(60.0, [&net] { net.SetHostUp(3, false); });
    sim.Schedule(180.0, [&net] { net.SetHostUp(3, true); });
    sim.RunUntil(400.0);
    for (const PingHost& h : hosts) {
      out.received.push_back(h.received);
    }
    out.events = sim.events_fired();
    net.metrics().PublishTo(GlobalMetrics());
    out.metrics_json = MetricsToJson(GlobalMetrics());
    out.trace_json = TraceToChromeJson(GlobalTracer());
  });
  runner.join();
  return out;
}

TEST(ShardedSimulator, BitIdenticalExportsAcrossShardCounts) {
  const ScenarioResult base = RunPingScenario(1, /*model_bandwidth=*/true);
  EXPECT_GT(base.events, 0u);
  int delivered = 0;
  for (int r : base.received) {
    delivered += r;
  }
  EXPECT_GT(delivered, 16);  // Replies actually bounced.
  for (const size_t k : {size_t{2}, size_t{4}, size_t{8}}) {
    const ScenarioResult run = RunPingScenario(k, /*model_bandwidth=*/true);
    EXPECT_EQ(run.received, base.received) << "K=" << k;
    EXPECT_EQ(run.events, base.events) << "K=" << k;
    EXPECT_EQ(run.metrics_json, base.metrics_json) << "K=" << k;
    EXPECT_EQ(run.trace_json, base.trace_json) << "K=" << k;
  }
}

TEST(ShardedSimulator, BitIdenticalWithoutBandwidthModel) {
  const ScenarioResult base = RunPingScenario(1, /*model_bandwidth=*/false);
  const ScenarioResult run = RunPingScenario(4, /*model_bandwidth=*/false);
  EXPECT_EQ(run.received, base.received);
  EXPECT_EQ(run.events, base.events);
  EXPECT_EQ(run.metrics_json, base.metrics_json);
  EXPECT_EQ(run.trace_json, base.trace_json);
}

TEST(ShardedSimulator, PeriodicSamplingDrivesLiveRateAtBarriers) {
  // The coordinator advances the sampling countdown by each window's fired total, so
  // an opted-in sharded run publishes a live rate without perturbing the event stream.
  uint64_t sampled_events = 0;
  uint64_t plain_events = 0;
  double live_rate = 0.0;
  double gauge_value = 0.0;
  for (const bool sample : {true, false}) {
    std::thread runner([&, sample] {
      ShardedSimulator sim(4);
      Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 20.0, 99),
                  NetworkConfig{});
      constexpr size_t kHosts = 12;
      std::vector<PingHost> hosts(kHosts);
      for (size_t i = 0; i < kHosts; ++i) {
        hosts[i].net = &net;
        hosts[i].id = net.AddHost(&hosts[i]);
      }
      sim.SetLookaheadMs(net.latency_model().MinLatencyMs());
      if (sample) {
        sim.EnablePeriodicSampling(8);
      }
      for (size_t i = 0; i < kHosts; ++i) {
        sim.RunAsHost(static_cast<HostId>(i), [&net, i] {
          Message m;
          m.src = static_cast<HostId>(i);
          m.dst = static_cast<HostId>((i * 7 + 1) % kHosts);
          m.size_bytes = 100;
          net.Send(m);
        });
      }
      sim.RunUntil(400.0);
      if (sample) {
        sampled_events = sim.events_fired();
        live_rate = sim.live_events_per_sec();
        gauge_value = GlobalMetrics().GetGauge("sim.events_per_sec").value();
      } else {
        plain_events = sim.events_fired();
      }
    });
    runner.join();
  }
  EXPECT_GT(sampled_events, 8u);
  EXPECT_EQ(sampled_events, plain_events) << "sampling must not perturb the run";
  EXPECT_GT(live_rate, 0.0);
  EXPECT_GT(gauge_value, 0.0);
}

TEST(MakeSimulatorFromEnv, DefaultsToSingleThreadedEngine) {
  // TOTORO_SIM_SHARDS is unset in the test environment.
  std::unique_ptr<Simulator> sim = MakeSimulatorFromEnv();
  EXPECT_FALSE(sim->sharded());
  EXPECT_EQ(sim->num_shards(), 1u);
}

}  // namespace
}  // namespace totoro
