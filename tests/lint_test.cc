// Tests for the totoro_lint rule engine (tools/lint/): synthetic source snippets are
// fed through RunLint and the findings checked per rule — a positive and a negative
// case for each of R1–R6, annotation escape hatches, include-closure resolution, and
// allowlist parsing/matching.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/allowlist.h"
#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace totoro::lint {
namespace {

std::vector<Finding> LintOne(const std::string& path, const std::string& content) {
  return RunLint({{path, content}}, LintOptions());
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& symbol) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.symbol == symbol;
  });
}

// --- Lexer basics ------------------------------------------------------------------

TEST(LexerTest, TokenizesIdentifiersStringsAndAnnotations) {
  const LexedFile lexed = Lex(
      "#include \"src/sim/simulator.h\"\n"
      "int x = 1;  // LINT: order-independent metric fold\n"
      "const char* s = \"a.b\";\n");
  ASSERT_EQ(lexed.quoted_includes.size(), 1u);
  EXPECT_EQ(lexed.quoted_includes[0], "src/sim/simulator.h");
  ASSERT_TRUE(lexed.annotations.count(2));
  EXPECT_EQ(lexed.annotations.at(2), "order-independent metric fold");
  const bool has_string =
      std::any_of(lexed.tokens.begin(), lexed.tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString && t.text == "a.b";
      });
  EXPECT_TRUE(has_string);
}

TEST(LexerTest, StringContentsDoNotLeakTokens) {
  // `rand(` inside a string literal must not trip R1.
  const auto findings =
      LintOne("src/sim/x.cc", "const char* s = \"rand() time()\";\n");
  EXPECT_TRUE(findings.empty());
}

// --- R1: nondeterminism sources ----------------------------------------------------

TEST(R1Test, FlagsRandAndClocksInDeterministicDirs) {
  const auto findings = LintOne("src/sim/x.cc",
                                "int a = rand();\n"
                                "std::random_device rd;\n"
                                "auto t = std::chrono::steady_clock::now();\n"
                                "long w = time(nullptr);\n");
  EXPECT_TRUE(HasFinding(findings, "R1", "rand"));
  EXPECT_TRUE(HasFinding(findings, "R1", "random_device"));
  EXPECT_TRUE(HasFinding(findings, "R1", "steady_clock"));
  EXPECT_TRUE(HasFinding(findings, "R1", "time"));
}

TEST(R1Test, QuietOutsideDeterministicDirsAndOnMemberCalls) {
  // src/ml is not a determinism-scoped directory.
  EXPECT_TRUE(LintOne("src/ml/x.cc", "int a = rand();\n").empty());
  // Member / foreign-qualified `time` is someone's API, not libc time().
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "double t = msg.time();\n"
                      "double u = sim->time();\n"
                      "double v = Clock::time();\n")
                  .empty());
  // `rand` as a bare identifier (not a call) stays quiet.
  EXPECT_TRUE(LintOne("src/sim/x.cc", "int rand = 3; int y = rand + 1;\n").empty());
}

TEST(R1Test, GetenvFlaggedEverywhereExceptSanctionedSite) {
  EXPECT_TRUE(
      HasFinding(LintOne("src/ml/x.cc", "const char* v = getenv(\"X\");\n"), "R1",
                 "getenv"));
  EXPECT_TRUE(
      HasFinding(LintOne("bench/x.cc", "const char* v = std::getenv(\"X\");\n"), "R1",
                 "getenv"));
  EXPECT_TRUE(
      LintOne("src/common/env.cc", "const char* v = std::getenv(\"X\");\n").empty());
}

// --- R2: unordered-container iteration ---------------------------------------------

TEST(R2Test, FlagsRangeForOverUnorderedMember) {
  const auto findings = LintOne("src/pubsub/x.cc",
                                "std::unordered_map<int, int> topics_;\n"
                                "void F() { for (auto& [k, v] : topics_) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "topics_"));
}

TEST(R2Test, FlagsIteratorTraversal) {
  const auto findings =
      LintOne("src/dht/x.cc",
              "std::unordered_set<int> hosts_;\n"
              "void F() { for (auto it = hosts_.begin(); it != hosts_.end(); ++it) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "hosts_"));
}

TEST(R2Test, AnnotationSuppressesTheFinding) {
  const auto same_line = LintOne(
      "src/pubsub/x.cc",
      "std::unordered_map<int, int> topics_;\n"
      "void F() { for (auto& [k, v] : topics_) {} }  // LINT: order-independent fold\n");
  EXPECT_TRUE(same_line.empty());
  const auto line_above = LintOne("src/pubsub/x.cc",
                                  "std::unordered_map<int, int> topics_;\n"
                                  "// LINT: order-independent pure max-fold\n"
                                  "void F() { for (auto& [k, v] : topics_) {} }\n");
  EXPECT_TRUE(line_above.empty());
}

TEST(R2Test, OrderedContainersAndLookupsStayQuiet) {
  EXPECT_TRUE(LintOne("src/pubsub/x.cc",
                      "std::map<int, int> topics_;\n"
                      "void F() { for (auto& [k, v] : topics_) {} }\n")
                  .empty());
  // find()/end() lookups on an unordered container are order-independent.
  EXPECT_TRUE(LintOne("src/pubsub/x.cc",
                      "std::unordered_map<int, int> topics_;\n"
                      "bool F() { return topics_.find(3) != topics_.end(); }\n")
                  .empty());
}

TEST(R2Test, ResolvesMembersThroughIncludeClosure) {
  const std::vector<SourceFile> files = {
      {"src/core/widget.h", "struct W { std::unordered_map<int, int> apps_; };\n"},
      {"src/core/widget.cc",
       "#include \"src/core/widget.h\"\n"
       "void W::F() { for (auto& [k, v] : apps_) {} }\n"}};
  const auto findings = RunLint(files, LintOptions());
  EXPECT_TRUE(HasFinding(findings, "R2", "apps_"));
}

TEST(R2Test, AmbiguousNameAcrossClosureStaysQuiet) {
  // `topics_` is unordered in one header and a vector in another; the loop file sees
  // both, so the lexer-level engine must not guess.
  const std::vector<SourceFile> files = {
      {"src/pubsub/a.h", "struct A { std::unordered_map<int, int> topics_; };\n"},
      {"src/faultsim/b.h", "struct B { std::vector<int> topics_; };\n"},
      {"src/faultsim/b.cc",
       "#include \"src/pubsub/a.h\"\n"
       "#include \"src/faultsim/b.h\"\n"
       "void B::F() { for (int t : topics_) {} }\n"}};
  EXPECT_TRUE(RunLint(files, LintOptions()).empty());
}

TEST(R2Test, ResolvesUsingAliases) {
  const auto findings = LintOne("src/bandit/x.cc",
                                "using ArmMap = std::unordered_map<int, double>;\n"
                                "ArmMap arms_;\n"
                                "void F() { for (auto& [k, v] : arms_) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "arms_"));
}

// --- R3: pointer keys and pointer comparisons --------------------------------------

TEST(R3Test, FlagsPointerKeyedContainers) {
  const auto findings = LintOne("src/sim/x.cc",
                                "std::map<Event*, int> by_event_;\n"
                                "std::set<const Node*> nodes_;\n");
  EXPECT_TRUE(HasFinding(findings, "R3", "std::map<T*>"));
  EXPECT_TRUE(HasFinding(findings, "R3", "std::set<T*>"));
}

TEST(R3Test, PointerValuesAreFine) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "std::map<int, Event*> by_id_;\n"
                      "std::set<int> ids_;\n")
                  .empty());
}

TEST(R3Test, FlagsPointerComparisonFeedingOrder) {
  const auto findings = LintOne("src/sim/x.cc",
                                "void F(Node* a, Node* b) {\n"
                                "  if (a < b) { Swap(a, b); }\n"
                                "}\n");
  EXPECT_TRUE(HasFinding(findings, "R3", "a<b"));
  // Integer comparison with the same shape stays quiet.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "void F(int a, int b) { if (a < b) { Swap(a, b); } }\n")
                  .empty());
}

// --- R4: metric naming and exactly-once registration -------------------------------

TEST(R4Test, FlagsBadMetricNames) {
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetCounter(\"BadName\");\n"), "R4",
      "BadName"));
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetCounter(\"engine\");\n"), "R4",
      "engine"));
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetGauge(\"engine..latency\");\n"), "R4",
      "engine..latency"));
}

TEST(R4Test, AcceptsConventionalNamesAndComposedPrefixes) {
  EXPECT_TRUE(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetHistogram(\"engine.round.duration_ms\");\n")
          .empty());
  // A literal ending in '.' composed with a runtime suffix is a prefix, not a name.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "registry.GetGauge(\"net.drops.class.\" + suffix);\n")
                  .empty());
}

TEST(R4Test, FlagsDoubleRegistration) {
  const std::vector<SourceFile> files = {
      {"src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"},
      {"src/core/b.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"}};
  const auto findings = RunLint(files, LintOptions());
  EXPECT_TRUE(HasFinding(findings, "R4", "sim.events_fired"));
  // A single registration site is fine.
  EXPECT_TRUE(
      LintOne("src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n")
          .empty());
}

TEST(R4Test, KindClashIsReported) {
  const std::vector<SourceFile> files = {
      {"src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"},
      {"src/core/b.cc", "GlobalMetrics().GetGauge(\"sim.events_fired\");\n"}};
  const auto findings = RunLint(files, LintOptions());
  ASSERT_TRUE(HasFinding(findings, "R4", "sim.events_fired"));
  const auto it = std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
    return f.rule == "R4";
  });
  EXPECT_NE(it->message.find("different kind"), std::string::npos);
}

// --- R5: bench binaries must emit a BenchReport ------------------------------------

TEST(R5Test, FlagsBenchWithoutBenchReport) {
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "int main() { std::printf(\"table only\\n\"); return 0; }\n");
  EXPECT_TRUE(HasFinding(findings, "R5", "BenchReport"));
}

TEST(R5Test, QuietWhenBenchReferencesBenchReport) {
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "#include \"src/obs/bench_report.h\"\n"
      "int main() { totoro::BenchReport report(\"widget\"); return report.Write() ? 0 : 1; }\n");
  EXPECT_FALSE(HasFinding(findings, "R5", "BenchReport"));
}

TEST(R5Test, QuietOnNonBenchFilesAndHelpers) {
  // Shared helpers (bench_util.h) and non-bench sources are out of scope.
  EXPECT_TRUE(LintOne("bench/bench_util.h", "int x;\n").empty());
  EXPECT_TRUE(LintOne("bench/tta_common.h", "int x;\n").empty());
  EXPECT_TRUE(LintOne("src/obs/export.cc", "int x;\n").empty());
}

TEST(R5Test, MentionInStringDoesNotCount) {
  // The identifier must appear as a token, not inside a string or comment.
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "int main() { std::printf(\"BenchReport goes here someday\\n\"); return 0; }\n");
  EXPECT_TRUE(HasFinding(findings, "R5", "BenchReport"));
}

// --- R6: committed baselines must be regenerated by CI ------------------------------

namespace {

// A minimal but structurally faithful workflow: a bench-telemetry job running some
// benches, followed by a sibling job that also mentions a bench (which must NOT
// satisfy R6 — only references inside bench-telemetry count).
constexpr char kWorkflow[] =
    "name: CI\n"
    "jobs:\n"
    "  verify:\n"
    "    steps:\n"
    "      - run: ctest\n"
    "  bench-telemetry:\n"
    "    steps:\n"
    "      - run: |\n"
    "          ./build/bench/bench_micro\n"
    "          ./build/bench/bench_fig8_fig9_tta\n"
    "  lint:\n"
    "    steps:\n"
    "      - run: ./build/bench/bench_orphan\n";

std::vector<Finding> LintBaselines(std::vector<std::string> baselines,
                                   std::string workflow) {
  LintOptions options;
  options.baseline_names = std::move(baselines);
  options.ci_workflow_text = std::move(workflow);
  return RunLint({{"src/obs/export.cc", "int x;\n"}}, options);
}

}  // namespace

TEST(R6Test, QuietWhenEveryBaselineBenchRunsInBenchTelemetry) {
  const auto findings =
      LintBaselines({"BENCH_micro.json", "BENCH_fig8_fig9_tta.json"}, kWorkflow);
  EXPECT_TRUE(findings.empty());
}

TEST(R6Test, FlagsBaselineWhoseBenchCiNeverRuns) {
  const auto findings = LintBaselines({"BENCH_micro.json", "BENCH_fig7_traffic.json"},
                                      kWorkflow);
  EXPECT_TRUE(HasFinding(findings, "R6", "bench_fig7_traffic"));
  EXPECT_FALSE(HasFinding(findings, "R6", "bench_micro"));
}

TEST(R6Test, MentionOutsideBenchTelemetryJobDoesNotCount) {
  // bench_orphan appears in the lint job, after bench-telemetry ended.
  const auto findings = LintBaselines({"BENCH_orphan.json"}, kWorkflow);
  EXPECT_TRUE(HasFinding(findings, "R6", "bench_orphan"));
}

TEST(R6Test, MissingBenchTelemetryJobIsItselfAFinding) {
  const auto findings = LintBaselines({"BENCH_micro.json"},
                                      "name: CI\njobs:\n  verify:\n    steps: []\n");
  EXPECT_TRUE(HasFinding(findings, "R6", "bench-telemetry"));
}

TEST(R6Test, InactiveWithoutBaselinesOrWorkflow) {
  EXPECT_TRUE(LintBaselines({}, kWorkflow).empty());
  EXPECT_TRUE(LintBaselines({"BENCH_micro.json"}, "").empty());
}

// --- Allowlist ---------------------------------------------------------------------

TEST(AllowlistTest, ParsesEntriesAndSkipsCommentsAndBlanks) {
  std::vector<std::string> errors;
  const auto entries = ParseAllowlist(
      "# header comment\n"
      "\n"
      "R1 src/sim/simulator.cc steady_clock  # wall-clock gauge\n"
      "R2 src/pubsub/scribe_node.cc topics_\n",
      &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "R1");
  EXPECT_EQ(entries[0].file, "src/sim/simulator.cc");
  EXPECT_EQ(entries[0].symbol, "steady_clock");
}

TEST(AllowlistTest, MalformedLinesAreErrors) {
  std::vector<std::string> errors;
  ParseAllowlist("R1 only_two_fields\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("allow.txt:1"), std::string::npos);
}

TEST(AllowlistTest, FilterMatchesRuleFileAndSymbol) {
  const std::vector<Finding> findings = {
      {"R1", "src/sim/simulator.cc", 14, "steady_clock", "m"},
      {"R1", "src/sim/simulator.cc", 57, "steady_clock", "m"},
      {"R1", "src/dht/pastry_node.cc", 9, "steady_clock", "m"},
  };
  std::vector<std::string> errors;
  auto entries =
      ParseAllowlist("R1 src/sim/simulator.cc steady_clock\n", &errors);
  const auto violations = FilterAllowed(findings, &entries);
  // One entry absorbs both simulator.cc findings; the pastry_node one survives.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/dht/pastry_node.cc");
  EXPECT_TRUE(entries[0].used);
}

TEST(AllowlistTest, UnmatchedEntryStaysUnused) {
  std::vector<std::string> errors;
  auto entries = ParseAllowlist("R2 src/core/engine.cc apps_\n", &errors);
  const auto violations = FilterAllowed({}, &entries);
  EXPECT_TRUE(violations.empty());
  EXPECT_FALSE(entries[0].used);
}

// --- End-to-end formatting ---------------------------------------------------------

TEST(FormatTest, FindingFormatsAsFileLineRule) {
  const Finding f{"R2", "src/core/engine.cc", 78, "apps_", "range-for over ..."};
  EXPECT_EQ(FormatFinding(f), "src/core/engine.cc:78: [R2] range-for over ...");
}

}  // namespace
}  // namespace totoro::lint
